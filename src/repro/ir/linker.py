"""Compilation variants: deterministic "recompilations" of a program.

The paper's Section 6.2.1 and Figure 4 select markers on an OSF Alpha
binary and apply them — via source-line mapping — to a Linux x86 binary or
to differently optimized builds of the same source.  This module is the
substitute compiler/linker: :func:`link` rebuilds a program with per-block
instruction counts and CPIs rescaled by a variant-specific, deterministic
per-block factor, while preserving the procedure, loop, call, and source
structure.  Addresses and interval lengths change; the source-anchored
phase structure does not — which is exactly the property the cross-binary
experiments test.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, replace
from typing import Dict, List

from repro.ir.program import (
    BasicBlock,
    BlockStmt,
    CallStmt,
    IfStmt,
    LoopStmt,
    Procedure,
    Program,
    Stmt,
    SwitchStmt,
    Terminator,
    TermKind,
)


@dataclass(frozen=True)
class CompilationVariant:
    """A named build configuration.

    ``size_factor`` rescales instruction counts (e.g. an -O0 build runs
    more instructions per source statement); ``cpi_factor`` rescales block
    base CPI (worse code quality); ``jitter`` is the +/- fraction of
    deterministic per-block variation around ``size_factor`` (different
    source statements compile down differently).
    """

    name: str
    size_factor: float = 1.0
    cpi_factor: float = 1.0
    jitter: float = 0.0


#: The build every workload uses by default — stands in for the paper's
#: peak-optimized OSF Alpha binaries.
ALPHA_BASE = CompilationVariant("alpha-base")

#: Unoptimized build of the same source (Section 6.2.1's -O0 binary).
ALPHA_O0 = CompilationVariant("alpha-O0", size_factor=1.6, cpi_factor=1.15, jitter=0.25)

#: Peak-optimized build (Section 6.2.1's full peak optimization binary).
ALPHA_PEAK = CompilationVariant("alpha-peak", size_factor=0.78, cpi_factor=0.95, jitter=0.15)

#: A different-ISA build of the same source (Figure 4's Linux x86 binary).
X86_LINUX = CompilationVariant("x86-linux", size_factor=0.9, cpi_factor=1.05, jitter=0.3)

VARIANTS: Dict[str, CompilationVariant] = {
    v.name: v for v in (ALPHA_BASE, ALPHA_O0, ALPHA_PEAK, X86_LINUX)
}


def _block_factor(variant: CompilationVariant, block: BasicBlock) -> float:
    """Deterministic per-block size factor for *variant*.

    Hashing (variant, proc, source line) keeps the factor stable across
    runs while varying it across blocks — two builds of the same source
    never differ by a single uniform scale in practice.
    """
    if variant.jitter == 0.0:
        return variant.size_factor
    key = f"{variant.name}|{block.proc_name}|{block.source.line}|{block.label}"
    h = zlib.crc32(key.encode()) / 0xFFFFFFFF  # uniform in [0, 1]
    return variant.size_factor * (1.0 + variant.jitter * (2.0 * h - 1.0))


def link(program: Program, variant: CompilationVariant) -> Program:
    """Rebuild *program* under *variant*; the result shares source structure
    (same procedures, loops, calls, source locations) but has different
    block sizes, CPIs, offsets, and addresses."""
    if variant.size_factor <= 0:
        raise ValueError("size_factor must be positive")

    new_procs: List[Procedure] = []
    for proc in program.procedures.values():
        block_map: Dict[int, BasicBlock] = {}
        new_blocks: List[BasicBlock] = []
        offset = 0
        for block in proc.blocks:
            mix = block.mix.scaled(_block_factor(variant, block))
            if mix.size == 0:
                mix = block.mix  # never drop a block entirely
            new_block = replace(
                block,
                mix=mix,
                base_cpi=block.base_cpi * variant.cpi_factor,
                offset=offset,
                address=-1,
            )
            offset += mix.size
            block_map[block.block_id] = new_block
            new_blocks.append(new_block)

        new_body = _rebuild_stmts(proc.body, block_map)
        _fix_latch_terminators(new_body)
        new_procs.append(
            Procedure(
                name=proc.name,
                proc_id=proc.proc_id,
                blocks=new_blocks,
                body=new_body,
                source=proc.source,
            )
        )

    return Program(
        program.name, new_procs, entry=program.entry, variant=variant.name
    )


def _rebuild_stmts(
    stmts: List[Stmt], block_map: Dict[int, BasicBlock]
) -> List[Stmt]:
    out: List[Stmt] = []
    for stmt in stmts:
        if isinstance(stmt, BlockStmt):
            out.append(BlockStmt(block_map[stmt.block.block_id]))
        elif isinstance(stmt, CallStmt):
            out.append(
                CallStmt(
                    site_block=block_map[stmt.site_block.block_id],
                    callee=stmt.callee,
                    source=stmt.source,
                )
            )
        elif isinstance(stmt, LoopStmt):
            out.append(
                LoopStmt(
                    label=stmt.label,
                    header_block=block_map[stmt.header_block.block_id],
                    body=_rebuild_stmts(stmt.body, block_map),
                    latch_block=block_map[stmt.latch_block.block_id],
                    trips=stmt.trips,
                    source=stmt.source,
                )
            )
        elif isinstance(stmt, IfStmt):
            out.append(
                IfStmt(
                    cond_block=block_map[stmt.cond_block.block_id],
                    prob=stmt.prob,
                    then_body=_rebuild_stmts(stmt.then_body, block_map),
                    else_body=_rebuild_stmts(stmt.else_body, block_map),
                    source=stmt.source,
                )
            )
        elif isinstance(stmt, SwitchStmt):
            out.append(
                SwitchStmt(
                    cond_block=block_map[stmt.cond_block.block_id],
                    weights=stmt.weights,
                    cases=[_rebuild_stmts(c, block_map) for c in stmt.cases],
                    source=stmt.source,
                )
            )
        else:  # pragma: no cover - exhaustive over Stmt subclasses
            raise TypeError(f"unknown statement {type(stmt).__name__}")
    return out


def _fix_latch_terminators(stmts: List[Stmt]) -> None:
    """Point every rebuilt latch's back-edge at its rebuilt header offset."""
    for stmt in stmts:
        if isinstance(stmt, LoopStmt):
            stmt.latch_block.terminator = Terminator(
                TermKind.COND_BRANCH, target_offset=stmt.header_block.offset
            )
            _fix_latch_terminators(stmt.body)
        elif isinstance(stmt, IfStmt):
            _fix_latch_terminators(stmt.then_body)
            _fix_latch_terminators(stmt.else_body)
        elif isinstance(stmt, SwitchStmt):
            for case in stmt.cases:
                _fix_latch_terminators(case)
