"""Core IR data structures: programs, procedures, basic blocks, statements.

A :class:`Program` plays the role of the paper's Alpha binary.  It carries
enough binary-level detail for authentic analysis:

* every basic block has an **address** (4 bytes per instruction, procedures
  laid out sequentially), so loop back-edges are *discoverable* as
  non-interprocedural backwards branches, exactly as the paper detects them
  with ATOM (Section 4.2);
* every block, call site, and loop has a **source location**, which is what
  lets phase markers be mapped across recompilations of the same source
  (Section 6.2.1, Fig. 4);
* the structured statement tree (`body` of each procedure) is what the
  execution engine interprets — it is the "program text".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum, IntEnum
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.ir.instructions import InstructionMix
from repro.ir.trips import Prob, TripCount

#: Bytes per instruction in the synthetic ISA.
INSTRUCTION_BYTES = 4

#: Alignment (bytes) of procedure base addresses.
PROC_ALIGNMENT = 64


@dataclass(frozen=True, order=True)
class SourceLoc:
    """A (file, line) source position attached to every IR element."""

    file: str
    line: int

    def __str__(self) -> str:
        return f"{self.file}:{self.line}"


@dataclass(frozen=True)
class ParamExpr:
    """A quantity of the form ``params[name] * scale + offset``.

    Used for input-dependent memory footprints.
    """

    name: str
    scale: float = 1.0
    offset: float = 0.0

    def resolve(self, params: Mapping[str, float]) -> int:
        if self.name not in params:
            raise KeyError(f"input parameter {self.name!r} not provided")
        return max(1, round(params[self.name] * self.scale + self.offset))


class MemPattern(Enum):
    """Shape of the address stream a block generates."""

    SEQ = "seq"  #: streaming/strided accesses through a region
    WSET = "wset"  #: uniform random accesses within a working set
    CHASE = "chase"  #: pointer-chasing permutation walk
    STACK = "stack"  #: small always-hot stack region


@dataclass(frozen=True)
class MemSpec:
    """Memory behavior of a block's loads/stores.

    ``footprint`` is the number of bytes the pattern touches before
    wrapping; it may be input-dependent (:class:`ParamExpr`).  The address
    stream itself is produced by :mod:`repro.engine.memory`.
    """

    pattern: MemPattern
    region: str
    footprint: Union[int, ParamExpr] = 4096
    stride: int = 8

    def resolve_footprint(self, params: Mapping[str, float]) -> int:
        if isinstance(self.footprint, ParamExpr):
            return self.footprint.resolve(params)
        return int(self.footprint)


class TermKind(IntEnum):
    """Terminator classes — what ends a basic block."""

    FALLTHROUGH = 0
    COND_BRANCH = 1  #: conditional branch (if/switch/loop latch)
    CALL = 2
    RETURN = 3


@dataclass(frozen=True)
class Terminator:
    """Static terminator of a block; back-edges are COND_BRANCH with a
    target at or before the block (discoverable as backwards branches)."""

    kind: TermKind
    target_offset: Optional[int] = None  #: intra-procedure instruction offset


@dataclass
class BasicBlock:
    """A single-entry single-exit code region with an address and a mix."""

    block_id: int  #: global index into Program.blocks
    label: str
    proc_name: str
    offset: int  #: instruction offset within the procedure
    mix: InstructionMix
    base_cpi: float
    source: SourceLoc
    mem: Optional[MemSpec] = None
    terminator: Terminator = field(
        default_factory=lambda: Terminator(TermKind.FALLTHROUGH)
    )
    #: filled in by Program layout
    address: int = -1

    @property
    def size(self) -> int:
        """Dynamic instructions per execution."""
        return self.mix.size

    @property
    def end_address(self) -> int:
        """Address of the block's last instruction (where its branch lives)."""
        return self.address + (self.size - 1) * INSTRUCTION_BYTES

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BasicBlock({self.proc_name}/{self.label} id={self.block_id} "
            f"addr={self.address:#x} size={self.size})"
        )


# --------------------------------------------------------------------------
# Statements (the structured program text the engine interprets)
# --------------------------------------------------------------------------


class Stmt:
    """Base class for statements."""

    __slots__ = ()


@dataclass
class BlockStmt(Stmt):
    """Execute one basic block of straight-line code."""

    block: BasicBlock


@dataclass
class CallStmt(Stmt):
    """A call site: a (small) site block ending in a call instruction."""

    site_block: BasicBlock
    callee: str
    source: SourceLoc


@dataclass
class LoopStmt(Stmt):
    """A natural loop.

    Per iteration the engine executes ``header_block``, then ``body``, then
    ``latch_block`` whose terminator is the backwards branch to the header.
    The static loop region is [header_block.address, latch_block.end_address]
    — "the static code region from the backwards branch to its target".
    """

    label: str
    header_block: BasicBlock
    body: List[Stmt]
    latch_block: BasicBlock
    trips: TripCount
    source: SourceLoc

    @property
    def header_address(self) -> int:
        return self.header_block.address

    @property
    def latch_branch_address(self) -> int:
        return self.latch_block.end_address


@dataclass
class IfStmt(Stmt):
    """A two-way conditional; ``cond_block`` ends in a forward branch."""

    cond_block: BasicBlock
    prob: Prob  #: probability the *then* side executes
    then_body: List[Stmt]
    else_body: List[Stmt]
    source: SourceLoc


@dataclass
class SwitchStmt(Stmt):
    """An n-way weighted dispatch (models indirect jumps / big switches)."""

    cond_block: BasicBlock
    weights: Tuple[float, ...]
    cases: List[List[Stmt]]
    source: SourceLoc


# --------------------------------------------------------------------------
# Procedures and programs
# --------------------------------------------------------------------------


@dataclass
class Procedure:
    """A procedure: laid-out blocks plus the statement tree that runs them."""

    name: str
    proc_id: int
    blocks: List[BasicBlock]  #: layout order; offsets strictly increasing
    body: List[Stmt]
    source: SourceLoc
    base_address: int = -1

    @property
    def entry_address(self) -> int:
        return self.blocks[0].address if self.blocks else self.base_address

    @property
    def code_size(self) -> int:
        """Static instructions in the procedure."""
        return sum(b.size for b in self.blocks)


class Program:
    """A complete synthetic binary.

    Attributes
    ----------
    name:
        Program name (e.g. ``"gzip"``).
    variant:
        Compilation variant tag (``"base"`` unless produced by the linker).
    procedures:
        Mapping of name to :class:`Procedure`.
    blocks:
        All blocks, indexed by ``block_id``.
    entry:
        Name of the entry procedure.
    """

    def __init__(
        self,
        name: str,
        procedures: Sequence[Procedure],
        entry: str = "main",
        variant: str = "base",
    ):
        self.name = name
        self.variant = variant
        self.entry = entry
        self.procedures: Dict[str, Procedure] = {p.name: p for p in procedures}
        if len(self.procedures) != len(procedures):
            raise ValueError("duplicate procedure names")
        if entry not in self.procedures:
            raise ValueError(f"entry procedure {entry!r} not defined")
        self._layout()
        self.blocks: List[BasicBlock] = self._collect_blocks()
        self._block_by_address = {b.address: b for b in self.blocks}
        self._proc_by_id = {p.proc_id: p for p in self.procedures.values()}

    # -- layout ------------------------------------------------------------

    def _layout(self) -> None:
        """Assign base addresses to procedures and addresses to blocks."""
        cursor = 0x1000  # a text-segment-like base
        for proc in self.procedures.values():
            if cursor % PROC_ALIGNMENT:
                cursor += PROC_ALIGNMENT - cursor % PROC_ALIGNMENT
            proc.base_address = cursor
            end = cursor
            for block in proc.blocks:
                block.address = cursor + block.offset * INSTRUCTION_BYTES
                end = max(end, block.address + block.size * INSTRUCTION_BYTES)
            cursor = end

    def _collect_blocks(self) -> List[BasicBlock]:
        blocks = [b for p in self.procedures.values() for b in p.blocks]
        blocks.sort(key=lambda b: b.block_id)
        for i, b in enumerate(blocks):
            if b.block_id != i:
                raise ValueError(
                    f"block ids must be dense 0..n-1; got {b.block_id} at {i}"
                )
        return blocks

    # -- queries -----------------------------------------------------------

    @property
    def num_blocks(self) -> int:
        return len(self.blocks)

    def block_at(self, address: int) -> BasicBlock:
        """The block whose first instruction sits at *address*."""
        return self._block_by_address[address]

    def procedure_by_id(self, proc_id: int) -> Procedure:
        return self._proc_by_id[proc_id]

    def block_sizes(self):
        """Numpy vector of per-block sizes, indexed by block_id."""
        import numpy as np

        return np.array([b.size for b in self.blocks], dtype=np.int64)

    def static_instruction_count(self) -> int:
        return sum(b.size for b in self.blocks)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Program({self.name!r} variant={self.variant!r} "
            f"procs={len(self.procedures)} blocks={len(self.blocks)})"
        )


@dataclass(frozen=True)
class ProgramInput:
    """A named input to a program: parameters plus the run's RNG seed.

    Mirrors SPEC's ``train`` / ``ref`` input sets — the cross-input
    experiments select markers on one input and apply them on another.
    """

    name: str
    params: Mapping[str, float] = field(default_factory=dict)
    seed: int = 12345

    def with_seed(self, seed: int) -> "ProgramInput":
        return ProgramInput(self.name, dict(self.params), seed)

    def key(self) -> Tuple[str, int]:
        return (self.name, self.seed)
