"""Program intermediate representation (the reproduction's "binary" format).

The paper profiles DEC Alpha binaries with ATOM.  This package provides the
substitute: a structured program representation with procedures, basic
blocks carrying addresses and instruction mixes, explicit loop and call
statements, and source locations.  The execution engine in
:mod:`repro.engine` interprets it into a dynamic event stream, and
:mod:`repro.ir.linker` produces "recompiled" variants of the same source
structure for the cross-binary experiments (paper Section 6.2.1 / Fig. 4).
"""

from repro.ir.instructions import InstructionMix, OpClass
from repro.ir.program import (
    BasicBlock,
    BlockStmt,
    CallStmt,
    IfStmt,
    LoopStmt,
    MemPattern,
    MemSpec,
    ParamExpr,
    Procedure,
    Program,
    ProgramInput,
    SourceLoc,
    Stmt,
    SwitchStmt,
    Terminator,
)
from repro.ir.trips import (
    ChoiceTrips,
    FixedTrips,
    LambdaTrips,
    NormalTrips,
    ParamTrips,
    TripCount,
    UniformTrips,
)
from repro.ir.builder import ProgramBuilder
from repro.ir.validate import ValidationError, validate_program
from repro.ir.linker import CompilationVariant, link

__all__ = [
    "InstructionMix",
    "OpClass",
    "BasicBlock",
    "BlockStmt",
    "CallStmt",
    "IfStmt",
    "LoopStmt",
    "MemPattern",
    "MemSpec",
    "ParamExpr",
    "Procedure",
    "Program",
    "ProgramInput",
    "SourceLoc",
    "Stmt",
    "SwitchStmt",
    "Terminator",
    "TripCount",
    "FixedTrips",
    "ParamTrips",
    "NormalTrips",
    "UniformTrips",
    "ChoiceTrips",
    "LambdaTrips",
    "ProgramBuilder",
    "ValidationError",
    "validate_program",
    "CompilationVariant",
    "link",
]
