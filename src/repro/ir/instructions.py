"""Instruction classes and per-basic-block instruction mixes.

Blocks are not modeled instruction-by-instruction (the phase-marker
algorithms only consume counts); instead each block carries an
:class:`InstructionMix` giving how many instructions of each class execute
when the block runs once.  The performance model (:mod:`repro.perf`) and
the memory system (:mod:`repro.engine.memory`) read the mix.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum


class OpClass(IntEnum):
    """Coarse instruction classes used by the CPI model."""

    INT_ALU = 0
    FP_ALU = 1
    LOAD = 2
    STORE = 3
    BRANCH = 4


@dataclass(frozen=True)
class InstructionMix:
    """Counts of each instruction class executed per block execution.

    The block's ``size`` (total dynamic instructions per execution) is the
    sum of the class counts.
    """

    int_alu: int = 0
    fp_alu: int = 0
    loads: int = 0
    stores: int = 0
    branches: int = 0

    def __post_init__(self) -> None:
        for field in ("int_alu", "fp_alu", "loads", "stores", "branches"):
            value = getattr(self, field)
            if value < 0:
                raise ValueError(f"{field} must be non-negative, got {value}")
        if self.size == 0:
            raise ValueError("a basic block must contain at least 1 instruction")

    @property
    def size(self) -> int:
        """Total instructions per execution of the block."""
        return self.int_alu + self.fp_alu + self.loads + self.stores + self.branches

    @property
    def mem_ops(self) -> int:
        """Memory operations (loads + stores) per execution."""
        return self.loads + self.stores

    def count(self, op: OpClass) -> int:
        """The number of instructions of class *op*."""
        return (
            self.int_alu,
            self.fp_alu,
            self.loads,
            self.stores,
            self.branches,
        )[int(op)]

    def scaled(self, factor: float) -> "InstructionMix":
        """A mix rescaled by *factor* (sizes rounded, minimum 1 total).

        Used by the linker to model recompilation: an unoptimized build of
        the same source block contains more instructions.
        """
        int_alu = max(0, round(self.int_alu * factor))
        fp_alu = max(0, round(self.fp_alu * factor))
        loads = max(0, round(self.loads * factor))
        stores = max(0, round(self.stores * factor))
        if int_alu + fp_alu + loads + stores + self.branches == 0:
            int_alu = 1  # a source statement never compiles to nothing
        return InstructionMix(
            int_alu=int_alu,
            fp_alu=fp_alu,
            loads=loads,
            stores=stores,
            branches=self.branches,
        )


def mix_of(
    size: int,
    loads: int = 0,
    stores: int = 0,
    branches: int = 0,
    fp_fraction: float = 0.0,
) -> InstructionMix:
    """Build a mix from a total *size* and explicit memory/branch counts.

    Remaining instructions are split between integer and floating-point ALU
    ops according to *fp_fraction*.
    """
    if size < 1:
        raise ValueError("block size must be >= 1")
    rest = size - loads - stores - branches
    if rest < 0:
        raise ValueError(
            f"loads+stores+branches ({loads + stores + branches}) exceed size ({size})"
        )
    fp = round(rest * fp_fraction)
    return InstructionMix(
        int_alu=rest - fp,
        fp_alu=fp,
        loads=loads,
        stores=stores,
        branches=branches,
    )
