"""Fluent builder for constructing IR programs.

Workloads (``repro.workloads``) describe their call/loop structure with
this DSL::

    b = ProgramBuilder("gzip", source_file="gzip.c")
    with b.proc("main"):
        b.code(20, loads=4, mem=b.seq("input", footprint=1 << 20))
        with b.loop("files", trips="num_files"):
            b.call("compress")
    with b.proc("compress"):
        ...
    program = b.build()

The builder takes care of the binary-level details the analyses depend on:
block ids, layout offsets (so loop regions nest in the address space and
back-edges are backwards branches), terminators, and monotonically
increasing source locations.
"""

from __future__ import annotations

import contextlib
from typing import Iterator, List, Optional, Sequence, Union

from repro.ir.instructions import InstructionMix, mix_of
from repro.ir.program import (
    BasicBlock,
    BlockStmt,
    CallStmt,
    IfStmt,
    LoopStmt,
    MemPattern,
    MemSpec,
    ParamExpr,
    Procedure,
    Program,
    SourceLoc,
    Stmt,
    SwitchStmt,
    Terminator,
    TermKind,
)
from repro.ir.trips import TripCount, as_prob, as_trips

#: Instructions in compiler-generated header/latch/cond/call-site blocks.
GLUE_BLOCK_SIZE = 2


class BuildError(Exception):
    """Raised on misuse of the builder DSL."""


class _ProcContext:
    """Mutable state while building one procedure."""

    def __init__(self, name: str, source: SourceLoc):
        self.name = name
        self.source = source
        self.blocks: List[BasicBlock] = []
        self.next_offset = 0
        self.stmt_stack: List[List[Stmt]] = [[]]

    @property
    def current_stmts(self) -> List[Stmt]:
        return self.stmt_stack[-1]


class ProgramBuilder:
    """Builds a :class:`~repro.ir.program.Program` procedure by procedure."""

    def __init__(self, name: str, source_file: Optional[str] = None, entry: str = "main"):
        self.name = name
        self.source_file = source_file or f"{name}.c"
        self.entry = entry
        self._procs: List[Procedure] = []
        self._proc_names: set = set()
        self._cur: Optional[_ProcContext] = None
        self._next_block_id = 0
        self._next_proc_id = 0
        self._line = 0
        self._last_if: Optional[IfStmt] = None

    # -- source locations ----------------------------------------------------

    def _next_loc(self) -> SourceLoc:
        self._line += 1
        return SourceLoc(self.source_file, self._line)

    # -- memory spec helpers ---------------------------------------------------

    @staticmethod
    def seq(region: str, footprint: Union[int, ParamExpr] = 1 << 20, stride: int = 8) -> MemSpec:
        """Streaming accesses through *region* (arrays walked in order)."""
        return MemSpec(MemPattern.SEQ, region, footprint, stride)

    @staticmethod
    def wset(region: str, footprint: Union[int, ParamExpr] = 1 << 16) -> MemSpec:
        """Random accesses within a working set of *footprint* bytes."""
        return MemSpec(MemPattern.WSET, region, footprint)

    @staticmethod
    def chase(region: str, footprint: Union[int, ParamExpr] = 1 << 20) -> MemSpec:
        """Pointer-chasing walk over *footprint* bytes (one line per hop)."""
        return MemSpec(MemPattern.CHASE, region, footprint, stride=64)

    @staticmethod
    def stack(footprint: int = 2048) -> MemSpec:
        """Hot, tiny stack-frame accesses (nearly always cache hits)."""
        return MemSpec(MemPattern.STACK, "stack", footprint)

    # -- procedure scope -------------------------------------------------------

    @contextlib.contextmanager
    def proc(self, name: str) -> Iterator["ProgramBuilder"]:
        """Open a procedure scope; statements inside define its body."""
        if self._cur is not None:
            raise BuildError("procedures cannot be nested; close the previous proc")
        if name in self._proc_names:
            raise BuildError(f"duplicate procedure {name!r}")
        self._cur = _ProcContext(name, self._next_loc())
        try:
            yield self
        finally:
            ctx = self._cur
            self._cur = None
            if len(ctx.stmt_stack) != 1:
                raise BuildError(f"unclosed nested scope in procedure {name!r}")
            if not ctx.blocks:
                raise BuildError(f"procedure {name!r} has no code")
            self._proc_names.add(name)
            self._procs.append(
                Procedure(
                    name=name,
                    proc_id=self._next_proc_id,
                    blocks=ctx.blocks,
                    body=ctx.stmt_stack[0],
                    source=ctx.source,
                )
            )
            self._next_proc_id += 1

    def _require_proc(self) -> _ProcContext:
        if self._cur is None:
            raise BuildError("this operation is only valid inside a proc scope")
        return self._cur

    def _new_block(
        self,
        mix: InstructionMix,
        cpi: float,
        mem: Optional[MemSpec],
        label: Optional[str],
        terminator: Terminator,
        source: Optional[SourceLoc] = None,
    ) -> BasicBlock:
        ctx = self._cur
        assert ctx is not None
        block = BasicBlock(
            block_id=self._next_block_id,
            label=label or f"bb{self._next_block_id}",
            proc_name=ctx.name,
            offset=ctx.next_offset,
            mix=mix,
            base_cpi=cpi,
            source=source or self._next_loc(),
            mem=mem,
            terminator=terminator,
        )
        self._next_block_id += 1
        ctx.next_offset += mix.size
        ctx.blocks.append(block)
        return block

    # -- statements --------------------------------------------------------

    def code(
        self,
        size: int,
        loads: int = 0,
        stores: int = 0,
        branches: int = 0,
        fp: float = 0.0,
        cpi: float = 1.0,
        mem: Optional[MemSpec] = None,
        label: Optional[str] = None,
    ) -> BasicBlock:
        """Append a straight-line block of *size* instructions."""
        ctx = self._require_proc()
        self._last_if = None
        if mem is None and (loads or stores):
            mem = self.stack()
        block = self._new_block(
            mix_of(size, loads=loads, stores=stores, branches=branches, fp_fraction=fp),
            cpi,
            mem,
            label,
            Terminator(TermKind.FALLTHROUGH),
        )
        ctx.current_stmts.append(BlockStmt(block))
        return block

    def call(self, callee: str, label: Optional[str] = None) -> None:
        """Append a call site (a tiny block ending in a call instruction)."""
        ctx = self._require_proc()
        self._last_if = None
        loc = self._next_loc()
        site = self._new_block(
            mix_of(GLUE_BLOCK_SIZE),
            1.0,
            None,
            label or f"call_{callee}",
            Terminator(TermKind.CALL),
            source=loc,
        )
        ctx.current_stmts.append(CallStmt(site_block=site, callee=callee, source=loc))

    @contextlib.contextmanager
    def loop(
        self,
        label: str,
        trips: Union[TripCount, int, str],
        cpi: float = 1.0,
    ) -> Iterator["ProgramBuilder"]:
        """Open a loop scope.  The loop is a do-while: *trips* iterations of
        header -> body -> latch, with the latch's backwards branch forming
        the discoverable back-edge."""
        ctx = self._require_proc()
        self._last_if = None
        loc = self._next_loc()
        header = self._new_block(
            mix_of(GLUE_BLOCK_SIZE, branches=1),
            cpi,
            None,
            f"{label}.header",
            Terminator(TermKind.FALLTHROUGH),
            source=loc,
        )
        ctx.stmt_stack.append([])
        try:
            yield self
        finally:
            body = ctx.stmt_stack.pop()
            latch = self._new_block(
                mix_of(GLUE_BLOCK_SIZE, branches=1),
                cpi,
                None,
                f"{label}.latch",
                Terminator(TermKind.COND_BRANCH, target_offset=header.offset),
                source=loc,
            )
            ctx.current_stmts.append(
                LoopStmt(
                    label=label,
                    header_block=header,
                    body=body,
                    latch_block=latch,
                    trips=as_trips(trips),
                    source=loc,
                )
            )

    @contextlib.contextmanager
    def if_(self, prob: Union[float, str]) -> Iterator["ProgramBuilder"]:
        """Open the then-branch of a conditional taken with probability
        *prob*; optionally followed by :meth:`else_`."""
        ctx = self._require_proc()
        loc = self._next_loc()
        cond = self._new_block(
            mix_of(GLUE_BLOCK_SIZE, branches=1),
            1.0,
            None,
            "if.cond",
            Terminator(TermKind.COND_BRANCH, target_offset=None),
            source=loc,
        )
        ctx.stmt_stack.append([])
        try:
            yield self
        finally:
            then_body = ctx.stmt_stack.pop()
            stmt = IfStmt(
                cond_block=cond,
                prob=as_prob(prob),
                then_body=then_body,
                else_body=[],
                source=loc,
            )
            ctx.current_stmts.append(stmt)
            self._last_if = stmt

    @contextlib.contextmanager
    def else_(self) -> Iterator["ProgramBuilder"]:
        """Open the else-branch of the immediately preceding :meth:`if_`."""
        ctx = self._require_proc()
        stmt = self._last_if
        if stmt is None or not ctx.current_stmts or ctx.current_stmts[-1] is not stmt:
            raise BuildError("else_() must immediately follow an if_() block")
        ctx.stmt_stack.append([])
        try:
            yield self
        finally:
            stmt.else_body.extend(ctx.stmt_stack.pop())
            self._last_if = None

    @contextlib.contextmanager
    def switch(self, weights: Sequence[float]) -> Iterator["_SwitchScope"]:
        """Open an n-way weighted dispatch; add alternatives with
        ``case()`` on the yielded scope object."""
        ctx = self._require_proc()
        self._last_if = None
        loc = self._next_loc()
        cond = self._new_block(
            mix_of(GLUE_BLOCK_SIZE, branches=1),
            1.0,
            None,
            "switch.cond",
            Terminator(TermKind.COND_BRANCH, target_offset=None),
            source=loc,
        )
        scope = _SwitchScope(self, ctx, len(weights))
        try:
            yield scope
        finally:
            if len(scope.cases) != len(weights):
                raise BuildError(
                    f"switch declared {len(weights)} weights but "
                    f"{len(scope.cases)} cases were provided"
                )
            ctx.current_stmts.append(
                SwitchStmt(
                    cond_block=cond,
                    weights=tuple(float(w) for w in weights),
                    cases=scope.cases,
                    source=loc,
                )
            )

    # -- finalization --------------------------------------------------------

    def build(self) -> Program:
        """Validate scopes are closed and produce the laid-out Program."""
        if self._cur is not None:
            raise BuildError("unclosed proc scope")
        return Program(self.name, self._procs, entry=self.entry)


class _SwitchScope:
    """Helper yielded by :meth:`ProgramBuilder.switch`."""

    def __init__(self, builder: ProgramBuilder, ctx: _ProcContext, n: int):
        self._builder = builder
        self._ctx = ctx
        self._n = n
        self.cases: List[List[Stmt]] = []

    @contextlib.contextmanager
    def case(self) -> Iterator[ProgramBuilder]:
        if len(self.cases) >= self._n:
            raise BuildError("more cases than switch weights")
        self._ctx.stmt_stack.append([])
        try:
            yield self._builder
        finally:
            self.cases.append(self._ctx.stmt_stack.pop())
