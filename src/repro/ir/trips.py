"""Trip-count and probability models for loops and branches.

Loop trip counts and branch outcomes are where a program's run-to-run and
input-to-input *variability* comes from — the quantity the call-loop
graph's per-edge CoV measures.  Each model is sampled with the run's
deterministic RNG and the input's parameter dictionary, so the same
(program, input, seed) triple always produces the same execution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping, Optional, Tuple

import numpy as np


class TripCount:
    """Base class: a sampled number of loop iterations (always >= 0)."""

    def sample(self, params: Mapping[str, float], rng: np.random.Generator) -> int:
        raise NotImplementedError

    def mean(self, params: Mapping[str, float]) -> float:
        """Expected trip count — used by IR validation to size programs."""
        raise NotImplementedError


@dataclass(frozen=True)
class FixedTrips(TripCount):
    """Always exactly *n* iterations (a compile-time-constant loop bound)."""

    n: int

    def __post_init__(self) -> None:
        if self.n < 0:
            raise ValueError("trip count must be >= 0")

    def sample(self, params: Mapping[str, float], rng: np.random.Generator) -> int:
        return self.n

    def mean(self, params: Mapping[str, float]) -> float:
        return float(self.n)


@dataclass(frozen=True)
class ParamTrips(TripCount):
    """``round(params[name] * scale + offset)`` — an input-dependent bound."""

    name: str
    scale: float = 1.0
    offset: float = 0.0

    def sample(self, params: Mapping[str, float], rng: np.random.Generator) -> int:
        if self.name not in params:
            raise KeyError(f"input parameter {self.name!r} not provided")
        return max(0, round(params[self.name] * self.scale + self.offset))

    def mean(self, params: Mapping[str, float]) -> float:
        return max(0.0, params.get(self.name, 0.0) * self.scale + self.offset)


@dataclass(frozen=True)
class NormalTrips(TripCount):
    """Normally distributed trips: data-dependent bounds with known CoV.

    *mean_trips* may be a parameter name (string) or a number; *cov* is the
    coefficient of variation of the distribution.
    """

    mean_trips: object  # float or parameter-name str
    cov: float = 0.1
    minimum: int = 1

    def _mean(self, params: Mapping[str, float]) -> float:
        if isinstance(self.mean_trips, str):
            return float(params[self.mean_trips])
        return float(self.mean_trips)

    def sample(self, params: Mapping[str, float], rng: np.random.Generator) -> int:
        mu = self._mean(params)
        value = rng.normal(mu, abs(mu) * self.cov)
        return max(self.minimum, round(value))

    def mean(self, params: Mapping[str, float]) -> float:
        return max(float(self.minimum), self._mean(params))


@dataclass(frozen=True)
class UniformTrips(TripCount):
    """Uniformly distributed trips in [lo, hi] inclusive."""

    lo: int
    hi: int

    def __post_init__(self) -> None:
        if not 0 <= self.lo <= self.hi:
            raise ValueError("need 0 <= lo <= hi")

    def sample(self, params: Mapping[str, float], rng: np.random.Generator) -> int:
        return int(rng.integers(self.lo, self.hi + 1))

    def mean(self, params: Mapping[str, float]) -> float:
        return (self.lo + self.hi) / 2.0


@dataclass(frozen=True)
class ChoiceTrips(TripCount):
    """Trips drawn from a discrete distribution (bimodal loops, etc.)."""

    values: Tuple[int, ...]
    weights: Optional[Tuple[float, ...]] = None

    def __post_init__(self) -> None:
        if not self.values:
            raise ValueError("need at least one value")
        if self.weights is not None and len(self.weights) != len(self.values):
            raise ValueError("weights and values must have equal length")

    def _probs(self) -> np.ndarray:
        if self.weights is None:
            return np.full(len(self.values), 1.0 / len(self.values))
        w = np.asarray(self.weights, dtype=float)
        return w / w.sum()

    def sample(self, params: Mapping[str, float], rng: np.random.Generator) -> int:
        return int(rng.choice(self.values, p=self._probs()))

    def mean(self, params: Mapping[str, float]) -> float:
        return float(np.dot(self.values, self._probs()))


@dataclass(frozen=True)
class LambdaTrips(TripCount):
    """Escape hatch: trips computed by a user function of (params, rng)."""

    fn: Callable[[Mapping[str, float], np.random.Generator], int]
    expected: float = 1.0

    def sample(self, params: Mapping[str, float], rng: np.random.Generator) -> int:
        return max(0, int(self.fn(params, rng)))

    def mean(self, params: Mapping[str, float]) -> float:
        return self.expected


class Prob:
    """Base class: a branch taken-probability in [0, 1]."""

    def value(self, params: Mapping[str, float]) -> float:
        raise NotImplementedError


@dataclass(frozen=True)
class FixedProb(Prob):
    p: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.p <= 1.0:
            raise ValueError("probability must be in [0, 1]")

    def value(self, params: Mapping[str, float]) -> float:
        return self.p


@dataclass(frozen=True)
class ParamProb(Prob):
    """Probability read from an input parameter, clamped to [0, 1]."""

    name: str
    scale: float = 1.0

    def value(self, params: Mapping[str, float]) -> float:
        return min(1.0, max(0.0, params.get(self.name, 0.0) * self.scale))


def as_trips(value: object) -> TripCount:
    """Coerce ints and parameter names into TripCount objects."""
    if isinstance(value, TripCount):
        return value
    if isinstance(value, int):
        return FixedTrips(value)
    if isinstance(value, str):
        return ParamTrips(value)
    raise TypeError(f"cannot interpret {value!r} as a trip count")


def as_prob(value: object) -> Prob:
    """Coerce floats and parameter names into Prob objects."""
    if isinstance(value, Prob):
        return value
    if isinstance(value, (int, float)):
        return FixedProb(float(value))
    if isinstance(value, str):
        return ParamProb(value)
    raise TypeError(f"cannot interpret {value!r} as a probability")
