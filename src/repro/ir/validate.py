"""Static validation of IR programs.

Catches workload-definition mistakes early: dangling call targets, broken
layout invariants (non-monotone offsets would make back-edge discovery
meaningless), malformed loops, and unreachable entry points.  Also provides
a static size estimate used to sanity-check workload scale.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Set

from repro.ir.program import (
    BlockStmt,
    CallStmt,
    IfStmt,
    LoopStmt,
    Procedure,
    Program,
    Stmt,
    SwitchStmt,
    TermKind,
)


class ValidationError(Exception):
    """Raised when a program violates an IR invariant."""


def _walk(stmts: List[Stmt]):
    """Yield every statement in a body, depth-first."""
    for stmt in stmts:
        yield stmt
        if isinstance(stmt, LoopStmt):
            yield from _walk(stmt.body)
        elif isinstance(stmt, IfStmt):
            yield from _walk(stmt.then_body)
            yield from _walk(stmt.else_body)
        elif isinstance(stmt, SwitchStmt):
            for case in stmt.cases:
                yield from _walk(case)


def _check_procedure(program: Program, proc: Procedure) -> None:
    # Layout: offsets strictly increasing, blocks contiguous in address order.
    prev_end = -1
    for block in proc.blocks:
        if block.offset <= prev_end - 1 and prev_end >= 0:
            raise ValidationError(
                f"{proc.name}: block {block.label} offset {block.offset} "
                f"overlaps previous block"
            )
        if block.address < 0:
            raise ValidationError(f"{proc.name}/{block.label}: address unassigned")
        prev_end = block.offset + block.size

    for stmt in _walk(proc.body):
        if isinstance(stmt, CallStmt):
            if stmt.callee not in program.procedures:
                raise ValidationError(
                    f"{proc.name}: call to undefined procedure {stmt.callee!r}"
                )
            if stmt.site_block.terminator.kind != TermKind.CALL:
                raise ValidationError(
                    f"{proc.name}: call site {stmt.site_block.label} lacks CALL "
                    f"terminator"
                )
        elif isinstance(stmt, LoopStmt):
            term = stmt.latch_block.terminator
            if term.kind != TermKind.COND_BRANCH or term.target_offset is None:
                raise ValidationError(
                    f"{proc.name}/{stmt.label}: latch lacks a branch terminator"
                )
            if term.target_offset != stmt.header_block.offset:
                raise ValidationError(
                    f"{proc.name}/{stmt.label}: latch target does not hit header"
                )
            if stmt.latch_block.offset <= stmt.header_block.offset:
                raise ValidationError(
                    f"{proc.name}/{stmt.label}: latch must be laid out after header "
                    f"(back-edge must be a *backwards* branch)"
                )


def _call_graph(program: Program) -> Dict[str, Set[str]]:
    graph: Dict[str, Set[str]] = {}
    for proc in program.procedures.values():
        callees = {
            stmt.callee for stmt in _walk(proc.body) if isinstance(stmt, CallStmt)
        }
        graph[proc.name] = callees
    return graph


def _reachable(program: Program) -> Set[str]:
    graph = _call_graph(program)
    seen: Set[str] = set()
    work = [program.entry]
    while work:
        name = work.pop()
        if name in seen:
            continue
        seen.add(name)
        work.extend(graph.get(name, ()))
    return seen


def validate_program(program: Program, allow_unreachable: bool = False) -> None:
    """Raise :class:`ValidationError` if *program* breaks an invariant."""
    for proc in program.procedures.values():
        _check_procedure(program, proc)
    reachable = _reachable(program)
    if not allow_unreachable:
        dead = set(program.procedures) - reachable
        if dead:
            raise ValidationError(f"unreachable procedures: {sorted(dead)}")


def has_recursion(program: Program) -> bool:
    """True if the static call graph contains a cycle."""
    graph = _call_graph(program)
    WHITE, GRAY, BLACK = 0, 1, 2
    color = {name: WHITE for name in graph}

    def visit(name: str) -> bool:
        color[name] = GRAY
        for callee in graph.get(name, ()):
            if color.get(callee) == GRAY:
                return True
            if color.get(callee) == WHITE and visit(callee):
                return True
        color[name] = BLACK
        return False

    return any(color[name] == WHITE and visit(name) for name in list(graph))


def estimate_dynamic_instructions(
    program: Program, params: Mapping[str, float]
) -> float:
    """Static estimate of dynamic instructions for an input.

    Uses expected trip counts and branch probabilities; recursion is
    approximated by a small constant depth.  Intended for sizing sanity
    checks, not exact accounting.
    """
    memo: Dict[str, float] = {}
    active: Set[str] = set()

    def body_cost(stmts: List[Stmt]) -> float:
        total = 0.0
        for stmt in stmts:
            if isinstance(stmt, BlockStmt):
                total += stmt.block.size
            elif isinstance(stmt, CallStmt):
                total += stmt.site_block.size + proc_cost(stmt.callee)
            elif isinstance(stmt, LoopStmt):
                trips = stmt.trips.mean(params)
                per_iter = (
                    stmt.header_block.size
                    + body_cost(stmt.body)
                    + stmt.latch_block.size
                )
                total += trips * per_iter
            elif isinstance(stmt, IfStmt):
                p = stmt.prob.value(params)
                total += stmt.cond_block.size
                total += p * body_cost(stmt.then_body)
                total += (1 - p) * body_cost(stmt.else_body)
            elif isinstance(stmt, SwitchStmt):
                total += stmt.cond_block.size
                weights = stmt.weights
                norm = sum(weights) or 1.0
                for w, case in zip(weights, stmt.cases):
                    total += (w / norm) * body_cost(case)
        return total

    def proc_cost(name: str) -> float:
        if name in memo:
            return memo[name]
        if name in active:
            # Recursive cycle: approximate the remaining recursion as a
            # small constant so the estimate terminates.
            return 100.0
        active.add(name)
        cost = body_cost(program.procedures[name].body)
        active.discard(name)
        memo[name] = cost
        return cost

    return proc_cost(program.entry)
