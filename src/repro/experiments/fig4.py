"""Figure 4 — cross-ISA phase markers (gzip-graphic).

Markers are selected from the base ("OSF Alpha") binary's call-loop
profile, mapped back to source level, and applied to the "Linux x86"
build of the same source; no call-loop graph is built for the target
binary.  The experiment reports (a) the full marker-sequence identity
between the two binaries and (b) the time-varying miss-rate alignment on
the target — "the markers detect the same high-level patterns in the x86
binary".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.analysis.timevarying import TimeVaryingSeries, time_varying_series
from repro.callloop.crossbinary import map_markers, marker_trace, traces_identical
from repro.experiments.runner import Runner, default_runner
from repro.ir.linker import X86_LINUX
from repro.util.tables import Table

SPEC = "gzip/graphic"


@dataclass
class Fig4Result:
    mapped_markers: int
    unmapped_markers: int
    sequence_identical: bool
    alpha_firings: int
    x86_firings: int
    x86_alignment: float
    x86_series: TimeVaryingSeries


def run_analysis(runner: Optional[Runner] = None) -> Fig4Result:
    runner = runner or default_runner()
    key = ("fig4", SPEC)
    if key in runner.memo:
        return runner.memo[key]
    markers = runner.markers(SPEC, "nolimit-self")
    x86 = runner.program(SPEC, X86_LINUX)
    report = map_markers(markers, x86)
    ref_input = runner.input_for(SPEC, "ref")
    alpha_firings = marker_trace(
        runner.program(SPEC), ref_input, markers, trace=runner.trace(SPEC)
    )
    x86_trace = runner.trace(SPEC, variant=X86_LINUX)
    x86_firings = marker_trace(x86, ref_input, report.markers, trace=x86_trace)
    x86_series = time_varying_series(
        x86,
        ref_input,
        x86_trace,
        report.markers,
        interval_length=runner.config.plot_interval,
    )
    result = Fig4Result(
        mapped_markers=len(report.mapped),
        unmapped_markers=len(report.unmapped),
        sequence_identical=traces_identical(alpha_firings, x86_firings),
        alpha_firings=len(alpha_firings),
        x86_firings=len(x86_firings),
        x86_alignment=x86_series.transition_alignment(),
        x86_series=x86_series,
    )
    runner.memo[key] = result
    return result


def run(runner: Optional[Runner] = None) -> Table:
    r = run_analysis(runner)
    table = Table(
        f"Figure 4: {SPEC} markers selected on alpha-base, applied to x86-linux",
        ["quantity", "value"],
    )
    table.add_row(["markers mapped to x86 via source", r.mapped_markers])
    table.add_row(["markers compiled away (unmapped)", r.unmapped_markers])
    table.add_row(["marker firings on alpha", r.alpha_firings])
    table.add_row(["marker firings on x86", r.x86_firings])
    table.add_row(["firing sequences identical", r.sequence_identical])
    table.add_row(
        ["x86 marker/transition alignment", f"{r.x86_alignment:.0%}"]
    )
    return table


if __name__ == "__main__":  # pragma: no cover
    print(run().render())
