"""Figure 10 — adaptive data-cache reconfiguration, average cache size.

The Section 6.1 experiment: a 512-set, 64-byte-block data cache that
reconfigures between 1 and 8 ways (32KB..256KB) at phase boundaries with
*no allowed increase in cache miss rate*.  Compared approaches:

* **BBV** — idealized SimPoint phases over fixed intervals (oracular
  next-phase knowledge);
* **SPM-Self / SPM-Cross** — our software phase markers selected on the
  reference / train input;
* **Procs-Cross** — markers restricted to procedures;
* **Reuse Distance** — the reimplemented Shen et al. locality-phase
  markers (selected on the train input);
* **Best Fixed Size** — the smallest fixed configuration with the
  maximum hit rate.

The paper's gcc/vortex postscript is included: the reuse-distance method
finds no structure there, while SPM still beats the best fixed size.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.cache.reconfig import ReconfigResult, adaptive_average_size, best_fixed_ways
from repro.experiments.runner import Runner, default_runner
from repro.intervals.metrics import attach_metrics
from repro.reuse.phases import select_reuse_markers, split_at_block_markers
from repro.simpoint.simpoint import run_simpoint_on_intervals
from repro.util.tables import Table, arithmetic_mean
from repro.workloads import CACHE_EVALUATION_SET

APPROACHES = (
    "BBV",
    "SPM-Self",
    "Procs-Cross",
    "Reuse Distance",
    "SPM-Cross",
    "Best Fixed Size",
)

#: the gcc/vortex extension discussed in the Section 6.1 text
IRREGULAR_EXTENSION = ["gcc/166", "vortex/one"]

_WAY_KB = 32.0  # 512 sets * 64B per way

#: "no allowed increase in cache miss rate", read as miss-rate equality at
#: practical precision — a strict zero would let a single stray boundary
#: miss force the full configuration
TOLERANCE = 0.002


@dataclass
class CacheSizeRow:
    spec: str
    sizes_kb: Dict[str, Optional[float]] = field(default_factory=dict)
    miss_increase: Dict[str, float] = field(default_factory=dict)
    reuse_failure: str = ""


def _adaptive(intervals, profile) -> ReconfigResult:
    return adaptive_average_size(
        intervals.phase_ids,
        intervals.lengths,
        profile.accesses,
        profile.hits,
        tolerance=TOLERANCE,
    )


def _reuse_result(runner: Runner, spec: str):
    """Shen-style markers: selected on train, applied to the ref run."""
    train_trace = runner.trace(spec, "train")
    detection = select_reuse_markers(train_trace, runner.memory(spec, "train"))
    if not detection.structure_found:
        return None, detection.reason
    ref_trace = runner.trace(spec)
    intervals = split_at_block_markers(
        ref_trace,
        detection.marker_blocks,
        runner.program(spec).name,
        min_interval=runner.config.ilower,
    )
    profile = attach_metrics(
        intervals,
        ref_trace,
        runner.program(spec),
        runner.input_for(spec, "ref"),
        trace_metrics=runner.trace_metrics(spec),
    )
    return _adaptive(intervals, profile), ""


def row_for(runner: Runner, spec: str) -> CacheSizeRow:
    key = ("fig10", spec)
    if key in runner.memo:
        return runner.memo[key]
    row = CacheSizeRow(spec=spec)

    # BBV: idealized SimPoint phases on fixed intervals
    fixed, fixed_profile = runner.fixed_intervals(spec, runner.config.bbv_interval)
    sp = run_simpoint_on_intervals(
        fixed, runner.config.simpoint_options(runner.config.bbv_k_max), weighted=False
    )
    classified = fixed.with_phase_ids(sp.phase_ids)
    result = _adaptive(classified, fixed_profile)
    row.sizes_kb["BBV"] = result.avg_size_kb
    row.miss_increase["BBV"] = result.miss_increase

    for label, variant in (
        ("SPM-Self", "nolimit-self"),
        ("SPM-Cross", "nolimit-cross"),
        ("Procs-Cross", "procs-cross"),
    ):
        intervals, profile = runner.vli_intervals(spec, variant)
        result = _adaptive(intervals, profile)
        row.sizes_kb[label] = result.avg_size_kb
        row.miss_increase[label] = result.miss_increase

    reuse, reason = _reuse_result(runner, spec)
    if reuse is None:
        row.sizes_kb["Reuse Distance"] = None
        row.reuse_failure = reason
    else:
        row.sizes_kb["Reuse Distance"] = reuse.avg_size_kb
        row.miss_increase["Reuse Distance"] = reuse.miss_increase

    row.sizes_kb["Best Fixed Size"] = (
        best_fixed_ways(fixed_profile.accesses, fixed_profile.hits, TOLERANCE)
        * _WAY_KB
    )
    runner.memo[key] = row
    return row


def run(
    runner: Optional[Runner] = None,
    specs: List[str] = CACHE_EVALUATION_SET,
    include_irregular: bool = True,
) -> Table:
    """Regenerate Figure 10 (average cache size in KB; '-' marks the
    reuse-distance method finding no structure)."""
    runner = runner or default_runner()
    table = Table(
        "Figure 10: average data cache size (KB), no allowed miss-rate increase",
        ["workload"] + list(APPROACHES),
        digits=1,
    )
    sums = {a: [] for a in APPROACHES}
    for spec in specs:
        row = row_for(runner, spec)
        cells = [spec]
        for approach in APPROACHES:
            value = row.sizes_kb.get(approach)
            if value is not None:
                sums[approach].append(value)
            cells.append(value)
        table.add_row(cells)
    table.add_row(
        ["avg"] + [arithmetic_mean(sums[a]) if sums[a] else None for a in APPROACHES]
    )
    if include_irregular:
        table.add_section("irregular programs (Section 6.1 text)")
        for spec in IRREGULAR_EXTENSION:
            row = row_for(runner, spec)
            table.add_row(
                [spec] + [row.sizes_kb.get(a) for a in APPROACHES]
            )
    return table


def run_miss_increase(
    runner: Optional[Runner] = None, specs: List[str] = CACHE_EVALUATION_SET
) -> Table:
    """Companion table: the relative miss increase each adaptive approach
    actually incurred (the protocol's generalization error; the marker
    approaches should sit at ~0)."""
    runner = runner or default_runner()
    adaptive = [a for a in APPROACHES if a != "Best Fixed Size"]
    table = Table(
        "Figure 10 companion: relative DL1 miss increase vs always-largest (%)",
        ["workload"] + adaptive,
        digits=3,
    )
    for spec in specs:
        row = row_for(runner, spec)
        table.add_row(
            [spec]
            + [
                row.miss_increase.get(a) and row.miss_increase[a] * 100.0
                for a in adaptive
            ]
        )
    return table


if __name__ == "__main__":  # pragma: no cover
    print(run().render())
    print()
    print(run_miss_increase().render())
