"""Experiment harness: one module per table/figure of the paper.

:mod:`repro.experiments.config` defines the paper's parameters and the
1/1000-scale values this reproduction runs at; :mod:`repro.experiments.runner`
caches the expensive pipeline stages (traces, graphs, marker sets,
interval metrics) so the figures share work.  Each ``figN`` module
regenerates the corresponding figure's rows; the ``benchmarks/``
directory wraps them in pytest-benchmark entries.
"""

from repro.experiments.config import PAPER, SCALED, ExperimentConfig
from repro.experiments.runner import Runner, default_runner

__all__ = ["PAPER", "SCALED", "ExperimentConfig", "Runner", "default_runner"]
