"""Shared machinery of Figures 7, 8, and 9.

One matrix of (workload x approach) classifications, summarized three
ways: average interval length (Fig. 7), number of phases (Fig. 8), and
CoV of CPI per phase (Fig. 9).  Approaches follow the paper's legend:

* ``BBV`` — fixed 10M-scaled intervals classified by SimPoint (the
  idealized offline baseline; cannot be applied across inputs);
* ``procs no limit cross/self`` — marker selection restricted to
  procedure edges (the Huang et al.-style configuration);
* ``no limit cross/self`` — the full algorithm; *cross* selects markers
  on the train input, *self* on the reference input;
* ``limit 10-200m`` — the SimPoint variant with a maximum interval size.

All classifications are *evaluated* on the reference input.
"""

from __future__ import annotations

from typing import Dict, List

from repro.analysis.classify import ApproachSummary, summarize
from repro.analysis.cov import whole_program_cov
from repro.experiments.runner import Runner
from repro.simpoint.simpoint import run_simpoint_on_intervals
from repro.workloads import SPEC_EVALUATION_SET

APPROACHES = (
    "BBV",
    "procs no limit cross",
    "procs no limit self",
    "no limit cross",
    "no limit self",
    "limit 10-200m",
)

_MARKER_VARIANT = {
    "procs no limit cross": "procs-cross",
    "procs no limit self": "procs-self",
    "no limit cross": "nolimit-cross",
    "no limit self": "nolimit-self",
    "limit 10-200m": "limit",
}


def classify(runner: Runner, spec: str, approach: str):
    """The reference-input classification of one (workload, approach)."""
    if approach == "BBV":
        intervals, _ = runner.fixed_intervals(spec, runner.config.bbv_interval)
        result = run_simpoint_on_intervals(
            intervals,
            runner.config.simpoint_options(runner.config.bbv_k_max),
            weighted=False,
        )
        return intervals.with_phase_ids(result.phase_ids)
    variant = _MARKER_VARIANT[approach]
    intervals, _ = runner.vli_intervals(spec, variant)
    return intervals


def behavior_matrix(
    runner: Runner, specs: List[str] = SPEC_EVALUATION_SET
) -> Dict[str, Dict[str, ApproachSummary]]:
    """All (workload, approach) summaries for Figures 7-9 (memoized)."""
    key = ("behavior_matrix", tuple(specs))
    if key in runner.memo:
        return runner.memo[key]
    matrix: Dict[str, Dict[str, ApproachSummary]] = {}
    for spec in specs:
        row: Dict[str, ApproachSummary] = {}
        for approach in APPROACHES:
            intervals = classify(runner, spec, approach)
            row[approach] = summarize(spec, approach, intervals)
        matrix[spec] = row
    runner.memo[key] = matrix
    return matrix


def whole_program_baselines(
    runner: Runner, spec: str
) -> Dict[str, float]:
    """Figure 9's "whole program" CoV bars at the two baseline interval
    sizes (each run treated as one phase)."""
    out: Dict[str, float] = {}
    for label, length in runner.config.whole_program_intervals.items():
        intervals, _ = runner.fixed_intervals(spec, length)
        out[label] = whole_program_cov(intervals)
    return out
