"""Figures 5 and 6 — 3D BBV projections: fixed vs variable length
intervals (bzip2-graphic).

The paper shows the same random projection of bzip2's execution twice:
fixed 10M-scaled intervals scatter across the space (Fig. 5) while the
marker-defined VLIs form tight clouds (Fig. 6).  We reproduce both point
sets and quantify the visual claim with the residual-variance tightness
score (lower = tighter clustering).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.analysis.projection3d import ProjectionData, cluster_tightness, project_3d
from repro.experiments.runner import Runner, default_runner
from repro.util.tables import Table

SPEC = "bzip2/graphic"


@dataclass
class Fig56Result:
    fixed: ProjectionData
    vli: ProjectionData
    fixed_tightness: float
    vli_tightness: float

    @property
    def vli_is_tighter(self) -> bool:
        return self.vli_tightness < self.fixed_tightness


def run_analysis(runner: Optional[Runner] = None) -> Fig56Result:
    runner = runner or default_runner()
    key = ("fig56", SPEC)
    if key in runner.memo:
        return runner.memo[key]
    fixed_intervals, _ = runner.fixed_intervals(SPEC, runner.config.bbv_interval)
    vli_intervals, _ = runner.vli_intervals(SPEC, "limit")
    fixed = project_3d(fixed_intervals)
    vli = project_3d(vli_intervals)
    result = Fig56Result(
        fixed=fixed,
        vli=vli,
        fixed_tightness=cluster_tightness(fixed),
        vli_tightness=cluster_tightness(vli),
    )
    runner.memo[key] = result
    return result


def run(runner: Optional[Runner] = None) -> Table:
    r = run_analysis(runner)
    table = Table(
        f"Figures 5/6: 3D BBV projection tightness for {SPEC} "
        f"(residual variance after 8 centers; lower = tighter clouds)",
        ["partition", "intervals", "tightness"],
    )
    table.add_row(["fixed length (Fig. 5)", len(r.fixed), f"{r.fixed_tightness:.3e}"])
    table.add_row(
        ["phase-marker VLIs (Fig. 6)", len(r.vli), f"{r.vli_tightness:.3e}"]
    )
    ratio = r.fixed_tightness / r.vli_tightness if r.vli_tightness else float("inf")
    table.add_row(["VLI tighter than fixed", "", "yes" if r.vli_is_tighter else "no"])
    table.add_row(["tightness ratio (fixed / VLI)", "", f"{ratio:.0f}x"])
    return table


if __name__ == "__main__":  # pragma: no cover
    print(run().render())
