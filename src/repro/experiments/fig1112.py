"""Figures 11 and 12 — SimPoint with fixed intervals vs marker VLIs.

For each workload: fixed-length SimPoint at the three paper interval
sizes (SP_1M / SP_10M / SP_100M, scaled), and VLI SimPoint over the
limit-marker partition with 95% / 99% / 100% coverage filters.  Figure 11
reports the simulated instructions (sum of chosen simulation-point
lengths); Figure 12 the relative error of the CPI estimated from the
simulation points versus full-run CPI (perfect warmup — per-interval CPI
comes from the continuously warm run).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.experiments.runner import Runner, default_runner
from repro.simpoint.error import (
    estimate_metric,
    filter_by_coverage,
    relative_error,
    true_weighted_metric,
)
from repro.simpoint.simpoint import run_simpoint_on_intervals
from repro.util.tables import Table, arithmetic_mean
from repro.workloads import SPEC_EVALUATION_SET

FIXED_CONFIGS = ("SP_1M", "SP_10M", "SP_100M")
VLI_CONFIGS = ("VLI_95%", "VLI_99%", "VLI_100%")
ALL_CONFIGS = FIXED_CONFIGS + VLI_CONFIGS


@dataclass
class SimPointCell:
    simulated_instructions: int
    cpi_error: float
    num_points: int


def cells_for(runner: Runner, spec: str) -> Dict[str, SimPointCell]:
    key = ("fig1112", spec)
    if key in runner.memo:
        return runner.memo[key]
    out: Dict[str, SimPointCell] = {}

    for label in FIXED_CONFIGS:
        length = runner.config.fixed_intervals[label]
        k_max = runner.config.fixed_k_max[label]
        intervals, _ = runner.fixed_intervals(spec, length)
        result = run_simpoint_on_intervals(
            intervals, runner.config.simpoint_options(k_max), weighted=False
        )
        coverage = filter_by_coverage(result, intervals, 1.0)
        true_cpi = true_weighted_metric(intervals, intervals.cpis)
        estimate = estimate_metric(coverage, intervals.cpis)
        out[label] = SimPointCell(
            simulated_instructions=coverage.simulated_instructions,
            cpi_error=relative_error(estimate, true_cpi),
            num_points=len(coverage.sim_point_indices),
        )

    vli, _ = runner.vli_intervals(spec, "limit")
    vli_result = run_simpoint_on_intervals(
        vli, runner.config.simpoint_options(runner.config.vli_k_max), weighted=True
    )
    true_cpi = true_weighted_metric(vli, vli.cpis)
    for label, coverage_target in zip(VLI_CONFIGS, runner.config.coverages):
        coverage = filter_by_coverage(vli_result, vli, coverage_target)
        estimate = estimate_metric(coverage, vli.cpis)
        out[label] = SimPointCell(
            simulated_instructions=coverage.simulated_instructions,
            cpi_error=relative_error(estimate, true_cpi),
            num_points=len(coverage.sim_point_indices),
        )
    runner.memo[key] = out
    return out


def run_fig11(
    runner: Optional[Runner] = None, specs: List[str] = SPEC_EVALUATION_SET
) -> Table:
    """Figure 11: simulated instructions (thousands at the 1/1000 scale;
    the paper's axis is millions)."""
    runner = runner or default_runner()
    table = Table(
        "Figure 11: simulated instructions per SimPoint configuration (thousands, scaled)",
        ["workload"] + list(ALL_CONFIGS),
        digits=1,
    )
    sums = {c: [] for c in ALL_CONFIGS}
    for spec in specs:
        cells = cells_for(runner, spec)
        row = [spec]
        for config in ALL_CONFIGS:
            value = cells[config].simulated_instructions / 1e3
            sums[config].append(value)
            row.append(value)
        table.add_row(row)
    table.add_row(["avg"] + [arithmetic_mean(sums[c]) for c in ALL_CONFIGS])
    return table


def run_fig12(
    runner: Optional[Runner] = None, specs: List[str] = SPEC_EVALUATION_SET
) -> Table:
    """Figure 12: relative CPI error (%) per SimPoint configuration."""
    runner = runner or default_runner()
    table = Table(
        "Figure 12: estimated CPI relative error (%)",
        ["workload"] + list(ALL_CONFIGS),
        digits=2,
    )
    sums = {c: [] for c in ALL_CONFIGS}
    for spec in specs:
        cells = cells_for(runner, spec)
        row = [spec]
        for config in ALL_CONFIGS:
            value = cells[config].cpi_error * 100.0
            sums[config].append(value)
            row.append(value)
        table.add_row(row)
    table.add_row(["avg"] + [arithmetic_mean(sums[c]) for c in ALL_CONFIGS])
    return table


if __name__ == "__main__":  # pragma: no cover
    print(run_fig11().render())
    print()
    print(run_fig12().render())
