"""Figure 9 — coefficient of variation of CPI per phase, per approach."""

from __future__ import annotations

from typing import List, Optional

from repro.experiments.behavior import (
    APPROACHES,
    behavior_matrix,
    whole_program_baselines,
)
from repro.experiments.runner import Runner, default_runner
from repro.util.tables import Table, arithmetic_mean
from repro.workloads import SPEC_EVALUATION_SET

_BASELINES = ("100k whole program", "1m whole program")


def run(runner: Optional[Runner] = None, specs: List[str] = SPEC_EVALUATION_SET) -> Table:
    """Regenerate Figure 9's rows (CoV CPI as a percentage; the last two
    columns treat the whole program as a single phase)."""
    runner = runner or default_runner()
    matrix = behavior_matrix(runner, specs)
    columns = ["workload"] + list(APPROACHES) + list(_BASELINES)
    table = Table("Figure 9: CoV of CPI per phase (%)", columns, digits=2)
    sums = {c: [] for c in columns[1:]}
    for spec in specs:
        row = [spec]
        for approach in APPROACHES:
            value = matrix[spec][approach].cov_cpi * 100.0
            sums[approach].append(value)
            row.append(value)
        baselines = whole_program_baselines(runner, spec)
        for label, key in zip(_BASELINES, runner.config.whole_program_intervals):
            value = baselines[key] * 100.0
            sums[label].append(value)
            row.append(value)
        table.add_row(row)
    table.add_row(["avg"] + [arithmetic_mean(sums[c]) for c in columns[1:]])
    return table


if __name__ == "__main__":  # pragma: no cover
    print(run().render())
