"""Figure 7 — average instructions per interval, per approach."""

from __future__ import annotations

from typing import List, Optional

from repro.experiments.behavior import APPROACHES, behavior_matrix
from repro.experiments.runner import Runner, default_runner
from repro.util.tables import Table, arithmetic_mean
from repro.workloads import SPEC_EVALUATION_SET


def run(runner: Optional[Runner] = None, specs: List[str] = SPEC_EVALUATION_SET) -> Table:
    """Regenerate Figure 7's rows (interval lengths in thousands of
    instructions at the 1/1000 scale — the paper's axis is millions)."""
    runner = runner or default_runner()
    matrix = behavior_matrix(runner, specs)
    table = Table(
        "Figure 7: average instructions per interval (thousands, scaled; paper: millions)",
        ["workload"] + list(APPROACHES),
        digits=1,
    )
    sums = {a: [] for a in APPROACHES}
    for spec in specs:
        row = [spec]
        for approach in APPROACHES:
            value = matrix[spec][approach].avg_interval_length / 1e3
            sums[approach].append(value)
            row.append(value)
        table.add_row(row)
    table.add_row(["avg"] + [arithmetic_mean(sums[a]) for a in APPROACHES])
    return table


if __name__ == "__main__":  # pragma: no cover
    print(run().render())
