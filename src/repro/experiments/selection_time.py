"""Section 5.1's complexity claim — selection runs in seconds.

"Our algorithm's running time is O(E + N log N) ... The algorithm runs in
seconds on every call-loop graph we have collected."  This experiment
times marker selection alone (graph already built) on every workload's
reference profile, and reports graph sizes alongside.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional

from repro.callloop import LimitParams, SelectionParams, select_markers, select_markers_with_limit
from repro.experiments.runner import Runner, default_runner
from repro.util.tables import Table
from repro.workloads import SPEC_EVALUATION_SET


@dataclass
class SelectionTiming:
    spec: str
    nodes: int
    edges: int
    nolimit_seconds: float
    limit_seconds: float


def measure(runner: Runner, spec: str, repeats: int = 5) -> SelectionTiming:
    graph = runner.graph(spec)
    cfg = runner.config
    t0 = time.perf_counter()
    for _ in range(repeats):
        select_markers(graph, SelectionParams(ilower=cfg.ilower))
    t1 = time.perf_counter()
    for _ in range(repeats):
        select_markers_with_limit(
            graph, LimitParams(ilower=cfg.ilower, max_limit=cfg.max_limit)
        )
    t2 = time.perf_counter()
    return SelectionTiming(
        spec=spec,
        nodes=graph.num_nodes,
        edges=graph.num_edges,
        nolimit_seconds=(t1 - t0) / repeats,
        limit_seconds=(t2 - t1) / repeats,
    )


def run(
    runner: Optional[Runner] = None, specs: List[str] = SPEC_EVALUATION_SET
) -> Table:
    runner = runner or default_runner()
    table = Table(
        "Section 5.1: marker selection time per call-loop graph (seconds)",
        ["workload", "nodes", "edges", "no-limit (s)", "limit (s)"],
        digits=5,
    )
    for spec in specs:
        t = measure(runner, spec)
        table.add_row([t.spec, t.nodes, t.edges, t.nolimit_seconds, t.limit_seconds])
    return table


if __name__ == "__main__":  # pragma: no cover
    print(run().render())
