"""Figure 8 — number of phases detected, per approach."""

from __future__ import annotations

from typing import List, Optional

from repro.experiments.behavior import APPROACHES, behavior_matrix
from repro.experiments.runner import Runner, default_runner
from repro.util.tables import Table, arithmetic_mean
from repro.workloads import SPEC_EVALUATION_SET


def run(runner: Optional[Runner] = None, specs: List[str] = SPEC_EVALUATION_SET) -> Table:
    """Regenerate Figure 8's rows (unique phase ids per classification)."""
    runner = runner or default_runner()
    matrix = behavior_matrix(runner, specs)
    table = Table("Figure 8: number of phases detected", ["workload"] + list(APPROACHES))
    sums = {a: [] for a in APPROACHES}
    for spec in specs:
        row = [spec]
        for approach in APPROACHES:
            value = matrix[spec][approach].num_phases
            sums[approach].append(value)
            row.append(value)
        table.add_row(row)
    table.add_row(["avg"] + [round(arithmetic_mean(sums[a]), 1) for a in APPROACHES])
    return table


if __name__ == "__main__":  # pragma: no cover
    print(run().render())
