"""Extension experiments beyond the paper's figures.

Two quantitative follow-ups the paper sketches but does not evaluate:

* **Cross-binary simulation points** (Section 6.2.1's "current and future
  research"): simulation points chosen on the base binary, located on the
  -O0 and peak builds via marker firing indices, and *scored there* — the
  CPI of the recompiled binary estimated from the transferred points.
* **Next-phase prediction** (the dynamic-reconfiguration companion):
  last-phase vs order-1/2 Markov prediction accuracy over each
  workload's marker phase sequence.  Programs with alternating phases
  (gzip) defeat last-phase prediction but are trivial for Markov — the
  property that makes marker-driven reconfiguration practical.
"""

from __future__ import annotations

from typing import List, Optional

from repro.callloop import map_markers, marker_trace
from repro.experiments.runner import Runner, default_runner
from repro.intervals.metrics import attach_metrics
from repro.intervals.vli import split_at_markers
from repro.ir.linker import ALPHA_O0, ALPHA_PEAK
from repro.runtime import LastPhasePredictor, MarkovPredictor, evaluate_predictor, monitor_run
from repro.simpoint.error import (
    filter_by_coverage,
    relative_error,
    true_weighted_metric,
)
from repro.simpoint.simpoint import SimPointOptions, run_simpoint_on_intervals
from repro.simpoint.xbin import (
    estimate_from_located,
    locate_points,
    specs_from_selection,
    validate_transfer,
)
from repro.util.tables import Table
from repro.workloads import SPEC_EVALUATION_SET

XBIN_SPECS = [
    "gzip/graphic",
    "mgrid/ref",
    "lucas/ref",
    "bzip2/graphic",
    "art/110",
]


def run_xbin_points(runner: Optional[Runner] = None) -> Table:
    """Cross-binary simulation points: CPI error on recompiled binaries."""
    runner = runner or default_runner()
    table = Table(
        "Extension: cross-binary simulation points "
        "(points chosen on base; CPI error when located+measured on each build)",
        ["workload", "points", "base error (%)", "-O0 error (%)", "peak error (%)"],
        digits=2,
    )
    for spec in XBIN_SPECS:
        base = runner.program(spec)
        ref = runner.input_for(spec, "ref")
        markers = runner.markers(spec, "limit")
        intervals, _ = runner.vli_intervals(spec, "limit")
        result = run_simpoint_on_intervals(
            intervals,
            SimPointOptions(k_max=runner.config.vli_k_max),
            weighted=True,
        )
        coverage = filter_by_coverage(result, intervals, 1.0)
        firings = marker_trace(base, ref, markers, trace=runner.trace(spec))
        specs_b = specs_from_selection(intervals, firings, coverage)

        errors = []
        # base binary first (sanity: locating on the source binary)
        base_located = locate_points(
            specs_b, firings, runner.trace(spec).total_instructions
        )
        true_cpi = true_weighted_metric(intervals, intervals.cpis)
        errors.append(
            relative_error(
                estimate_from_located(base_located, intervals, intervals.cpis),
                true_cpi,
            )
        )
        for variant in (ALPHA_O0, ALPHA_PEAK):
            target = runner.program(spec, variant)
            target_markers = map_markers(markers, target).markers
            target_trace = runner.trace(spec, variant=variant)
            target_firings = marker_trace(
                target, ref, target_markers, trace=target_trace
            )
            assert validate_transfer(firings, target_firings)
            located = locate_points(
                specs_b, target_firings, target_trace.total_instructions
            )
            target_intervals = split_at_markers(target, target_trace, target_markers)
            attach_metrics(target_intervals, target_trace, target, ref)
            estimate = estimate_from_located(
                located, target_intervals, target_intervals.cpis
            )
            true = true_weighted_metric(target_intervals, target_intervals.cpis)
            errors.append(relative_error(estimate, true))
        table.add_row(
            [spec, len(specs_b)] + [e * 100.0 for e in errors]
        )
    return table


def run_prediction(
    runner: Optional[Runner] = None, specs: List[str] = SPEC_EVALUATION_SET
) -> Table:
    """Next-phase prediction accuracy over marker phase sequences."""
    runner = runner or default_runner()
    table = Table(
        "Extension: next-phase prediction accuracy at phase transitions (%)",
        ["workload", "changes", "last phase", "Markov-1", "Markov-2"],
        digits=1,
    )
    for spec in specs:
        monitor = monitor_run(
            runner.program(spec),
            runner.input_for(spec, "ref"),
            runner.markers(spec, "nolimit-self"),
            min_interval=runner.config.ilower // 10,
        )
        seq = monitor.phase_sequence
        row = [spec, len(monitor.changes)]
        for predictor in (LastPhasePredictor(), MarkovPredictor(1), MarkovPredictor(2)):
            row.append(evaluate_predictor(seq, predictor).accuracy * 100.0)
        table.add_row(row)
    return table


HARDWARE_BBV_SPECS = [
    "swim/ref",
    "tomcatv/ref",
    "applu/ref",
    "gzip/graphic",
    "mgrid/ref",
]


def run_hardware_bbv(runner: Optional[Runner] = None) -> Table:
    """Verify the paper's approximation: "ideal SimPoint ... is a good
    approximation to the hardware BBV phase classification approach
    [26, 17] with perfect next-phase prediction."

    Both classifiers label the same fixed intervals; the table compares
    phase counts, within-phase CoV of CPI, and the adaptive cache size
    each classification yields under the Figure 10 protocol.
    """
    from repro.analysis.cov import phase_cov
    from repro.cache.reconfig import adaptive_average_size
    from repro.experiments.fig10 import TOLERANCE
    from repro.simpoint.online import classify_intervals_online

    runner = runner or default_runner()
    table = Table(
        "Extension: ideal SimPoint vs hardware-style online BBV classifier",
        [
            "workload",
            "phases (SimPoint)",
            "phases (online)",
            "CoV CPI (SimPoint)",
            "CoV CPI (online)",
            "cache KB (SimPoint)",
            "cache KB (online)",
        ],
        digits=3,
    )
    for spec in HARDWARE_BBV_SPECS:
        intervals, profile = runner.fixed_intervals(spec, runner.config.bbv_interval)
        offline = run_simpoint_on_intervals(
            intervals,
            runner.config.simpoint_options(runner.config.bbv_k_max),
            weighted=False,
        )
        offline_set = intervals.with_phase_ids(offline.phase_ids)
        online_set = classify_intervals_online(intervals)

        def cache_kb(classified):
            return adaptive_average_size(
                classified.phase_ids,
                classified.lengths,
                profile.accesses,
                profile.hits,
                tolerance=TOLERANCE,
            ).avg_size_kb

        table.add_row(
            [
                spec,
                offline_set.num_phases,
                online_set.num_phases,
                phase_cov(offline_set).overall,
                phase_cov(online_set).overall,
                cache_kb(offline_set),
                cache_kb(online_set),
            ]
        )
    return table


DETECTION_SPECS = ["gzip/graphic", "swim/ref", "bzip2/graphic", "mgrid/ref", "art/110"]


def run_detection_comparison(runner: Optional[Runner] = None) -> Table:
    """Phase-change *detection* agreement across the three detector
    families of the related work (Dhodapkar & Smith [5] ran this very
    comparison): software phase markers (the boundaries), working-set
    signatures, and BBV-signature distance.

    Marker firings define the reference boundaries; the other detectors
    run causally over fixed intervals and are scored by precision /
    recall within one interval of a marker boundary.
    """
    import numpy as np

    from repro.simpoint.online import OnlineClassifierOptions, classify_online
    from repro.simpoint.working_set import (
        WorkingSetOptions,
        boundary_agreement,
        detect_on_intervals,
    )

    runner = runner or default_runner()
    table = Table(
        "Extension: phase-change detection vs marker boundaries "
        "(precision/recall within one interval)",
        ["workload", "marker bounds", "wset P", "wset R", "wset F1",
         "bbv P", "bbv R", "bbv F1"],
        digits=2,
    )
    for spec in DETECTION_SPECS:
        vli, _ = runner.vli_intervals(spec, "nolimit-self")
        reference_ts = vli.start_ts[1:]  # marker boundaries
        fixed, _ = runner.fixed_intervals(spec, runner.config.bbv_interval)
        tolerance = runner.config.bbv_interval

        wset = detect_on_intervals(fixed, WorkingSetOptions(threshold=0.3))
        wset_ts = fixed.start_ts[wset.change_points]

        online = classify_online(fixed.bbvs, OnlineClassifierOptions())
        changes = np.nonzero(np.diff(online.phase_ids) != 0)[0] + 1
        bbv_ts = fixed.start_ts[changes]

        wp, wr, wf = boundary_agreement(wset_ts, reference_ts, tolerance)
        bp, br, bf = boundary_agreement(bbv_ts, reference_ts, tolerance)
        table.add_row(
            [spec, len(reference_ts), wp, wr, wf, bp, br, bf]
        )
    return table


if __name__ == "__main__":  # pragma: no cover
    print(run_xbin_points().render())
    print()
    print(run_prediction().render())
    print()
    print(run_hardware_bbv().render())
    print()
    print(run_detection_comparison().render())
