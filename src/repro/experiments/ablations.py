"""Ablations of the selection algorithm's design choices.

Three knobs DESIGN.md calls out:

* ``ilower`` — the minimum interval size is *the* granularity control
  (paper Section 5.1: "the selection algorithm needs to know whether the
  user is interested in large or small scale behaviors").  The sweep
  shows marker counts and interval sizes tracking it.
* ``cov_floor`` — our reproduction decision: the absolute CoV floor that
  keeps the avg(CoV) threshold meaningful on uniformly stable candidate
  sets.  The ablation shows selection collapsing without it on stable
  programs and being insensitive on variable ones.
* projected dimensionality — SimPoint's 15-dimension choice; the sweep
  shows error degrading at very low dimensionality and plateauing
  beyond ~15.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.callloop import SelectionParams, select_markers
from repro.experiments.runner import Runner, default_runner
from repro.intervals.vli import split_at_markers
from repro.simpoint.error import (
    estimate_metric,
    filter_by_coverage,
    relative_error,
    true_weighted_metric,
)
from repro.simpoint.simpoint import SimPointOptions, run_simpoint_on_intervals
from repro.util.tables import Table

ILOWER_SWEEP = (2_000, 10_000, 50_000)
COV_FLOOR_SWEEP = (0.0, 0.05, 0.20)
DIMS_SWEEP = (1, 3, 15, 50)

ILOWER_SPECS = ["gzip/graphic", "swim/ref", "gcc/166"]
FLOOR_SPECS = ["swim/ref", "gcc/166"]
DIMS_SPEC = "gzip/graphic"


def run_ilower(runner: Optional[Runner] = None) -> Table:
    """Marker granularity vs the minimum interval size.

    The CoV column also documents the paper's general trend: "program
    behavior variability decreases as larger intervals of execution are
    examined" — within-phase CoV shrinks as ilower grows.
    """
    from repro.analysis.cov import phase_cov
    from repro.intervals.metrics import attach_metrics

    runner = runner or default_runner()
    table = Table(
        "Ablation: ilower sweep (markers / avg VLI length / CoV by minimum interval size)",
        ["workload", "ilower", "markers", "intervals", "avg length", "CoV CPI (%)"],
        digits=2,
    )
    for spec in ILOWER_SPECS:
        graph = runner.graph(spec)
        program = runner.program(spec)
        trace = runner.trace(spec)
        for ilower in ILOWER_SWEEP:
            markers = select_markers(graph, SelectionParams(ilower=ilower)).markers
            intervals = split_at_markers(program, trace, markers)
            attach_metrics(
                intervals,
                trace,
                program,
                runner.input_for(spec, "ref"),
                trace_metrics=runner.trace_metrics(spec),
            )
            table.add_row(
                [
                    spec,
                    ilower,
                    len(markers),
                    len(intervals),
                    round(intervals.average_length),
                    phase_cov(intervals).overall * 100.0,
                ]
            )
    return table


def run_cov_floor(runner: Optional[Runner] = None) -> Table:
    """Selection robustness vs the absolute CoV floor."""
    runner = runner or default_runner()
    table = Table(
        "Ablation: CoV floor (markers selected at each absolute floor)",
        ["workload", "floor", "markers", "max marker CoV"],
        digits=3,
    )
    for spec in FLOOR_SPECS:
        graph = runner.graph(spec)
        for floor in COV_FLOOR_SWEEP:
            markers = select_markers(
                graph,
                SelectionParams(ilower=runner.config.ilower, cov_floor=floor),
            ).markers
            worst = max((m.cov for m in markers), default=0.0)
            table.add_row([spec, floor, len(markers), worst])
    return table


def run_projection_dims(runner: Optional[Runner] = None) -> Table:
    """SimPoint CPI error vs projected dimensionality."""
    runner = runner or default_runner()
    intervals, _ = runner.fixed_intervals(DIMS_SPEC, runner.config.bbv_interval)
    true_cpi = true_weighted_metric(intervals, intervals.cpis)
    table = Table(
        f"Ablation: random-projection dimensionality ({DIMS_SPEC}, fixed intervals)",
        ["dims", "phases", "CPI error (%)"],
        digits=2,
    )
    for dims in DIMS_SWEEP:
        result = run_simpoint_on_intervals(
            intervals,
            SimPointOptions(dims=dims, k_max=10, seeds=5),
            weighted=False,
        )
        coverage = filter_by_coverage(result, intervals, 1.0)
        estimate = estimate_metric(coverage, intervals.cpis)
        table.add_row(
            [dims, result.k, relative_error(estimate, true_cpi) * 100.0]
        )
    return table


if __name__ == "__main__":  # pragma: no cover
    print(run_ilower().render())
    print()
    print(run_cov_floor().render())
    print()
    print(run_projection_dims().render())
