"""Cached experiment pipeline.

Every figure needs some subset of: program build, reference/train traces,
call-loop graphs, marker sets at several configurations, interval
partitions with metrics.  The Runner memoizes each stage per key so the
benchmarks (which all run in one pytest process) share the work.

Beyond in-process memoization, a Runner can be given the parallel,
cached execution layer from :mod:`repro.runner`:

* ``Runner(cache=ProfileCache(...))`` consults a content-addressed
  on-disk cache before profiling a call-loop graph, and stores every
  freshly profiled graph back — a warm re-run of an experiment skips
  profiling entirely.
* ``Runner(jobs=N)`` plus :meth:`Runner.prefetch_graphs` fans
  independent (workload, input) profiles out over N worker processes.
  Profiles are deterministic and graph serialization is exact, so the
  parallel path produces byte-identical experiment output.

Every graph acquisition (inline profile, worker profile, cache hit) is
recorded in :attr:`Runner.log`; :meth:`Runner.run_summary` renders the
timings and hit/miss counters as a report table.

Marker-set variants follow the paper's Figures 7-10 legend:

=================  ====================================================
variant            meaning
=================  ====================================================
``nolimit-self``   base algorithm, profiled on the reference input
``nolimit-cross``  base algorithm, profiled on the train input
``procs-self``     procedures only, reference profile
``procs-cross``    procedures only, train profile
``limit``          max-limit algorithm (ilower..max_limit), reference
=================  ====================================================
"""

from __future__ import annotations

import time
from typing import Dict, Iterable, Optional, Tuple

import numpy as np

from repro.callloop import (
    CallLoopProfiler,
    LimitParams,
    MarkerSet,
    SelectionParams,
    select_markers,
    select_markers_with_limit,
)
from repro.callloop.graph import CallLoopGraph
from repro.engine.machine import Machine
from repro.engine.memory import MemorySystem
from repro.engine.tracing import Trace, record_trace
from repro.experiments.config import SCALED, ExperimentConfig
from repro.intervals.base import IntervalSet
from repro.intervals.fixed import split_fixed
from repro.intervals.metrics import (
    CacheProfile,
    MetricsConfig,
    TraceMetrics,
    attach_metrics,
    compute_trace_metrics,
)
from repro.intervals.vli import split_at_markers
from repro.callloop.serialization import graph_from_dict
from repro.ir.linker import CompilationVariant, link
from repro.ir.program import Program, ProgramInput
from repro.runner.cache import ProfileCache
from repro.runner.jobs import ProfileJob
from repro.runner.parallel import run_profile_jobs
from repro.runner.traces import TRACE_SPILL_ROWS, TraceStore
from repro.runner.summary import CACHE_HIT, PROFILED, WORKER, RunLog
from repro.telemetry import get_telemetry
from repro.util.tables import Table
from repro.workloads import get_workload

MARKER_VARIANTS = ("nolimit-self", "nolimit-cross", "procs-self", "procs-cross", "limit")


class Runner:
    """Memoizing pipeline over the workload suite.

    *cache* (optional) is an on-disk :class:`~repro.runner.cache.ProfileCache`
    consulted before any call-loop profiling; *jobs* is the default
    worker count for :meth:`prefetch_graphs`; *profile_shards* walks
    each profiled trace as that many parallel segments (``--profile-shards``
    on the CLI) — results are bit-identical to the sequential walk, so
    the knob composes freely with caching and job fan-out.
    *split_shards* does the same for the VLI split stage
    (``--split-shards``): the marker-application walk is segmented and
    the per-segment boundary lists merged with exact seam fixups, so
    interval sets are bit-identical at any shard count.
    """

    def __init__(
        self,
        config: ExperimentConfig = SCALED,
        cache: Optional[ProfileCache] = None,
        jobs: int = 1,
        trace_store: Optional[TraceStore] = None,
        profile_shards: Optional[int] = None,
        split_shards: Optional[int] = None,
    ):
        self.config = config
        self.cache = cache
        self.jobs = jobs
        self.profile_shards = profile_shards
        self.split_shards = split_shards
        # Large traces spill here (memmap-backed columns) instead of
        # living in the process heap; workers hand traces back through
        # the store as path handles rather than pickled arrays.  Follows
        # the profile cache's location unless given explicitly.
        if trace_store is None and cache is not None:
            trace_store = TraceStore(cache.root.parent / "traces")
        self.trace_store = trace_store
        self.log = RunLog()
        self.metrics_config = MetricsConfig()
        self._programs: Dict[Tuple[str, str], Program] = {}
        self._traces: Dict[Tuple, Trace] = {}
        self._graphs: Dict[Tuple, CallLoopGraph] = {}
        self._markers: Dict[Tuple, MarkerSet] = {}
        self._trace_metrics: Dict[Tuple, TraceMetrics] = {}
        self._intervals: Dict[Tuple, Tuple[IntervalSet, CacheProfile]] = {}
        #: scratch memo for experiment modules (keyed by their own tuples)
        self.memo: Dict = {}

    # -- programs and traces --------------------------------------------------

    def program(self, spec: str, variant: Optional[CompilationVariant] = None) -> Program:
        vname = variant.name if variant else "base"
        key = (spec.split("/")[0], vname)
        if key not in self._programs:
            base = get_workload(spec).build()
            self._programs[(key[0], "base")] = base
            if variant is not None:
                self._programs[key] = link(base, variant)
        return self._programs[key]

    def input_for(self, spec: str, which: str) -> ProgramInput:
        wl = get_workload(spec)
        if which == "ref":
            return wl.ref_input
        if which == "train":
            return wl.train_input
        return wl.inputs[which]

    def trace(
        self, spec: str, which: str = "ref", variant: Optional[CompilationVariant] = None
    ) -> Trace:
        vname = variant.name if variant else "base"
        key = (spec.split("/")[0], which, vname)
        if key not in self._traces:
            with get_telemetry().span(
                "runner.trace", spec=key[0], which=which, variant=vname
            ):
                store = self.trace_store
                store_key = None
                if store is not None:
                    store_key = store.trace_key(
                        spec, which, self.input_for(spec, which), variant=vname
                    )
                    spilled = store.load(store_key)
                    if spilled is not None:
                        self._traces[key] = spilled
                        return spilled
                program = self.program(spec, variant)
                trace = record_trace(Machine(program, self.input_for(spec, which)))
                if store is not None and len(trace) >= TRACE_SPILL_ROWS:
                    # keep the memmap-backed copy: pages are shared with
                    # any worker that replays the same trace and the OS
                    # can drop them under memory pressure
                    handle = store.store(store_key, trace)
                    trace = handle.load()
                self._traces[key] = trace
        return self._traces[key]

    # -- call-loop graphs and markers ----------------------------------------------

    def _graph_cache_key(self, spec: str, which: str) -> str:
        return self.cache.graph_key(spec, which, self.input_for(spec, which))

    def graph(self, spec: str, which: str = "ref") -> CallLoopGraph:
        key = (spec.split("/")[0], which)
        if key not in self._graphs:
            with get_telemetry().span(
                "runner.graph", spec=key[0], which=which
            ) as span:
                cached = None
                if self.cache is not None:
                    cached = self.cache.load_graph(self._graph_cache_key(spec, which))
                if cached is not None:
                    span.set("source", CACHE_HIT)
                    self.log.record(key[0], which, CACHE_HIT, 0.0)
                    self._graphs[key] = cached
                else:
                    span.set("source", PROFILED)
                    start = time.perf_counter()
                    program = self.program(spec)
                    profiler = CallLoopProfiler(program)
                    profiler.profile_trace(
                        self.trace(spec, which), shards=self.profile_shards
                    )
                    self.log.record(key[0], which, PROFILED, time.perf_counter() - start)
                    self._graphs[key] = profiler.graph
                    if self.cache is not None:
                        self.cache.store_graph(
                            self._graph_cache_key(spec, which), profiler.graph
                        )
        return self._graphs[key]

    def prefetch_graphs(
        self, pairs: Iterable[Tuple[str, str]], jobs: Optional[int] = None
    ) -> int:
        """Acquire many (spec, which) call-loop graphs up front, fanning
        cache misses out over worker processes.

        Warm-cache and already-memoized graphs are served immediately;
        only the remainder is profiled, in parallel when ``jobs > 1``.
        Returns the number of graphs that were actually profiled.
        Worker-profiled graphs round-trip through the exact JSON
        serialization, so downstream selection results are identical to
        the serial path's.
        """
        jobs = self.jobs if jobs is None else jobs
        tm = get_telemetry()
        with tm.span("runner.prefetch", jobs=jobs) as span:
            needed = []
            seen = set()
            for spec, which in pairs:
                key = (spec.split("/")[0], which)
                if key in seen or key in self._graphs:
                    continue
                seen.add(key)
                cached = None
                if self.cache is not None:
                    cached = self.cache.load_graph(self._graph_cache_key(spec, which))
                if cached is not None:
                    self.log.record(key[0], which, CACHE_HIT, 0.0)
                    self._graphs[key] = cached
                else:
                    needed.append((spec, which))
            span.set("profiled", len(needed))
            if not needed:
                return 0
            trace_root = (
                str(self.trace_store.root) if self.trace_store is not None else None
            )
            results = run_profile_jobs(
                [
                    ProfileJob(
                        spec,
                        which,
                        trace_root=trace_root,
                        profile_shards=self.profile_shards,
                    )
                    for spec, which in needed
                ],
                max_workers=jobs,
            )
            for (spec, which), result in zip(needed, results):
                graph = graph_from_dict(result.graph_data)
                key = (spec.split("/")[0], which)
                source = WORKER if jobs > 1 and len(needed) > 1 else PROFILED
                self.log.record(key[0], which, source, result.seconds)
                if tm.enabled:
                    # adopt the worker's spans/counters into this session
                    tm.merge_snapshot(result.telemetry)
                self._graphs[key] = graph
                if self.cache is not None:
                    self.cache.store_graph(self._graph_cache_key(spec, which), graph)
                if result.trace_handle is not None:
                    # adopt the spilled trace: later trace() calls memmap
                    # the worker's recording instead of re-running
                    tkey = (key[0], which, "base")
                    if tkey not in self._traces:
                        self._traces[tkey] = result.trace_handle.load()
            return len(needed)

    def run_summary(self) -> Table:
        """Timings and cache hit/miss counters of this run, as a table."""
        return self.log.summary_table(self.cache)

    def markers(self, spec: str, variant: str) -> MarkerSet:
        if variant not in MARKER_VARIANTS:
            raise ValueError(f"unknown marker variant {variant!r}")
        key = (spec.split("/")[0], variant)
        if key not in self._markers:
            with get_telemetry().span(
                "runner.markers", spec=key[0], variant=variant
            ):
                cfg = self.config
                which = "train" if variant.endswith("cross") else "ref"
                graph = self.graph(spec, which)
                if variant == "limit":
                    result = select_markers_with_limit(
                        graph, LimitParams(ilower=cfg.ilower, max_limit=cfg.max_limit)
                    )
                else:
                    result = select_markers(
                        graph,
                        SelectionParams(
                            ilower=cfg.ilower,
                            procedures_only=variant.startswith("procs"),
                        ),
                    )
                self._markers[key] = result.markers
        return self._markers[key]

    # -- intervals with metrics --------------------------------------------------

    def trace_metrics(self, spec: str, which: str = "ref") -> TraceMetrics:
        key = (spec.split("/")[0], which)
        if key not in self._trace_metrics:
            with get_telemetry().span(
                "runner.trace_metrics", spec=key[0], which=which
            ):
                self._trace_metrics[key] = compute_trace_metrics(
                    self.trace(spec, which),
                    self.program(spec),
                    self.input_for(spec, which),
                    self.metrics_config,
                )
        return self._trace_metrics[key]

    def fixed_intervals(
        self, spec: str, length: int, which: str = "ref"
    ) -> Tuple[IntervalSet, CacheProfile]:
        key = (spec.split("/")[0], which, "fixed", length)
        if key not in self._intervals:
            with get_telemetry().span(
                "runner.fixed_intervals", spec=key[0], which=which, length=length
            ):
                return self._intervals.setdefault(
                    key, self._compute_fixed(spec, length, which)
                )
        return self._intervals[key]

    def _compute_fixed(
        self, spec: str, length: int, which: str
    ) -> Tuple[IntervalSet, CacheProfile]:
        program = self.program(spec)
        trace = self.trace(spec, which)
        intervals = split_fixed(trace, length, program.name)
        profile = attach_metrics(
            intervals,
            trace,
            program,
            self.input_for(spec, which),
            trace_metrics=self.trace_metrics(spec, which),
        )
        return intervals, profile

    def vli_intervals(
        self, spec: str, marker_variant: str, which: str = "ref"
    ) -> Tuple[IntervalSet, CacheProfile]:
        key = (spec.split("/")[0], which, "vli", marker_variant)
        if key not in self._intervals:
            with get_telemetry().span(
                "runner.vli_intervals",
                spec=key[0],
                which=which,
                variant=marker_variant,
            ):
                return self._intervals.setdefault(
                    key, self._compute_vli(spec, marker_variant, which)
                )
        return self._intervals[key]

    def _compute_vli(
        self, spec: str, marker_variant: str, which: str
    ) -> Tuple[IntervalSet, CacheProfile]:
        program = self.program(spec)
        trace = self.trace(spec, which)
        markers = self.markers(spec, marker_variant)
        intervals = split_at_markers(
            program, trace, markers, shards=self.split_shards
        )
        profile = attach_metrics(
            intervals,
            trace,
            program,
            self.input_for(spec, which),
            trace_metrics=self.trace_metrics(spec, which),
        )
        return intervals, profile

    def memory(self, spec: str, which: str = "ref") -> MemorySystem:
        return MemorySystem(self.program(spec), self.input_for(spec, which))


_DEFAULT: Optional[Runner] = None


def default_runner() -> Runner:
    """The process-wide shared Runner (used by all benchmarks)."""
    global _DEFAULT
    if _DEFAULT is None:
        _DEFAULT = Runner()
    return _DEFAULT
