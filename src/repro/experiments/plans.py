"""Profile prefetch plans: the call-loop graphs each experiment needs.

Experiments request graphs lazily through the memoizing Runner, which is
perfect for a single process but gives a parallel run nothing to fan
out.  Each plan lists the (spec, which) profiles an experiment will ask
for, so ``repro experiment NAME --jobs N`` can acquire them all up front
— cache hits served instantly, misses profiled concurrently.

Plans follow the experiments' marker variants: *cross* variants profile
on the train input, everything else on the reference input (see
:data:`~repro.experiments.runner.MARKER_VARIANTS`).  A plan only
prefetches; an experiment that asks for more simply profiles the rest
lazily, so an out-of-date plan degrades performance, never correctness.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.workloads import CACHE_EVALUATION_SET, SPEC_EVALUATION_SET

ProfilePlan = List[Tuple[str, str]]


def _pairs(specs, whiches) -> ProfilePlan:
    return [(spec, which) for spec in specs for which in whiches]


#: (spec, which) call-loop profiles per experiment name (CLI registry names)
PROFILE_PLANS: Dict[str, ProfilePlan] = {
    # gzip-only time-varying / cross-ISA figures
    "fig3": [("gzip/graphic", "ref")],
    "fig4": [("gzip/graphic", "ref")],
    # bzip2 projection clouds use the max-limit variant (ref profile)
    "fig56": [("bzip2/graphic", "ref")],
    # the behavior matrix needs every marker variant: ref + train profiles
    "fig7": _pairs(SPEC_EVALUATION_SET, ("ref", "train")),
    "fig8": _pairs(SPEC_EVALUATION_SET, ("ref", "train")),
    "fig9": _pairs(SPEC_EVALUATION_SET, ("ref", "train")),
    # adaptive cache uses self + cross variants over the Shen et al. set
    "fig10": _pairs(CACHE_EVALUATION_SET, ("ref", "train")),
    # SimPoint figures use only the "limit" variant (ref profile)
    "fig11": _pairs(SPEC_EVALUATION_SET, ("ref",)),
    "fig12": _pairs(SPEC_EVALUATION_SET, ("ref",)),
    # cross-binary mapping and selection timing: ref profiles only
    "crossbin": _pairs(SPEC_EVALUATION_SET, ("ref",)),
    "selection": _pairs(SPEC_EVALUATION_SET, ("ref",)),
}
