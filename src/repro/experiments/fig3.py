"""Figure 3 — time-varying CPI / DL1 miss rate with phase markers
(gzip-graphic on the base "Alpha" binary)."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.analysis.timevarying import TimeVaryingSeries, time_varying_series
from repro.experiments.runner import Runner, default_runner
from repro.util.tables import Table

SPEC = "gzip/graphic"


def series(runner: Optional[Runner] = None) -> TimeVaryingSeries:
    runner = runner or default_runner()
    key = ("fig3", SPEC)
    if key in runner.memo:
        return runner.memo[key]
    program = runner.program(SPEC)
    trace = runner.trace(SPEC)
    markers = runner.markers(SPEC, "nolimit-self")
    result = time_varying_series(
        program,
        runner.input_for(SPEC, "ref"),
        trace,
        markers,
        interval_length=runner.config.plot_interval,
    )
    runner.memo[key] = result
    return result


def run(runner: Optional[Runner] = None, sample_every: int = 40) -> Table:
    """Regenerate Figure 3 as a down-sampled series table plus the
    marker/transition alignment score."""
    s = series(runner)
    table = Table(
        f"Figure 3: time-varying behavior of {SPEC} with phase markers "
        f"(alignment of markers with top miss-rate transitions: "
        f"{s.transition_alignment():.0%}; {len(s.firings)} marker firings)",
        ["t (instr)", "CPI", "DL1 miss rate", "markers fired here"],
    )
    positions = s.marker_positions()
    bounds = np.concatenate((s.start_ts, [s.start_ts[-1] + s.interval_length]))
    for i in range(0, len(s.cpis), sample_every):
        lo, hi = bounds[i], bounds[min(i + sample_every, len(bounds) - 1)]
        fired = int(((positions >= lo) & (positions < hi)).sum())
        table.add_row([int(s.start_ts[i]), float(s.cpis[i]), float(s.miss_rates[i]), fired])
    return table


if __name__ == "__main__":  # pragma: no cover
    print(run().render())
