"""Section 6.2.1 — cross-compilation simulation points.

The paper compiles each program without optimization and with full peak
optimization, selects one marker set, and verifies the two binaries
produce "the exact same number of phase markers, and the exact same
order of phase markers" on the same input — which makes simulation
points transferable across compilations.  This experiment runs that
verification for every workload and both alternate builds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.callloop.crossbinary import map_markers, marker_trace, traces_identical
from repro.experiments.runner import Runner, default_runner
from repro.ir.linker import ALPHA_O0, ALPHA_PEAK, CompilationVariant
from repro.util.tables import Table
from repro.workloads import SPEC_EVALUATION_SET

VARIANTS = (ALPHA_O0, ALPHA_PEAK)


@dataclass
class CrossBinaryRow:
    spec: str
    variant: str
    markers_mapped: int
    markers_unmapped: int
    base_firings: int
    variant_firings: int
    identical: bool


def check(runner: Runner, spec: str, variant: CompilationVariant) -> CrossBinaryRow:
    key = ("crossbin", spec, variant.name)
    if key in runner.memo:
        return runner.memo[key]
    markers = runner.markers(spec, "nolimit-self")
    base_program = runner.program(spec)
    ref_input = runner.input_for(spec, "ref")
    base_firings = marker_trace(
        base_program, ref_input, markers, trace=runner.trace(spec)
    )
    target = runner.program(spec, variant)
    report = map_markers(markers, target)
    target_firings = marker_trace(
        target, ref_input, report.markers, trace=runner.trace(spec, variant=variant)
    )
    row = CrossBinaryRow(
        spec=spec,
        variant=variant.name,
        markers_mapped=len(report.mapped),
        markers_unmapped=len(report.unmapped),
        base_firings=len(base_firings),
        variant_firings=len(target_firings),
        identical=traces_identical(base_firings, target_firings),
    )
    runner.memo[key] = row
    return row


def run(
    runner: Optional[Runner] = None, specs: List[str] = SPEC_EVALUATION_SET
) -> Table:
    runner = runner or default_runner()
    table = Table(
        "Section 6.2.1: marker traces across recompilations (same input)",
        ["workload", "build", "mapped", "unmapped", "base firings",
         "variant firings", "identical order"],
    )
    for spec in specs:
        for variant in VARIANTS:
            row = check(runner, spec, variant)
            table.add_row(
                [
                    row.spec,
                    row.variant,
                    row.markers_mapped,
                    row.markers_unmapped,
                    row.base_firings,
                    row.variant_firings,
                    row.identical,
                ]
            )
    return table


if __name__ == "__main__":  # pragma: no cover
    print(run().render())
