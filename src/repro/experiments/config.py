"""Experiment parameters: the paper's values and the 1/1000-scale run values.

The paper analyzes full SPEC reference runs (10^10-10^11 instructions)
with ``ilower`` = 10M, fixed intervals of 1M/10M/100M, and a max-limit of
200M ("limit 10-200m").  Pure-Python execution runs the same pipeline at
1/1000 scale; all reported quantities are ratios (CoV, counts,
interval-length ratios, cache sizes, % error), which are scale-free.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.simpoint.simpoint import SimPointOptions


@dataclass(frozen=True)
class ExperimentConfig:
    """All tunables of the evaluation, at one scale."""

    label: str
    ilower: int
    max_limit: int
    #: the three fixed-length SimPoint interval sizes of Figures 11/12,
    #: labeled by the paper's names
    fixed_intervals: Dict[str, int]
    #: k_max used with each fixed interval size (paper Section 6.2)
    fixed_k_max: Dict[str, int]
    #: the fixed interval length of the BBV baseline in Figures 7-10
    bbv_interval: int
    #: fine plotting interval of the Figure 3/4 time-varying series
    plot_interval: int
    #: whole-program CoV baseline interval sizes of Figure 9
    whole_program_intervals: Dict[str, int]
    #: k_max for the BBV baseline classification (paper: 10 at 10M)
    bbv_k_max: int = 10
    #: k_max for VLI SimPoint
    vli_k_max: int = 30
    #: SimPoint coverage filters of Figures 11/12
    coverages: tuple = (0.95, 0.99, 1.0)

    def simpoint_options(self, k_max: int) -> SimPointOptions:
        return SimPointOptions(dims=15, k_max=k_max, seeds=5, seed=2006)


#: the parameters as published (for reference and for EXPERIMENTS.md)
PAPER = ExperimentConfig(
    label="paper",
    ilower=10_000_000,
    max_limit=200_000_000,
    fixed_intervals={"SP_1M": 1_000_000, "SP_10M": 10_000_000, "SP_100M": 100_000_000},
    fixed_k_max={"SP_1M": 30, "SP_10M": 30, "SP_100M": 10},
    bbv_interval=10_000_000,
    plot_interval=2_000_000,
    whole_program_intervals={"100k": 100_000, "1m": 1_000_000},
)

#: the 1/1000-scale parameters every benchmark runs at
SCALED = ExperimentConfig(
    label="scaled-1/1000",
    ilower=10_000,
    max_limit=200_000,
    fixed_intervals={"SP_1M": 1_000, "SP_10M": 10_000, "SP_100M": 100_000},
    fixed_k_max={"SP_1M": 30, "SP_10M": 30, "SP_100M": 10},
    bbv_interval=10_000,
    plot_interval=2_000,
    whole_program_intervals={"100k": 100, "1m": 1_000},
)
