"""Online phase monitoring over a live execution stream.

"The most obvious way to use software phase markers is to use them as
triggers for dynamic reconfiguration or optimization" (Section 5.3).
:class:`PhaseMonitor` is that trigger mechanism: it walks the event
stream *as the program runs* and calls back at every marker firing that
opens a new interval, with the phase id, the instruction count, and the
time spent in the previous phase.

Under an enabled telemetry session the monitor also exports a **phase
timeline** into the run's trace: every transition becomes a
``phase_change`` instant event, and every completed stay in a phase
becomes a dwell span on a per-phase lane (``phase <id>``), so the
Chrome-trace view shows phase occupancy as parallel tracks alongside the
pipeline's stage spans (see ``docs/OBSERVABILITY.md``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.callloop.graph import NodeTable
from repro.callloop.markers import MarkerSet, MarkerTracker, PhaseMarker
from repro.callloop.walker import ContextHandler, ContextWalker
from repro.engine.machine import Machine
from repro.ir.program import Program, ProgramInput, SourceLoc
from repro.telemetry import Histogram, get_telemetry
from repro.util.tables import Table


@dataclass(frozen=True)
class PhaseChange:
    """One observed phase transition."""

    t: int  #: dynamic instruction count at the transition
    previous_phase: int
    new_phase: int
    marker: PhaseMarker
    time_in_previous: int


class PhaseMonitor(ContextHandler):
    """Fires callbacks at phase changes while an event stream executes.

    Parameters
    ----------
    program / marker_set:
        The binary being run and the (possibly cross-compiled) markers.
    on_change:
        Called with each :class:`PhaseChange`.  Exceptions propagate —
        the monitor is the caller's control loop.
    min_interval:
        Suppress changes that would create an interval shorter than this
        many instructions (hysteresis against marker bursts; 0 = report
        every firing that changes the phase).
    """

    def __init__(
        self,
        program: Program,
        marker_set: MarkerSet,
        on_change: Optional[Callable[[PhaseChange], None]] = None,
        min_interval: int = 0,
    ):
        self.program = program
        self.table = NodeTable(program)
        self.tracker = MarkerTracker(marker_set, self.table)
        self.on_change = on_change
        self.min_interval = min_interval
        self.current_phase = 0
        self.phase_start_t = 0
        self.changes: List[PhaseChange] = []
        self.time_in_phase: Dict[int, int] = {}
        #: (phase, dwell) per completed stay in a phase, in order
        self.dwells: List[Tuple[int, int]] = []
        self._walker = ContextWalker(program, self.table)
        self._last_t = 0
        # phase-timeline export (set up in run() iff telemetry is on)
        self._tm = None
        self._phase_wall_ns = 0

    # -- ContextHandler ------------------------------------------------------

    def on_edge_open(
        self, src: int, dst: int, t: int, source: Optional[SourceLoc]
    ) -> None:
        marker = self.tracker.edge_opened(src, dst)
        if marker is None:
            return
        if marker.marker_id == self.current_phase:
            return
        if t - self.phase_start_t < self.min_interval:
            return
        change = PhaseChange(
            t=t,
            previous_phase=self.current_phase,
            new_phase=marker.marker_id,
            marker=marker,
            time_in_previous=t - self.phase_start_t,
        )
        self.time_in_phase[self.current_phase] = (
            self.time_in_phase.get(self.current_phase, 0) + change.time_in_previous
        )
        self.dwells.append((self.current_phase, change.time_in_previous))
        self.current_phase = marker.marker_id
        self.phase_start_t = t
        self.changes.append(change)
        if self._tm is not None:
            self._emit_phase_timeline(change)
        if self.on_change is not None:
            self.on_change(change)

    def _emit_phase_timeline(self, change: PhaseChange) -> None:
        """One transition's trace events: the dwell span for the phase
        just left (on its ``phase <id>`` lane) and a ``phase_change``
        instant at the transition itself."""
        tm = self._tm
        now = time.monotonic_ns()
        tm.emit_span(
            "phase.dwell",
            self._phase_wall_ns,
            now,
            tid=tm.lane(f"phase {change.previous_phase}"),
            phase=change.previous_phase,
            instructions=change.time_in_previous,
        )
        tm.instant(
            "phase_change",
            tid=tm.lane(f"phase {change.new_phase}"),
            previous_phase=change.previous_phase,
            new_phase=change.new_phase,
            marker=change.marker.marker_id,
            t=change.t,
        )
        self._phase_wall_ns = now

    def on_block(self, block_id: int, size: int, t: int) -> None:
        self._last_t = t + size

    # -- driving --------------------------------------------------------------

    def _reset_run_state(self) -> None:
        """Fresh per-run accounting: each :meth:`run` is independent."""
        self.current_phase = 0
        self.phase_start_t = 0
        self.changes = []
        self.time_in_phase = {}
        self.dwells = []
        self._last_t = 0
        self.tracker.reset()

    def run(self, events: Iterable) -> int:
        """Consume a live event stream to completion.

        Each call is an independent run: phase accounting (current
        phase, change list, dwell records, merged-marker counters) is
        reset on entry, so reusing a monitor never double-counts the
        previous stream.  Returns the total dynamic instructions
        observed and closes out the final phase's time accounting
        (including its dwell record).  If the stream — or an
        ``on_change`` callback — raises mid-walk, the exception
        propagates, but only after the accounting is closed at the last
        observed instruction count, so ``dwells`` still covers exactly
        what was seen.
        """
        tm = get_telemetry()
        self._reset_run_state()
        self._tm = tm if tm.enabled else None
        self._phase_wall_ns = time.monotonic_ns()
        total: Optional[int] = None
        try:
            with tm.span("runtime.monitor", program=self.program.name):
                total = self._walker.walk_events(events, self)
                if self._tm is not None:
                    # close out the final phase's dwell track
                    tm.emit_span(
                        "phase.dwell",
                        self._phase_wall_ns,
                        time.monotonic_ns(),
                        tid=tm.lane(f"phase {self.current_phase}"),
                        phase=self.current_phase,
                        instructions=total - self.phase_start_t,
                    )
        finally:
            self._tm = None
            # Close the final dwell even on a mid-stream exception,
            # using the best-known instruction count at that point.
            end_t = total if total is not None else self._last_t
            final_dwell = end_t - self.phase_start_t
            self.time_in_phase[self.current_phase] = (
                self.time_in_phase.get(self.current_phase, 0) + final_dwell
            )
            self.dwells.append((self.current_phase, final_dwell))
        if tm.enabled:
            tm.counter("monitor.phase_changes", len(self.changes))
            for _, dwell in self.dwells:
                tm.observe("monitor.dwell_instructions", dwell)
        return total

    @property
    def phase_sequence(self) -> List[int]:
        """Phase ids in observation order (starting with phase 0)."""
        return [0] + [c.new_phase for c in self.changes]

    # -- dwell-time histogram -------------------------------------------------

    def dwell_histograms(self) -> Dict[int, Histogram]:
        """Per-phase histogram of dwell times (instructions spent in the
        phase per visit), in power-of-two instruction-count buckets."""
        hists: Dict[int, Histogram] = {}
        for phase, dwell in self.dwells:
            hist = hists.get(phase)
            if hist is None:
                hist = hists[phase] = Histogram()
            hist.observe(dwell)
        return hists

    def dwell_table(self) -> Table:
        """The per-phase dwell-time histogram as a report table."""
        table = Table(
            "Per-phase dwell-time histogram (instructions per visit)",
            ["phase", "dwell bucket", "visits"],
        )
        hists = self.dwell_histograms()
        for phase in sorted(hists):
            for label, count in hists[phase].rows():
                table.add_row([phase, label, count])
        return table


def monitor_run(
    program: Program,
    program_input: ProgramInput,
    marker_set: MarkerSet,
    on_change: Optional[Callable[[PhaseChange], None]] = None,
    min_interval: int = 0,
) -> PhaseMonitor:
    """Execute *program* under a :class:`PhaseMonitor`; returns the monitor."""
    monitor = PhaseMonitor(program, marker_set, on_change, min_interval)
    monitor.run(Machine(program, program_input).run())
    return monitor
