"""Online phase monitoring over a live execution stream.

"The most obvious way to use software phase markers is to use them as
triggers for dynamic reconfiguration or optimization" (Section 5.3).
:class:`PhaseMonitor` is that trigger mechanism: it walks the event
stream *as the program runs* and calls back at every marker firing that
opens a new interval, with the phase id, the instruction count, and the
time spent in the previous phase.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional

from repro.callloop.graph import NodeTable
from repro.callloop.markers import MarkerSet, MarkerTracker, PhaseMarker
from repro.callloop.walker import ContextHandler, ContextWalker
from repro.engine.machine import Machine
from repro.ir.program import Program, ProgramInput, SourceLoc


@dataclass(frozen=True)
class PhaseChange:
    """One observed phase transition."""

    t: int  #: dynamic instruction count at the transition
    previous_phase: int
    new_phase: int
    marker: PhaseMarker
    time_in_previous: int


class PhaseMonitor(ContextHandler):
    """Fires callbacks at phase changes while an event stream executes.

    Parameters
    ----------
    program / marker_set:
        The binary being run and the (possibly cross-compiled) markers.
    on_change:
        Called with each :class:`PhaseChange`.  Exceptions propagate —
        the monitor is the caller's control loop.
    min_interval:
        Suppress changes that would create an interval shorter than this
        many instructions (hysteresis against marker bursts; 0 = report
        every firing that changes the phase).
    """

    def __init__(
        self,
        program: Program,
        marker_set: MarkerSet,
        on_change: Optional[Callable[[PhaseChange], None]] = None,
        min_interval: int = 0,
    ):
        self.program = program
        self.table = NodeTable(program)
        self.tracker = MarkerTracker(marker_set, self.table)
        self.on_change = on_change
        self.min_interval = min_interval
        self.current_phase = 0
        self.phase_start_t = 0
        self.changes: List[PhaseChange] = []
        self.time_in_phase: Dict[int, int] = {}
        self._walker = ContextWalker(program, self.table)
        self._last_t = 0

    # -- ContextHandler ------------------------------------------------------

    def on_edge_open(
        self, src: int, dst: int, t: int, source: Optional[SourceLoc]
    ) -> None:
        marker = self.tracker.edge_opened(src, dst)
        if marker is None:
            return
        if marker.marker_id == self.current_phase:
            return
        if t - self.phase_start_t < self.min_interval:
            return
        change = PhaseChange(
            t=t,
            previous_phase=self.current_phase,
            new_phase=marker.marker_id,
            marker=marker,
            time_in_previous=t - self.phase_start_t,
        )
        self.time_in_phase[self.current_phase] = (
            self.time_in_phase.get(self.current_phase, 0) + change.time_in_previous
        )
        self.current_phase = marker.marker_id
        self.phase_start_t = t
        self.changes.append(change)
        if self.on_change is not None:
            self.on_change(change)

    def on_block(self, block_id: int, size: int, t: int) -> None:
        self._last_t = t + size

    # -- driving --------------------------------------------------------------

    def run(self, events: Iterable) -> int:
        """Consume a live event stream to completion.

        Returns the total dynamic instructions observed and closes out
        the final phase's time accounting.
        """
        total = self._walker.walk_events(events, self)
        self.time_in_phase[self.current_phase] = (
            self.time_in_phase.get(self.current_phase, 0)
            + total
            - self.phase_start_t
        )
        return total

    @property
    def phase_sequence(self) -> List[int]:
        """Phase ids in observation order (starting with phase 0)."""
        return [0] + [c.new_phase for c in self.changes]


def monitor_run(
    program: Program,
    program_input: ProgramInput,
    marker_set: MarkerSet,
    on_change: Optional[Callable[[PhaseChange], None]] = None,
    min_interval: int = 0,
) -> PhaseMonitor:
    """Execute *program* under a :class:`PhaseMonitor`; returns the monitor."""
    monitor = PhaseMonitor(program, marker_set, on_change, min_interval)
    monitor.run(Machine(program, program_input).run())
    return monitor
