"""Online use of phase markers: monitoring and next-phase prediction.

The point of *software* phase markers is that phase changes can be
detected at run time "with no hardware support" — instrumentation at the
marker sites simply fires as the program executes.  This package is that
runtime side:

* :class:`~repro.runtime.monitor.PhaseMonitor` consumes a live execution
  stream and invokes callbacks at every phase change — the hook a dynamic
  optimizer or reconfiguration controller would attach to;
* :mod:`~repro.runtime.predictor` provides the next-phase predictors of
  the phase-prediction literature (last-phase and Markov) so a controller
  can prepare a configuration *before* the phase begins.
"""

from repro.runtime.monitor import PhaseChange, PhaseMonitor, monitor_run
from repro.runtime.predictor import (
    LastPhasePredictor,
    MarkovPredictor,
    PredictorReport,
    evaluate_predictor,
)

__all__ = [
    "PhaseChange",
    "PhaseMonitor",
    "monitor_run",
    "LastPhasePredictor",
    "MarkovPredictor",
    "PredictorReport",
    "evaluate_predictor",
]
