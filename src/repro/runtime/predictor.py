"""Next-phase prediction over marker phase-id sequences.

A reconfiguration controller wants the next phase's configuration ready
*before* the phase starts.  The phase-prediction literature the paper
builds on ([26, 17] — "Phase tracking and prediction") uses two simple
predictors that work remarkably well on marker sequences:

* **last phase**: predict the next phase equals the current one — right
  whenever phases are long relative to prediction points;
* **Markov**: remember, for each recent-history tuple, the most frequent
  successor — right whenever the phase *sequence* repeats, which is
  exactly what phase markers expose (gzip's ... deflate, flush, deflate,
  flush ... alternation defeats last-phase but is trivial for Markov).
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple


class LastPhasePredictor:
    """Predict the next phase id equals the current one."""

    def __init__(self):
        self._last: Optional[int] = None

    def predict(self) -> Optional[int]:
        return self._last

    def observe(self, phase: int) -> None:
        self._last = phase


class MarkovPredictor:
    """Order-N Markov predictor over phase ids.

    Keeps, per history tuple of the last *order* phases, a frequency
    count of successors; predicts the most frequent (ties: most
    recently observed).
    """

    def __init__(self, order: int = 1):
        if order < 1:
            raise ValueError("order must be >= 1")
        self.order = order
        self._history: Tuple[int, ...] = ()
        self._table: Dict[Tuple[int, ...], Counter] = defaultdict(Counter)
        self._recency: Dict[Tuple[int, ...], Dict[int, int]] = defaultdict(dict)
        self._clock = 0

    def predict(self) -> Optional[int]:
        if len(self._history) < self.order:
            return self._history[-1] if self._history else None
        counts = self._table.get(self._history)
        if not counts:
            return self._history[-1]
        best = max(
            counts.items(),
            key=lambda kv: (kv[1], self._recency[self._history].get(kv[0], -1)),
        )
        return best[0]

    def observe(self, phase: int) -> None:
        self._clock += 1
        if len(self._history) >= self.order:
            key = self._history
            self._table[key][phase] += 1
            self._recency[key][phase] = self._clock
        self._history = (self._history + (phase,))[-self.order :]


@dataclass
class PredictorReport:
    """Accuracy of one predictor over one phase sequence."""

    name: str
    predictions: int
    correct: int

    @property
    def accuracy(self) -> float:
        if self.predictions == 0:
            return 0.0
        return self.correct / self.predictions


def evaluate_predictor(
    sequence: Sequence[int], predictor, name: str = ""
) -> PredictorReport:
    """Feed a phase-id sequence through a predictor, scoring each step.

    The predictor is asked for the next phase *before* observing it
    (no peeking); the first element is never predicted.
    """
    report = PredictorReport(
        name=name or type(predictor).__name__, predictions=0, correct=0
    )
    first = True
    for phase in sequence:
        if not first:
            report.predictions += 1
            if predictor.predict() == phase:
                report.correct += 1
        predictor.observe(phase)
        first = False
    return report
