"""Shared-memory trace handoff: spilled columnar traces + mmap loads.

A recorded :class:`~repro.engine.tracing.Trace` of a long run is tens of
megabytes of columnar data.  Pickling it across a process pool copies
every byte through the pipe twice; holding many of them in the runner's
memo keeps the whole suite's traces resident.  The trace store fixes
both by spilling each column to its own ``.npy`` file under a
content-addressed directory and handing out :class:`TraceHandle`\\ s —
tiny picklable path records.  Loading a handle memory-maps the columns
(``np.load(mmap_mode="r")``), so replaying processes share the page
cache instead of private heap copies, and the OS can evict cold trace
pages under pressure.

The mapped columns are read-only and never remapped, which also makes
them safe for *concurrent* readers: the segmented profile
(``--profile-shards``) walks disjoint row ranges of one mapped column
set from several threads — or forked children sharing the same pages —
without any copies or locks.  See ``docs/PARALLELISM.md`` for the full
concurrency model.

Layout mirrors :class:`~repro.runner.cache.ProfileCache`: two-level
fan-out directories keyed by a SHA-256 fingerprint, atomic writes via a
temp directory + ``rename``, and anything corrupt counting as a miss.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Union

import numpy as np

from repro.engine.tracing import Trace
from repro.ir.program import ProgramInput
from repro.telemetry import get_telemetry

#: traces with at least this many rows are spilled to disk by the
#: runner; smaller ones stay in memory (the handle machinery would cost
#: more than the copy)
TRACE_SPILL_ROWS = 1 << 16

#: bump to invalidate every spilled trace after a format change
TRACE_SCHEMA_VERSION = 1

_COLUMNS = ("kinds", "a", "b", "c")


def default_trace_dir() -> Path:
    """``$REPRO_TRACE_DIR``, else a ``traces`` sibling of the profile
    cache location."""
    env = os.environ.get("REPRO_TRACE_DIR")
    if env:
        return Path(env)
    from repro.runner.cache import default_cache_dir

    return default_cache_dir().parent / "traces"


@dataclass(frozen=True)
class TraceHandle:
    """A picklable pointer to a spilled trace.

    Crossing a process boundary costs a short path string instead of the
    trace itself; the receiver calls :meth:`load` (or
    :meth:`TraceStore.load`) to memory-map the columns back.
    """

    path: str
    rows: int

    def load(self, mmap: bool = True) -> Trace:
        """Materialize the trace this handle points to."""
        mode = "r" if mmap else None
        base = Path(self.path)
        cols = [np.load(base / f"{name}.npy", mmap_mode=mode) for name in _COLUMNS]
        trace = Trace(*cols)
        if len(trace) != self.rows:
            raise ValueError(
                f"spilled trace at {self.path} has {len(trace)} rows, "
                f"handle says {self.rows}"
            )
        tm = get_telemetry()
        if tm.enabled:
            tm.counter("runner.trace.mmap_loads")
            tm.counter("runner.trace.mmap_rows", self.rows)
        return trace


class TraceStore:
    """Content-addressed on-disk store of spilled traces."""

    def __init__(self, root: Union[str, Path, None] = None):
        self.root = Path(root) if root is not None else default_trace_dir()
        self.spills = 0
        self.loads = 0

    # -- keys -----------------------------------------------------------------

    def trace_key(
        self,
        workload: str,
        which: str,
        program_input: ProgramInput,
        variant: str = "base",
    ) -> str:
        """Fingerprint of one recorded run (workload, input, variant)."""
        from repro.runner.cache import _code_version

        fields = {
            "kind": "trace",
            "schema": TRACE_SCHEMA_VERSION,
            "code_version": _code_version(),
            "workload": workload,
            "which": which,
            "variant": variant,
            "input": {
                "name": program_input.name,
                "seed": program_input.seed,
                "params": sorted(
                    (str(k), json.dumps(v, sort_keys=True, default=repr))
                    for k, v in program_input.params.items()
                ),
            },
        }
        blob = json.dumps(fields, sort_keys=True).encode()
        return hashlib.sha256(blob).hexdigest()

    def path_for(self, key: str) -> Path:
        """Directory holding the entry for *key* (two-level fan-out)."""
        return self.root / key[:2] / key

    # -- store / load ---------------------------------------------------------

    def store(self, key: str, trace: Trace) -> TraceHandle:
        """Spill *trace* under *key*; returns the handle.

        The write is atomic: columns land in a temp directory which is
        renamed into place, so a crash never leaves a partial entry.  An
        existing entry is reused as-is (the store is content-addressed —
        same key means same bytes).
        """
        path = self.path_for(key)
        if path.is_dir():
            return TraceHandle(str(path), len(trace))
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = tempfile.mkdtemp(dir=path.parent, suffix=".tmp")
        try:
            for name in _COLUMNS:
                # np.save writes uncompressed .npy — mmap-able on load
                np.save(os.path.join(tmp, f"{name}.npy"), getattr(trace, name))
            try:
                os.replace(tmp, path)
            except OSError:
                # lost a race to a concurrent writer; its entry is equivalent
                shutil.rmtree(tmp, ignore_errors=True)
                if not path.is_dir():
                    raise
        except BaseException:
            shutil.rmtree(tmp, ignore_errors=True)
            raise
        self.spills += 1
        tm = get_telemetry()
        if tm.enabled:
            tm.counter("runner.trace.spills")
            tm.counter("runner.trace.spill_rows", len(trace))
        return TraceHandle(str(path), len(trace))

    def load(self, key: str, mmap: bool = True) -> Optional[Trace]:
        """The spilled trace for *key*, or None on a miss.

        A corrupt or truncated entry counts as a miss and is removed so
        the caller re-records and re-spills.
        """
        path = self.path_for(key)
        try:
            mode = "r" if mmap else None
            cols = [
                np.load(path / f"{name}.npy", mmap_mode=mode) for name in _COLUMNS
            ]
            trace = Trace(*cols)
        except FileNotFoundError:
            return None
        except (ValueError, OSError):
            shutil.rmtree(path, ignore_errors=True)
            return None
        self.loads += 1
        tm = get_telemetry()
        if tm.enabled:
            tm.counter("runner.trace.mmap_loads")
            tm.counter("runner.trace.mmap_rows", len(trace))
        return trace

    # -- maintenance ----------------------------------------------------------

    def clear(self) -> int:
        """Delete every spilled trace; returns the number of entries removed."""
        removed = 0
        if self.root.exists():
            for entry in self.root.glob("*/*"):
                if entry.is_dir():
                    shutil.rmtree(entry, ignore_errors=True)
                    removed += 1
        return removed

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TraceStore({str(self.root)!r}: {self.spills} spills, {self.loads} loads)"
