"""Run observability: per-job timings and cache hit/miss accounting.

Every graph acquisition in a run — profiled inline, profiled by a pool
worker, or served from the on-disk cache — is recorded as a
:class:`RunEvent`.  :meth:`RunLog.summary_table` renders the whole run
as one :class:`~repro.util.tables.Table`, so experiments can show where
the time went and whether the cache did its job, in the same format as
every other report in the repo.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.util.tables import Table

#: event sources, in display order
PROFILED = "profiled"
WORKER = "worker"
CACHE_HIT = "cache"


@dataclass(frozen=True)
class RunEvent:
    """One graph acquisition: what, where from, and how long it took."""

    spec: str
    which: str
    source: str  # PROFILED | WORKER | CACHE_HIT
    seconds: float


class RunLog:
    """Accumulates :class:`RunEvent` records over a run."""

    def __init__(self) -> None:
        self.events: List[RunEvent] = []

    def record(self, spec: str, which: str, source: str, seconds: float) -> None:
        self.events.append(RunEvent(spec, which, source, seconds))

    # -- counters -------------------------------------------------------------

    @property
    def cache_hits(self) -> int:
        return sum(1 for e in self.events if e.source == CACHE_HIT)

    @property
    def cache_misses(self) -> int:
        """Graphs that had to be profiled (inline or in a worker)."""
        return sum(1 for e in self.events if e.source != CACHE_HIT)

    @property
    def profile_seconds(self) -> float:
        return sum(e.seconds for e in self.events)

    def profiling_skipped(self) -> bool:
        """True when *every* graph of the run came from the cache."""
        return bool(self.events) and self.cache_misses == 0

    # -- rendering ------------------------------------------------------------

    def summary_table(self, cache=None) -> Table:
        """The run summary: one row per graph, plus a totals row.

        With a :class:`~repro.runner.cache.ProfileCache` attached, the
        totals row also reports entries stored and corrupted entries
        discarded.
        """
        table = Table(
            "Run summary: call-loop profile acquisitions",
            ["workload", "input", "source", "seconds"],
            digits=3,
        )
        for event in self.events:
            table.add_row([event.spec, event.which, event.source, event.seconds])
        totals = f"{self.cache_hits} cache hits / {self.cache_misses} misses"
        if cache is not None and (cache.stores or cache.invalid):
            totals += f"; {cache.stores} stored"
            if cache.invalid:
                totals += f", {cache.invalid} corrupt discarded"
        table.add_row([f"total ({len(self.events)})", "", totals, self.profile_seconds])
        return table
