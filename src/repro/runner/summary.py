"""Run observability — now a compatibility shim over :mod:`repro.telemetry`.

.. deprecated:: PR 2
    The accounting that used to live here (bespoke :class:`RunEvent`
    lists) moved onto the unified telemetry layer: every graph
    acquisition is a ``runner.acquire`` span with ``spec``/``which``/
    ``source`` attributes plus ``runner.acquire.*`` counters.  This
    module keeps the stable :class:`RunLog` API — including the exact
    :meth:`RunLog.summary_table` output format — as a thin view over
    those telemetry primitives, so existing callers and tests keep
    working.  New code should read the telemetry session directly
    (``repro stats`` / :func:`repro.telemetry.render_report`).

:class:`RunLog` records into a private, always-enabled
:class:`~repro.telemetry.Telemetry` session (run summaries must render
even when global telemetry is off) and *forwards* every event to the
globally active session when one is enabled, so ``--telemetry`` traces
include the acquisition spans without a second accounting path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.telemetry import Telemetry, get_telemetry
from repro.util.tables import Table

#: event sources, in display order
PROFILED = "profiled"
WORKER = "worker"
CACHE_HIT = "cache"

#: telemetry span name of one graph acquisition
ACQUIRE_SPAN = "runner.acquire"


@dataclass(frozen=True)
class RunEvent:
    """One graph acquisition: what, where from, and how long it took.

    Kept for backward compatibility; reconstructed on demand from the
    underlying telemetry spans.
    """

    spec: str
    which: str
    source: str  # PROFILED | WORKER | CACHE_HIT
    seconds: float


class RunLog:
    """Accumulates acquisition records over a run (telemetry-backed)."""

    def __init__(self) -> None:
        self._tm = Telemetry()

    def record(self, spec: str, which: str, source: str, seconds: float) -> None:
        """Record one acquisition — the single accounting path.

        The event lands in this log's private session and, when global
        telemetry is enabled, in the active session too (as the same
        span/counter names), so ``--telemetry`` traces and run summaries
        never disagree.
        """
        active = get_telemetry()
        sessions = (self._tm, active) if active.enabled else (self._tm,)
        for tm in sessions:
            tm.record_span(
                ACQUIRE_SPAN, seconds, spec=spec, which=which, source=source
            )
            tm.counter(f"runner.acquire.{source}")
            tm.counter("runner.acquire.seconds", seconds)

    # -- counters -------------------------------------------------------------

    @property
    def events(self) -> List[RunEvent]:
        """The acquisitions as legacy :class:`RunEvent` records."""
        return [
            RunEvent(
                spec=s.attrs["spec"],
                which=s.attrs["which"],
                source=s.attrs["source"],
                seconds=s.seconds,
            )
            for s in self._tm.spans
            if s.name == ACQUIRE_SPAN
        ]

    @property
    def cache_hits(self) -> int:
        return int(self._tm.metrics.counters.get(f"runner.acquire.{CACHE_HIT}", 0))

    @property
    def cache_misses(self) -> int:
        """Graphs that had to be profiled (inline or in a worker)."""
        counters = self._tm.metrics.counters
        return int(
            counters.get(f"runner.acquire.{PROFILED}", 0)
            + counters.get(f"runner.acquire.{WORKER}", 0)
        )

    @property
    def profile_seconds(self) -> float:
        return float(self._tm.metrics.counters.get("runner.acquire.seconds", 0.0))

    def profiling_skipped(self) -> bool:
        """True when *every* graph of the run came from the cache."""
        return self.cache_hits > 0 and self.cache_misses == 0

    # -- rendering ------------------------------------------------------------

    def summary_table(self, cache=None) -> Table:
        """The run summary: one row per graph, plus a totals row.

        With a :class:`~repro.runner.cache.ProfileCache` attached, the
        totals row also reports entries stored and corrupted entries
        discarded.
        """
        events = self.events
        table = Table(
            "Run summary: call-loop profile acquisitions",
            ["workload", "input", "source", "seconds"],
            digits=3,
        )
        for event in events:
            table.add_row([event.spec, event.which, event.source, event.seconds])
        totals = f"{self.cache_hits} cache hits / {self.cache_misses} misses"
        if cache is not None and (cache.stores or cache.invalid):
            totals += f"; {cache.stores} stored"
            if cache.invalid:
                totals += f", {cache.invalid} corrupt discarded"
        table.add_row([f"total ({len(events)})", "", totals, self.profile_seconds])
        return table
