"""Pure, picklable profiling jobs — the unit of parallel fan-out.

A :class:`ProfileJob` names one (workload, input) profile; running it
builds the program, executes it, and folds the trace into a call-loop
graph — entirely self-contained, with no shared state, so jobs can run
in any process.  Results carry the *serialized* graph (plain dicts and
floats), which crosses the process boundary cheaply and reconstructs
exactly (see :mod:`repro.callloop.serialization`).

Jobs normally reference a workload by its registry spec name, which is
trivially picklable.  An ad-hoc :class:`~repro.workloads.base.Workload`
object can be attached instead, but then the whole object must survive
pickling; :func:`ensure_picklable` turns the otherwise-baffling pickle
traceback into a :class:`UnpicklableJobError` that says which job is the
problem and what to do about it.
"""

from __future__ import annotations

import os
import pickle
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.callloop.profiler import CallLoopProfiler
from repro.callloop.serialization import graph_to_dict
from repro.engine.machine import Machine
from repro.engine.tracing import record_trace
from repro.ir.program import ProgramInput
from repro.runner.traces import TraceHandle, TraceStore
from repro.workloads import get_workload
from repro.workloads.base import Workload


class UnpicklableJobError(TypeError):
    """A profile job cannot be sent to a worker process."""


@dataclass(frozen=True)
class ProfileJob:
    """One (workload, input) call-loop profile to compute.

    ``spec`` is a registry name or "name/input" label; ``which`` selects
    the input ("ref", "train", or an explicit input name).  ``workload``
    optionally bypasses the registry with an ad-hoc workload object —
    which must then be picklable to run in a worker process.

    ``trace_root`` (optional) is the root directory of a
    :class:`~repro.runner.traces.TraceStore`: the worker spills the
    recorded trace there and the result carries a
    :class:`~repro.runner.traces.TraceHandle` instead of the trace
    itself, so the parent memory-maps the columns rather than having
    them pickled back through the pool's result pipe.

    ``profile_shards`` (optional) walks the trace as that many
    independent segments inside the job (see
    :meth:`repro.callloop.profiler.CallLoopProfiler.profile_trace`);
    the graph is bit-identical either way, so the field never affects
    cache keys or results — only wall-clock.  Shard workers are threads
    inside the job's process, composing with the job-level pool.

    ``run_id`` (optional) is the parent session's telemetry run id:
    the worker's local session inherits it, so spans shipped back in
    the result snapshot stitch into one identified run (see
    :meth:`repro.telemetry.Telemetry.merge_snapshot`).  Like
    ``profile_shards`` it never affects results, only observability.
    """

    spec: str
    which: str = "ref"
    workload: Optional[Workload] = field(default=None, compare=False)
    trace_root: Optional[str] = None
    profile_shards: Optional[int] = field(default=None, compare=False)
    run_id: Optional[str] = field(default=None, compare=False)

    def resolve_workload(self) -> Workload:
        return self.workload if self.workload is not None else get_workload(self.spec)

    def resolve_input(self, workload: Workload) -> ProgramInput:
        if self.which == "ref":
            return workload.ref_input
        if self.which == "train":
            return workload.train_input
        return workload.inputs[self.which]


@dataclass
class ProfileJobResult:
    """A completed job: the serialized graph plus timing provenance.

    ``telemetry`` carries the worker's session snapshot (spans +
    metrics; see :meth:`repro.telemetry.Telemetry.snapshot`) back across
    the process boundary, so pool workers report their spans through the
    job result and the parent can fold them into its own session.  It is
    ``None`` when the job ran inline under an already-active session
    (the spans were recorded there directly).
    """

    spec: str
    which: str
    graph_data: Dict[str, Any]
    seconds: float
    worker_pid: int
    telemetry: Optional[Dict[str, Any]] = None
    #: where the worker spilled the recorded trace (set iff the job
    #: carried a ``trace_root``); load with ``trace_handle.load()``
    trace_handle: Optional["TraceHandle"] = None


def run_profile_job(job: ProfileJob) -> ProfileJobResult:
    """Execute one job start-to-finish (build, run, profile, serialize).

    This is the worker entry point handed to the process pool; it is a
    module-level function of picklable arguments by design.
    """
    from repro import telemetry

    local: Optional[telemetry.Telemetry] = None
    prev = None
    active = telemetry.get_telemetry()
    if not active.enabled or active.pid != os.getpid():
        # Worker process (fresh, or fork-started with the parent's
        # session inherited — detectable because the session remembers
        # the pid it was created in) or telemetry-off inline run:
        # record into a local session and ship the snapshot back with
        # the result.  The session inherits the parent's run id, so
        # the shipped spans stitch into the parent's timeline as one
        # run.
        local = telemetry.Telemetry(run_id=job.run_id)
        prev = telemetry.install_telemetry(local)
    tm = telemetry.get_telemetry()
    try:
        start = time.perf_counter()
        trace_handle: Optional[TraceHandle] = None
        with tm.span("runner.profile_job", spec=job.spec, which=job.which):
            workload = job.resolve_workload()
            program = workload.build()
            program_input = job.resolve_input(workload)
            trace = None
            store = None
            if job.trace_root is not None:
                store = TraceStore(job.trace_root)
                key = store.trace_key(job.spec, job.which, program_input)
                trace = store.load(key)
            if trace is None:
                trace = record_trace(Machine(program, program_input))
                if store is not None:
                    trace_handle = store.store(key, trace)
                    # replay from the mapped copy so the pages are warm
                    # for the parent and the private arrays are freed
                    trace = trace_handle.load()
            else:
                trace_handle = TraceHandle(str(store.path_for(key)), len(trace))
            profiler = CallLoopProfiler(program)
            profiler.profile_trace(trace, shards=job.profile_shards)
        seconds = time.perf_counter() - start
    finally:
        if local is not None:
            telemetry.install_telemetry(prev)
    return ProfileJobResult(
        spec=job.spec,
        which=job.which,
        graph_data=graph_to_dict(profiler.graph),
        seconds=seconds,
        worker_pid=os.getpid(),
        telemetry=local.snapshot() if local is not None else None,
        trace_handle=trace_handle,
    )


def ensure_picklable(job: ProfileJob) -> None:
    """Raise :class:`UnpicklableJobError` if *job* cannot cross to a worker.

    Checked *before* submission so the failure names the job and the fix
    instead of surfacing as a pickle traceback from inside the pool.
    """
    try:
        pickle.dumps(job)
    except Exception as exc:
        name = job.workload.name if job.workload is not None else job.spec
        raise UnpicklableJobError(
            f"profile job for workload {name!r} (input {job.which!r}) cannot be "
            f"sent to a worker process: {exc}. Parallel profiling pickles each "
            "job; pass a registered workload spec name (see `repro list`) "
            "instead of an ad-hoc workload object, or run serially with jobs=1."
        ) from exc
