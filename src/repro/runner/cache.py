"""Content-addressed on-disk cache of call-loop profiles.

Profiling is deterministic: the same workload, input, and code version
always produce the same annotated call-loop graph (the engine is a
seeded, pure interpreter).  That makes profiles perfect cache fodder —
the cache key is a digest of everything the profile depends on, and the
value is the JSON graph serialization from
:mod:`repro.callloop.serialization`.

Key = SHA-256 over a canonical JSON document of:

* the full workload identifier (including the ``name/input`` spec label,
  so two variants of one workload never share a key) and which input was
  profiled,
* the input's name, parameters, and RNG seed (the full engine config —
  the interpreter has no other knobs); parameter values are serialized
  with type-preserving canonical JSON, so ``1``, ``1.0``, ``True`` and
  ``"1"`` produce distinct keys and non-numeric parameters are legal,
* the package version and a cache schema version (the "code version" —
  bump either and every old entry misses),
* an optional ``extra`` mapping for callers with additional
  configuration (e.g. a profiler instruction limit).

Robustness: a corrupted, truncated, or stale-format cache file is
*never* an error — it counts as a miss (and is deleted) so the caller
falls back to re-profiling.  Writes are atomic (tempfile + ``rename``)
so a crashed run cannot leave a half-written entry behind.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Any, Dict, Mapping, Optional, Union

from repro.callloop.graph import CallLoopGraph
from repro.callloop.serialization import graph_from_dict, graph_to_dict
from repro.ir.program import ProgramInput

#: bump to invalidate every existing cache entry after a format change
#: (2: full workload identifier + type-preserving params in the key)
CACHE_SCHEMA_VERSION = 2


def _code_version() -> str:
    import repro

    return getattr(repro, "__version__", "0")


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR``, else ``$XDG_CACHE_HOME/repro/profiles``,
    else ``~/.cache/repro/profiles``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro" / "profiles"


class ProfileCache:
    """Content-addressed store of serialized call-loop graphs.

    Counters (``hits``, ``misses``, ``stores``, ``invalid``) feed the
    run summary table; ``invalid`` counts corrupted entries that were
    discarded and re-profiled.
    """

    def __init__(self, root: Union[str, Path, None] = None):
        self.root = Path(root) if root is not None else default_cache_dir()
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.invalid = 0

    # -- keys -----------------------------------------------------------------

    def graph_key(
        self,
        workload: str,
        which: str,
        program_input: ProgramInput,
        extra: Optional[Mapping[str, Any]] = None,
    ) -> str:
        """The content address of one profile: hex SHA-256 of the full
        (workload, input, code version, extra config) fingerprint."""
        fields: Dict[str, Any] = {
            "kind": "callloop-graph",
            "schema": CACHE_SCHEMA_VERSION,
            "code_version": _code_version(),
            "workload": workload,
            "which": which,
            "input": {
                "name": program_input.name,
                "seed": program_input.seed,
                "params": sorted(
                    # Per-value canonical JSON keeps the type in the key:
                    # 1 -> "1", 1.0 -> "1.0", True -> "true", "1" -> "\"1\"".
                    (str(k), json.dumps(v, sort_keys=True, default=repr))
                    for k, v in program_input.params.items()
                ),
            },
            "extra": dict(extra) if extra else {},
        }
        blob = json.dumps(fields, sort_keys=True).encode()
        return hashlib.sha256(blob).hexdigest()

    def path_for(self, key: str) -> Path:
        """Where the entry for *key* lives (two-level fan-out dir)."""
        return self.root / key[:2] / f"{key}.json"

    # -- load / store ---------------------------------------------------------

    def load_graph(self, key: str) -> Optional[CallLoopGraph]:
        """The cached graph for *key*, or None on a miss.

        Anything wrong with the entry — unreadable, truncated JSON,
        unknown format version, missing fields — is treated as a miss;
        the bad file is removed so the re-profiled result can replace it.
        """
        path = self.path_for(key)
        try:
            data = json.loads(path.read_text())
            graph = graph_from_dict(data["graph"])
        except FileNotFoundError:
            self.misses += 1
            return None
        except (json.JSONDecodeError, KeyError, TypeError, ValueError, OSError):
            self.invalid += 1
            self.misses += 1
            try:
                path.unlink()
            except OSError:
                pass
            return None
        self.hits += 1
        return graph

    def store_graph(self, key: str, graph: CallLoopGraph) -> Path:
        """Atomically write *graph* under *key*; returns the entry path."""
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        doc = {"key": key, "graph": graph_to_dict(graph)}
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as f:
                json.dump(doc, f, sort_keys=True)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.stores += 1
        return path

    # -- maintenance ----------------------------------------------------------

    def clear(self) -> int:
        """Delete every entry, including orphaned ``.tmp`` files left by
        crashed writes; returns the number of files removed."""
        removed = 0
        if self.root.exists():
            for pattern in ("*/*.json", "*/*.tmp"):
                for entry in self.root.glob(pattern):
                    try:
                        entry.unlink()
                    except OSError:
                        continue
                    removed += 1
        return removed

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ProfileCache({str(self.root)!r}: {self.hits} hits, "
            f"{self.misses} misses, {self.stores} stores)"
        )
