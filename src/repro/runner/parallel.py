"""Process-pool fan-out over independent profile jobs.

Profiles of different (workload, input) pairs share nothing, so they
parallelize embarrassingly well — Meng et al.'s observation for binary
analysis passes applies verbatim here.  The pool is
``ProcessPoolExecutor`` (the engine is pure Python; threads would
serialize on the GIL), results come back in submission order, and a
worker crash surfaces as the underlying exception rather than a hang.

``max_workers <= 1`` (or a single job) runs inline in the calling
process with identical semantics — the serial path and the parallel
path return byte-identical results because graph serialization is exact
and the engine is deterministic.
"""

from __future__ import annotations

import dataclasses
import os
from concurrent.futures import ProcessPoolExecutor
from typing import Iterable, List, Optional

from repro.runner.jobs import (
    ProfileJob,
    ProfileJobResult,
    ensure_picklable,
    run_profile_job,
)


def available_cpus() -> int:
    """CPUs actually available to this process, not the machine total.

    Containers and batch schedulers routinely pin processes to a subset
    of cores; sizing a pool by ``os.cpu_count()`` then oversubscribes
    the allowance.  Prefers ``os.process_cpu_count()`` (3.13+), falls
    back to the CPU-affinity mask where the platform exposes one, and
    only then to the raw machine count.
    """
    getter = getattr(os, "process_cpu_count", None)
    if getter is not None:  # pragma: no cover - Python 3.13+
        count = getter()
        if count:
            return count
    if hasattr(os, "sched_getaffinity"):
        try:
            count = len(os.sched_getaffinity(0))
            if count:
                return count
        except OSError:  # pragma: no cover - exotic platforms
            pass
    return os.cpu_count() or 1


def default_jobs() -> int:
    """A sensible worker count: the CPUs available to this process.

    Only the *default* is clamped — an explicit ``max_workers`` passed
    to :func:`run_profile_jobs` is honored as given, so callers (and
    tests) can deliberately oversubscribe.
    """
    return available_cpus()


def run_profile_jobs(
    jobs: Iterable[ProfileJob], max_workers: Optional[int] = None
) -> List[ProfileJobResult]:
    """Run every job, fanning out across *max_workers* processes.

    Results are returned in job order.  Every job is checked for
    picklability up front (:func:`~repro.runner.jobs.ensure_picklable`)
    so a bad job fails fast with a clear error instead of killing the
    pool mid-run.
    """
    from repro.telemetry import get_telemetry

    job_list = list(jobs)
    if max_workers is None:
        max_workers = default_jobs()
    tm = get_telemetry()
    if tm.enabled:
        # Stamp the session's run id onto outgoing jobs so worker
        # telemetry snapshots stitch back into this run's timeline.
        job_list = [
            dataclasses.replace(job, run_id=tm.run_id)
            if job.run_id is None
            else job
            for job in job_list
        ]
    if max_workers > 1 and len(job_list) > 1:
        for job in job_list:
            ensure_picklable(job)
        workers = min(max_workers, len(job_list))
        if tm.enabled:
            tm.gauge("runner.pool.queue_depth", len(job_list))
            tm.gauge("runner.pool.workers", workers)
        with tm.span("runner.pool", jobs=len(job_list), workers=workers):
            with ProcessPoolExecutor(max_workers=workers) as pool:
                return list(pool.map(run_profile_job, job_list))
    return [run_profile_job(job) for job in job_list]
