"""Parallel, cached execution layer for the reproduction pipeline.

Call-loop profiling dominates experiment wall-clock: every figure
re-executes its workloads and walks the full traces.  This package
removes that bottleneck twice over:

* :mod:`repro.runner.cache` — a content-addressed on-disk
  :class:`ProfileCache`; profiles are deterministic per (workload,
  input, code version), so a warm cache turns re-profiling into a JSON
  load.
* :mod:`repro.runner.jobs` / :mod:`repro.runner.parallel` — pure,
  picklable :class:`ProfileJob` units fanned out over a
  ``ProcessPoolExecutor``; independent (workload, input) profiles run
  concurrently and return exact serialized graphs.
* :mod:`repro.runner.traces` — a content-addressed :class:`TraceStore`
  of spilled columnar traces; workers hand recordings back as tiny
  :class:`TraceHandle` path records and every consumer memory-maps the
  same on-disk columns instead of pickling arrays across the pool.
* :mod:`repro.runner.summary` — a :class:`RunLog` of per-job timings
  and cache hits/misses, rendered as a standard report table.  Since
  PR 2 it is a shim over :mod:`repro.telemetry`: acquisitions are
  ``runner.acquire`` spans/counters, and pool workers ship their span
  snapshots back through :class:`ProfileJobResult.telemetry`.

The memoizing :class:`~repro.experiments.runner.Runner` threads all
three together (``Runner(cache=..., jobs=...)``), and the CLI exposes
them as ``repro experiment NAME --jobs N [--cache-dir DIR | --no-cache]``.
"""

from repro.runner.cache import CACHE_SCHEMA_VERSION, ProfileCache, default_cache_dir
from repro.runner.jobs import (
    ProfileJob,
    ProfileJobResult,
    UnpicklableJobError,
    ensure_picklable,
    run_profile_job,
)
from repro.runner.parallel import default_jobs, run_profile_jobs
from repro.runner.summary import RunEvent, RunLog
from repro.runner.traces import (
    TRACE_SPILL_ROWS,
    TraceHandle,
    TraceStore,
    default_trace_dir,
)

__all__ = [
    "CACHE_SCHEMA_VERSION",
    "ProfileCache",
    "default_cache_dir",
    "ProfileJob",
    "ProfileJobResult",
    "UnpicklableJobError",
    "ensure_picklable",
    "run_profile_job",
    "default_jobs",
    "run_profile_jobs",
    "RunEvent",
    "RunLog",
    "TRACE_SPILL_ROWS",
    "TraceHandle",
    "TraceStore",
    "default_trace_dir",
]
