"""Data-cache simulation: the substitute for the paper's ATOM/Cheetah
infrastructure.

:mod:`repro.cache.cache` is a direct set-associative LRU simulator;
:mod:`repro.cache.stackdist` is the Cheetah-style Mattson stack-distance
simulator that evaluates *all* associativities of a fixed-set-count cache
in one pass — exactly the 512-set, 64-byte-block, 1..8-way (32KB..256KB)
space of the paper's Section 6.1;
:mod:`repro.cache.reconfig` implements the phase-driven adaptive cache
sizing protocol used in Figure 10.
"""

from repro.cache.cache import CacheConfig, SetAssocCache
from repro.cache.stackdist import MultiAssocCacheSim, profile_intervals
from repro.cache.reconfig import (
    ReconfigResult,
    adaptive_average_size,
    best_fixed_ways,
)

__all__ = [
    "CacheConfig",
    "SetAssocCache",
    "MultiAssocCacheSim",
    "profile_intervals",
    "ReconfigResult",
    "adaptive_average_size",
    "best_fixed_ways",
]
