"""Direct set-associative LRU cache simulation.

Used for runtime simulation at a single configuration and as the
ground-truth cross-check for the stack-distance simulator (the two must
agree exactly at every associativity).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List

import numpy as np


@dataclass(frozen=True)
class CacheConfig:
    """Geometry (and replacement policy) of one cache configuration.

    Only true LRU satisfies the stack inclusion property the
    multi-associativity simulator relies on; FIFO is provided for the
    replacement-policy ablation (and for users modeling simpler
    hardware).
    """

    num_sets: int = 512
    ways: int = 2
    line_bytes: int = 64
    policy: str = "lru"

    def __post_init__(self) -> None:
        if self.num_sets <= 0 or self.ways <= 0 or self.line_bytes <= 0:
            raise ValueError("cache dimensions must be positive")
        if self.num_sets & (self.num_sets - 1):
            raise ValueError("num_sets must be a power of two")
        if self.line_bytes & (self.line_bytes - 1):
            raise ValueError("line_bytes must be a power of two")
        if self.policy not in ("lru", "fifo"):
            raise ValueError("policy must be 'lru' or 'fifo'")

    @property
    def size_bytes(self) -> int:
        return self.num_sets * self.ways * self.line_bytes

    @property
    def size_kb(self) -> float:
        return self.size_bytes / 1024.0

    def __str__(self) -> str:
        return f"{self.size_kb:g}KB ({self.ways}-way, {self.num_sets} sets)"


class SetAssocCache:
    """A set-associative cache with true LRU replacement."""

    def __init__(self, config: CacheConfig):
        self.config = config
        self._line_shift = config.line_bytes.bit_length() - 1
        self._set_mask = config.num_sets - 1
        self._sets: List[List[int]] = [[] for _ in range(config.num_sets)]
        self.hits = 0
        self.misses = 0

    def access(self, address: int) -> bool:
        """Access one byte address; returns True on hit."""
        line = address >> self._line_shift
        set_index = line & self._set_mask
        ways = self._sets[set_index]
        if self.config.policy == "fifo":
            if line in ways:
                self.hits += 1  # FIFO: no recency update on hit
                return True
            self.misses += 1
            ways.insert(0, line)
            if len(ways) > self.config.ways:
                ways.pop()
            return False
        try:
            ways.remove(line)
        except ValueError:
            self.misses += 1
            ways.insert(0, line)
            if len(ways) > self.config.ways:
                ways.pop()
            return False
        ways.insert(0, line)
        self.hits += 1
        return True

    def access_many(self, addresses: Iterable[int]) -> int:
        """Access a sequence; returns the number of misses incurred."""
        before = self.misses
        for address in addresses:
            self.access(int(address))
        return self.misses - before

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        if self.accesses == 0:
            return 0.0
        return self.misses / self.accesses

    def flush(self) -> None:
        """Invalidate all contents (counters are preserved)."""
        self._sets = [[] for _ in range(self.config.num_sets)]
