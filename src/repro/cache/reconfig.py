"""Phase-driven adaptive data-cache reconfiguration (paper Section 6.1).

The protocol reproduced from Shen et al. [23] as the paper describes it:
"during execution the first two intervals for each phase marker are spent
experimenting with the different cache configurations.  In the first two
intervals, the best cache configuration is determined for the phase.
After the first two intervals, when the phase marker is seen again, the
best cache configuration is automatically used for the interval."

The hardware explores configurations by running exploration intervals at
full size while Cheetah-style profiling reveals every configuration's
miss count (see :mod:`repro.cache.stackdist`); the chosen configuration is
the smallest whose misses do not exceed the full-size misses (optionally
by a relative ``tolerance``).  The reported metric is the
instruction-weighted average cache size over the run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

#: intervals spent exploring when a phase is first seen
EXPLORE_INTERVALS = 2


@dataclass
class ReconfigResult:
    """Outcome of one adaptive-cache run."""

    avg_size_kb: float
    total_misses: int
    baseline_misses: int  #: misses at the full (largest) configuration
    ways_per_interval: np.ndarray

    @property
    def miss_increase(self) -> float:
        """Relative miss increase over always-largest (>= 0)."""
        if self.baseline_misses == 0:
            return 0.0
        return (self.total_misses - self.baseline_misses) / self.baseline_misses


def _best_ways(
    misses_by_ways: np.ndarray, tolerance: float
) -> int:
    """Smallest way count whose misses stay within tolerance of full size."""
    max_ways = len(misses_by_ways)
    allowed = misses_by_ways[-1] * (1.0 + tolerance)
    for ways in range(1, max_ways + 1):
        if misses_by_ways[ways - 1] <= allowed:
            return ways
    return max_ways


def adaptive_average_size(
    phase_ids: np.ndarray,
    lengths: np.ndarray,
    accesses: np.ndarray,
    hits: np.ndarray,
    num_sets: int = 512,
    line_bytes: int = 64,
    tolerance: float = 0.0,
) -> ReconfigResult:
    """Run the exploration protocol over an interval sequence.

    Parameters mirror :func:`repro.cache.stackdist.profile_intervals`:
    ``hits[i, w-1]`` is interval *i*'s hits with a w-way cache.
    """
    n = len(phase_ids)
    max_ways = hits.shape[1] if n else 0
    if n == 0:
        return ReconfigResult(0.0, 0, 0, np.zeros(0, dtype=np.int64))
    misses = accesses[:, None] - hits  # (n, ways)

    seen_count: Dict[int, int] = {}
    explored: Dict[int, np.ndarray] = {}
    decided: Dict[int, int] = {}
    ways_used = np.zeros(n, dtype=np.int64)

    for i in range(n):
        phase = int(phase_ids[i])
        count = seen_count.get(phase, 0)
        if count < EXPLORE_INTERVALS:
            # exploring: run at full size, accumulate per-config misses
            ways_used[i] = max_ways
            explored[phase] = explored.get(phase, 0) + misses[i]
            seen_count[phase] = count + 1
            if seen_count[phase] == EXPLORE_INTERVALS:
                decided[phase] = _best_ways(explored[phase], tolerance)
        else:
            ways_used[i] = decided.get(phase, max_ways)

    way_size_kb = num_sets * line_bytes / 1024.0
    weights = lengths / max(1, lengths.sum())
    avg_size_kb = float((ways_used * way_size_kb * weights).sum())
    total_misses = int(misses[np.arange(n), ways_used - 1].sum())
    baseline = int(misses[:, -1].sum())
    return ReconfigResult(avg_size_kb, total_misses, baseline, ways_used)


def best_fixed_ways(
    accesses: np.ndarray, hits: np.ndarray, tolerance: float = 0.0
) -> int:
    """"Best Fixed Size": the smallest fixed configuration with the maximum
    hit rate over the whole run (Figure 10's rightmost bar)."""
    total_misses = accesses.sum() - hits.sum(axis=0)
    return _best_ways(total_misses, tolerance)
