"""Mattson stack-distance cache simulation (the Cheetah substitute).

For caches sharing set count and line size, LRU satisfies the inclusion
property: an access that hits at LRU stack depth *d* within its set hits
in every configuration with associativity >= d.  One pass over the trace
therefore yields hit counts for *all* associativities 1..max_ways — the
same trick Shen et al.'s ATOM/Cheetah infrastructure uses, and the reason
the adaptive-cache experiment can evaluate the full 32KB..256KB
configuration space of Section 6.1 without eight separate runs.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Tuple

import numpy as np

from repro.cache.cache import CacheConfig
from repro.engine.events import K_BLOCK
from repro.engine.memory import MemorySystem
from repro.engine.tracing import Trace

if TYPE_CHECKING:  # avoid a circular import with repro.intervals
    from repro.intervals.base import IntervalSet


class MultiAssocCacheSim:
    """Single-pass simulation of every associativity 1..max_ways."""

    def __init__(self, num_sets: int = 512, line_bytes: int = 64, max_ways: int = 8):
        self.base_config = CacheConfig(num_sets, max_ways, line_bytes)
        self.max_ways = max_ways
        self._line_shift = line_bytes.bit_length() - 1
        self._set_mask = num_sets - 1
        self._sets: List[List[int]] = [[] for _ in range(num_sets)]
        #: hit counts by stack depth (index d-1 = hits at depth exactly d)
        self.depth_hits = np.zeros(max_ways, dtype=np.int64)
        self.accesses = 0

    def access(self, address: int) -> int:
        """Access one address; returns the hit depth (0 = miss)."""
        line = address >> self._line_shift
        set_index = line & self._set_mask
        ways = self._sets[set_index]
        self.accesses += 1
        try:
            depth = ways.index(line) + 1
        except ValueError:
            ways.insert(0, line)
            if len(ways) > self.max_ways:
                ways.pop()
            return 0
        del ways[depth - 1]
        ways.insert(0, line)
        self.depth_hits[depth - 1] += 1
        return depth

    def access_many(self, addresses: np.ndarray) -> None:
        line_shift = self._line_shift
        set_mask = self._set_mask
        sets = self._sets
        depth_hits = self.depth_hits
        max_ways = self.max_ways
        self.accesses += len(addresses)
        for address in addresses.tolist():
            line = address >> line_shift
            ways = sets[line & set_mask]
            try:
                depth = ways.index(line)
            except ValueError:
                ways.insert(0, line)
                if len(ways) > max_ways:
                    ways.pop()
                continue
            del ways[depth]
            ways.insert(0, line)
            depth_hits[depth] += 1

    def hits_at_assoc(self) -> np.ndarray:
        """Cumulative hits per associativity: element w-1 = hits with w ways."""
        return np.cumsum(self.depth_hits)

    def misses_at_assoc(self) -> np.ndarray:
        return self.accesses - self.hits_at_assoc()

    def config_for_ways(self, ways: int) -> CacheConfig:
        return CacheConfig(
            self.base_config.num_sets, ways, self.base_config.line_bytes
        )


def profile_events(
    trace: Trace,
    memory: MemorySystem,
    num_sets: int = 512,
    line_bytes: int = 64,
    max_ways: int = 8,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per-block-event cache behavior at every associativity.

    Returns ``(rows, accesses, hits)``: the trace row of each block
    event, its access count, and its hits at each associativity
    (shape (n_events, max_ways)).  Computed once per trace and then
    attributed to any interval partition by summation — the several
    partitions of one run in the experiments share this pass.
    """
    mask = trace.kinds == K_BLOCK
    rows = np.nonzero(mask)[0]
    ids = trace.a[mask]
    n_events = len(rows)
    accesses = np.zeros(n_events, dtype=np.int64)
    hits = np.zeros((n_events, max_ways), dtype=np.int64)
    if n_events == 0:
        return rows, accesses, hits
    sim = MultiAssocCacheSim(num_sets, line_bytes, max_ways)
    memory.reset()
    prev_hits = sim.hits_at_assoc()
    prev_accesses = 0
    for k in range(n_events):
        block_addresses = memory.addresses_for_block(int(ids[k]))
        if len(block_addresses):
            sim.access_many(block_addresses)
            cum = sim.hits_at_assoc()
            hits[k] = cum - prev_hits
            accesses[k] = sim.accesses - prev_accesses
            prev_hits = cum
            prev_accesses = sim.accesses
    return rows, accesses, hits


def profile_intervals(
    trace: Trace,
    interval_set: "IntervalSet",
    memory: MemorySystem,
    num_sets: int = 512,
    line_bytes: int = 64,
    max_ways: int = 8,
) -> Tuple[np.ndarray, np.ndarray]:
    """Per-interval cache behavior at every associativity.

    Returns ``(accesses, hits)`` where ``accesses`` has shape (n,) and
    ``hits`` has shape (n, max_ways): hits[i, w-1] is interval *i*'s hit
    count with a w-way cache (warm across interval boundaries, as in a
    continuously running machine).
    """
    rows, ev_accesses, ev_hits = profile_events(
        trace, memory, num_sets, line_bytes, max_ways
    )
    return attribute_to_intervals(
        interval_set.row_bounds, rows, ev_accesses, ev_hits
    )


def attribute_to_intervals(
    row_bounds: np.ndarray,
    event_rows: np.ndarray,
    event_accesses: np.ndarray,
    event_hits: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray]:
    """Sum per-event cache results into a partition's intervals."""
    n = len(row_bounds) - 1
    max_ways = event_hits.shape[1]
    accesses = np.zeros(n, dtype=np.int64)
    hits = np.zeros((n, max_ways), dtype=np.int64)
    if n == 0 or len(event_rows) == 0:
        return accesses, hits
    idx = np.clip(
        np.searchsorted(row_bounds, event_rows, side="right") - 1, 0, n - 1
    )
    np.add.at(accesses, idx, event_accesses)
    np.add.at(hits, idx, event_hits)
    return accesses, hits
