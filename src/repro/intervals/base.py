"""Interval sets: a partition of one run into contiguous intervals.

Intervals are represented columnar (numpy arrays over intervals) because
every consumer — CoV metrics, SimPoint, cache reconfiguration — works on
whole columns.  Boundaries are stored as *trace row indices* so later
passes (branch predictor, cache simulation) can attribute their per-event
results to intervals with a single ``searchsorted``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Tuple

import numpy as np


def phase_aggregate(
    phase_ids: np.ndarray,
    weights: np.ndarray,
    values: Optional[np.ndarray] = None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Grouped weighted moments over intervals, one ``bincount`` per moment.

    Returns ``(phases, weight_sums, means, variances)`` where ``phases``
    is the sorted distinct phase ids and the other arrays are aligned
    per-phase aggregates: the histogram of *weights* by phase, and the
    weighted mean/population variance of *values* within each phase
    (zeros where a phase carries no weight, and zero mean implies zero
    variance reporting downstream — the same guards as the scalar
    per-phase loop).  With ``values=None`` only the histogram is
    computed and the moment arrays are zeros.

    This replaces the per-phase ``phase_ids == p`` mask loop: one
    ``np.unique`` plus three ``bincount`` calls regardless of how many
    phases the partition has.
    """
    phases, inverse = np.unique(phase_ids, return_inverse=True)
    k = len(phases)
    weights = np.asarray(weights, dtype=np.float64)
    weight_sums = np.bincount(inverse, weights=weights, minlength=k)
    if values is None:
        zeros = np.zeros(k)
        return phases, weight_sums, zeros, zeros.copy()
    values = np.asarray(values, dtype=np.float64)
    weighted_values = np.bincount(inverse, weights=weights * values, minlength=k)
    with np.errstate(invalid="ignore", divide="ignore"):
        means = weighted_values / weight_sums
    means = np.where(weight_sums > 0, means, 0.0)
    dev = values - means[inverse]
    weighted_sq = np.bincount(inverse, weights=weights * dev * dev, minlength=k)
    with np.errstate(invalid="ignore", divide="ignore"):
        variances = weighted_sq / weight_sums
    variances = np.where(weight_sums > 0, variances, 0.0)
    return phases, weight_sums, means, variances


@dataclass(frozen=True)
class Interval:
    """A view of one interval (for convenience APIs and tests)."""

    index: int
    phase_id: int
    start_t: int
    length: int


class IntervalSet:
    """A partition of a run into intervals.

    Attributes
    ----------
    kind:
        ``"fixed"`` or ``"vli"``.
    row_bounds:
        int64 array of length ``n+1``: trace row index where each interval
        begins; the last entry is one past the final trace row.
    start_ts / lengths:
        instruction-count position and length of each interval.
    phase_ids:
        the phase each interval belongs to.  For VLI sets this is the id
        of the marker that opened the interval (0 = unmarked prologue).
        For fixed sets it is -1 until a classifier (e.g. SimPoint) fills
        it in via :meth:`with_phase_ids`.
    cpis / dl1_miss_rates / ...:
        optional metric columns attached by
        :func:`repro.intervals.metrics.attach_metrics`.
    """

    def __init__(
        self,
        program_name: str,
        kind: str,
        row_bounds: np.ndarray,
        start_ts: np.ndarray,
        lengths: np.ndarray,
        phase_ids: Optional[np.ndarray] = None,
    ):
        n = len(lengths)
        if len(start_ts) != n or len(row_bounds) != n + 1:
            raise ValueError("inconsistent interval arrays")
        if n and lengths.min() < 0:
            raise ValueError("negative interval length")
        self.program_name = program_name
        self.kind = kind
        self.row_bounds = row_bounds
        self.start_ts = start_ts
        self.lengths = lengths
        self.phase_ids = (
            phase_ids if phase_ids is not None else np.full(n, -1, dtype=np.int64)
        )
        # metric columns (attached later)
        self.cycles: Optional[np.ndarray] = None
        self.cpis: Optional[np.ndarray] = None
        self.dl1_misses: Optional[np.ndarray] = None
        self.dl1_accesses: Optional[np.ndarray] = None
        self.branch_mispredicts: Optional[np.ndarray] = None
        self.bbvs: Optional[np.ndarray] = None

    # -- basic queries ------------------------------------------------------

    def __len__(self) -> int:
        return len(self.lengths)

    def __iter__(self) -> Iterator[Interval]:
        for i in range(len(self)):
            yield Interval(
                index=i,
                phase_id=int(self.phase_ids[i]),
                start_t=int(self.start_ts[i]),
                length=int(self.lengths[i]),
            )

    @property
    def total_instructions(self) -> int:
        return int(self.lengths.sum())

    @property
    def num_phases(self) -> int:
        """Distinct phase ids actually present."""
        if len(self) == 0:
            return 0
        return len(np.unique(self.phase_ids))

    @property
    def average_length(self) -> float:
        if len(self) == 0:
            return 0.0
        return float(self.lengths.mean())

    @property
    def weights(self) -> np.ndarray:
        """Fraction of execution each interval represents."""
        total = self.lengths.sum()
        if total == 0:
            return np.zeros(len(self))
        return self.lengths / total

    @property
    def dl1_miss_rates(self) -> np.ndarray:
        if self.dl1_misses is None or self.dl1_accesses is None:
            raise ValueError("cache metrics not attached")
        rates = np.zeros(len(self))
        mask = self.dl1_accesses > 0
        rates[mask] = self.dl1_misses[mask] / self.dl1_accesses[mask]
        return rates

    def with_phase_ids(self, phase_ids: np.ndarray) -> "IntervalSet":
        """A copy of this set with classifier-assigned phase ids."""
        if len(phase_ids) != len(self):
            raise ValueError("phase id count mismatch")
        out = IntervalSet(
            self.program_name,
            self.kind,
            self.row_bounds,
            self.start_ts,
            self.lengths,
            np.asarray(phase_ids, dtype=np.int64),
        )
        out.cycles = self.cycles
        out.cpis = self.cpis
        out.dl1_misses = self.dl1_misses
        out.dl1_accesses = self.dl1_accesses
        out.branch_mispredicts = self.branch_mispredicts
        out.bbvs = self.bbvs
        return out

    def check_partition(self, total_instructions: int) -> None:
        """Assert the intervals exactly tile [0, total_instructions)."""
        if len(self) == 0:
            if total_instructions != 0:
                raise AssertionError("empty interval set for non-empty run")
            return
        if self.start_ts[0] != 0:
            raise AssertionError("first interval must start at 0")
        ends = self.start_ts + self.lengths
        if not np.array_equal(ends[:-1], self.start_ts[1:]):
            raise AssertionError("intervals must be contiguous")
        if ends[-1] != total_instructions:
            raise AssertionError(
                f"intervals cover {ends[-1]} of {total_instructions} instructions"
            )
