"""Variable-length interval splitting at phase-marker executions.

"Whenever a marker occurs during execution, that is a start of a new
interval" (paper Section 6.2).  Each VLI carries the phase id of the
marker that opened it; the prologue before the first firing is phase 0.

Several markers can fire at the same instruction count (e.g. entering a
marked loop whose first call site is also marked); they would create
zero-length intervals, so coincident firings collapse to the innermost
(last) marker — the phase id of the non-empty interval that follows.

Markers are *rare* by the paper's own design (Section 6.2 picks
procedure-level edges), which makes marker application an extremely
sparse scan: almost every edge the walker opens misses the marker table.
The shipping path exploits that two ways:

* **batched sparsity** — :class:`_FastBoundaryCollector` implements the
  walker's ``on_edge_iterations`` hook, so a whole run of loop
  back-edge arrivals costs one marker-table lookup; candidate-free runs
  (the overwhelming majority) are skipped wholesale, and marked runs
  extend the boundary list vectorized;
* **segmentation** — ``split_at_markers(..., shards=N)`` cuts the trace
  at the frame-boundary-safe rows planned by
  :meth:`ContextWalker.plan_segments`, collects boundaries per segment
  on the shared shard executors (serial / threads / forked processes),
  and merges the per-segment lists with exact seam fixups: coincident
  firings straddling a seam collapse exactly as the sequential
  collector would, and the prologue / t==0 / end-of-trace rules apply
  only after the merge.

Merged (every-Nth-iteration) markers carry cross-segment counter state,
so marker sets containing them apply sequentially — still batched — and
the segmented request falls back (counted in telemetry).  The per-event
:func:`split_at_markers_scalar` stays in-tree as the oracle and the
``bench-split`` baseline; the ``segmented-split`` verify check pins the
fast and segmented paths against it on every fuzz iteration and golden
workload.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.callloop.graph import NodeTable
from repro.callloop.markers import MarkerSet, MarkerTracker
from repro.callloop.shards import SHARD_EXECUTORS, run_segments
from repro.callloop.walker import ContextHandler, ContextWalker, TraceSegment
from repro.engine.events import K_BLOCK, K_CALL, K_RETURN
from repro.engine.tracing import Trace
from repro.intervals.base import IntervalSet
from repro.ir.program import Program, SourceLoc
from repro.telemetry import get_telemetry


class _BoundaryCollector(ContextHandler):
    """Collects (row, t, phase_id) for every marker firing.

    The per-event form: one marker-table probe per edge open.  Retained
    as the oracle side of :func:`split_at_markers_scalar`;
    :class:`_FastBoundaryCollector` adds the batched back-edge hook the
    shipping path uses.
    """

    def __init__(self, tracker: MarkerTracker, walker: ContextWalker):
        self.tracker = tracker
        self.walker = walker
        self.boundaries: List[Tuple[int, int, int]] = []
        # Without merge_iterations counters, edge_opened is a pure pair
        # lookup — inline it on the hot path.
        self._by_pair = tracker._by_pair if not tracker._counters else None

    def on_edge_open(
        self, src: int, dst: int, t: int, source: Optional[SourceLoc]
    ) -> None:
        by_pair = self._by_pair
        if by_pair is not None:
            marker = by_pair.get((src, dst))
        else:
            marker = self.tracker.edge_opened(src, dst)
        if marker is None:
            return
        boundaries = self.boundaries
        if boundaries and boundaries[-1][1] == t:
            # coincident firing: keep the innermost marker, no empty interval
            boundaries[-1] = (boundaries[-1][0], t, marker.marker_id)
        else:
            boundaries.append((self.walker.row, t, marker.marker_id))


class _FastBoundaryCollector(_BoundaryCollector):
    """Sparsity-aware collector: batched loop back-edge runs.

    The bulk walker hands a whole run of consecutive back-edge arrivals
    of one loop span to :meth:`on_edge_iterations`; a single miss on the
    marker table then skips the entire candidate-free run — the common
    case, since markers are rare procedure-level edges.  Marked runs
    extend the boundary list vectorized, reading the firing rows from
    ``walker.iter_rows``; merged (every-Nth) markers fire on the modular
    arithmetic the per-event counter would produce.  Edge opens outside
    batched runs (calls, loop entries, short runs) still arrive through
    the inherited per-event :meth:`on_edge_open`.
    """

    def on_edge_iterations(
        self,
        head: int,
        body: int,
        t_prev: int,
        ts: np.ndarray,
        source: Optional[SourceLoc],
    ) -> None:
        tracker = self.tracker
        marker = tracker._by_pair.get((head, body))
        if marker is None:
            return  # candidate-free run: one dict miss skips it all
        rows = self.walker.iter_rows
        n = marker.merge_iterations
        if n > 1:
            # Counter resets hook edges opening *into* the loop's head
            # node; a back-edge run only opens head->body, so no reset
            # can land mid-run and the counts are plain arithmetic.
            pair = (head, body)
            count = tracker._counters[pair]
            k = len(ts)
            tracker._counters[pair] = count + k
            fire = np.nonzero(np.arange(count, count + k) % n == 0)[0]
            if not len(fire):
                return
            rows = rows[fire]
            ts = ts[fire]
        # Within a run ts is non-decreasing and the marker is fixed, so
        # the innermost-marker collapse reduces to keeping the first row
        # of each equal-t group.
        if len(ts) > 1:
            keep = np.empty(len(ts), dtype=bool)
            keep[0] = True
            np.greater(ts[1:], ts[:-1], out=keep[1:])
            if not keep.all():
                rows = rows[keep]
                ts = ts[keep]
        rlist = rows.tolist()
        tlist = ts.tolist()
        boundaries = self.boundaries
        start = 0
        if boundaries and boundaries[-1][1] == tlist[0]:
            boundaries[-1] = (boundaries[-1][0], tlist[0], marker.marker_id)
            start = 1
        mid = marker.marker_id
        boundaries.extend(
            (rlist[i], tlist[i], mid) for i in range(start, len(tlist))
        )


def _prescan_boundaries(
    program: Program,
    table: NodeTable,
    tracker: MarkerTracker,
    trace: Trace,
) -> Optional[Tuple[List[Tuple[int, int, int]], int]]:
    """Vectorized candidate pre-scan: marker firings without a walk.

    Every edge the walker can open has a *statically known* source
    context — the parent of a call site or loop header is the innermost
    static loop region covering its address, else the enclosing
    procedure's body — as long as every loop region is entered through
    its header (the same structural property
    :meth:`ContextWalker.plan_segments` relies on).  That turns marker
    application into a handful of column scans over the packed trace:

    * **call markers** ``(X -> P.head)`` fire at CALL rows whose callee
      is P, whose activation is outermost (a searchsorted against P's
      RETURN rows), and whose site's static context is X;
    * **procedure markers** ``(P.head -> P.body)`` fire at every CALL
      row of P (plus t == 0 for the entry procedure);
    * **loop markers** fire at region-entry and back-edge executions of
      the marked header, recovered per activation from the block rows
      of the enclosing procedure (merged every-Nth markers reduce to
      modular arithmetic on the position within each entry run).

    The firings are sorted by (row, open order) and collapsed exactly
    as :class:`_BoundaryCollector` would.  Returns ``None`` — caller
    falls back to the walking path — when a precondition fails: a trace
    block address unknown to the program, a marked or context-relevant
    loop inside a recursive procedure, or a loop region entered
    elsewhere than its header.
    """
    by_pair = tracker._by_pair
    kinds = trace.kinds
    a_col = trace.a
    b_col = trace.b
    n_rows = len(kinds)

    block_mask = kinds == K_BLOCK
    blk_rows = np.nonzero(block_mask)[0]
    baddrs = b_col[blk_rows]
    sizes = np.where(block_mask, trace.c, 0)
    t_after = np.cumsum(sizes)
    total = int(t_after[-1]) if n_rows else 0
    t_before = t_after - sizes

    if len(blk_rows):
        addrs = np.unique(np.asarray([b.address for b in program.blocks]))
        if len(addrs) == 0:
            return None
        pos = np.searchsorted(addrs, baddrs)
        pos = np.minimum(pos, len(addrs) - 1)
        if not np.array_equal(addrs[pos], baddrs):
            return None  # unknown block address — let the walker decide

    loops = table.loops
    entry = program.procedures[program.entry]
    procs = {p.proc_id: p for p in program.procedures.values()}
    proc_span = {
        p.proc_id: (
            min(b.address for b in p.blocks),
            max(b.address for b in p.blocks),
        )
        for p in procs.values()
        if p.blocks
    }
    proc_head_of = {nid: name for name, nid in table.proc_head.items()}
    proc_body_of = {nid: name for name, nid in table.proc_body.items()}
    loop_head_of = {nid: h for h, nid in table.loop_head.items()}
    loop_body_of = {nid: h for h, nid in table.loop_body.items()}
    proc_id_of = {p.name: p.proc_id for p in procs.values()}

    def chain_of(addr: int) -> List[int]:
        """Static loop chain covering *addr*, outermost first."""
        return sorted(
            h for h, lp in loops.items() if h <= addr <= lp.latch_branch_address
        )

    def ctx_node(addr: int, exclude: Optional[int] = None) -> int:
        """Static parent context of a call site / loop header address."""
        chain = [h for h in chain_of(addr) if h != exclude]
        if chain:
            return table.loop_body[chain[-1]]
        for pid, (lo, hi) in proc_span.items():
            if lo <= addr <= hi:
                return table.proc_body[procs[pid].name]
        return -1  # address outside every procedure: never matches

    call_rows = np.nonzero(kinds == K_CALL)[0]
    callees = b_col[call_rows]
    ret_rows = np.nonzero(kinds == K_RETURN)[0]
    ret_procs = a_col[ret_rows]

    proc_calls = {}  # proc_id -> (call rows, outermost mask, recursive)

    def calls_of(pid: int):
        got = proc_calls.get(pid)
        if got is None:
            cp = call_rows[callees == pid]
            rp = ret_rows[ret_procs == pid]
            active = np.arange(len(cp)) - np.searchsorted(rp, cp)
            if pid == entry.proc_id:
                active += 1
            got = proc_calls[pid] = (cp, active == 0, bool((active > 0).any()))
        return got

    # Classify markers and collect (proc, header) loop work: marked
    # loops need entry/back-edge rows; every region covering a marked
    # call site or marked header must be validated as header-entered
    # (otherwise the static context is not the walker's context).
    validate: dict = {}  # header -> proc_id
    emit: List[Tuple] = []  # (kind, marker, src, extra)

    def covering(addr: int, exclude: Optional[int] = None) -> bool:
        for h in chain_of(addr):
            if h != exclude:
                pid = _proc_of_addr(h, proc_span)
                if pid is None:
                    return False
                validate[h] = pid
        return True

    for (src, dst), marker in by_pair.items():
        head_proc = proc_head_of.get(dst)
        body_proc = proc_body_of.get(dst)
        head_loop = loop_head_of.get(dst)
        body_loop = loop_body_of.get(dst)
        if head_proc is not None:
            pid = proc_id_of[head_proc]
            if src == 0:
                if pid == entry.proc_id:
                    emit.append(("entry", marker, 0, None))
                continue  # root edge of a non-entry proc never opens
            cp, outer, _ = calls_of(pid)
            for site in np.unique(a_col[cp]).tolist():
                if not covering(site):
                    return None
            emit.append(("call", marker, src, pid))
        elif body_proc is not None:
            pid = proc_id_of[body_proc]
            if src != table.proc_head[body_proc]:
                continue  # head->body opens only from the head
            emit.append(("proc-body", marker, src, pid))
            if pid == entry.proc_id:
                emit.append(("entry", marker, src, None))
        elif head_loop is not None:
            pid = _proc_of_addr(head_loop, proc_span)
            if pid is None:
                continue
            validate[head_loop] = pid
            if not covering(head_loop, exclude=head_loop):
                return None
            emit.append(("loop-entry", marker, src, head_loop))
        elif body_loop is not None:
            if src != table.loop_head[body_loop]:
                continue
            pid = _proc_of_addr(body_loop, proc_span)
            if pid is None:
                continue
            validate[body_loop] = pid
            emit.append(("loop-iter", marker, src, body_loop))
        # any other shape never opens: no firings

    # Per-procedure block rows and activation ids, for every procedure
    # holding a loop we must scan or validate.
    proc_rows = {}  # proc_id -> (rows, addrs, activation ids)

    def rows_of(pid: int):
        got = proc_rows.get(pid)
        if got is None:
            lo, hi = proc_span[pid]
            rows = blk_rows[(baddrs >= lo) & (baddrs <= hi)]
            cp, _, recursive = calls_of(pid)
            if recursive:
                return None  # nested activations interleave: walk instead
            act = np.searchsorted(cp, rows)
            got = proc_rows[pid] = (rows, b_col[rows], act)
        return got

    # loop runs: header -> (entry rows, iteration rows, run positions)
    loop_runs = {}
    for header, pid in validate.items():
        got = rows_of(pid)
        if got is None:
            return None
        rows, bP, act = got
        latch = loops[header].latch_branch_address
        in_reg = (bP >= header) & (bP <= latch)
        if not in_reg.any():
            loop_runs[header] = (
                np.empty(0, np.int64),
                np.empty(0, np.int64),
                np.empty(0, np.int64),
            )
            continue
        prev_in = np.empty(len(in_reg), dtype=bool)
        prev_in[0] = False
        prev_in[1:] = in_reg[:-1]
        act_change = np.empty(len(act), dtype=bool)
        act_change[0] = True
        act_change[1:] = act[1:] != act[:-1]
        start = in_reg & (~prev_in | act_change)
        if not np.array_equal(bP[start], np.full(int(start.sum()), header)):
            return None  # region entered elsewhere than its header
        h_idx = np.nonzero(in_reg & (bP == header))[0]
        run_id = np.cumsum(start)
        h_run = run_id[h_idx]
        new_run = np.empty(len(h_idx), dtype=bool)
        if len(h_idx):
            new_run[0] = True
            new_run[1:] = h_run[1:] != h_run[:-1]
        ar = np.arange(len(h_idx))
        pos = ar - np.maximum.accumulate(np.where(new_run, ar, 0))
        loop_runs[header] = (rows[h_idx[new_run]], rows[h_idx], pos)

    # Emit firing arrays: (row, order) pairs sorted globally reproduce
    # the walker's open order (order 0 = edge into a head node, 1 =
    # head->body at the same row; t == 0 entry opens sort first).
    frows: List[np.ndarray] = []
    forder: List[np.ndarray] = []
    fmid: List[np.ndarray] = []

    def add(rows: np.ndarray, order: int, marker) -> None:
        if not len(rows):
            return
        frows.append(rows.astype(np.int64))
        forder.append(np.full(len(rows), order, dtype=np.int64))
        fmid.append(np.full(len(rows), marker.marker_id, dtype=np.int64))

    for kind, marker, src, extra in emit:
        if kind == "entry":
            add(np.array([-1]), 0 if src == 0 else 1, marker)
        elif kind == "call":
            cp, outer, _ = calls_of(extra)
            sites = a_col[cp]
            match = np.zeros(len(cp), dtype=bool)
            for site in np.unique(sites).tolist():
                if ctx_node(site) == src:
                    match |= sites == site
            add(cp[outer & match], 0, marker)
        elif kind == "proc-body":
            cp, _, _ = calls_of(extra)
            add(cp, 1, marker)
        elif kind == "loop-entry":
            entries, _, _ = loop_runs[extra]
            if ctx_node(extra, exclude=extra) == src:
                add(entries, 0, marker)
        else:  # loop-iter
            _, iters, pos = loop_runs[extra]
            n = marker.merge_iterations
            if n > 1:
                fire = pos % n == 0
                iters = iters[fire]
            add(iters, 1, marker)

    boundaries: List[Tuple[int, int, int]] = []
    if frows:
        rows = np.concatenate(frows)
        order = np.concatenate(forder)
        mids = np.concatenate(fmid)
        sort = np.argsort((rows + 1) * 2 + order, kind="stable")
        rows = rows[sort]
        mids = mids[sort]
        if n_rows:
            ts = np.where(rows >= 0, t_before[np.maximum(rows, 0)], 0)
        else:
            ts = np.zeros(len(rows), dtype=np.int64)
        for row, t, mid in zip(rows.tolist(), ts.tolist(), mids.tolist()):
            if boundaries and boundaries[-1][1] == t:
                boundaries[-1] = (boundaries[-1][0], t, mid)
            else:
                boundaries.append((row, t, mid))
    return boundaries, total


def _proc_of_addr(addr: int, proc_span: dict) -> Optional[int]:
    for pid, (lo, hi) in proc_span.items():
        if lo <= addr <= hi:
            return pid
    return None


def _merge_boundaries(
    per_segment: List[List[Tuple[int, int, int]]],
) -> List[Tuple[int, int, int]]:
    """Concatenate per-segment boundary lists with exact seam fixups.

    Each segment's list is already internally collapsed (strictly
    increasing t), so the only possible coincidence is the first firing
    of a segment landing on the last firing before the seam — collapse
    it exactly as the sequential collector would: keep the earlier row,
    take the innermost (later) marker.  Empty segments (no candidate in
    their span) drop out naturally, which also lets a coincidence reach
    across them.
    """
    merged: List[Tuple[int, int, int]] = []
    for bounds in per_segment:
        if not bounds:
            continue
        if merged and merged[-1][1] == bounds[0][1]:
            merged[-1] = (merged[-1][0], merged[-1][1], bounds[0][2])
            merged.extend(bounds[1:])
        else:
            merged.extend(bounds)
    return merged


def _finalize(
    program: Program,
    num_rows: int,
    total: int,
    bounds: List[Tuple[int, int, int]],
) -> IntervalSet:
    """Turn a merged boundary list into the :class:`IntervalSet`.

    Applies the post-merge rules shared by every split path: firings at
    t == 0 set the first interval's phase id and drop (the prologue
    would be empty), and a firing exactly at end of execution drops its
    empty tail interval.
    """
    # Drop firings at t == 0 by advancing an index — re-slicing the list
    # per firing was quadratic when many coincident t==0 firings piled up.
    first_phase = 0
    i = 0
    n = len(bounds)
    while i < n and bounds[i][1] == 0:
        first_phase = bounds[i][2]
        i += 1
    if i:
        bounds = bounds[i:]

    rows = np.array([0] + [b[0] for b in bounds] + [num_rows], dtype=np.int64)
    start_ts = np.array([0] + [b[1] for b in bounds], dtype=np.int64)
    ends = np.concatenate((start_ts[1:], [total]))
    lengths = (ends - start_ts).astype(np.int64)
    phase_ids = np.array([first_phase] + [b[2] for b in bounds], dtype=np.int64)

    # A marker can fire exactly at end of execution; drop the empty tail.
    if len(lengths) > 1 and lengths[-1] == 0:
        rows = np.concatenate((rows[:-2], rows[-1:]))
        start_ts = start_ts[:-1]
        lengths = lengths[:-1]
        phase_ids = phase_ids[:-1]

    return IntervalSet(program.name, "vli", rows, start_ts, lengths, phase_ids)


def split_at_markers_prescan(
    program: Program,
    trace: Trace,
    marker_set: MarkerSet,
    table: Optional[NodeTable] = None,
) -> Optional[IntervalSet]:
    """The pure pre-scan split, or ``None`` if its preconditions fail.

    :func:`split_at_markers` uses this internally; the verify harness
    probes it directly so the ``segmented-split`` check can tell
    whether a fuzz program exercised the pre-scan or its fallback.
    """
    table = table or NodeTable(program)
    tracker = MarkerTracker(marker_set, table)
    got = _prescan_boundaries(program, table, tracker, trace)
    if got is None:
        return None
    bounds, total = got
    return _finalize(program, len(trace), total, bounds)


def split_at_markers_scalar(
    program: Program,
    trace: Trace,
    marker_set: MarkerSet,
    table: Optional[NodeTable] = None,
) -> IntervalSet:
    """Marker application through per-event callbacks — the oracle.

    One marker-table probe per edge open, no batching, no segmentation:
    the pre-sparsity implementation, retained as the reference the
    ``segmented-split`` verify check pins the fast paths against and as
    the baseline side of ``make bench-split``.
    """
    table = table or NodeTable(program)
    walker = ContextWalker(program, table)
    tracker = MarkerTracker(marker_set, table)
    collector = _BoundaryCollector(tracker, walker)
    total = walker.walk(trace, collector)
    return _finalize(program, len(trace), total, collector.boundaries)


def split_at_markers(
    program: Program,
    trace: Trace,
    marker_set: MarkerSet,
    table: Optional[NodeTable] = None,
    shards: Optional[int] = None,
    executor: Optional[str] = None,
) -> IntervalSet:
    """Partition *trace* into VLIs at the executions of *marker_set*.

    The default (``shards`` ``None``/``1``) walks once with the batched
    sparsity-aware collector.  ``shards > 1`` additionally cuts the
    trace at frame-boundary-safe rows and collects boundaries per
    segment under *executor* (``"serial"``, ``"threads"`` — the default
    — or ``"processes"``), merging with exact seam fixups; traces
    without safe cut points, and marker sets with merged
    (every-Nth-iteration) markers, fall back to the sequential fast
    walk.  Every path returns a result identical to
    :func:`split_at_markers_scalar`, so sharding is purely a throughput
    knob — the ``segmented-split`` verify check pins this.
    """
    if executor is not None and executor not in SHARD_EXECUTORS:
        raise ValueError(
            f"unknown shard executor {executor!r}; "
            f"expected one of {SHARD_EXECUTORS}"
        )
    table = table or NodeTable(program)
    tracker = MarkerTracker(marker_set, table)
    tm = get_telemetry()
    if not tm.enabled:
        return _split(program, trace, tracker, table, shards, executor)
    with tm.span(
        "vli.split", program=program.name, shards=shards or 1
    ):
        result = _split(program, trace, tracker, table, shards, executor)
        tm.counter("vli.split.intervals", len(result.lengths))
    return result


def _split(
    program: Program,
    trace: Trace,
    tracker: MarkerTracker,
    table: NodeTable,
    shards: Optional[int],
    executor: Optional[str],
) -> IntervalSet:
    tm = get_telemetry()
    walker = ContextWalker(program, table)
    if shards is not None and shards > 1:
        # Merged markers carry cross-segment counter state; apply them
        # sequentially (the batched collector still handles them).
        segments = (
            walker.plan_segments(trace, shards) if not tracker._counters else []
        )
        if segments:
            return _split_segmented(
                program, trace, tracker, table, walker, segments, executor
            )
        if tm.enabled:
            tm.counter("vli.split.sequential_fallbacks")
    else:
        got = _prescan_boundaries(program, table, tracker, trace)
        if got is not None:
            bounds, total = got
            if tm.enabled:
                tm.counter("vli.split.prescans")
            return _finalize(program, len(trace), total, bounds)
        if tm.enabled:
            tm.counter("vli.split.prescan_fallbacks")
    collector = _FastBoundaryCollector(tracker, walker)
    total = walker.walk(trace, collector)
    return _finalize(program, len(trace), total, collector.boundaries)


def _split_segmented(
    program: Program,
    trace: Trace,
    tracker: MarkerTracker,
    table: NodeTable,
    walker: ContextWalker,
    segments: List[TraceSegment],
    executor: Optional[str],
) -> IntervalSet:
    tm = get_telemetry()
    executor = executor or "threads"
    # Build the shared lookup tables once, before any worker touches
    # the walker (they are lazily cached and not locked).
    shared_tables = walker._ensure_addr_tables()
    total = int(
        np.sum(np.where(trace.kinds == K_BLOCK, trace.c, 0), dtype=np.int64)
    )

    def walker_for() -> ContextWalker:
        w = ContextWalker(program, table)
        w._addr_tables = shared_tables
        return w

    with tm.span(
        "vli.split_segments", segments=len(segments), executor=executor
    ):
        sharded = run_segments(
            walker_for,
            lambda w: _FastBoundaryCollector(tracker, w),
            lambda collector: collector.boundaries,
            trace,
            segments,
            executor,
        )
        if tm.enabled:
            # Parent-emitted shard spans: workers only *measure*
            # (monotonic_ns brackets), so nothing touches the session
            # from worker threads or forked children.
            for i, (_, (t0, t1)) in enumerate(sharded):
                tm.emit_span(
                    "vli.split_segment",
                    t0,
                    t1,
                    tid=tm.lane(f"shard {i}"),
                    segment=i,
                    executor=executor,
                )
            tm.counter("vli.split.segments", len(segments))
    bounds = _merge_boundaries([b for b, _ in sharded])
    return _finalize(program, len(trace), total, bounds)
