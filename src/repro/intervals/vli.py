"""Variable-length interval splitting at phase-marker executions.

"Whenever a marker occurs during execution, that is a start of a new
interval" (paper Section 6.2).  Each VLI carries the phase id of the
marker that opened it; the prologue before the first firing is phase 0.

Several markers can fire at the same instruction count (e.g. entering a
marked loop whose first call site is also marked); they would create
zero-length intervals, so coincident firings collapse to the innermost
(last) marker — the phase id of the non-empty interval that follows.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.callloop.graph import NodeTable
from repro.callloop.markers import MarkerSet, MarkerTracker
from repro.callloop.walker import ContextHandler, ContextWalker
from repro.engine.tracing import Trace
from repro.intervals.base import IntervalSet
from repro.ir.program import Program, SourceLoc


class _BoundaryCollector(ContextHandler):
    """Collects (row, t, phase_id) for every marker firing."""

    def __init__(self, tracker: MarkerTracker, walker: ContextWalker):
        self.tracker = tracker
        self.walker = walker
        self.boundaries: List[Tuple[int, int, int]] = []
        # Without merge_iterations counters, edge_opened is a pure pair
        # lookup — inline it on the hot path.
        self._by_pair = tracker._by_pair if not tracker._counters else None

    def on_edge_open(
        self, src: int, dst: int, t: int, source: Optional[SourceLoc]
    ) -> None:
        by_pair = self._by_pair
        if by_pair is not None:
            marker = by_pair.get((src, dst))
        else:
            marker = self.tracker.edge_opened(src, dst)
        if marker is None:
            return
        boundaries = self.boundaries
        if boundaries and boundaries[-1][1] == t:
            # coincident firing: keep the innermost marker, no empty interval
            boundaries[-1] = (boundaries[-1][0], t, marker.marker_id)
        else:
            boundaries.append((self.walker.row, t, marker.marker_id))


def split_at_markers(
    program: Program,
    trace: Trace,
    marker_set: MarkerSet,
    table: Optional[NodeTable] = None,
) -> IntervalSet:
    """Partition *trace* into VLIs at the executions of *marker_set*."""
    table = table or NodeTable(program)
    walker = ContextWalker(program, table)
    tracker = MarkerTracker(marker_set, table)
    collector = _BoundaryCollector(tracker, walker)
    total = walker.walk(trace, collector)

    bounds = collector.boundaries
    # Drop a firing at t == 0: the prologue interval would be empty; the
    # first interval simply takes that marker's phase id.
    first_phase = 0
    while bounds and bounds[0][1] == 0:
        first_phase = bounds[0][2]
        bounds = bounds[1:]

    rows = np.array([0] + [b[0] for b in bounds] + [len(trace)], dtype=np.int64)
    start_ts = np.array([0] + [b[1] for b in bounds], dtype=np.int64)
    ends = np.concatenate((start_ts[1:], [total]))
    lengths = (ends - start_ts).astype(np.int64)
    phase_ids = np.array([first_phase] + [b[2] for b in bounds], dtype=np.int64)

    # A marker can fire exactly at end of execution; drop the empty tail.
    if len(lengths) > 1 and lengths[-1] == 0:
        rows = np.concatenate((rows[:-2], rows[-1:]))
        start_ts = start_ts[:-1]
        lengths = lengths[:-1]
        phase_ids = phase_ids[:-1]

    return IntervalSet(program.name, "vli", rows, start_ts, lengths, phase_ids)
