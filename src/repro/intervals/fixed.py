"""Fixed-length interval splitting (the prior-work baseline).

The paper's earlier SimPoint work divides execution into non-overlapping
fixed-length intervals of 1/10/100 million instructions.  We cut at basic
block boundaries (the first block whose end crosses the target), so
interval lengths equal the nominal length up to one block — the same
granularity hardware BBV collection achieves.
"""

from __future__ import annotations

import numpy as np

from repro.engine.events import K_BLOCK
from repro.engine.tracing import Trace
from repro.intervals.base import IntervalSet


def split_fixed(
    trace: Trace, interval_length: int, program_name: str = ""
) -> IntervalSet:
    """Partition *trace* into intervals of ~``interval_length`` instructions."""
    if interval_length <= 0:
        raise ValueError("interval_length must be positive")
    mask = trace.kinds == K_BLOCK
    rows = np.nonzero(mask)[0]
    sizes = trace.c[mask]
    if len(rows) == 0:
        return IntervalSet(
            program_name,
            "fixed",
            np.array([0], dtype=np.int64),
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.int64),
        )
    cum = np.cumsum(sizes)
    total = int(cum[-1])

    targets = np.arange(interval_length, total, interval_length, dtype=np.int64)
    # index of the block event whose end first reaches each target
    cut = np.searchsorted(cum, targets, side="left")
    # interval boundary = the event *after* the crossing block
    starts_be = np.unique(np.concatenate(([0], cut + 1)))
    starts_be = starts_be[starts_be < len(rows)]

    row_bounds = np.concatenate((rows[starts_be], [len(trace)])).astype(np.int64)
    start_ts = np.concatenate(([0], cum[starts_be[1:] - 1])).astype(np.int64)
    ends = np.concatenate((start_ts[1:], [total]))
    lengths = (ends - start_ts).astype(np.int64)
    return IntervalSet(program_name, "fixed", row_bounds, start_ts, lengths)
