"""Interval infrastructure: fixed-length and marker-driven VLI splitting,
basic block vectors, and per-interval performance metrics.

An :class:`~repro.intervals.base.IntervalSet` partitions one recorded run
into contiguous intervals — either fixed-length (the prior-work baseline)
or variable-length cut at phase-marker executions — and carries each
interval's basic block vector and, once metrics are attached, its CPI and
data-cache miss rate.
"""

from repro.intervals.base import Interval, IntervalSet
from repro.intervals.fixed import split_fixed
from repro.intervals.vli import (
    split_at_markers,
    split_at_markers_prescan,
    split_at_markers_scalar,
)
from repro.intervals.bbv import collect_bbvs
from repro.intervals.metrics import MetricsConfig, attach_metrics

__all__ = [
    "Interval",
    "IntervalSet",
    "split_fixed",
    "split_at_markers",
    "split_at_markers_prescan",
    "split_at_markers_scalar",
    "collect_bbvs",
    "MetricsConfig",
    "attach_metrics",
]
