"""Attaching performance metrics (CPI, DL1 miss rate) to interval sets.

The expensive simulations (stack-distance cache, branch predictor) depend
only on the *trace*, not on how it is partitioned — and the experiments
partition the same run many ways (fixed 1K/10K/100K, several marker
sets).  :func:`compute_trace_metrics` therefore produces per-event
results once; :func:`attach_metrics` attributes them to any partition
with a ``searchsorted`` and fills in the interval set's metric columns.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.cache.stackdist import attribute_to_intervals, profile_events
from repro.engine.events import K_BLOCK
from repro.engine.memory import MemorySystem
from repro.engine.tracing import Trace
from repro.intervals.base import IntervalSet
from repro.intervals.bbv import collect_bbvs
from repro.perf.branch import mispredicts_per_event
from repro.perf.model import PerfModel
from repro.ir.program import Program, ProgramInput


@dataclass(frozen=True)
class MetricsConfig:
    """What to simulate when attaching metrics.

    The default DL1 is the 64KB 2-way point of the paper's 512-set 64B
    configuration space; ``max_ways`` keeps the full space profiled so the
    reconfiguration experiment can reuse the same pass.
    """

    num_sets: int = 512
    line_bytes: int = 64
    dl1_ways: int = 2
    max_ways: int = 8
    perf: PerfModel = field(default_factory=PerfModel)
    with_bbvs: bool = True

    def __post_init__(self) -> None:
        if not 1 <= self.dl1_ways <= self.max_ways:
            raise ValueError("need 1 <= dl1_ways <= max_ways")


@dataclass
class TraceMetrics:
    """Per-event simulation results of one run (partition independent)."""

    config: MetricsConfig
    block_rows: np.ndarray  #: trace row of each block event
    base_cycles: np.ndarray  #: per block event
    cache_accesses: np.ndarray  #: per block event
    cache_hits: np.ndarray  #: (n_events, max_ways)
    branch_rows: np.ndarray
    branch_mispredicts: np.ndarray  #: 0/1 per branch event


@dataclass
class CacheProfile:
    """Per-interval, per-associativity cache behavior of one partition."""

    accesses: np.ndarray  # (n,)
    hits: np.ndarray  # (n, max_ways)

    def misses_at(self, ways: int) -> np.ndarray:
        return self.accesses - self.hits[:, ways - 1]


def compute_trace_metrics(
    trace: Trace,
    program: Program,
    program_input: ProgramInput,
    config: MetricsConfig = MetricsConfig(),
) -> TraceMetrics:
    """Run the partition-independent simulations for one trace."""
    memory = MemorySystem(program, program_input)
    rows, accesses, hits = profile_events(
        trace,
        memory,
        num_sets=config.num_sets,
        line_bytes=config.line_bytes,
        max_ways=config.max_ways,
    )
    mask = trace.kinds == K_BLOCK
    ids = trace.a[mask]
    sizes = trace.c[mask]
    cpi_by_block = np.array([b.base_cpi for b in program.blocks])
    base_cycles = sizes * cpi_by_block[ids]
    branch_rows, flags = mispredicts_per_event(trace)
    return TraceMetrics(
        config=config,
        block_rows=rows,
        base_cycles=base_cycles,
        cache_accesses=accesses,
        cache_hits=hits,
        branch_rows=branch_rows,
        branch_mispredicts=flags,
    )


def _sum_by_interval(
    row_bounds: np.ndarray, event_rows: np.ndarray, values: np.ndarray
) -> np.ndarray:
    n = len(row_bounds) - 1
    out = np.zeros(n, dtype=np.float64)
    if n == 0 or len(event_rows) == 0:
        return out
    idx = np.clip(np.searchsorted(row_bounds, event_rows, side="right") - 1, 0, n - 1)
    np.add.at(out, idx, values)
    return out


def attach_metrics(
    interval_set: IntervalSet,
    trace: Trace,
    program: Program,
    program_input: ProgramInput,
    config: MetricsConfig = MetricsConfig(),
    trace_metrics: Optional[TraceMetrics] = None,
) -> CacheProfile:
    """Fill the metric columns of *interval_set*; returns the cache profile.

    Pass a precomputed *trace_metrics* (from :func:`compute_trace_metrics`)
    when attributing the same run to several partitions.
    """
    if trace_metrics is None:
        trace_metrics = compute_trace_metrics(trace, program, program_input, config)
    config = trace_metrics.config
    bounds = interval_set.row_bounds

    accesses, hits = attribute_to_intervals(
        bounds,
        trace_metrics.block_rows,
        trace_metrics.cache_accesses,
        trace_metrics.cache_hits,
    )
    profile = CacheProfile(accesses, hits)

    mispredicts = _sum_by_interval(
        bounds, trace_metrics.branch_rows, trace_metrics.branch_mispredicts
    )
    base_cycles = _sum_by_interval(
        bounds, trace_metrics.block_rows, trace_metrics.base_cycles
    )
    dl1_misses = profile.misses_at(config.dl1_ways)
    cycles = config.perf.total_cycles(base_cycles, mispredicts, dl1_misses)

    lengths = interval_set.lengths.astype(np.float64)
    cpis = np.zeros(len(interval_set))
    nonzero = lengths > 0
    cpis[nonzero] = cycles[nonzero] / lengths[nonzero]

    interval_set.cycles = cycles
    interval_set.cpis = cpis
    interval_set.dl1_misses = dl1_misses.astype(np.int64)
    interval_set.dl1_accesses = accesses
    interval_set.branch_mispredicts = mispredicts.astype(np.int64)
    if config.with_bbvs:
        collect_bbvs(interval_set, trace, program.num_blocks)
    return profile
