"""Basic block vectors (paper Section 2.2).

A BBV is one row per interval: element *b* counts how many times block *b*
executed during the interval, multiplied by the block's instruction count
("basic blocks containing more instructions will have more weight").
The weighted row sum therefore equals the interval's instruction count —
the invariant the tests check.
"""

from __future__ import annotations

import numpy as np

from repro.engine.events import K_BLOCK
from repro.engine.tracing import Trace
from repro.intervals.base import IntervalSet


def collect_bbvs(
    interval_set: IntervalSet, trace: Trace, num_blocks: int
) -> np.ndarray:
    """Compute (and attach) the size-weighted BBV matrix of *interval_set*."""
    n = len(interval_set)
    bbvs = np.zeros((n, num_blocks), dtype=np.float64)
    if n == 0:
        interval_set.bbvs = bbvs
        return bbvs
    mask = trace.kinds == K_BLOCK
    rows = np.nonzero(mask)[0]
    ids = trace.a[mask]
    sizes = trace.c[mask]
    # which interval each block event belongs to
    idx = np.searchsorted(interval_set.row_bounds, rows, side="right") - 1
    idx = np.clip(idx, 0, n - 1)
    np.add.at(bbvs, (idx, ids), sizes)
    interval_set.bbvs = bbvs
    return bbvs


def normalize_bbvs(bbvs: np.ndarray) -> np.ndarray:
    """Rows scaled to sum to 1 (the distance-comparison form SimPoint uses)."""
    sums = bbvs.sum(axis=1, keepdims=True)
    sums[sums == 0] = 1.0
    return bbvs / sums
