"""Basic block vectors (paper Section 2.2).

A BBV is one row per interval: element *b* counts how many times block *b*
executed during the interval, multiplied by the block's instruction count
("basic blocks containing more instructions will have more weight").
The weighted row sum therefore equals the interval's instruction count —
the invariant the tests check.
"""

from __future__ import annotations

import numpy as np

from repro.engine.events import K_BLOCK
from repro.engine.tracing import Trace
from repro.intervals.base import IntervalSet

#: block events stream through the accumulator in chunks of this many
#: rows, bounding the temporary flattened-index arrays for long traces
BBV_CHUNK_EVENTS = 1 << 20


def collect_bbvs(
    interval_set: IntervalSet, trace: Trace, num_blocks: int
) -> np.ndarray:
    """Compute (and attach) the size-weighted BBV matrix of *interval_set*."""
    n = len(interval_set)
    bbvs = np.zeros((n, num_blocks), dtype=np.float64)
    if n == 0:
        interval_set.bbvs = bbvs
        return bbvs
    mask = trace.kinds == K_BLOCK
    rows = np.nonzero(mask)[0]
    ids = trace.a[rows]
    sizes = trace.c[rows]
    # which interval each block event belongs to
    idx = np.searchsorted(interval_set.row_bounds, rows, side="right") - 1
    # Events outside [row_bounds[0], row_bounds[-1]) belong to no
    # interval; drop them (clipping them into the first or last interval
    # would inflate its BBV).
    valid = (idx >= 0) & (idx < n)
    if not valid.all():
        idx = idx[valid]
        ids = ids[valid]
        sizes = sizes[valid]
    # Flattened bincount accumulation: numerically identical to
    # np.add.at(bbvs, (idx, ids), sizes) — the weights are int64 block
    # sizes, and float64 sums of integers stay exact below 2**53 — but
    # an order of magnitude faster (np.add.at is a known soft spot).
    flat_bins = n * num_blocks
    out = bbvs.reshape(flat_bins)
    for lo in range(0, len(idx), BBV_CHUNK_EVENTS):
        hi = lo + BBV_CHUNK_EVENTS
        out += np.bincount(
            idx[lo:hi] * num_blocks + ids[lo:hi],
            weights=sizes[lo:hi],
            minlength=flat_bins,
        )
    interval_set.bbvs = bbvs
    return bbvs


def normalize_bbvs(bbvs: np.ndarray) -> np.ndarray:
    """Rows scaled to sum to 1 (the distance-comparison form SimPoint uses)."""
    sums = bbvs.sum(axis=1, keepdims=True)
    sums[sums == 0] = 1.0
    return bbvs / sums
