"""``repro serve``: the long-lived phase-marker query service.

An asyncio HTTP/1.1 server (stdlib only — the request grammar we accept
is small enough to parse by hand) that turns the batch pipeline into an
online service:

* ``POST /v1/query`` — a :class:`~repro.serving.queries.Query` as JSON;
  responds with the canonical payload bytes.  Concurrent duplicates are
  coalesced by the :class:`~repro.serving.batcher.QueryBatcher`; distinct
  queries fan out over a ``ProcessPoolExecutor`` running
  :func:`~repro.serving.queries.run_query_job`; repeats across requests
  are served from the content-addressed profile cache and trace store
  the workers share.
* ``GET /healthz`` — liveness: status, uptime, pool size, run id.
* ``GET /stats`` — the serving counters (requests by kind/status,
  dedup/batch stats, cache counters, in-flight and drained state).
* ``POST /v1/shutdown`` — begin a graceful drain (used by tests, the
  loadgen ``--shutdown`` flag, and orchestration).

Graceful shutdown is drain-first: the listener closes, in-flight
requests run to completion and are answered, *then* the pool goes down.

Telemetry (when a session is enabled) follows the lane model from
``docs/OBSERVABILITY.md``: each request is emitted as a ``serve.request``
span on the ``serve`` lane, queue depth is a gauge, request latency and
batch sizes are histograms, and worker snapshots merge into the server
session so one exported trace shows the whole service timeline.
"""

from __future__ import annotations

import asyncio
import functools
import json
import time
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Dict, Optional, Tuple

from repro import __version__
from repro.serving.batcher import BatcherClosed, QueryBatcher
from repro.serving.queries import (
    Query,
    QueryError,
    QueryJob,
    canonical_json_bytes,
    query_from_dict,
    run_query_job,
)

#: request bodies beyond this are rejected with 413 (queries are tiny)
MAX_BODY_BYTES = 1 << 20

#: request-line/header section cap (defense against garbage input)
MAX_HEADER_BYTES = 1 << 16


class _HTTPError(Exception):
    """An error with a definite HTTP status (becomes the response)."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


_STATUS_TEXT = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class ServeStats:
    """Plain always-on serving counters (telemetry-independent)."""

    def __init__(self) -> None:
        self.started_s = time.monotonic()
        self.requests = 0
        self.by_kind: Dict[str, int] = {}
        self.by_status: Dict[int, int] = {}
        self.errors = 0
        self.inflight = 0
        self.latency_us_total = 0.0
        self.latency_us_max = 0.0

    def record(self, kind: Optional[str], status: int, latency_us: float) -> None:
        self.requests += 1
        if kind is not None:
            self.by_kind[kind] = self.by_kind.get(kind, 0) + 1
        self.by_status[status] = self.by_status.get(status, 0) + 1
        if status >= 400:
            self.errors += 1
        self.latency_us_total += latency_us
        self.latency_us_max = max(self.latency_us_max, latency_us)


class PhaseMarkerServer:
    """The ``repro serve`` service object (also used in-process by tests
    and benchmarks: ``await server.start()`` then ``server.port``).

    *jobs* sizes the worker pool (default
    :func:`~repro.runner.parallel.default_jobs`); *cache_dir* / *no_cache*
    and *trace_root* configure the shared on-disk stores exactly like the
    ``repro experiment`` flags.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        jobs: Optional[int] = None,
        cache_dir: Optional[str] = None,
        no_cache: bool = False,
        trace_root: Optional[str] = None,
        batch_window_s: Optional[float] = None,
        max_batch: Optional[int] = None,
        split_shards: Optional[int] = None,
    ) -> None:
        from repro.runner.cache import default_cache_dir
        from repro.runner.parallel import default_jobs
        from repro.runner.traces import default_trace_dir

        self.host = host
        # segmented VLI split inside workers; payload bytes are
        # shard-count-invariant, so this is purely a throughput knob
        self.split_shards = split_shards
        self.port = port
        self.jobs = jobs if jobs is not None else default_jobs()
        if self.jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {self.jobs}")
        self.cache_dir = (
            None if no_cache else str(cache_dir or default_cache_dir())
        )
        self.trace_root = str(trace_root or default_trace_dir())
        batcher_kwargs: Dict[str, Any] = {}
        if batch_window_s is not None:
            batcher_kwargs["batch_window_s"] = batch_window_s
        if max_batch is not None:
            batcher_kwargs["max_batch"] = max_batch
        self._batcher_kwargs = batcher_kwargs
        self.stats = ServeStats()
        self._server: Optional[asyncio.base_events.Server] = None
        self._pool: Optional[ProcessPoolExecutor] = None
        self._batcher: Optional[QueryBatcher] = None
        self._draining = False
        self._drained = asyncio.Event()
        self._shutdown_requested = asyncio.Event()
        self._connections: "set[asyncio.Task]" = set()
        # Drain bookkeeping.  Counting *requests* (not connection tasks)
        # matters: a keep-alive connection task never completes on its
        # own — after answering it loops back to read the next request —
        # so waiting on the tasks themselves would deadlock the drain.
        self._active_requests = 0
        self._idle = asyncio.Event()
        self._idle.set()

    # -- lifecycle ------------------------------------------------------------

    async def start(self) -> "PhaseMarkerServer":
        from repro.telemetry import get_telemetry

        tm = get_telemetry()
        self._tm = tm
        self._serve_lane = tm.lane("serve") if tm.enabled else 0
        self._pool = ProcessPoolExecutor(max_workers=self.jobs)
        self._batcher = QueryBatcher(
            self._compute_in_pool, telemetry=tm, **self._batcher_kwargs
        )
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    async def serve_until_shutdown(self) -> None:
        """Run until a shutdown is requested, then drain and stop."""
        assert self._server is not None, "call start() first"
        await self._shutdown_requested.wait()
        await self.shutdown()

    def request_shutdown(self) -> None:
        """Signal :meth:`serve_until_shutdown` (safe from handlers and
        signal callbacks on the loop)."""
        self._shutdown_requested.set()

    async def shutdown(self, drain: bool = True) -> None:
        """Stop accepting, answer everything in flight, tear down.

        Idempotent.  With ``drain=False`` outstanding work is cancelled
        instead of awaited (tests of the non-graceful path only).
        """
        if self._draining:
            await self._drained.wait()
            return
        self._draining = True
        self._shutdown_requested.set()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        # drain: already-accepted queries resolve first (batcher), then
        # every handler mid-request writes its response; idle keep-alive
        # connections (blocked waiting for a next request that will never
        # come) are cancelled rather than waited on
        if self._batcher is not None:
            await self._batcher.close(drain=drain)
        if drain:
            await self._idle.wait()
        for task in list(self._connections):
            task.cancel()
        if self._connections:
            await asyncio.gather(*list(self._connections), return_exceptions=True)
        if self._pool is not None:
            self._pool.shutdown(wait=drain, cancel_futures=not drain)
            self._pool = None
        self._drained.set()

    # -- computation ----------------------------------------------------------

    async def _compute_in_pool(self, query: Query) -> bytes:
        """Run one query job in the pool; merge its telemetry snapshot."""
        assert self._pool is not None
        tm = self._tm
        job = QueryJob(
            query=query,
            cache_dir=self.cache_dir,
            trace_root=self.trace_root,
            split_shards=self.split_shards,
            run_id=tm.run_id if tm.enabled else None,
        )
        loop = asyncio.get_running_loop()
        result = await loop.run_in_executor(
            self._pool, functools.partial(run_query_job, job)
        )
        if tm.enabled:
            tm.counter(f"serve.graph_source.{result.graph_source}")
            tm.merge_snapshot(result.telemetry)
        return result.payload

    # -- HTTP plumbing --------------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
        try:
            await self._connection_loop(reader, writer)
        except asyncio.CancelledError:
            # shutdown cancels idle connections; exiting quietly is the
            # drain semantic, not an error (streams would log otherwise)
            pass
        finally:
            if task is not None:
                self._connections.discard(task)
            try:
                writer.close()
                await writer.wait_closed()
            except (
                asyncio.CancelledError,
                ConnectionResetError,
                BrokenPipeError,
                OSError,
            ):
                pass

    async def _connection_loop(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        while True:
            try:
                request = await self._read_request(reader)
            except (
                asyncio.IncompleteReadError,
                ConnectionResetError,
                _HTTPError,
            ) as exc:
                if isinstance(exc, _HTTPError):
                    await self._respond(
                        writer, exc.status, {"error": str(exc)}, close=True
                    )
                break
            if request is None:
                break  # clean EOF between requests
            self._active_requests += 1
            self._idle.clear()
            try:
                keep_alive = await self._handle_request(writer, *request)
            finally:
                self._active_requests -= 1
                if self._active_requests == 0:
                    self._idle.set()
            if not keep_alive:
                break

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Optional[Tuple[str, str, Dict[str, str], bytes]]:
        """Parse one request; None on clean EOF before a request line."""
        try:
            head = await reader.readuntil(b"\r\n\r\n")
        except asyncio.LimitOverrunError:
            raise _HTTPError(413, "header section too large")
        except asyncio.IncompleteReadError as exc:
            if not exc.partial:
                return None
            raise
        if len(head) > MAX_HEADER_BYTES:
            raise _HTTPError(413, "header section too large")
        lines = head.decode("latin-1").split("\r\n")
        parts = lines[0].split()
        if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
            raise _HTTPError(400, f"malformed request line: {lines[0]!r}")
        method, target, _version = parts
        headers: Dict[str, str] = {}
        for line in lines[1:]:
            if not line:
                continue
            name, sep, value = line.partition(":")
            if not sep:
                raise _HTTPError(400, f"malformed header line: {line!r}")
            headers[name.strip().lower()] = value.strip()
        body = b""
        length = headers.get("content-length")
        if length is not None:
            try:
                n = int(length)
            except ValueError:
                raise _HTTPError(400, f"bad Content-Length: {length!r}")
            if n > MAX_BODY_BYTES:
                raise _HTTPError(413, "request body too large")
            body = await reader.readexactly(n)
        return method, target, headers, body

    async def _handle_request(
        self,
        writer: asyncio.StreamWriter,
        method: str,
        target: str,
        headers: Dict[str, str],
        body: bytes,
    ) -> bool:
        tm = self._tm
        start_ns = time.monotonic_ns()
        kind: Optional[str] = None
        self.stats.inflight += 1
        if tm.enabled:
            tm.gauge("serve.queue_depth", self.stats.inflight)
        try:
            status, payload, kind = await self._route(method, target, body)
            if isinstance(payload, bytes):
                raw = payload
            else:
                raw = canonical_json_bytes(payload)
        except _HTTPError as exc:
            status, raw = exc.status, canonical_json_bytes({"error": str(exc)})
        except QueryError as exc:
            status, raw = 400, canonical_json_bytes({"error": str(exc)})
        except BatcherClosed as exc:
            status, raw = 503, canonical_json_bytes({"error": str(exc)})
        except Exception as exc:  # never kill the connection loop
            status, raw = 500, canonical_json_bytes(
                {"error": f"{type(exc).__name__}: {exc}"}
            )
        finally:
            self.stats.inflight -= 1
        latency_us = (time.monotonic_ns() - start_ns) / 1000.0
        self.stats.record(kind, status, latency_us)
        if tm.enabled:
            tm.counter("serve.requests")
            tm.observe("serve.request_us", latency_us)
            tm.gauge("serve.queue_depth", self.stats.inflight)
            tm.emit_span(
                "serve.request",
                start_ns,
                time.monotonic_ns(),
                tid=self._serve_lane,
                target=target,
                status=status,
                **({"kind": kind} if kind else {}),
            )
        keep_alive = headers.get("connection", "keep-alive").lower() != "close"
        await self._respond(writer, status, raw, close=not keep_alive)
        return keep_alive

    async def _route(self, method: str, target: str, body: bytes):
        target = target.split("?", 1)[0]
        if target == "/healthz":
            if method != "GET":
                raise _HTTPError(405, f"{method} not allowed on {target}")
            return 200, self.health(), None
        if target == "/stats":
            if method != "GET":
                raise _HTTPError(405, f"{method} not allowed on {target}")
            return 200, self.stats_document(), None
        if target == "/v1/query":
            if method != "POST":
                raise _HTTPError(405, f"{method} not allowed on {target}")
            try:
                data = json.loads(body.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                raise _HTTPError(400, f"request body is not valid JSON: {exc}")
            query = query_from_dict(data)
            if self._draining or self._batcher is None:
                raise BatcherClosed("server is draining")
            payload = await self._batcher.submit(query)
            return 200, payload, query.kind
        if target == "/v1/shutdown":
            if method != "POST":
                raise _HTTPError(405, f"{method} not allowed on {target}")
            self.request_shutdown()
            return 200, {"status": "draining"}, None
        raise _HTTPError(404, f"no route for {target}")

    async def _respond(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload,
        close: bool,
    ) -> None:
        raw = payload if isinstance(payload, bytes) else canonical_json_bytes(payload)
        head = (
            f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(raw)}\r\n"
            f"Connection: {'close' if close else 'keep-alive'}\r\n"
            "\r\n"
        ).encode("latin-1")
        try:
            writer.write(head + raw)
            await writer.drain()
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass

    # -- documents ------------------------------------------------------------

    def health(self) -> Dict[str, Any]:
        tm = self._tm
        return {
            "status": "draining" if self._draining else "ok",
            "version": __version__,
            "uptime_s": round(time.monotonic() - self.stats.started_s, 6),
            "jobs": self.jobs,
            "run_id": tm.run_id if tm.enabled else "",
        }

    def stats_document(self) -> Dict[str, Any]:
        s = self.stats
        mean_us = s.latency_us_total / s.requests if s.requests else 0.0
        return {
            "requests": s.requests,
            "by_kind": dict(s.by_kind),
            "by_status": {str(k): v for k, v in s.by_status.items()},
            "errors": s.errors,
            "inflight": s.inflight,
            "latency_mean_us": mean_us,
            "latency_max_us": s.latency_us_max,
            "batcher": self._batcher.stats() if self._batcher else {},
            "cache_dir": self.cache_dir,
            "trace_root": self.trace_root,
            "draining": self._draining,
        }


async def run_server(server: PhaseMarkerServer, ready=None) -> None:
    """Start *server*, optionally signal *ready* (an ``asyncio.Event`` or
    callable receiving the server), and block until it has drained."""
    await server.start()
    if ready is not None:
        if callable(ready):
            ready(server)
        else:
            ready.set()
    await server.serve_until_shutdown()
