"""Deduplicating micro-batcher between the event loop and the pool.

Heavy traffic against a phase-marker service is extremely repetitive:
many clients ask for the same few (workload, configuration) products.
The batcher exploits that with two moves, both on the event loop (no
locks — asyncio tasks interleave only at awaits):

* **Deduplication.**  Queries are keyed by :meth:`Query.key`.  While a
  computation for a key is in flight, every further submission of that
  key awaits the *same* future — N concurrent identical queries cost
  one pool job, and all N waiters receive the identical payload object.
* **Micro-batching.**  First-of-their-key queries collect in a pending
  list for a short window (``batch_window_s``) or until ``max_batch``
  distinct keys are pending, then dispatch together.  The window turns
  a thundering herd of distinct queries into one pool submission burst
  (and one batch-size histogram observation) instead of per-request
  executor churn.

The response contract — the property the fuzz suite drives — is a
request ↔ payload bijection: every submitted query receives exactly one
result, and that result is *its own* query's payload (never another
key's, never a duplicate delivery).  Failures propagate to exactly the
waiters of the failing key; other keys in the same batch are unaffected.
"""

from __future__ import annotations

import asyncio
from typing import Any, Awaitable, Callable, Dict, List, Optional, Tuple

from repro.serving.queries import Query

#: default dispatch window (seconds): long enough to coalesce a burst,
#: short enough to be invisible next to a profile computation
DEFAULT_BATCH_WINDOW_S = 0.002

#: default distinct-key cap per dispatched batch
DEFAULT_MAX_BATCH = 16


class BatcherClosed(RuntimeError):
    """Submission after :meth:`QueryBatcher.close` (server draining)."""


class QueryBatcher:
    """Coalesce concurrent queries into deduplicated pool batches.

    *compute* is an async callable ``(query) -> bytes`` — the server
    passes a wrapper that runs a :class:`~repro.serving.queries.QueryJob`
    in its process pool; tests inject fakes.  One batcher instance
    belongs to one event loop.
    """

    def __init__(
        self,
        compute: Callable[[Query], Awaitable[bytes]],
        batch_window_s: float = DEFAULT_BATCH_WINDOW_S,
        max_batch: int = DEFAULT_MAX_BATCH,
        telemetry=None,
    ) -> None:
        if batch_window_s < 0:
            raise ValueError(f"batch_window_s must be >= 0, got {batch_window_s}")
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        self._compute = compute
        self.batch_window_s = batch_window_s
        self.max_batch = max_batch
        self._tm = telemetry
        #: key -> future resolving to payload bytes (in-flight or pending)
        self._inflight: Dict[str, "asyncio.Future[bytes]"] = {}
        #: first-of-their-key queries waiting for the next dispatch
        self._pending: List[Tuple[Query, "asyncio.Future[bytes]"]] = []
        self._flusher: Optional["asyncio.Task[None]"] = None
        self._tasks: "set[asyncio.Task[None]]" = set()
        self._closed = False
        # -- stats (served by /stats regardless of telemetry) --
        self.submitted = 0
        self.deduplicated = 0
        self.computed = 0
        self.failed = 0
        self.batches = 0
        self.largest_batch = 0

    @property
    def inflight(self) -> int:
        """Keys currently pending or computing (the dedup window size)."""
        return len(self._inflight)

    async def submit(self, query: Query) -> bytes:
        """The payload for *query*; shares any in-flight computation."""
        if self._closed:
            raise BatcherClosed("batcher is closed; server is draining")
        self.submitted += 1
        key = query.key()
        future = self._inflight.get(key)
        if future is not None:
            self.deduplicated += 1
            if self._tm is not None and self._tm.enabled:
                self._tm.counter("serve.batch.deduplicated")
            return await asyncio.shield(future)
        loop = asyncio.get_running_loop()
        future = loop.create_future()
        self._inflight[key] = future
        self._pending.append((query, future))
        if len(self._pending) >= self.max_batch:
            self._dispatch()
        elif self._flusher is None:
            self._flusher = loop.create_task(self._flush_later())
        return await asyncio.shield(future)

    async def _flush_later(self) -> None:
        await asyncio.sleep(self.batch_window_s)
        self._dispatch()

    def _dispatch(self) -> None:
        """Launch one computation task per pending key, as one batch."""
        if self._flusher is not None:
            self._flusher.cancel()
            self._flusher = None
        batch, self._pending = self._pending, []
        if not batch:
            return
        self.batches += 1
        self.largest_batch = max(self.largest_batch, len(batch))
        if self._tm is not None and self._tm.enabled:
            self._tm.observe("serve.batch.size", len(batch))
        for query, future in batch:
            task = asyncio.get_running_loop().create_task(
                self._run_one(query, future)
            )
            self._tasks.add(task)
            task.add_done_callback(self._tasks.discard)

    async def _run_one(self, query: Query, future: "asyncio.Future[bytes]") -> None:
        key = query.key()
        try:
            payload = await self._compute(query)
        except asyncio.CancelledError:
            if not future.done():
                future.cancel()
            raise
        except Exception as exc:
            self.failed += 1
            if not future.done():
                future.set_exception(exc)
        else:
            self.computed += 1
            if not future.done():
                future.set_result(payload)
        finally:
            # the dedup window closes only once the result is settled, so
            # a submission can never observe a key that has no future
            if self._inflight.get(key) is future:
                del self._inflight[key]

    async def close(self, drain: bool = True) -> None:
        """Stop accepting submissions; optionally await in-flight work.

        With ``drain=True`` (graceful shutdown) every already-accepted
        query still resolves; with ``drain=False`` outstanding futures
        are cancelled.
        """
        self._closed = True
        if self._flusher is not None:
            self._dispatch()
        if drain:
            while self._tasks or self._pending:
                if self._pending:
                    self._dispatch()
                tasks = list(self._tasks)
                if tasks:
                    await asyncio.gather(*tasks, return_exceptions=True)
        else:
            for task in list(self._tasks):
                task.cancel()
            for future in list(self._inflight.values()):
                if not future.done():
                    future.cancel()
            self._inflight.clear()
            self._pending.clear()

    def stats(self) -> Dict[str, Any]:
        """Counters for the ``/stats`` endpoint (plain data, always on)."""
        return {
            "submitted": self.submitted,
            "deduplicated": self.deduplicated,
            "computed": self.computed,
            "failed": self.failed,
            "batches": self.batches,
            "largest_batch": self.largest_batch,
            "inflight": self.inflight,
        }
