"""The serving query model: what a client can ask for, and how it is
computed.

A :class:`Query` names one deterministic pipeline product — a call-loop
**profile**, a selected **marker** set, a marker-split **bbv** summary,
the **vli** interval partition itself, a **phases** roll-up of that
partition, or a **stream** session replayed through the incremental
streaming monitor — for one (workload, input) pair at one selection
configuration.  Everything downstream leans on one contract:

    the payload for a query is a *pure function* of the query.

The engine is a seeded interpreter and selection is deterministic, so
:func:`compute_payload` always produces the same canonical JSON bytes
for the same query — whether it runs inline under ``repro query`` (the
batch CLI path), inside a ``repro serve`` pool worker, or twice on two
different machines.  That is what makes deduplication sound (any two
clients asking the same question can share one computation), caching
sound (the content-addressed profile cache key *is* a function of the
query), and the acceptance tests meaningful (served bytes must equal
CLI bytes).

:class:`QueryJob` is the picklable unit the server hands to its process
pool, mirroring :class:`repro.runner.jobs.ProfileJob`: the worker
recomputes the payload from scratch (consulting the shared on-disk
profile cache and trace store) and ships back bytes plus its telemetry
snapshot.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Tuple

#: the query kinds the serving layer understands
QUERY_KINDS = ("profile", "markers", "bbv", "vli", "phases", "stream")

#: bump when the payload layout changes incompatibly
PAYLOAD_VERSION = 2

#: streaming-session slot size (instructions per window slot)
STREAM_SLOT_INSTRUCTIONS = 100_000

#: CoV drift that triggers rolling re-selection in bounded-window
#: streaming sessions (unbounded sessions disable drift: they are the
#: batch-equivalent mode and must never swap the marker set)
STREAM_DRIFT_THRESHOLD = 0.25


class QueryError(ValueError):
    """A malformed or unanswerable query (HTTP 400, never a crash)."""


@dataclass(frozen=True)
class Query:
    """One deterministic question about one workload.

    ``kind`` selects the product; ``workload`` is a registry name or
    ``name/input`` spec label; ``which`` selects the profiled input
    ("ref", "train", or an explicit input name).  The selection knobs
    (``ilower``, ``max_limit``, ``procedures_only``) mirror the
    ``repro markers`` CLI flags; they are part of the query identity,
    so different configurations never share a deduplicated result.
    ``window`` applies only to ``stream`` queries: the sliding-window
    length in slots (0 = unbounded, the batch-equivalent mode).
    """

    kind: str
    workload: str
    which: str = "ref"
    ilower: int = 10_000
    max_limit: int = 0
    procedures_only: bool = False
    window: int = 0

    def as_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "workload": self.workload,
            "which": self.which,
            "ilower": self.ilower,
            "max_limit": self.max_limit,
            "procedures_only": self.procedures_only,
            "window": self.window,
        }

    def key(self) -> str:
        """The dedup/cache identity: hex SHA-256 of the canonical form."""
        blob = json.dumps(self.as_dict(), sort_keys=True).encode()
        return hashlib.sha256(blob).hexdigest()

    def label(self) -> str:
        """A compact human label for logs and telemetry attributes."""
        return f"{self.kind}:{self.workload}:{self.which}"


_QUERY_FIELDS = {
    "kind": str,
    "workload": str,
    "which": str,
    "ilower": int,
    "max_limit": int,
    "procedures_only": bool,
    "window": int,
}
_REQUIRED_FIELDS = ("kind", "workload")


def query_from_dict(data: Mapping[str, Any]) -> Query:
    """Validate and build a :class:`Query` from untrusted JSON data.

    Strict by design: unknown fields, wrong types, unknown kinds, and
    unknown workloads all raise :class:`QueryError` with a message the
    server returns verbatim as the HTTP 400 body — a typo in a client
    never burns a pool worker.
    """
    if not isinstance(data, Mapping):
        raise QueryError(f"query must be a JSON object, got {type(data).__name__}")
    unknown = set(data) - set(_QUERY_FIELDS)
    if unknown:
        raise QueryError(f"unknown query fields: {sorted(unknown)}")
    for name in _REQUIRED_FIELDS:
        if name not in data:
            raise QueryError(f"query is missing required field {name!r}")
    kwargs: Dict[str, Any] = {}
    for name, value in data.items():
        want = _QUERY_FIELDS[name]
        # bool is an int subclass; keep the check exact so `"ilower": true`
        # is rejected rather than silently coerced
        if type(value) is not want:
            raise QueryError(
                f"query field {name!r} must be {want.__name__}, "
                f"got {type(value).__name__}"
            )
        kwargs[name] = value
    query = Query(**kwargs)
    if query.kind not in QUERY_KINDS:
        raise QueryError(
            f"unknown query kind {query.kind!r}; expected one of {QUERY_KINDS}"
        )
    if query.ilower <= 0:
        raise QueryError(f"ilower must be positive, got {query.ilower}")
    if query.max_limit < 0:
        raise QueryError(f"max_limit must be >= 0, got {query.max_limit}")
    if query.window < 0:
        raise QueryError(f"window must be >= 0, got {query.window}")
    if query.window and query.kind != "stream":
        raise QueryError(
            f"window applies only to stream queries, not {query.kind!r}"
        )
    from repro.workloads import workload_names
    from repro.workloads.base import _REGISTRY

    base = query.workload.split("/")[0]
    if base not in _REGISTRY:
        raise QueryError(
            f"unknown workload {base!r}; available: {workload_names()}"
        )
    workload = _REGISTRY[base]
    if query.which not in ("ref", "train") and query.which not in workload.inputs:
        raise QueryError(
            f"unknown input {query.which!r} for workload {base!r}; "
            f"available: {sorted(workload.inputs)}"
        )
    return query


def canonical_json_bytes(obj: Any) -> bytes:
    """The one serialization every payload uses: sorted keys, compact
    separators, no trailing newline — byte-stable across processes."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":")).encode()


# -- computation ---------------------------------------------------------------


def _resolve_input(workload, which: str):
    if which == "ref":
        return workload.ref_input
    if which == "train":
        return workload.train_input
    return workload.inputs[which]


def _acquire_graph(query: Query, workload, program, program_input, cache, trace_store):
    """The annotated call-loop graph for *query*, via cache when possible.

    Returns ``(graph, source)`` where source is "cache" or "profiled".
    A freshly profiled graph round-trips through the exact JSON
    serialization before use, so cache hits and misses produce
    byte-identical downstream payloads.
    """
    from repro.callloop.profiler import CallLoopProfiler
    from repro.callloop.serialization import graph_from_dict, graph_to_dict
    from repro.engine.machine import Machine
    from repro.engine.tracing import record_trace

    key = None
    if cache is not None:
        key = cache.graph_key(query.workload, query.which, program_input)
        cached = cache.load_graph(key)
        if cached is not None:
            return cached, "cache"
    trace = None
    if trace_store is not None:
        tkey = trace_store.trace_key(query.workload, query.which, program_input)
        trace = trace_store.load(tkey)
    if trace is None:
        trace = record_trace(Machine(program, program_input))
        if trace_store is not None:
            trace = trace_store.store(tkey, trace).load()
    profiler = CallLoopProfiler(program)
    profiler.profile_trace(trace)
    graph = profiler.graph
    if cache is not None:
        cache.store_graph(key, graph)
    # normalize through the serialization so hit and miss paths agree
    return graph_from_dict(graph_to_dict(graph)), "profiled"


def _acquire_trace(query: Query, program, program_input, trace_store):
    """The recorded trace for *query*, via the trace store when possible."""
    from repro.engine.machine import Machine
    from repro.engine.tracing import record_trace

    trace = None
    if trace_store is not None:
        tkey = trace_store.trace_key(query.workload, query.which, program_input)
        trace = trace_store.load(tkey)
    if trace is None:
        trace = record_trace(Machine(program, program_input))
        if trace_store is not None:
            trace = trace_store.store(tkey, trace).load()
    return trace


def _select(query: Query, graph):
    from repro.callloop import (
        LimitParams,
        SelectionParams,
        select_markers,
        select_markers_with_limit,
    )

    if query.max_limit:
        return select_markers_with_limit(
            graph, LimitParams(ilower=query.ilower, max_limit=query.max_limit)
        ).markers
    return select_markers(
        graph,
        SelectionParams(
            ilower=query.ilower, procedures_only=query.procedures_only
        ),
    ).markers


def compute_result(
    query: Query, cache=None, trace_store=None, split_shards=None
) -> Tuple[Dict[str, Any], str]:
    """Compute the payload document for *query*.

    Returns ``(document, graph_source)``; the document is JSON-ready and
    deterministic (see module docstring).  *cache* is an optional
    :class:`~repro.runner.cache.ProfileCache`, *trace_store* an optional
    :class:`~repro.runner.traces.TraceStore`, and *split_shards*
    segments the VLI split of the ``bbv``/``vli``/``phases`` kinds
    (``--split-shards``); all three only change wall-clock, never bytes
    — shard count is deliberately **not** part of the query identity.
    """
    from repro.callloop.serialization import graph_to_dict, marker_set_to_dict
    from repro.workloads import get_workload

    workload = get_workload(query.workload)
    program = workload.build()
    program_input = _resolve_input(workload, query.which)
    graph, source = _acquire_graph(
        query, workload, program, program_input, cache, trace_store
    )
    doc: Dict[str, Any] = {
        "payload_version": PAYLOAD_VERSION,
        "query": query.as_dict(),
    }
    if query.kind == "profile":
        doc["graph"] = graph_to_dict(graph)
        return doc, source
    markers = _select(query, graph)
    if query.kind == "markers":
        doc["markers"] = marker_set_to_dict(markers)
        return doc, source

    if query.kind == "stream":
        # streaming session: batch-selected markers seed an online
        # monitor replaying the recorded trace through the incremental
        # path; window=0 disables drift and is bit-equivalent to the
        # batch monitor (docs/STREAMING.md), so the payload is still a
        # pure function of the query
        from repro.callloop import SelectionParams
        from repro.streaming import StreamingConfig, stream_trace

        trace = _acquire_trace(query, program, program_input, trace_store)
        config = StreamingConfig(
            slot_instructions=STREAM_SLOT_INSTRUCTIONS,
            window_slots=query.window,
            drift_threshold=STREAM_DRIFT_THRESHOLD if query.window else None,
            selection=SelectionParams(
                ilower=query.ilower, procedures_only=query.procedures_only
            ),
        )
        monitor = stream_trace(program, trace, marker_set=markers, config=config)
        doc["stream"] = {
            "window_slots": query.window,
            "slot_instructions": config.slot_instructions,
            "batch_equivalent": query.window == 0,
            "events": monitor.events_fed,
            "total_instructions": int(trace.total_instructions),
            "slots_sealed": monitor.slots_sealed,
            "slots_evicted": monitor.window.evicted_slots,
            "drift_events": monitor.drift_events,
            "reselections": [
                {
                    "t": r.t,
                    "slot": r.slot,
                    "num_markers": r.num_markers,
                    "drifted_edges": r.drifted_edges,
                }
                for r in monitor.reselections
            ],
            "phase_changes": len(monitor.changes),
            "phases_visited": len(monitor.time_in_phase),
            "markers": marker_set_to_dict(monitor.marker_set),
        }
        return doc, source

    # bbv / vli / phases: split the recorded run at the selected markers
    # (optionally segmented — the split is bit-identical either way, so
    # the payload stays a pure function of the query) and summarize
    import hashlib as _hashlib

    import numpy as np

    from repro.intervals import collect_bbvs, split_at_markers

    trace = _acquire_trace(query, program, program_input, trace_store)
    intervals = split_at_markers(program, trace, markers, shards=split_shards)

    def _digest(column) -> str:
        return _hashlib.sha256(
            np.ascontiguousarray(column, dtype=np.int64).tobytes()
        ).hexdigest()

    if query.kind == "vli":
        # the interval partition itself: every column pinned by digest,
        # the shape summarized in transferable integers
        doc["vli"] = {
            "num_intervals": len(intervals),
            "num_phases": intervals.num_phases,
            "total_instructions": int(intervals.lengths.sum()),
            "row_bounds_digest": _digest(intervals.row_bounds),
            "start_ts_digest": _digest(intervals.start_ts),
            "lengths_digest": _digest(intervals.lengths),
            "phase_ids_digest": _digest(intervals.phase_ids),
        }
        return doc, source

    if query.kind == "phases":
        # per-phase roll-up of the partition (integer-only, so the
        # canonical bytes are stable across platforms)
        phases = []
        for phase in sorted(set(intervals.phase_ids.tolist())):
            mask = intervals.phase_ids == phase
            phases.append(
                {
                    "phase": int(phase),
                    "intervals": int(mask.sum()),
                    "instructions": int(intervals.lengths[mask].sum()),
                }
            )
        doc["phases"] = {
            "num_intervals": len(intervals),
            "num_phases": intervals.num_phases,
            "total_instructions": int(intervals.lengths.sum()),
            "per_phase": phases,
        }
        return doc, source

    # bbv: summarize the basic-block-vector matrix (full matrices are
    # big; the digest pins every byte while the summary stays
    # transferable)
    bbvs = collect_bbvs(intervals, trace, program.num_blocks)
    doc["bbv"] = {
        "num_intervals": len(intervals),
        "num_phases": intervals.num_phases,
        "num_blocks": program.num_blocks,
        "total_instructions": int(intervals.lengths.sum()),
        "interval_lengths_digest": _hashlib.sha256(
            np.ascontiguousarray(intervals.lengths, dtype=np.int64).tobytes()
        ).hexdigest(),
        "matrix_digest": _hashlib.sha256(
            np.ascontiguousarray(bbvs, dtype=np.float64).tobytes()
        ).hexdigest(),
    }
    return doc, source


def compute_payload(
    query: Query, cache=None, trace_store=None, split_shards=None
) -> bytes:
    """The canonical payload bytes for *query* (the byte-equivalence
    contract between ``repro query`` and ``repro serve``)."""
    doc, _ = compute_result(
        query, cache=cache, trace_store=trace_store, split_shards=split_shards
    )
    return canonical_json_bytes(doc)


# -- pool jobs -----------------------------------------------------------------


@dataclass(frozen=True)
class QueryJob:
    """A picklable query computation for a server pool worker.

    ``cache_dir``/``trace_root`` point the worker at the shared on-disk
    stores (None disables them); ``run_id`` stitches the worker's
    telemetry snapshot into the server session, exactly like
    :class:`~repro.runner.jobs.ProfileJob`.  ``split_shards`` segments
    the VLI split inside the worker (``--split-shards``); like
    ``profile_shards`` on :class:`ProfileJob` it never affects payload
    bytes — only wall-clock — so it is excluded from job equality.
    """

    query: Query
    cache_dir: Optional[str] = None
    trace_root: Optional[str] = None
    split_shards: Optional[int] = field(default=None, compare=False)
    run_id: Optional[str] = field(default=None, compare=False)


@dataclass
class QueryJobResult:
    """Payload bytes plus provenance from one worker computation."""

    key: str
    payload: bytes
    graph_source: str
    seconds: float
    worker_pid: int
    telemetry: Optional[Dict[str, Any]] = None


def run_query_job(job: QueryJob) -> QueryJobResult:
    """Worker entry point: compute one query payload start-to-finish.

    Module-level function of picklable arguments by design (the process
    pool requirement).  Installs a local telemetry session in a fresh or
    fork-inherited worker, mirroring
    :func:`repro.runner.jobs.run_profile_job`.
    """
    from repro import telemetry
    from repro.runner.cache import ProfileCache
    from repro.runner.traces import TraceStore

    local: Optional[telemetry.Telemetry] = None
    prev = None
    active = telemetry.get_telemetry()
    if not active.enabled or active.pid != os.getpid():
        local = telemetry.Telemetry(run_id=job.run_id)
        prev = telemetry.install_telemetry(local)
    tm = telemetry.get_telemetry()
    try:
        start = time.perf_counter()
        with tm.span(
            "serve.compute", query=job.query.label(), kind=job.query.kind
        ) as span:
            cache = ProfileCache(job.cache_dir) if job.cache_dir else None
            store = TraceStore(job.trace_root) if job.trace_root else None
            doc, source = compute_result(
                job.query,
                cache=cache,
                trace_store=store,
                split_shards=job.split_shards,
            )
            span.set("graph_source", source)
        seconds = time.perf_counter() - start
    finally:
        if local is not None:
            telemetry.install_telemetry(prev)
    return QueryJobResult(
        key=job.query.key(),
        payload=canonical_json_bytes(doc),
        graph_source=source,
        seconds=seconds,
        worker_pid=os.getpid(),
        telemetry=local.snapshot() if local is not None else None,
    )
