"""The phase-marker serving layer: ``repro serve`` + ``repro loadgen``.

The ROADMAP's "heavy traffic" scenario made concrete: the batch
pipeline (record → profile → select → split → bbv) wrapped behind a
long-lived asyncio HTTP service, exercised by an MLPerf-loadgen-style
client harness, and regression-gated on latency percentiles and
achieved QPS (``make bench-serve``).

* :mod:`repro.serving.queries` — the query model and the one contract
  everything rests on: a payload is a pure function of its query, so
  served bytes equal batch-CLI bytes (``repro query``).
* :mod:`repro.serving.batcher` — event-loop dedup + micro-batching:
  N concurrent identical queries cost one pool job.
* :mod:`repro.serving.server` — the asyncio HTTP service with a
  process-pool compute backend, shared profile cache / trace store,
  health/stats endpoints, and drain-first graceful shutdown.
* :mod:`repro.serving.client` — blocking and asyncio clients.
* :mod:`repro.serving.loadgen` — SingleStream / Server scenarios on a
  seeded Poisson schedule, with p50/p90/p99 + achieved-QPS reporting.

Scenarios, endpoints, flags, and baseline numbers: ``docs/SERVING.md``.
"""

from repro.serving.batcher import BatcherClosed, QueryBatcher
from repro.serving.client import AsyncServeClient, ServeClient, ServeClientError
from repro.serving.loadgen import (
    SCENARIOS,
    LoadGenSettings,
    LoadGenSummary,
    LoadPlan,
    build_plan,
    expected_payloads,
    percentile,
    run_loadgen,
    run_loadgen_async,
)
from repro.serving.queries import (
    PAYLOAD_VERSION,
    QUERY_KINDS,
    STREAM_DRIFT_THRESHOLD,
    STREAM_SLOT_INSTRUCTIONS,
    Query,
    QueryError,
    QueryJob,
    QueryJobResult,
    canonical_json_bytes,
    compute_payload,
    compute_result,
    query_from_dict,
    run_query_job,
)
from repro.serving.server import PhaseMarkerServer, ServeStats, run_server

__all__ = [
    "AsyncServeClient",
    "BatcherClosed",
    "LoadGenSettings",
    "LoadGenSummary",
    "LoadPlan",
    "PAYLOAD_VERSION",
    "PhaseMarkerServer",
    "QUERY_KINDS",
    "Query",
    "QueryBatcher",
    "QueryError",
    "QueryJob",
    "QueryJobResult",
    "SCENARIOS",
    "STREAM_DRIFT_THRESHOLD",
    "STREAM_SLOT_INSTRUCTIONS",
    "ServeClient",
    "ServeClientError",
    "ServeStats",
    "build_plan",
    "canonical_json_bytes",
    "compute_payload",
    "compute_result",
    "expected_payloads",
    "percentile",
    "query_from_dict",
    "run_loadgen",
    "run_loadgen_async",
    "run_query_job",
    "run_server",
]
