"""Clients for ``repro serve``: a blocking one and an asyncio one.

:class:`ServeClient` (blocking, ``http.client``) is what tests, the
CLI, and scripts use for one-off queries; :class:`AsyncServeClient`
(asyncio streams, persistent keep-alive connection) is what the loadgen
drives — an open-loop Server scenario needs many requests in flight at
once, which a blocking client cannot express without a thread per
request.

Both speak the same wire format (JSON bodies, canonical payload bytes
back) and both surface server-side errors as :class:`ServeClientError`
carrying the HTTP status and the server's error message.
"""

from __future__ import annotations

import asyncio
import http.client
import json
from typing import Any, Dict, Optional, Tuple

from repro.serving.queries import Query


class ServeClientError(RuntimeError):
    """A non-200 response from the server."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message


def _raise_for_status(status: int, body: bytes) -> None:
    if status == 200:
        return
    try:
        message = json.loads(body.decode("utf-8")).get("error", "")
    except (UnicodeDecodeError, json.JSONDecodeError, AttributeError):
        message = body.decode("utf-8", "replace")
    raise ServeClientError(status, message)


class ServeClient:
    """Blocking client over one keep-alive connection.

    Context-manager friendly; every method raises
    :class:`ServeClientError` on a non-200 response.
    """

    def __init__(self, host: str, port: int, timeout: float = 60.0) -> None:
        self.host = host
        self.port = port
        self._conn = http.client.HTTPConnection(host, port, timeout=timeout)

    def _request(
        self, method: str, path: str, body: Optional[bytes] = None
    ) -> bytes:
        try:
            self._conn.request(method, path, body=body)
            response = self._conn.getresponse()
            payload = response.read()
        except (http.client.HTTPException, OSError):
            # one reconnect: the server may have closed an idle keep-alive
            self._conn.close()
            self._conn.request(method, path, body=body)
            response = self._conn.getresponse()
            payload = response.read()
        _raise_for_status(response.status, payload)
        return payload

    def query(self, query: Query) -> bytes:
        """The canonical payload bytes for *query*."""
        return self._request(
            "POST", "/v1/query", json.dumps(query.as_dict()).encode()
        )

    def query_raw(self, body: Dict[str, Any]) -> bytes:
        """POST an arbitrary query document (malformed-input tests)."""
        return self._request("POST", "/v1/query", json.dumps(body).encode())

    def health(self) -> Dict[str, Any]:
        return json.loads(self._request("GET", "/healthz"))

    def stats(self) -> Dict[str, Any]:
        return json.loads(self._request("GET", "/stats"))

    def shutdown(self) -> Dict[str, Any]:
        """Ask the server to drain and stop."""
        return json.loads(self._request("POST", "/v1/shutdown"))

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


class AsyncServeClient:
    """Asyncio client over one persistent keep-alive connection.

    One instance serializes its own requests (HTTP/1.1 pipelining is
    deliberately not attempted); the loadgen opens a small pool of these
    and dispatches in-flight queries across them.
    """

    def __init__(self, host: str, port: int) -> None:
        self.host = host
        self.port = port
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._lock = asyncio.Lock()

    async def _connect(self) -> None:
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port
        )

    async def _request_once(
        self, method: str, path: str, body: bytes
    ) -> Tuple[int, bytes]:
        assert self._reader is not None and self._writer is not None
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: {self.host}:{self.port}\r\n"
            "Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            "Connection: keep-alive\r\n"
            "\r\n"
        ).encode("latin-1")
        self._writer.write(head + body)
        await self._writer.drain()
        status_line = await self._reader.readline()
        if not status_line:
            raise ConnectionResetError("server closed the connection")
        parts = status_line.decode("latin-1").split(maxsplit=2)
        status = int(parts[1])
        length = 0
        while True:
            line = await self._reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            if name.strip().lower() == "content-length":
                length = int(value.strip())
        payload = await self._reader.readexactly(length) if length else b""
        return status, payload

    async def request(
        self, method: str, path: str, body: bytes = b""
    ) -> bytes:
        async with self._lock:
            if self._writer is None:
                await self._connect()
            try:
                status, payload = await self._request_once(method, path, body)
            except (ConnectionResetError, asyncio.IncompleteReadError, OSError):
                await self.close()
                await self._connect()
                status, payload = await self._request_once(method, path, body)
        _raise_for_status(status, payload)
        return payload

    async def query(self, query: Query) -> bytes:
        return await self.request(
            "POST", "/v1/query", json.dumps(query.as_dict()).encode()
        )

    async def close(self) -> None:
        if self._writer is not None:
            try:
                self._writer.close()
                await self._writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass
        self._reader = None
        self._writer = None
