"""``repro loadgen``: an MLPerf-loadgen-style client for ``repro serve``.

Modeled on the MLPerf inference loadgen's scenario machinery (its
``TestSettings``: scenario, ``target_qps``, ``max_async_queries``,
min/max duration, seeded schedules):

* **SingleStream** — closed loop: one outstanding query; the next one
  is issued the moment the previous completes.  Measures best-case
  round-trip latency.
* **Server** — open loop: queries arrive on a *Poisson* schedule with
  rate ``target_qps``, independent of completions, up to
  ``max_async_queries`` outstanding.  Measures latency under load,
  including queueing delay: each query's latency is counted from its
  *scheduled* arrival time, so a server that falls behind pays for the
  backlog it builds.

Everything random is drawn from ``random.Random(seed)``: the arrival
offsets and the query sequence are a pure function of the settings and
the query list (:func:`build_plan`), so the same seed always replays
the same experiment — the property the determinism acceptance test
pins.  The run stops issuing at the first scheduled arrival that
satisfies both ``min_duration_s`` and ``min_queries`` (or at
``max_duration_s``), a rule that depends only on the schedule, never on
observed latencies.

The summary reports achieved QPS and p50/p90/p99 latency (MLPerf-style
nearest-rank percentiles over completed queries) and optionally
byte-verifies every response against locally computed payloads
(``--check``), closing the served-equals-batch loop end to end.
"""

from __future__ import annotations

import asyncio
import math
import random
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.serving.client import AsyncServeClient
from repro.serving.queries import Query

SCENARIOS = ("singlestream", "server")


@dataclass(frozen=True)
class LoadGenSettings:
    """The knobs of one loadgen run (MLPerf ``TestSettings`` analog)."""

    scenario: str = "server"
    target_qps: float = 20.0
    max_async_queries: int = 64
    min_duration_s: float = 1.0
    max_duration_s: float = 30.0
    min_queries: int = 16
    seed: int = 0

    def validate(self) -> None:
        if self.scenario not in SCENARIOS:
            raise ValueError(
                f"unknown scenario {self.scenario!r}; expected one of {SCENARIOS}"
            )
        if self.target_qps <= 0:
            raise ValueError(f"target_qps must be positive, got {self.target_qps}")
        if self.max_async_queries < 1:
            raise ValueError(
                f"max_async_queries must be >= 1, got {self.max_async_queries}"
            )
        if self.min_queries < 1:
            raise ValueError(f"min_queries must be >= 1, got {self.min_queries}")
        if not 0 < self.min_duration_s <= self.max_duration_s:
            raise ValueError(
                "need 0 < min_duration_s <= max_duration_s, got "
                f"{self.min_duration_s} / {self.max_duration_s}"
            )


@dataclass(frozen=True)
class LoadPlan:
    """The deterministic part of a run: who asks what, when.

    ``arrivals[i]`` is the scheduled issue offset (seconds from run
    start) of ``queries[i]``.  SingleStream plans carry zero arrivals
    (closed loop — timing comes from completions) but still fix the
    query order.
    """

    arrivals: Tuple[float, ...]
    queries: Tuple[Query, ...]


def build_plan(settings: LoadGenSettings, queries: Sequence[Query]) -> LoadPlan:
    """The seeded schedule: Poisson arrival offsets (Server scenario)
    and the query sequence, both pure functions of settings + queries."""
    settings.validate()
    if not queries:
        raise ValueError("loadgen needs at least one query")
    rng = random.Random(settings.seed)
    # enough entries to cover the worst case: max duration at target
    # rate, or the minimum query count, whichever is larger
    count = max(
        settings.min_queries,
        int(math.ceil(settings.target_qps * settings.max_duration_s)) + 1,
    )
    sequence = tuple(queries[rng.randrange(len(queries))] for _ in range(count))
    if settings.scenario != "server":
        return LoadPlan(arrivals=(), queries=sequence)
    t = 0.0
    arrivals: List[float] = []
    for _ in range(count):
        t += rng.expovariate(settings.target_qps)
        arrivals.append(t)
    return LoadPlan(arrivals=tuple(arrivals), queries=sequence)


def percentile(latencies: Sequence[float], p: float) -> float:
    """Nearest-rank percentile (MLPerf's convention); 0.0 when empty."""
    if not latencies:
        return 0.0
    ordered = sorted(latencies)
    rank = int(math.ceil(p * len(ordered))) - 1
    return ordered[max(0, min(rank, len(ordered) - 1))]


@dataclass
class LoadGenSummary:
    """What one loadgen run measured."""

    scenario: str
    seed: int
    target_qps: float
    issued: int
    completed: int
    errors: int
    overload_waits: int
    check_mismatches: Optional[int]
    duration_s: float
    achieved_qps: float
    latencies_s: List[float] = field(default_factory=list, repr=False)

    @property
    def p50_ms(self) -> float:
        return percentile(self.latencies_s, 0.50) * 1e3

    @property
    def p90_ms(self) -> float:
        return percentile(self.latencies_s, 0.90) * 1e3

    @property
    def p99_ms(self) -> float:
        return percentile(self.latencies_s, 0.99) * 1e3

    @property
    def mean_ms(self) -> float:
        if not self.latencies_s:
            return 0.0
        return sum(self.latencies_s) / len(self.latencies_s) * 1e3

    @property
    def max_ms(self) -> float:
        return max(self.latencies_s, default=0.0) * 1e3

    def as_dict(self) -> Dict[str, Any]:
        return {
            "scenario": self.scenario,
            "seed": self.seed,
            "target_qps": self.target_qps,
            "issued": self.issued,
            "completed": self.completed,
            "errors": self.errors,
            "overload_waits": self.overload_waits,
            "check_mismatches": self.check_mismatches,
            "duration_s": self.duration_s,
            "achieved_qps": self.achieved_qps,
            "latency_ms": {
                "p50": self.p50_ms,
                "p90": self.p90_ms,
                "p99": self.p99_ms,
                "mean": self.mean_ms,
                "max": self.max_ms,
            },
        }

    def render(self) -> str:
        from repro.util.tables import Table

        table = Table(
            f"loadgen: {self.scenario} scenario (seed {self.seed})",
            ["metric", "value"],
            digits=3,
        )
        table.add_row(["target QPS", self.target_qps])
        table.add_row(["achieved QPS", self.achieved_qps])
        table.add_row(["queries issued", self.issued])
        table.add_row(["queries completed", self.completed])
        table.add_row(["errors", self.errors])
        table.add_row(["overload waits", self.overload_waits])
        if self.check_mismatches is not None:
            table.add_row(["check mismatches", self.check_mismatches])
        table.add_row(["duration (s)", self.duration_s])
        table.add_row(["p50 latency (ms)", self.p50_ms])
        table.add_row(["p90 latency (ms)", self.p90_ms])
        table.add_row(["p99 latency (ms)", self.p99_ms])
        table.add_row(["mean latency (ms)", self.mean_ms])
        table.add_row(["max latency (ms)", self.max_ms])
        return table.render()


# -- execution -----------------------------------------------------------------


class _Run:
    """Mutable state shared by the issue tasks of one run."""

    def __init__(self, expected: Optional[Dict[str, bytes]]) -> None:
        self.latencies: List[float] = []
        self.errors = 0
        self.completed = 0
        self.mismatches = 0
        self.expected = expected

    def record(self, query: Query, latency_s: float, payload: Optional[bytes]) -> None:
        if payload is None:
            self.errors += 1
            return
        self.completed += 1
        self.latencies.append(latency_s)
        if self.expected is not None:
            want = self.expected.get(query.key())
            if want is not None and payload != want:
                self.mismatches += 1


async def _issue(
    clients: "asyncio.Queue[AsyncServeClient]",
    query: Query,
    scheduled_s: float,
    start_s: float,
    run: _Run,
) -> None:
    client = await clients.get()
    try:
        payload: Optional[bytes] = None
        try:
            payload = await client.query(query)
        except Exception:
            payload = None
        # server-scenario latency counts from the *scheduled* arrival:
        # a late issue or a queued batch shows up in the percentiles
        latency = (time.perf_counter() - start_s) - scheduled_s
        run.record(query, latency, payload)
    finally:
        clients.put_nowait(client)


async def _run_server_scenario(
    host: str,
    port: int,
    plan: LoadPlan,
    settings: LoadGenSettings,
    run: _Run,
) -> Tuple[int, int, float]:
    pool_size = min(settings.max_async_queries, len(plan.arrivals))
    clients: "asyncio.Queue[AsyncServeClient]" = asyncio.Queue()
    for _ in range(pool_size):
        clients.put_nowait(AsyncServeClient(host, port))
    outstanding: "set[asyncio.Task]" = set()
    overload = 0
    issued = 0
    start = time.perf_counter()
    try:
        for offset, query in zip(plan.arrivals, plan.queries):
            if issued >= settings.min_queries and offset >= settings.min_duration_s:
                break
            if offset >= settings.max_duration_s:
                break
            delay = offset - (time.perf_counter() - start)
            if delay > 0:
                await asyncio.sleep(delay)
            while len(outstanding) >= settings.max_async_queries:
                # MLPerf's max_async_queries backpressure: hold issuing
                # (and count the stall) until a slot frees
                overload += 1
                _done, pending = await asyncio.wait(
                    outstanding, return_when=asyncio.FIRST_COMPLETED
                )
                outstanding = set(pending)
            task = asyncio.create_task(_issue(clients, query, offset, start, run))
            outstanding.add(task)
            issued += 1
        if outstanding:
            await asyncio.gather(*list(outstanding), return_exceptions=True)
        duration = time.perf_counter() - start
    finally:
        while not clients.empty():
            await clients.get_nowait().close()
    return issued, overload, duration


async def _run_singlestream_scenario(
    host: str,
    port: int,
    plan: LoadPlan,
    settings: LoadGenSettings,
    run: _Run,
) -> Tuple[int, int, float]:
    client = AsyncServeClient(host, port)
    issued = 0
    start = time.perf_counter()
    try:
        for query in plan.queries:
            elapsed = time.perf_counter() - start
            if issued >= settings.min_queries and elapsed >= settings.min_duration_s:
                break
            if elapsed >= settings.max_duration_s:
                break
            t0 = time.perf_counter()
            payload: Optional[bytes] = None
            try:
                payload = await client.query(query)
            except Exception:
                payload = None
            run.record(query, time.perf_counter() - t0, payload)
            issued += 1
        duration = time.perf_counter() - start
    finally:
        await client.close()
    return issued, 0, duration


async def run_loadgen_async(
    host: str,
    port: int,
    queries: Sequence[Query],
    settings: LoadGenSettings,
    expected: Optional[Dict[str, bytes]] = None,
) -> LoadGenSummary:
    """Drive one scenario against a live server; returns the summary.

    *expected* (optional) maps :meth:`Query.key` to the locally computed
    canonical payload; every response is byte-compared against it and
    mismatches are counted (the ``--check`` mode).
    """
    plan = build_plan(settings, queries)
    run = _Run(expected)
    if settings.scenario == "server":
        issued, overload, duration = await _run_server_scenario(
            host, port, plan, settings, run
        )
    else:
        issued, overload, duration = await _run_singlestream_scenario(
            host, port, plan, settings, run
        )
    return LoadGenSummary(
        scenario=settings.scenario,
        seed=settings.seed,
        target_qps=settings.target_qps,
        issued=issued,
        completed=run.completed,
        errors=run.errors,
        overload_waits=overload,
        check_mismatches=run.mismatches if expected is not None else None,
        duration_s=duration,
        achieved_qps=run.completed / duration if duration > 0 else 0.0,
        latencies_s=run.latencies,
    )


def run_loadgen(
    host: str,
    port: int,
    queries: Sequence[Query],
    settings: LoadGenSettings,
    expected: Optional[Dict[str, bytes]] = None,
) -> LoadGenSummary:
    """Blocking wrapper around :func:`run_loadgen_async`."""
    return asyncio.run(
        run_loadgen_async(host, port, queries, settings, expected=expected)
    )


def expected_payloads(
    queries: Sequence[Query],
    cache_dir: Optional[str] = None,
    trace_root: Optional[str] = None,
) -> Dict[str, bytes]:
    """Locally computed canonical payloads for the ``--check`` mode,
    keyed by :meth:`Query.key` (distinct queries computed once)."""
    from repro.runner.cache import ProfileCache
    from repro.runner.traces import TraceStore
    from repro.serving.queries import compute_payload

    cache = ProfileCache(cache_dir) if cache_dir else None
    store = TraceStore(trace_root) if trace_root else None
    out: Dict[str, bytes] = {}
    for query in queries:
        key = query.key()
        if key not in out:
            out[key] = compute_payload(query, cache=cache, trace_store=store)
    return out
