"""Streaming-equivalence pass over the bundled workload corpus.

The streaming package's load-bearing claim is that an unbounded-window,
drift-disabled :class:`~repro.streaming.StreamingPhaseMonitor` is a pure
re-ordering of the batch pipeline: same walker callbacks, same profiled
graph, same marker selection, same phase changes — bit for bit (see
``docs/STREAMING.md``).  :func:`check_streaming_corpus` proves that
claim on every bundled workload's ``train`` trace by running
:func:`~repro.verify.diff.diff_streaming` on each, the same check that
rides every fuzz iteration inside
:func:`~repro.verify.diff.verify_program`.

Unlike the golden corpus this pass pins nothing on disk — both sides
are recomputed, so it needs no refresh step and runs even when the
golden files are absent (``repro verify --skip-golden`` still runs it;
``--skip-streaming`` turns it off).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.callloop.selection import SelectionParams
from repro.engine.machine import Machine
from repro.engine.tracing import record_trace
from repro.verify.diff import diff_streaming
from repro.workloads import all_workloads, get_workload


@dataclass
class StreamingCheckResult:
    """Outcome of the streaming-vs-batch pass over the corpus."""

    checked: List[str] = field(default_factory=list)
    failed: List[str] = field(default_factory=list)
    details: Dict[str, List[str]] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.failed

    def describe(self) -> str:
        if self.ok:
            return (
                f"streaming equivalence: {len(self.checked)} workload(s) "
                "match batch"
            )
        lines = [
            f"streaming equivalence: {len(self.failed)} of "
            f"{len(self.checked)} workload(s) diverge from batch"
        ]
        for name in self.failed:
            lines.append(f"  DIVERGED {name}:")
            lines.extend("    " + d for d in self.details.get(name, []))
        return "\n".join(lines)


def check_streaming_corpus(
    workloads: Optional[List[str]] = None,
    params: Optional[SelectionParams] = None,
    detail_limit: int = 8,
) -> StreamingCheckResult:
    """Run :func:`diff_streaming` on every workload's ``train`` trace."""
    names = workloads or [w.name for w in all_workloads()]
    result = StreamingCheckResult()
    for name in names:
        workload = get_workload(name)
        program = workload.build()
        trace = record_trace(Machine(program, workload.train_input))
        mismatches = diff_streaming(program, trace, params)
        result.checked.append(name)
        if mismatches:
            result.failed.append(name)
            result.details[name] = [
                m.describe() for m in mismatches[:detail_limit]
            ]
    return result
