"""The golden regression corpus: pinned profiles and marker selections.

For every bundled workload (profiled on its ``train`` input) the corpus
under ``tests/golden/`` pins:

* the serialized call-loop graph (exact — JSON float round-trips are
  bit-identical and edge order is preserved);
* the marker selection under default parameters *and* under
  ``procedures_only`` (the paper's "procs only" baseline);
* the depth estimate and processing order the selection used.

:func:`check_golden_corpus` recomputes everything from scratch and
compares the serialized documents for **dict equality** — any change to
the profiler, depth estimator, or selection logic that alters output for
any workload fails the check.  Intentional changes are ratified by
re-generating the corpus (``repro verify --refresh-golden``) and
reviewing the resulting diff; the procedure is documented in
``docs/VERIFICATION.md``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.callloop.profiler import build_call_loop_graph
from repro.callloop.selection import SelectionParams, select_markers
from repro.callloop.serialization import graph_to_dict, marker_set_to_dict
from repro.workloads import all_workloads, get_workload

GOLDEN_FORMAT_VERSION = 1

#: selection variants pinned per workload
_VARIANTS = {
    "default": SelectionParams(),
    "procs_only": SelectionParams(procedures_only=True),
}


def default_golden_dir() -> Path:
    """``tests/golden/`` resolved relative to the repository root."""
    return Path(__file__).resolve().parents[3] / "tests" / "golden"


def compute_golden_entry(workload_name: str) -> Dict[str, Any]:
    """Profile one workload on ``train`` and derive its pinned document."""
    from repro.callloop.depth import estimate_max_depth, processing_order

    workload = get_workload(workload_name)
    program = workload.build()
    graph = build_call_loop_graph(program, [workload.train_input])

    depths = estimate_max_depth(graph)
    order = processing_order(graph)
    selections = {
        name: marker_set_to_dict(select_markers(graph, params).markers)
        for name, params in _VARIANTS.items()
    }
    return {
        "golden_format_version": GOLDEN_FORMAT_VERSION,
        "workload": workload_name,
        "input": workload.train_input.name,
        "graph": graph_to_dict(graph),
        "depths": {str(node): depth for node, depth in depths.items()},
        "processing_order": [str(node) for node in order],
        "selections": selections,
    }


def _entry_path(golden_dir: Path, workload_name: str) -> Path:
    return Path(golden_dir) / f"{workload_name.replace('/', '_')}.json"


def write_golden_corpus(
    golden_dir: Optional[Path] = None,
    workloads: Optional[List[str]] = None,
) -> List[Path]:
    """(Re-)generate the corpus; returns the files written."""
    golden_dir = Path(golden_dir) if golden_dir else default_golden_dir()
    golden_dir.mkdir(parents=True, exist_ok=True)
    names = workloads or [w.name for w in all_workloads()]
    written = []
    for name in names:
        entry = compute_golden_entry(name)
        path = _entry_path(golden_dir, name)
        path.write_text(json.dumps(entry, indent=1, sort_keys=True) + "\n")
        written.append(path)
    return written


@dataclass
class GoldenCheckResult:
    """Outcome of recomputing the corpus against the committed files."""

    checked: List[str] = field(default_factory=list)
    missing: List[str] = field(default_factory=list)
    stale: List[str] = field(default_factory=list)  #: file differs from recompute
    details: Dict[str, List[str]] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.missing and not self.stale

    def describe(self) -> str:
        if self.ok:
            return f"golden corpus: {len(self.checked)} workload(s) match"
        lines = [
            f"golden corpus: {len(self.stale)} stale, "
            f"{len(self.missing)} missing (of {len(self.checked) + len(self.missing)})"
        ]
        for name in self.missing:
            lines.append(f"  MISSING {name} (run: repro verify --refresh-golden)")
        for name in self.stale:
            lines.append(f"  STALE   {name}:")
            lines.extend("    " + d for d in self.details.get(name, []))
        return "\n".join(lines)


def _diff_documents(expected: Any, actual: Any, prefix: str = "") -> List[str]:
    """Human-oriented paths into the first few differing keys."""
    diffs: List[str] = []

    def walk(exp: Any, act: Any, path: str) -> None:
        if len(diffs) >= 8:
            return
        if isinstance(exp, dict) and isinstance(act, dict):
            for key in sorted(set(exp) | set(act)):
                if key not in exp:
                    diffs.append(f"{path}.{key}: unexpected key")
                elif key not in act:
                    diffs.append(f"{path}.{key}: key disappeared")
                else:
                    walk(exp[key], act[key], f"{path}.{key}")
        elif isinstance(exp, list) and isinstance(act, list):
            if len(exp) != len(act):
                diffs.append(f"{path}: length {len(exp)} -> {len(act)}")
                return
            for i, (e, a) in enumerate(zip(exp, act)):
                walk(e, a, f"{path}[{i}]")
        elif exp != act:
            diffs.append(f"{path}: {exp!r} -> {act!r}")

    walk(expected, actual, prefix or "$")
    return diffs


def check_golden_corpus(
    golden_dir: Optional[Path] = None,
    workloads: Optional[List[str]] = None,
) -> GoldenCheckResult:
    """Recompute every workload's document and compare to the files."""
    golden_dir = Path(golden_dir) if golden_dir else default_golden_dir()
    names = workloads or [w.name for w in all_workloads()]
    result = GoldenCheckResult()
    for name in names:
        path = _entry_path(golden_dir, name)
        if not path.exists():
            result.missing.append(name)
            continue
        expected = json.loads(path.read_text())
        actual = compute_golden_entry(name)
        result.checked.append(name)
        if expected != actual:
            result.stale.append(name)
            result.details[name] = _diff_documents(expected, actual)
    return result
