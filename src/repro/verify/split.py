"""Segmented-split equivalence pass over the bundled workload corpus.

The VLI split ships three fast paths — the vectorized candidate
pre-scan, the batched-collector walk, and the segmented parallel walk
with seam merge — all claiming bit-identity with the scalar per-event
splitter (see ``docs/PERFORMANCE.md``).  :func:`check_split_corpus`
proves that claim on every bundled workload's ``train`` trace by
running :func:`~repro.verify.diff.diff_segmented_split` on each, the
same check that rides every fuzz iteration inside
:func:`~repro.verify.diff.verify_program`.

Like the streaming pass, nothing is pinned on disk — both sides are
recomputed, so it needs no refresh step and runs even when the golden
files are absent (``repro verify --skip-golden`` still runs it;
``--skip-split`` turns it off).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.callloop.profiler import CallLoopProfiler
from repro.callloop.selection import SelectionParams, select_markers
from repro.engine.machine import Machine
from repro.engine.tracing import record_trace
from repro.intervals.vli import split_at_markers_prescan
from repro.verify.diff import diff_segmented_split
from repro.workloads import all_workloads, get_workload


@dataclass
class SplitCheckResult:
    """Outcome of the segmented-split pass over the corpus."""

    checked: List[str] = field(default_factory=list)
    prescanned: List[str] = field(default_factory=list)
    failed: List[str] = field(default_factory=list)
    details: Dict[str, List[str]] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.failed

    def describe(self) -> str:
        if self.ok:
            return (
                f"segmented split: {len(self.checked)} workload(s) match "
                f"the scalar splitter ({len(self.prescanned)} via pre-scan)"
            )
        lines = [
            f"segmented split: {len(self.failed)} of "
            f"{len(self.checked)} workload(s) diverge from the scalar splitter"
        ]
        for name in self.failed:
            lines.append(f"  DIVERGED {name}:")
            lines.extend("    " + d for d in self.details.get(name, []))
        return "\n".join(lines)


def check_split_corpus(
    workloads: Optional[List[str]] = None,
    params: Optional[SelectionParams] = None,
    shards: int = 4,
    detail_limit: int = 8,
) -> SplitCheckResult:
    """Run :func:`diff_segmented_split` on every workload's ``train`` trace."""
    names = workloads or [w.name for w in all_workloads()]
    params = params or SelectionParams()
    result = SplitCheckResult()
    for name in names:
        workload = get_workload(name)
        program = workload.build()
        trace = record_trace(Machine(program, workload.train_input))
        graph = CallLoopProfiler(program).profile_trace(trace)
        markers = select_markers(graph, params).markers
        mismatches = diff_segmented_split(program, trace, markers, shards=shards)
        result.checked.append(name)
        if split_at_markers_prescan(program, trace, markers) is not None:
            result.prescanned.append(name)
        if mismatches:
            result.failed.append(name)
            result.details[name] = [
                m.describe() for m in mismatches[:detail_limit]
            ]
    return result
