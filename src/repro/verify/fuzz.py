"""Seeded structured-program fuzzing for the differential harness.

The hypothesis strategies in ``tests/test_properties.py`` generate small,
well-behaved programs.  This module generates the shapes they never
reach — deep mutual recursion, zero- and single-iteration loops, loops
whose bodies vary per iteration, 100+-way call fan-out, and procedures
whose head/body split is degenerate (a single glue-sized block) — runs
each one through :func:`repro.verify.diff.verify_program`, and shrinks
any failing program to a minimal reproducer.

Everything is driven by a **program spec**: a JSON-serializable dict
describing procedures and statements.  Specs are what the generator
emits, what the shrinker mutates, and what failing reproducers persist
as under ``tests/verify/repros/`` (re-runnable via
:func:`build_program`).

Spec grammar::

    {"seed": 7, "shape": "mutual_recursion",
     "procs": [{"name": "p0", "body": [<stmt>, ...]}, ...]}

    <stmt> ::= {"op": "code", "size": N, "loads": N}
             | {"op": "call", "callee": "p3"}
             | {"op": "loop", "lo": N, "hi": N, "body": [<stmt>, ...]}
             | {"op": "if", "prob": P, "then": [...], "else": [...]}

``procs[0]`` is the entry point.  Loops draw uniform trip counts in
``[lo, hi]`` (``lo == hi == 0`` is a legal zero-iteration loop);
recursion is expressed by calls to any procedure, with the machine's
``max_instructions`` soft cap as the termination backstop — a truncated
trace is still a valid differential input, because both the optimized
and oracle pipelines replay the same recorded trace.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, Iterator, List, Optional, Tuple

from repro.ir.builder import ProgramBuilder
from repro.ir.program import Program, ProgramInput
from repro.ir.trips import UniformTrips
from repro.verify.diff import DiffReport, verify_program

#: default soft cap on fuzzed runs (termination backstop for recursion)
DEFAULT_MAX_INSTRUCTIONS = 20_000

#: default address-stream cap for the O(n²) reuse oracle per iteration
DEFAULT_REUSE_CAP = 512

#: call-nesting bound on recorded fuzz traces (the interpreter recurses
#: per program call; deep mutual recursion must not blow the Python stack)
DEFAULT_MAX_CALL_DEPTH = 150


# ---------------------------------------------------------------------------
# spec -> Program
# ---------------------------------------------------------------------------


def build_program(spec: Dict) -> Tuple[Program, ProgramInput]:
    """Materialize a spec into a runnable (program, input) pair."""
    procs = spec["procs"]
    if not procs:
        raise ValueError("spec has no procedures")
    entry = procs[0]["name"]
    b = ProgramBuilder(f"fuzz-{spec.get('seed', 0)}", entry=entry)
    counter = [0]

    def emit(stmts: List[Dict]) -> None:
        for stmt in stmts:
            op = stmt["op"]
            if op == "code":
                size = max(1, int(stmt["size"]))
                b.code(size, loads=min(size, int(stmt.get("loads", 0))))
            elif op == "call":
                b.call(stmt["callee"])
            elif op == "loop":
                counter[0] += 1
                lo, hi = int(stmt["lo"]), int(stmt["hi"])
                with b.loop(f"L{counter[0]}", trips=UniformTrips(lo, max(lo, hi))):
                    emit(stmt["body"])
            elif op == "if":
                with b.if_(float(stmt["prob"])):
                    emit(stmt["then"])
                if stmt.get("else"):
                    with b.else_():
                        emit(stmt["else"])
            else:
                raise ValueError(f"unknown spec op {op!r}")

    for proc in procs:
        with b.proc(proc["name"]):
            body = proc["body"]
            if not body:
                body = [{"op": "code", "size": 1, "loads": 0}]
            emit(body)
    program = b.build()
    return program, ProgramInput("fuzz", {}, seed=int(spec.get("seed", 0)))


# ---------------------------------------------------------------------------
# spec generation
# ---------------------------------------------------------------------------


def _gen_code(rng: random.Random) -> Dict:
    return {
        "op": "code",
        "size": rng.choice([1, 2, 3, 8, 40, 200]),
        "loads": rng.choice([0, 0, 1, 4]),
    }


def _gen_body(
    rng: random.Random,
    proc_names: List[str],
    depth: int,
    max_depth: int,
    recursion_prob: float,
) -> List[Dict]:
    """A random statement list; *depth* bounds loop/if nesting."""
    stmts: List[Dict] = []
    for _ in range(rng.randint(1, 4)):
        roll = rng.random()
        if roll < 0.35 or depth >= max_depth:
            stmts.append(_gen_code(rng))
        elif roll < 0.60:
            lo = rng.choice([0, 0, 1, 1, 2, 5])
            hi = lo + rng.choice([0, 0, 1, 3, 10])
            stmts.append(
                {
                    "op": "loop",
                    "lo": lo,
                    "hi": hi,
                    "body": _gen_body(
                        rng, proc_names, depth + 1, max_depth, recursion_prob
                    ),
                }
            )
        elif roll < 0.80 and proc_names:
            callee = rng.choice(proc_names)
            stmt: Dict = {"op": "call", "callee": callee}
            if rng.random() < recursion_prob:
                # probability-gate the call so recursion usually terminates
                # before the instruction cap
                stmt = {
                    "op": "if",
                    "prob": rng.choice([0.3, 0.5, 0.6]),
                    "then": [stmt],
                    "else": [_gen_code(rng)],
                }
            stmts.append(stmt)
        else:
            stmts.append(
                {
                    "op": "if",
                    "prob": rng.choice([0.0, 0.1, 0.5, 0.9, 1.0]),
                    "then": _gen_body(
                        rng, proc_names, depth + 1, max_depth, recursion_prob
                    ),
                    "else": []
                    if rng.random() < 0.5
                    else _gen_body(
                        rng, proc_names, depth + 1, max_depth, recursion_prob
                    ),
                }
            )
    return stmts


def _shape_mutual_recursion(rng: random.Random, seed: int) -> Dict:
    """A cycle of 3-7 procedures, each conditionally calling the next."""
    n = rng.randint(3, 7)
    names = [f"p{i}" for i in range(n)]
    procs = []
    for i, name in enumerate(names):
        nxt = names[(i + 1) % n]
        procs.append(
            {
                "name": name,
                "body": [
                    _gen_code(rng),
                    {
                        "op": "if",
                        "prob": rng.choice([0.5, 0.6, 0.7]),
                        "then": [{"op": "call", "callee": nxt}],
                        "else": [_gen_code(rng)],
                    },
                ],
            }
        )
    return {"seed": seed, "shape": "mutual_recursion", "procs": procs}


def _shape_loop_zoo(rng: random.Random, seed: int) -> Dict:
    """Deeply nested loops with zero-, single-, and variable-trip bounds."""

    def nest(depth: int) -> List[Dict]:
        inner = [_gen_code(rng)] if depth == 0 else nest(depth - 1)
        lo, hi = rng.choice([(0, 0), (1, 1), (0, 1), (0, 3), (2, 6)])
        return [
            {"op": "loop", "lo": lo, "hi": hi, "body": inner},
            _gen_code(rng),
        ]

    body = nest(rng.randint(3, 6))
    # a second, sibling nest so some loops share a parent context
    body.extend(nest(rng.randint(1, 3)))
    return {
        "seed": seed,
        "shape": "loop_zoo",
        "procs": [{"name": "p0", "body": body}],
    }


def _shape_fan_out(rng: random.Random, seed: int) -> Dict:
    """100+-way call fan-out from a single driver loop."""
    n = rng.randint(100, 140)
    helpers = [
        {
            "name": f"h{i}",
            "body": [{"op": "code", "size": rng.choice([1, 2, 50]), "loads": 0}],
        }
        for i in range(n)
    ]
    calls: List[Dict] = [{"op": "call", "callee": f"h{i}"} for i in range(n)]
    main = {
        "name": "p0",
        "body": [{"op": "loop", "lo": 1, "hi": 3, "body": calls}],
    }
    return {"seed": seed, "shape": "fan_out", "procs": [main] + helpers}


def _shape_degenerate(rng: random.Random, seed: int) -> Dict:
    """Procedures with degenerate head/body splits: single tiny blocks,
    call-only bodies, zero-trip loops guarding the only work."""
    procs = [
        {"name": "p0", "body": [
            {"op": "call", "callee": "tiny"},
            {"op": "loop", "lo": 0, "hi": 0,
             "body": [{"op": "call", "callee": "never"}]},
            {"op": "call", "callee": "callonly"},
        ]},
        {"name": "tiny", "body": [{"op": "code", "size": 1, "loads": 0}]},
        {"name": "never", "body": [{"op": "code", "size": 100, "loads": 2}]},
        {"name": "callonly", "body": [{"op": "call", "callee": "tiny"}]},
    ]
    return {"seed": seed, "shape": "degenerate", "procs": procs}


def _shape_mixed(rng: random.Random, seed: int) -> Dict:
    """General random program: every construct, recursion allowed."""
    n = rng.randint(2, 8)
    names = [f"p{i}" for i in range(n)]
    procs = [
        {
            "name": name,
            "body": _gen_body(
                rng, names, depth=0, max_depth=rng.randint(2, 4),
                recursion_prob=0.8,
            ),
        }
        for name in names
    ]
    return {"seed": seed, "shape": "mixed", "procs": procs}


_SHAPES: List[Callable[[random.Random, int], Dict]] = [
    _shape_mutual_recursion,
    _shape_loop_zoo,
    _shape_fan_out,
    _shape_degenerate,
    _shape_mixed,
    _shape_mixed,  # weighted: general programs are half the stream
]


def generate_spec(seed: int) -> Dict:
    """Deterministically generate one program spec from a seed."""
    rng = random.Random(seed)
    shape = rng.choice(_SHAPES)
    return shape(rng, seed)


# ---------------------------------------------------------------------------
# shrinking
# ---------------------------------------------------------------------------


def _iter_stmt_lists(spec: Dict) -> Iterator[List[Dict]]:
    """Every statement list in the spec (proc bodies, loop/if bodies)."""

    def walk(stmts: List[Dict]) -> Iterator[List[Dict]]:
        yield stmts
        for stmt in stmts:
            if stmt["op"] == "loop":
                yield from walk(stmt["body"])
            elif stmt["op"] == "if":
                yield from walk(stmt["then"])
                yield from walk(stmt["else"])

    for proc in spec["procs"]:
        yield from walk(proc["body"])


def _mutations(spec: Dict) -> Iterator[Dict]:
    """Candidate simplifications, most aggressive first.

    Each candidate is a deep copy; the shrinker accepts the first one
    that still fails and restarts, so ordering controls shrink speed.
    """

    def copy() -> Dict:
        return json.loads(json.dumps(spec))

    # drop whole procedures (rewriting nothing — only legal if unreferenced)
    called = {
        s["callee"]
        for stmts in _iter_stmt_lists(spec)
        for s in stmts
        if s["op"] == "call"
    }
    for i in range(len(spec["procs"]) - 1, 0, -1):
        if spec["procs"][i]["name"] not in called:
            cand = copy()
            del cand["procs"][i]
            yield cand

    # drop single statements
    lists = list(_iter_stmt_lists(spec))
    for li, stmts in enumerate(lists):
        for si in range(len(stmts)):
            cand = copy()
            cand_lists = list(_iter_stmt_lists(cand))
            del cand_lists[li][si]
            yield cand

    # hoist loop/if bodies into the parent (removes one nesting level)
    for li, stmts in enumerate(lists):
        for si, stmt in enumerate(stmts):
            if stmt["op"] == "loop":
                cand = copy()
                tgt = list(_iter_stmt_lists(cand))[li]
                tgt[si : si + 1] = tgt[si]["body"]
                yield cand
            elif stmt["op"] == "if":
                for branch in ("then", "else"):
                    cand = copy()
                    tgt = list(_iter_stmt_lists(cand))[li]
                    tgt[si : si + 1] = tgt[si][branch]
                    yield cand

    # simplify scalars: trips toward (0|1), code size toward 1, prob to 0/1
    for li, stmts in enumerate(lists):
        for si, stmt in enumerate(stmts):
            if stmt["op"] == "loop" and (stmt["lo"], stmt["hi"]) != (1, 1):
                cand = copy()
                tgt = list(_iter_stmt_lists(cand))[li][si]
                tgt["lo"], tgt["hi"] = 1, 1
                yield cand
            elif stmt["op"] == "code" and stmt["size"] > 1:
                cand = copy()
                tgt = list(_iter_stmt_lists(cand))[li][si]
                tgt["size"], tgt["loads"] = 1, 0
                yield cand
            elif stmt["op"] == "if" and stmt["prob"] not in (0.0, 1.0):
                for p in (1.0, 0.0):
                    cand = copy()
                    tgt = list(_iter_stmt_lists(cand))[li][si]
                    tgt["prob"] = p
                    yield cand


def shrink_spec(
    spec: Dict,
    still_fails: Callable[[Dict], bool],
    max_steps: int = 400,
) -> Dict:
    """Greedily shrink *spec* while ``still_fails`` holds, to a fixpoint."""
    current = json.loads(json.dumps(spec))
    steps = 0
    progress = True
    while progress and steps < max_steps:
        progress = False
        for candidate in _mutations(current):
            steps += 1
            if steps >= max_steps:
                break
            if not candidate["procs"]:
                continue
            try:
                failed = still_fails(candidate)
            except Exception:
                failed = False  # a candidate that breaks the builder is no repro
            if failed:
                current = candidate
                progress = True
                break
    return current


# ---------------------------------------------------------------------------
# the fuzz loop
# ---------------------------------------------------------------------------


@dataclass
class FuzzFailure:
    """One failing iteration: the original and shrunk specs plus report."""

    iteration: int
    seed: int
    spec: Dict
    shrunk: Dict
    report: str
    repro_path: Optional[str] = None


@dataclass
class FuzzReport:
    """Outcome of a fuzz run."""

    seed: int
    iterations: int
    programs_checked: int = 0
    failures: List[FuzzFailure] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def describe(self) -> str:
        head = (
            f"fuzz seed={self.seed}: {self.programs_checked}/{self.iterations} "
            f"programs checked, {len(self.failures)} failure(s)"
        )
        lines = [head]
        for f in self.failures:
            lines.append(f"-- iteration {f.iteration} ({f.spec.get('shape')}):")
            lines.append(f.report)
            if f.repro_path:
                lines.append(f"   reproducer: {f.repro_path}")
        return "\n".join(lines)


def _check_spec(
    spec: Dict, max_instructions: int, reuse_cap: int
) -> DiffReport:
    """Build the spec and run every differential check on it."""
    program, program_input = build_program(spec)
    return verify_program(
        program,
        program_input,
        max_instructions=max_instructions,
        max_call_depth=DEFAULT_MAX_CALL_DEPTH,
        reuse_cap=reuse_cap,
    )


def run_fuzz(
    seed: int,
    iters: int,
    max_instructions: int = DEFAULT_MAX_INSTRUCTIONS,
    reuse_cap: int = DEFAULT_REUSE_CAP,
    repro_dir: Optional[Path] = None,
    progress: Optional[Callable[[int, str], None]] = None,
) -> FuzzReport:
    """Run *iters* seeded differential iterations.

    Iteration *i* uses spec seed ``seed * 1_000_003 + i`` so distinct
    base seeds explore disjoint spec streams.  Failures are shrunk and,
    when *repro_dir* is given, written there as re-runnable JSON.
    """
    result = FuzzReport(seed=seed, iterations=iters)
    for i in range(iters):
        spec_seed = seed * 1_000_003 + i
        spec = generate_spec(spec_seed)
        if progress is not None:
            progress(i, spec.get("shape", "?"))
        report = _check_spec(spec, max_instructions, reuse_cap)
        result.programs_checked += 1
        if report.ok:
            continue

        def still_fails(candidate: Dict) -> bool:
            r = _check_spec(candidate, max_instructions, reuse_cap)
            return not r.ok

        shrunk = shrink_spec(spec, still_fails)
        failure = FuzzFailure(
            iteration=i,
            seed=spec_seed,
            spec=spec,
            shrunk=shrunk,
            report=_check_spec(shrunk, max_instructions, reuse_cap).describe(),
        )
        if repro_dir is not None:
            repro_dir = Path(repro_dir)
            repro_dir.mkdir(parents=True, exist_ok=True)
            path = repro_dir / f"repro_seed{seed}_iter{i}.json"
            path.write_text(
                json.dumps(
                    {
                        "spec": shrunk,
                        "original_spec": spec,
                        "report": failure.report,
                        "max_instructions": max_instructions,
                        "reuse_cap": reuse_cap,
                    },
                    indent=2,
                    sort_keys=True,
                )
                + "\n"
            )
            failure.repro_path = str(path)
        result.failures.append(failure)
    return result


def replay_repro(path: Path) -> DiffReport:
    """Re-run a persisted reproducer file and return its report."""
    data = json.loads(Path(path).read_text())
    return _check_spec(
        data["spec"],
        int(data.get("max_instructions", DEFAULT_MAX_INSTRUCTIONS)),
        int(data.get("reuse_cap", DEFAULT_REUSE_CAP)),
    )
