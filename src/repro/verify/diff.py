"""Differential comparison of optimized vs oracle implementations.

:func:`verify_program` runs one program through both pipelines and
reports every disagreement as a structured :class:`Mismatch`.  The
stage-by-stage checks are also usable on their own:

========================  ==================================================
check                     optimized side vs oracle side
========================  ==================================================
:func:`diff_graphs`       ``CallLoopProfiler`` (shadow stack + Welford)
                          vs :func:`oracle_call_loop_graph` (naive walk +
                          two-pass statistics)
:func:`diff_depths`       ``estimate_max_depth`` / ``processing_order``
                          vs recursive transliteration; plus exact
                          longest-simple-path brute force on acyclic graphs
:func:`diff_selection`    ``select_markers`` passes vs direct set filters
:func:`diff_intervals`    ``split_at_markers`` vs naive boundary re-derivation
:func:`diff_reuse`        Fenwick-tree reuse distances vs O(n²) scan, plus
                          the vectorized log2 histogram vs per-distance
                          ``bit_length`` binning
:func:`diff_vectorized_kernels`
                          the vectorized selection engine (struct-of-arrays
                          view + threshold kernel) vs the retained scalar
                          engine, compared **bit-for-bit**
:func:`diff_trace_pipeline`
                          the chunked columnar recorder (``Machine`` fast
                          emit path) vs the object-event oracle, and the
                          bulk trace replay vs the scalar walker —
                          columns, callback sequences, and row positions
                          compared **bit-for-bit**
:func:`diff_segmented_profile`
                          the segmented parallel profile (cut plan +
                          per-segment walks + exact moment merge) vs the
                          sequential walk and the scalar oracle —
                          callback concatenation and the merged graph
                          compared **bit-for-bit**
:func:`diff_segmented_split`
                          the sparsity-aware VLI split (vectorized
                          candidate pre-scan, batched collector, and
                          segmented parallel walk with seam merge) vs
                          the scalar per-event splitter — interval
                          boundaries, timestamps, lengths, and phase
                          ids compared **bit-for-bit**
:func:`diff_streaming`    the incremental streaming path (chunked
                          ``IncrementalWalker`` feed, windowed moment
                          merge, online phase monitor) vs the batch
                          walker, profiler, selection, and
                          ``PhaseMonitor`` — callbacks, graph dicts,
                          marker-set dicts, and phase changes compared
                          **bit-for-bit**
========================  ==================================================

Tolerance rules: traversal counts, depths, orders, marker sets, interval
boundaries, and reuse distances must match **exactly** (they are integer
or set valued).  Means, maxima, totals, and CoV values are floats
produced by different summation orders (Welford vs two-pass), so they
compare under a relative tolerance; a selection decision that differs is
forgiven only when the edge's CoV sits within the float tolerance of the
applied threshold on both sides (a genuinely borderline edge, not a
logic bug).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.callloop.depth import estimate_max_depth, processing_order
from repro.callloop.graph import CallLoopGraph, NodeTable
from repro.callloop.markers import MarkerSet
from repro.callloop.profiler import CallLoopProfiler
from repro.callloop.walker import ContextHandler, ContextWalker
from repro.callloop.selection import (
    SelectionParams,
    cov_threshold_stats,
    select_markers,
    select_markers_scalar,
)
from repro.engine.machine import Machine
from repro.engine.memory import MemorySystem
from repro.engine.tracing import Trace, record_trace
from repro.intervals.vli import (
    split_at_markers,
    split_at_markers_prescan,
    split_at_markers_scalar,
)
from repro.ir.program import Program, ProgramInput
from repro.verify import oracles
from repro.verify.oracles import (
    OracleGraph,
    oracle_call_loop_graph,
    oracle_reuse_distances,
    oracle_reuse_histogram,
    oracle_select_markers,
    oracle_split_at_markers,
)

#: relative tolerance for float statistics (different summation orders)
FLOAT_RTOL = 1e-9
#: absolute floor for the same comparisons (values near zero)
FLOAT_ATOL = 1e-9


def _close(a: float, b: float) -> bool:
    return abs(a - b) <= max(FLOAT_ATOL, FLOAT_RTOL * max(abs(a), abs(b)))


@dataclass(frozen=True)
class Mismatch:
    """One optimized-vs-oracle disagreement."""

    kind: str  #: "graph", "depth", "order", "selection", "intervals", "reuse"
    key: str  #: which edge / node / index disagrees
    optimized: Any
    oracle: Any
    detail: str = ""

    def describe(self) -> str:
        text = (
            f"[{self.kind}] {self.key}: optimized={self.optimized!r} "
            f"oracle={self.oracle!r}"
        )
        if self.detail:
            text += f" ({self.detail})"
        return text


@dataclass
class DiffReport:
    """All mismatches from one program, plus what was checked."""

    program: str
    mismatches: List[Mismatch] = field(default_factory=list)
    checks_run: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.mismatches

    def extend(self, check: str, found: List[Mismatch]) -> None:
        self.checks_run.append(check)
        self.mismatches.extend(found)

    def describe(self, limit: int = 20) -> str:
        if self.ok:
            return (
                f"{self.program}: OK ({', '.join(self.checks_run)})"
            )
        lines = [
            f"{self.program}: {len(self.mismatches)} mismatch(es) "
            f"across {', '.join(self.checks_run)}"
        ]
        lines.extend("  " + m.describe() for m in self.mismatches[:limit])
        if len(self.mismatches) > limit:
            lines.append(f"  ... {len(self.mismatches) - limit} more")
        return "\n".join(lines)


def _key_str(key) -> str:
    src, dst = key
    return f"{src} -> {dst}"


# ---------------------------------------------------------------------------
# stage checks
# ---------------------------------------------------------------------------


def diff_graphs(optimized: CallLoopGraph, oracle: OracleGraph) -> List[Mismatch]:
    """Compare edge sets, traversal counts, statistics, and sources."""
    out: List[Mismatch] = []
    if optimized.total_instructions != oracle.total_instructions:
        out.append(
            Mismatch(
                "graph", "total_instructions",
                optimized.total_instructions, oracle.total_instructions,
            )
        )
    opt_keys = {(e.src, e.dst) for e in optimized.edges}
    orc_keys = set(oracle.edge_keys())
    for key in sorted(opt_keys - orc_keys, key=_key_str):
        out.append(Mismatch("graph", _key_str(key), "present", "absent"))
    for key in sorted(orc_keys - opt_keys, key=_key_str):
        out.append(Mismatch("graph", _key_str(key), "absent", "present"))

    for edge in optimized.edges:
        key = (edge.src, edge.dst)
        if key not in orc_keys:
            continue
        expected = oracle.stats(key)
        name = _key_str(key)
        if edge.count != expected.count:
            out.append(
                Mismatch("graph", name, edge.count, expected.count, "count")
            )
            continue  # derived stats are meaningless on a count mismatch
        for label, got, want in (
            ("avg", edge.avg, expected.mean),
            ("cov", edge.cov, expected.cov),
            ("max", edge.max, expected.max_value),
            ("total", edge.total, expected.total),
        ):
            if not _close(got, want):
                out.append(Mismatch("graph", name, got, want, label))
        if edge.site_sources != oracle.site_sources[key]:
            out.append(
                Mismatch(
                    "graph", name,
                    sorted(map(str, edge.site_sources)),
                    sorted(map(str, oracle.site_sources[key])),
                    "site_sources",
                )
            )
    return out


def diff_depths(
    graph: CallLoopGraph, brute_force_edge_cap: int = 80
) -> List[Mismatch]:
    """Compare depth estimates and the processing order they induce."""
    out: List[Mismatch] = []
    optimized = estimate_max_depth(graph)
    expected = oracles.oracle_estimate_depth(graph)
    for node in sorted(set(optimized) | set(expected), key=str):
        got = optimized.get(node)
        want = expected.get(node)
        if got != want:
            out.append(Mismatch("depth", str(node), got, want, "estimate"))

    # On acyclic graphs the estimate must be the exact longest path.
    if graph.num_edges <= brute_force_edge_cap and not oracles.graph_has_cycle(graph):
        exact = oracles.oracle_longest_path_depths(graph)
        if exact is not None:
            for node in sorted(exact, key=str):
                if optimized.get(node) != exact[node]:
                    out.append(
                        Mismatch(
                            "depth", str(node),
                            optimized.get(node), exact[node],
                            "longest simple path (acyclic)",
                        )
                    )

    opt_order = [str(n) for n in processing_order(graph)]
    orc_order = [str(n) for n in oracles.oracle_processing_order(graph, expected)]
    if opt_order != orc_order:
        for i, (got, want) in enumerate(zip(opt_order, orc_order)):
            if got != want:
                out.append(Mismatch("order", f"position {i}", got, want))
                break
    return out


def diff_selection(
    graph: CallLoopGraph, params: Optional[SelectionParams] = None
) -> List[Mismatch]:
    """Compare both passes of marker selection over the same graph."""
    params = params or SelectionParams()
    out: List[Mismatch] = []
    result = select_markers(graph, params)
    expected = oracle_select_markers(graph, params)

    opt_candidates = [(e.src, e.dst) for e in result.candidates]
    if opt_candidates != expected.candidates:
        out.append(
            Mismatch(
                "selection", "candidates",
                [_key_str(k) for k in opt_candidates],
                [_key_str(k) for k in expected.candidates],
                "pass 1",
            )
        )
    cov_base, cov_spread = result.cov_base, result.cov_spread
    if not _close(cov_base, expected.cov_base):
        out.append(
            Mismatch("selection", "cov_base", cov_base, expected.cov_base)
        )
    if not _close(cov_spread, expected.cov_spread):
        out.append(
            Mismatch("selection", "cov_spread", cov_spread, expected.cov_spread)
        )

    opt_selected = [(m.src, m.dst) for m in result.markers]
    if opt_selected != expected.selected:
        disagreeing = set(opt_selected).symmetric_difference(expected.selected)
        for key in sorted(disagreeing, key=_key_str):
            edge = graph.find_edge(*key)
            threshold = expected.thresholds.get(key)
            # A cov sitting exactly on the threshold is a float coin-flip,
            # not a logic divergence; everything else is a real mismatch.
            if (
                edge is not None
                and threshold is not None
                and _close(edge.cov, threshold)
            ):
                continue
            out.append(
                Mismatch(
                    "selection", _key_str(key),
                    key in set(opt_selected), key in set(expected.selected),
                    "pass 2 selected",
                )
            )
    return out


def diff_intervals(
    program: Program, trace: Trace, marker_set: MarkerSet
) -> List[Mismatch]:
    """Compare VLI boundaries, lengths, and phase ids."""
    out: List[Mismatch] = []
    optimized = split_at_markers(program, trace, marker_set)
    expected = oracle_split_at_markers(program, trace, marker_set)
    for label, got, want in (
        ("row_bounds", optimized.row_bounds.tolist(), expected.row_bounds),
        ("start_ts", optimized.start_ts.tolist(), expected.start_ts),
        ("lengths", optimized.lengths.tolist(), expected.lengths),
        ("phase_ids", optimized.phase_ids.tolist(), expected.phase_ids),
    ):
        if got != want:
            out.append(Mismatch("intervals", label, got, want))
    return out


def diff_reuse(
    addresses: Sequence[int], line_bytes: int = 64
) -> List[Mismatch]:
    """Compare Fenwick-tree reuse distances against the O(n²) scan, and
    the vectorized log2 histogram against per-distance binning."""
    import numpy as np

    from repro.reuse.distance import reuse_distances, reuse_histogram

    arr = np.asarray(list(addresses), dtype=np.int64)
    optimized = reuse_distances(arr, line_bytes=line_bytes)
    expected = oracle_reuse_distances(arr.tolist(), line_bytes=line_bytes)
    out: List[Mismatch] = []
    for i, (got, want) in enumerate(zip(optimized.tolist(), expected)):
        if got != want:  # inf == inf holds; finite distances are exact ints
            out.append(Mismatch("reuse", f"access {i}", got, want))
            if len(out) >= 10:
                break
    hist = reuse_histogram(optimized).tolist()
    hist_expected = oracle_reuse_histogram(expected)
    if hist != hist_expected:
        out.append(Mismatch("reuse", "histogram", hist, hist_expected))
    return out


def _bit_equal(got: float, want: float) -> bool:
    """Exact float equality, treating NaN as equal to NaN."""
    return got == want or (got != got and want != want)


def diff_vectorized_kernels(
    graph: CallLoopGraph, params: Optional[SelectionParams] = None
) -> List[Mismatch]:
    """Compare the vectorized selection engine against the scalar engine.

    Unlike the oracle checks (which forgive float noise within
    tolerance), the two engines compute the same IEEE operations in the
    same order, so everything — edge statistics, threshold inputs,
    candidate lists, marker annotations — must match **bit-for-bit**.
    """
    params = params or SelectionParams()
    out: List[Mismatch] = []

    # Struct-of-arrays statistics vs the per-edge Python properties.
    arrays = graph.edge_arrays()
    for i, edge in enumerate(arrays.edges):
        name = _key_str(edge.key())
        if int(arrays.count[i]) != edge.count:
            out.append(
                Mismatch("kernels", name, int(arrays.count[i]), edge.count, "count")
            )
        for label, got, want in (
            ("avg", float(arrays.avg[i]), edge.avg),
            ("cov", float(arrays.cov[i]), edge.cov),
            ("max", float(arrays.max[i]), edge.max),
            ("total", float(arrays.total[i]), edge.total),
        ):
            if not _bit_equal(got, want):
                out.append(Mismatch("kernels", name, got, want, label))

    # Whole-engine equivalence: identical results, field for field.
    vectorized = select_markers(graph, params)
    scalar = select_markers_scalar(graph, params)
    if [e.key() for e in vectorized.candidates] != [
        e.key() for e in scalar.candidates
    ]:
        out.append(
            Mismatch(
                "kernels", "candidates",
                [_key_str(e.key()) for e in vectorized.candidates],
                [_key_str(e.key()) for e in scalar.candidates],
                "pass 1",
            )
        )
    for label, got, want in (
        ("cov_base", vectorized.cov_base, scalar.cov_base),
        ("cov_spread", vectorized.cov_spread, scalar.cov_spread),
    ):
        if not _bit_equal(got, want):
            out.append(Mismatch("kernels", label, got, want))
    got_markers = [
        (m.marker_id, m.src, m.dst, m.avg_interval, m.cov, m.max_interval)
        for m in vectorized.markers
    ]
    want_markers = [
        (m.marker_id, m.src, m.dst, m.avg_interval, m.cov, m.max_interval)
        for m in scalar.markers
    ]
    if got_markers != want_markers:
        out.append(
            Mismatch(
                "kernels", "markers",
                [f"{m[0]}:{m[1]} -> {m[2]}" for m in got_markers],
                [f"{m[0]}:{m[1]} -> {m[2]}" for m in want_markers],
                "pass 2",
            )
        )
    return out


class _SpanLog(ContextHandler):
    """Records every edge callback, tagged with the walker's row cursor.

    Overrides only the edge callbacks, never ``on_block`` — so it stays
    eligible for the bulk replay mode, exactly like the profiler's and
    splitter's handlers.  The row cursor is captured because interval
    splitting keys off ``walker.row`` at ``on_edge_open`` time; a bulk
    walker that fired the right callbacks at the wrong rows would
    corrupt VLI boundaries.
    """

    def __init__(self, walker: ContextWalker):
        self.walker = walker
        self.log: List[tuple] = []

    def on_edge_open(self, src, dst, t, source):
        self.log.append(("open", src, dst, t, str(source), self.walker.row))

    def on_edge_close(self, src, dst, t_open, t_close, source):
        self.log.append(
            ("close", src, dst, t_open, t_close, str(source), self.walker.row)
        )


class _BranchSpanLog(_SpanLog):
    """A :class:`_SpanLog` that also observes branches.

    The override lives on the *class* because that is what the walker's
    bulk dispatch inspects to decide whether branch rows are needed.
    """

    def on_branch(self, address, target, taken):
        self.log.append(("branch", address, target, taken, self.walker.row))


def diff_trace_pipeline(
    program: Program,
    program_input: ProgramInput,
    trace: Trace,
    max_instructions: Optional[int] = None,
    compare_record: bool = True,
) -> List[Mismatch]:
    """Compare the trace pipeline's fast paths against their oracles.

    Two halves, both **bit-for-bit** (the fast paths are reorderings of
    identical integer work, so no tolerance applies):

    * recording — the :class:`~repro.engine.machine.Machine` chunked
      columnar emit path (``record_trace(Machine(...))``) vs *trace*,
      which the caller recorded through the object-yielding ``run()``
      oracle; every column must match row for row.  Skipped when
      ``compare_record`` is false (the caller truncated the event stream
      in a way only the object path supports, e.g. a call-depth cap).
    * replay — the bulk walker vs the scalar walker over *trace*, for
      both an edges-only handler and a branch-observing handler; the
      callback sequences, reported row positions, instruction totals,
      and final row cursors must be identical.
    """
    import numpy as np

    out: List[Mismatch] = []

    if compare_record:
        fast = record_trace(
            Machine(program, program_input, max_instructions=max_instructions)
        )
        if len(fast) != len(trace):
            out.append(
                Mismatch("trace", "rows", len(fast), len(trace), "recorded length")
            )
        else:
            for name in ("kinds", "a", "b", "c"):
                got = getattr(fast, name)
                want = getattr(trace, name)
                if not np.array_equal(got, want):
                    row = int(np.nonzero(got != want)[0][0])
                    out.append(
                        Mismatch(
                            "trace", f"column {name}",
                            int(got[row]), int(want[row]),
                            f"first divergence at row {row}",
                        )
                    )

    table = NodeTable(program)
    for label, make in (("edges", _SpanLog), ("edges+branches", _BranchSpanLog)):
        scalar_walker = ContextWalker(program, table)
        scalar_log = make(scalar_walker)
        scalar_total = scalar_walker.walk_scalar(trace, scalar_log)
        bulk_walker = ContextWalker(program, table)
        bulk_log = make(bulk_walker)
        bulk_total = bulk_walker.walk(trace, bulk_log, bulk=True)

        if bulk_total != scalar_total:
            out.append(
                Mismatch(
                    "trace", f"walk({label}) total", bulk_total, scalar_total
                )
            )
        if bulk_walker.row != scalar_walker.row:
            out.append(
                Mismatch(
                    "trace", f"walk({label}) final row",
                    bulk_walker.row, scalar_walker.row,
                )
            )
        if bulk_log.log != scalar_log.log:
            if len(bulk_log.log) != len(scalar_log.log):
                out.append(
                    Mismatch(
                        "trace", f"walk({label}) callbacks",
                        len(bulk_log.log), len(scalar_log.log),
                        "callback count",
                    )
                )
            for i, (got, want) in enumerate(zip(bulk_log.log, scalar_log.log)):
                if got != want:
                    out.append(
                        Mismatch(
                            "trace", f"walk({label}) callback {i}", got, want
                        )
                    )
                    break
    return out


def diff_segmented_profile(
    program: Program,
    trace: Trace,
    shards: int = 4,
    sequential: Optional[CallLoopGraph] = None,
) -> List[Mismatch]:
    """Compare the segmented profile against the sequential walk.

    Two layers, both **bit-for-bit**:

    * replay — each planned segment is walked under a
      :class:`_SpanLog`; the per-segment callback sequences must
      concatenate to exactly the scalar oracle's (same order, same
      timestamps, same absolute row positions), and the last segment's
      instruction total and final row cursor must equal the oracle's.
    * merge — the graph profiled at *shards* segments (serial and
      thread executors) must serialize to exactly the same dict as the
      sequentially profiled graph: the exact integer moments make the
      merge associative, so not even float noise is tolerated.

    Traces that :meth:`ContextWalker.plan_segments` declines to cut
    exercise the fallback instead: the sharded call must still produce
    the sequential graph.  *sequential* optionally supplies an
    already-profiled sequential graph to compare against.
    """
    from repro.callloop.serialization import graph_to_dict

    out: List[Mismatch] = []
    table = NodeTable(program)
    walker = ContextWalker(program, table)
    segments = walker.plan_segments(trace, shards)

    def profile(shard_count=None, executor=None) -> Dict[str, Any]:
        profiler = CallLoopProfiler(program, table=table)
        profiler.profile_trace(trace, shards=shard_count, executor=executor)
        return graph_to_dict(profiler.graph)

    want_graph = (
        graph_to_dict(sequential) if sequential is not None else profile()
    )

    if not segments:
        # Unsegmentable trace: the sharded entry point must fall back to
        # the sequential walk and produce the identical graph.
        if profile(shards, "serial") != want_graph:
            out.append(
                Mismatch(
                    "segmented", "fallback graph", "differs", "sequential",
                    f"{shards} shards, unsegmentable trace",
                )
            )
        return out

    scalar_walker = ContextWalker(program, table)
    scalar_log = _SpanLog(scalar_walker)
    scalar_total = scalar_walker.walk_scalar(trace, scalar_log)

    seg_log: List[tuple] = []
    seg_total = 0
    last_walker = None
    for i, seg in enumerate(segments):
        w = ContextWalker(program, table)
        log = _SpanLog(w)
        seg_total = w.walk_segment(
            trace, log, seg,
            is_first=i == 0,
            is_last=i == len(segments) - 1,
        )
        seg_log.extend(log.log)
        last_walker = w

    if seg_total != scalar_total:
        out.append(
            Mismatch(
                "segmented", "total", seg_total, scalar_total,
                f"{len(segments)} segments",
            )
        )
    if last_walker.row != scalar_walker.row:
        out.append(
            Mismatch(
                "segmented", "final row", last_walker.row, scalar_walker.row
            )
        )
    if seg_log != scalar_log.log:
        if len(seg_log) != len(scalar_log.log):
            out.append(
                Mismatch(
                    "segmented", "callbacks",
                    len(seg_log), len(scalar_log.log),
                    "concatenated callback count",
                )
            )
        for i, (got, want) in enumerate(zip(seg_log, scalar_log.log)):
            if got != want:
                out.append(
                    Mismatch("segmented", f"callback {i}", got, want)
                )
                break

    for executor in ("serial", "threads"):
        got_graph = profile(shards, executor)
        if got_graph != want_graph:
            detail = _first_dict_divergence(got_graph, want_graph)
            out.append(
                Mismatch(
                    "segmented", f"merged graph ({executor})",
                    "differs", "sequential", detail,
                )
            )
    return out


def diff_segmented_split(
    program: Program,
    trace: Trace,
    marker_set: MarkerSet,
    shards: int = 4,
) -> List[Mismatch]:
    """Compare every fast VLI split path against the scalar splitter.

    The scalar per-event splitter (:func:`split_at_markers_scalar`) is
    the oracle; against it, **bit-for-bit** on ``row_bounds`` /
    ``start_ts`` / ``lengths`` / ``phase_ids``:

    * the shipping default — the vectorized candidate pre-scan with its
      batched-collector fallback (whichever fires for this program);
    * the pre-scan probed directly (:func:`split_at_markers_prescan`),
      when its preconditions hold — so a program that routes the
      default path through the fallback still pins the pre-scan
      whenever it *can* run;
    * the segmented walk at *shards* segments under the serial and
      thread executors, exercising the seam merge (coincident-firing
      collapse across cuts, prologue handling after the merge).
      Unsegmentable traces exercise the sequential fallback instead,
      which must still match.
    """
    out: List[Mismatch] = []
    want = split_at_markers_scalar(program, trace, marker_set)

    def compare(label: str, got) -> None:
        for name in ("row_bounds", "start_ts", "lengths", "phase_ids"):
            got_col = getattr(got, name).tolist()
            want_col = getattr(want, name).tolist()
            if got_col != want_col:
                out.append(
                    Mismatch("segmented-split", f"{label} {name}", got_col, want_col)
                )

    compare("default", split_at_markers(program, trace, marker_set))
    prescan = split_at_markers_prescan(program, trace, marker_set)
    if prescan is not None:
        compare("prescan", prescan)
    for executor in ("serial", "threads"):
        compare(
            f"{shards} shards ({executor})",
            split_at_markers(
                program, trace, marker_set, shards=shards, executor=executor
            ),
        )
    return out


def _first_dict_divergence(got: Dict[str, Any], want: Dict[str, Any]) -> str:
    """A short human pointer at where two graph dicts first disagree."""
    for key in want:
        if key not in got:
            return f"missing key {key!r}"
        if got[key] != want[key]:
            return f"key {key!r} differs"
    extra = [key for key in got if key not in want]
    return f"extra keys {extra!r}" if extra else "unknown divergence"


class _StreamLog(ContextHandler):
    """Records edge and branch callbacks without a row cursor.

    The incremental walker fires its entry opens at construction time
    (before any handler could know a row cursor), so streaming parity
    compares the callback *sequence* plus the final cursor and total,
    mirroring the streaming package's own contract.
    """

    def __init__(self):
        self.log: List[tuple] = []
        self.blocks = 0

    def on_edge_open(self, src, dst, t, source):
        self.log.append(("open", src, dst, t, str(source)))

    def on_edge_close(self, src, dst, t_open, t_close, source):
        self.log.append(("close", src, dst, t_open, t_close, str(source)))

    def on_block(self, block_id, size, t):
        self.blocks += 1


def diff_streaming(
    program: Program,
    trace: Trace,
    params: Optional[SelectionParams] = None,
    chunk_rows: int = 257,
    sequential: Optional[CallLoopGraph] = None,
) -> List[Mismatch]:
    """Compare the streaming path against the batch path, **bit-for-bit**.

    Three layers, all exact (the streaming implementation re-orders the
    identical integer work, so no tolerance applies):

    * walker — :class:`~repro.streaming.IncrementalWalker` fed the trace
      in *chunk_rows* pieces must reproduce the scalar batch walker's
      callback sequence, instruction total, and final row cursor;
    * profile + selection — an unbounded-window, drift-disabled
      :class:`~repro.streaming.StreamingPhaseMonitor` must fold its
      window to the exact serialized batch graph, and selecting on that
      window must serialize to the exact batch marker set;
    * phases — the same streaming monitor's phase changes, dwell
      records, and per-phase time accounting must equal a batch
      :class:`~repro.runtime.PhaseMonitor` replaying the same trace.

    *sequential* optionally supplies an already-profiled batch graph.
    """
    from repro.callloop.serialization import graph_to_dict, marker_set_to_dict
    from repro.runtime import PhaseMonitor
    from repro.streaming import IncrementalWalker, StreamingConfig, stream_trace

    params = params or SelectionParams()
    out: List[Mismatch] = []
    table = NodeTable(program)

    batch_walker = ContextWalker(program, table)
    batch_log = _StreamLog()
    batch_total = batch_walker.walk_scalar(trace, batch_log)

    inc_log = _StreamLog()
    inc = IncrementalWalker(program, table, handler=inc_log)
    for chunk in trace.iter_chunks(chunk_rows):
        inc.feed_rows(*chunk)
    inc_total = inc.finish()

    if inc_total != batch_total:
        out.append(Mismatch("streaming", "walker total", inc_total, batch_total))
    if inc.row != batch_walker.row:
        out.append(
            Mismatch("streaming", "walker final row", inc.row, batch_walker.row)
        )
    if inc_log.blocks != batch_log.blocks:
        out.append(
            Mismatch("streaming", "block callbacks", inc_log.blocks, batch_log.blocks)
        )
    if inc_log.log != batch_log.log:
        if len(inc_log.log) != len(batch_log.log):
            out.append(
                Mismatch(
                    "streaming", "callbacks",
                    len(inc_log.log), len(batch_log.log),
                    "callback count",
                )
            )
        for i, (got, want) in enumerate(zip(inc_log.log, batch_log.log)):
            if got != want:
                out.append(Mismatch("streaming", f"callback {i}", got, want))
                break

    batch_graph = (
        sequential
        if sequential is not None
        else CallLoopProfiler(program, table=table).profile_trace(trace)
    )
    selection = select_markers(batch_graph, params)
    monitor = stream_trace(
        program,
        trace,
        marker_set=selection.markers,
        config=StreamingConfig(
            window_slots=0, drift_threshold=None, selection=params
        ),
        chunk_rows=chunk_rows,
    )

    got_graph = graph_to_dict(monitor.window_graph())
    want_graph = graph_to_dict(batch_graph)
    if got_graph != want_graph:
        out.append(
            Mismatch(
                "streaming", "window graph", "differs", "batch",
                _first_dict_divergence(got_graph, want_graph),
            )
        )
    got_markers = marker_set_to_dict(monitor.select_now().markers)
    want_markers = marker_set_to_dict(selection.markers)
    if got_markers != want_markers:
        out.append(
            Mismatch(
                "streaming", "selection", "differs", "batch",
                _first_dict_divergence(got_markers, want_markers),
            )
        )

    batch_monitor = PhaseMonitor(program, selection.markers)
    batch_monitor.run(trace.replay())
    if monitor.changes != batch_monitor.changes:
        out.append(
            Mismatch(
                "streaming", "phase changes",
                len(monitor.changes), len(batch_monitor.changes),
                "change lists differ",
            )
        )
    if monitor.dwells != batch_monitor.dwells:
        out.append(
            Mismatch(
                "streaming", "dwells",
                len(monitor.dwells), len(batch_monitor.dwells),
                "dwell records differ",
            )
        )
    if monitor.time_in_phase != batch_monitor.time_in_phase:
        out.append(
            Mismatch(
                "streaming", "time_in_phase",
                monitor.time_in_phase, batch_monitor.time_in_phase,
            )
        )
    return out


# ---------------------------------------------------------------------------
# whole-program differential run
# ---------------------------------------------------------------------------


def verify_program(
    program: Program,
    program_input: ProgramInput,
    params: Optional[SelectionParams] = None,
    max_instructions: Optional[int] = None,
    max_call_depth: Optional[int] = None,
    reuse_cap: int = 1500,
    check_reuse: bool = True,
) -> DiffReport:
    """Run every differential check on one (program, input) pair.

    ``max_instructions`` caps the engine run and ``max_call_depth``
    truncates the recorded event stream at a call-nesting bound (the
    interpreter recurses per program call, so deeply recursive fuzz
    programs need it).  Both caps apply identically to the optimized and
    oracle sides, which consume the same recorded trace.  ``reuse_cap``
    bounds the O(n²) oracle's address stream.
    """
    params = params or SelectionParams()
    report = DiffReport(program=f"{program.name}/{program_input.name}")

    events = Machine(program, program_input, max_instructions=max_instructions).run()
    if max_call_depth is not None:
        events = _depth_capped(events, max_call_depth)
    trace = record_trace(events)
    profiler = CallLoopProfiler(program)
    optimized = profiler.profile_trace(trace)

    # The columnar-record half only applies when the object stream was
    # not truncated mid-flight: a call-depth cap exists solely on the
    # object path (it stops *consuming* the generator), so there is no
    # equivalent fast recording to compare against.
    report.extend(
        "trace-pipeline",
        diff_trace_pipeline(
            program,
            program_input,
            trace,
            max_instructions=max_instructions,
            compare_record=max_call_depth is None,
        ),
    )
    report.extend(
        "segmented-profile",
        diff_segmented_profile(program, trace, sequential=optimized),
    )
    report.extend(
        "streaming",
        diff_streaming(program, trace, params, sequential=optimized),
    )
    report.extend(
        "graph", diff_graphs(optimized, oracle_call_loop_graph(program, trace))
    )
    report.extend("depth", diff_depths(optimized))
    report.extend("selection", diff_selection(optimized, params))
    report.extend("kernels", diff_vectorized_kernels(optimized, params))

    markers = select_markers(optimized, params).markers
    report.extend("intervals", diff_intervals(program, trace, markers))
    report.extend(
        "segmented-split", diff_segmented_split(program, trace, markers)
    )

    if check_reuse:
        memory = MemorySystem(program, program_input)
        addresses = _address_stream(trace, memory, reuse_cap)
        if len(addresses):
            report.extend("reuse", diff_reuse(addresses))
        else:
            report.checks_run.append("reuse(skipped: no data accesses)")
    return report


def _depth_capped(events, cap: int):
    """Stop consuming the event stream once call nesting reaches *cap*.

    Consumption drives the interpreter's recursion, so not requesting
    further events bounds its Python stack; the truncated trace is a
    valid differential input (both sides unwind open frames at trace
    end).
    """
    from repro.engine.events import CallEvent, ReturnEvent

    depth = 0
    for ev in events:
        yield ev
        t = type(ev)
        if t is CallEvent:
            depth += 1
            if depth >= cap:
                return
        elif t is ReturnEvent:
            depth -= 1


def _address_stream(trace: Trace, memory: MemorySystem, cap: int):
    """First *cap* data addresses of the run, in access order."""
    import numpy as np

    from repro.engine.events import K_BLOCK

    memory.reset()
    chunks = []
    total = 0
    ids = trace.a[trace.kinds == K_BLOCK]
    for block_id in ids.tolist():
        addresses = memory.addresses_for_block(int(block_id))
        if len(addresses) == 0:
            continue
        chunks.append(addresses)
        total += len(addresses)
        if total >= cap:
            break
    if not chunks:
        return np.empty(0, dtype=np.int64)
    return np.concatenate(chunks)[:cap]
