"""Deliberately naive reference implementations of the core algorithms.

Every function here trades all performance for obviousness, so it can
serve as the trusted side of a differential test (see
:mod:`repro.verify.diff`):

* :func:`oracle_call_loop_graph` re-derives the hierarchical call-loop
  graph from a raw trace with its own event interpretation (event
  objects, explicit frame scans, no integer node tables) and keeps the
  **full list of observations** per edge, computing statistics with a
  two-pass formula instead of Welford's online accumulator;
* :func:`oracle_estimate_depth` is a direct recursive transliteration
  of the paper's "modified depth-first search" prose, and
  :func:`oracle_longest_path_depths` brute-forces the exact longest
  simple path by enumerating every root-to-node path (exponential — the
  two must agree on acyclic graphs, where the estimate is exact);
* :func:`oracle_select_markers` applies Pass 1 and Pass 2 as direct
  list filters with ``math.fsum`` statistics (no numpy);
* :func:`oracle_split_at_markers` re-derives marker-driven interval
  boundaries from the naive walk;
* :func:`oracle_reuse_distances` is the textbook O(n²) scan with an
  explicit ``set`` of lines per access (no Fenwick tree).

The oracles intentionally re-implement *static* facts too: loops are
re-discovered by scanning for backwards conditional branches rather
than calling :func:`repro.callloop.loops.discover_loops`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.callloop.graph import CallLoopGraph, Edge, Node, NodeKind, ROOT
from repro.callloop.markers import MarkerSet
from repro.callloop.selection import SelectionParams
from repro.engine.events import BlockEvent, CallEvent, ReturnEvent
from repro.engine.tracing import Trace
from repro.ir.program import INSTRUCTION_BYTES, Program, SourceLoc, TermKind

EdgeKey = Tuple[Node, Node]

#: callback signatures of the naive walk
OnOpen = Callable[[Node, Node, int, Optional[SourceLoc], int], None]
OnClose = Callable[[Node, Node, int, int, Optional[SourceLoc]], None]


# ---------------------------------------------------------------------------
# naive static facts
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class _NaiveLoop:
    """A loop found by scanning for a backwards conditional branch."""

    proc: str
    label: str
    header_address: int
    latch_branch_address: int
    source: SourceLoc

    @property
    def head_node(self) -> Node:
        uid = f"{self.proc}@{self.source.file}:{self.source.line}"
        return Node(NodeKind.LOOP_HEAD, self.proc, uid, self.label)

    @property
    def body_node(self) -> Node:
        uid = f"{self.proc}@{self.source.file}:{self.source.line}"
        return Node(NodeKind.LOOP_BODY, self.proc, uid, self.label)


def _naive_discover_loops(program: Program) -> Dict[int, _NaiveLoop]:
    """Loops by header address, from backwards branches only."""
    loops: Dict[int, _NaiveLoop] = {}
    for proc in program.procedures.values():
        for block in proc.blocks:
            term = block.terminator
            if term.kind != TermKind.COND_BRANCH:
                continue
            if term.target_offset is None or term.target_offset > block.offset:
                continue
            header = proc.base_address + term.target_offset * INSTRUCTION_BYTES
            latch = block.address + (block.size - 1) * INSTRUCTION_BYTES
            label = block.label
            if label.endswith(".latch"):
                label = label[: -len(".latch")]
            loops[header] = _NaiveLoop(
                proc.name, label, header, latch, block.source
            )
    return loops


def _call_site_sources(program: Program) -> Dict[int, SourceLoc]:
    """Source of every call instruction, by its address."""
    sources: Dict[int, SourceLoc] = {}
    for proc in program.procedures.values():
        for block in proc.blocks:
            if block.terminator.kind == TermKind.CALL:
                addr = block.address + (block.size - 1) * INSTRUCTION_BYTES
                sources[addr] = block.source
    return sources


# ---------------------------------------------------------------------------
# naive trace walk
# ---------------------------------------------------------------------------


class _Span:
    """An open loop on a frame's loop stack."""

    def __init__(self, loop: _NaiveLoop, parent_ctx: Node, t: int):
        self.loop = loop
        self.parent_ctx = parent_ctx
        self.head_open_t = t
        self.iter_open_t = t


class _Frame:
    """An open procedure activation."""

    def __init__(
        self,
        proc_name: str,
        outermost: bool,
        parent_ctx: Node,
        t: int,
        site_source: Optional[SourceLoc],
    ):
        self.proc_name = proc_name
        self.head = Node(NodeKind.PROC_HEAD, proc_name, label=proc_name)
        self.body = Node(NodeKind.PROC_BODY, proc_name, label=proc_name)
        self.outermost = outermost
        self.parent_ctx = parent_ctx
        self.open_t = t
        self.site_source = site_source
        self.spans: List[_Span] = []


def oracle_walk(
    program: Program,
    trace: Trace,
    on_open: Optional[OnOpen] = None,
    on_close: Optional[OnClose] = None,
) -> int:
    """Replay *trace* with the naive shadow call/loop stack.

    Callbacks receive :class:`Node` objects directly (there is no
    integer node table on this path).  ``on_open`` additionally gets the
    trace row being processed, matching what the optimized walker
    exposes to its handlers.  Returns the total dynamic instructions.
    """
    loops = _naive_discover_loops(program)
    site_sources = _call_site_sources(program)
    proc_by_id = {p.proc_id: p for p in program.procedures.values()}

    def opened(src, dst, t, source, row):
        if on_open is not None:
            on_open(src, dst, t, source, row)

    def closed(src, dst, t_open, t_close, source):
        if on_close is not None:
            on_close(src, dst, t_open, t_close, source)

    def close_frame(frame: _Frame, t: int) -> None:
        while frame.spans:
            span = frame.spans.pop()
            closed(span.loop.head_node, span.loop.body_node,
                   span.iter_open_t, t, span.loop.source)
            closed(span.parent_ctx, span.loop.head_node,
                   span.head_open_t, t, span.loop.source)
        closed(frame.head, frame.body, frame.open_t, t, None)
        if frame.outermost:
            closed(frame.parent_ctx, frame.head, frame.open_t, t,
                   frame.site_source)

    entry = program.procedures[program.entry]
    t = 0
    main = _Frame(entry.name, True, ROOT, t, entry.source)
    frames: List[_Frame] = [main]
    opened(ROOT, main.head, t, main.site_source, -1)
    opened(main.head, main.body, t, None, -1)

    row = -1
    for event in trace.replay():
        row += 1
        if isinstance(event, BlockEvent):
            frame = frames[-1]
            addr = event.address
            # leave loops whose static region no longer covers this block
            while frame.spans:
                span = frame.spans[-1]
                if span.loop.header_address <= addr <= span.loop.latch_branch_address:
                    break
                frame.spans.pop()
                closed(span.loop.head_node, span.loop.body_node,
                       span.iter_open_t, t, span.loop.source)
                closed(span.parent_ctx, span.loop.head_node,
                       span.head_open_t, t, span.loop.source)
            loop = loops.get(addr)
            if loop is not None:
                if frame.spans and frame.spans[-1].loop.header_address == addr:
                    # back-edge arrival: one iteration ends, the next begins
                    span = frame.spans[-1]
                    closed(loop.head_node, loop.body_node,
                           span.iter_open_t, t, loop.source)
                    span.iter_open_t = t
                    opened(loop.head_node, loop.body_node, t, loop.source, row)
                else:
                    parent_ctx = (
                        frame.spans[-1].loop.body_node if frame.spans else frame.body
                    )
                    frame.spans.append(_Span(loop, parent_ctx, t))
                    opened(parent_ctx, loop.head_node, t, loop.source, row)
                    opened(loop.head_node, loop.body_node, t, loop.source, row)
            t += event.size
        elif isinstance(event, CallEvent):
            frame = frames[-1]
            callee = proc_by_id[event.callee_id].name
            parent_ctx = (
                frame.spans[-1].loop.body_node if frame.spans else frame.body
            )
            # naive outermost test: scan every open frame for the callee
            outermost = all(f.proc_name != callee for f in frames)
            source = site_sources.get(event.site_address)
            new = _Frame(callee, outermost, parent_ctx, t, source)
            if outermost:
                opened(parent_ctx, new.head, t, source, row)
            opened(new.head, new.body, t, source, row)
            frames.append(new)
        elif isinstance(event, ReturnEvent):
            close_frame(frames.pop(), t)
        # branch events carry no call/loop structure

    while frames:  # end of run: unwind whatever is still active
        close_frame(frames.pop(), t)
    return t


# ---------------------------------------------------------------------------
# oracle graph: full observation lists, two-pass statistics
# ---------------------------------------------------------------------------


@dataclass
class OracleEdgeStats:
    """Two-pass statistics over an edge's full observation list."""

    count: int
    mean: float
    std: float
    cov: float
    max_value: float
    total: float


class OracleGraph:
    """Per-edge observation lists in first-observation order."""

    def __init__(self, program_name: str):
        self.program_name = program_name
        self.total_instructions = 0
        self.samples: Dict[EdgeKey, List[float]] = {}
        self.site_sources: Dict[EdgeKey, Set[SourceLoc]] = {}

    def observe(
        self, src: Node, dst: Node, value: float, source: Optional[SourceLoc]
    ) -> None:
        key = (src, dst)
        self.samples.setdefault(key, []).append(value)
        sources = self.site_sources.setdefault(key, set())
        if source is not None:
            sources.add(source)

    def edge_keys(self) -> List[EdgeKey]:
        return list(self.samples)

    def stats(self, key: EdgeKey) -> OracleEdgeStats:
        values = self.samples[key]
        n = len(values)
        mean = math.fsum(values) / n
        if n < 2:
            variance = 0.0
        else:
            variance = math.fsum((v - mean) ** 2 for v in values) / n
        std = math.sqrt(max(0.0, variance))
        cov = 0.0 if mean == 0 else std / abs(mean)
        return OracleEdgeStats(
            count=n,
            mean=mean,
            std=std,
            cov=cov,
            max_value=max(values),
            total=math.fsum(values),
        )


def oracle_call_loop_graph(program: Program, trace: Trace) -> OracleGraph:
    """Accumulate the hierarchical call-loop graph the obvious way."""
    graph = OracleGraph(program.name)

    def on_close(src, dst, t_open, t_close, source):
        graph.observe(src, dst, t_close - t_open, source)

    graph.total_instructions = oracle_walk(program, trace, on_close=on_close)
    return graph


# ---------------------------------------------------------------------------
# depth oracles
# ---------------------------------------------------------------------------


def _graph_nodes(graph: CallLoopGraph) -> List[Node]:
    seen: Dict[Node, None] = {}
    for edge in graph.edges:
        seen.setdefault(edge.src)
        seen.setdefault(edge.dst)
    return list(seen)


def _roots(graph: CallLoopGraph) -> List[Node]:
    nodes = _graph_nodes(graph)
    roots = [n for n in nodes if not graph.in_edges(n)]
    if not roots:
        roots = [ROOT] if ROOT in nodes else nodes[:1]
    return roots


def oracle_estimate_depth(graph: CallLoopGraph) -> Dict[Node, int]:
    """The paper's modified DFS, transliterated recursively.

    "A node can be traversed more than once if we later find a longer
    path to that node.  We never re-traverse a node on the current
    path."  Successors are visited in the graph's edge order, so the
    result must equal :func:`repro.callloop.depth.estimate_max_depth`
    exactly, cycles included.
    """
    depth: Dict[Node, int] = {}

    def visit(node: Node, on_path: Set[Node]) -> None:
        for succ in graph.successors(node):
            if succ in on_path:
                continue
            if depth[node] + 1 > depth.get(succ, -1):
                depth[succ] = depth[node] + 1
                on_path.add(succ)
                visit(succ, on_path)
                on_path.discard(succ)

    for root in _roots(graph):
        depth.setdefault(root, 0)
        visit(root, {root})
    for node in _graph_nodes(graph):
        depth.setdefault(node, 0)
    return depth


def oracle_longest_path_depths(
    graph: CallLoopGraph, step_budget: int = 2_000_000
) -> Optional[Dict[Node, int]]:
    """Exact longest *simple* path from the roots, by brute force.

    Enumerates every simple path (exponential); returns ``None`` when
    *step_budget* extensions are exhausted.  On acyclic graphs the
    estimate above is exact, so the two must agree there; on cyclic
    graphs the estimate is only a heuristic and this oracle does not
    apply.
    """
    best: Dict[Node, int] = {}
    steps = 0

    def extend(node: Node, length: int, on_path: Set[Node]) -> bool:
        nonlocal steps
        steps += 1
        if steps > step_budget:
            return False
        if length > best.get(node, -1):
            best[node] = length
        for succ in graph.successors(node):
            if succ in on_path:
                continue
            on_path.add(succ)
            ok = extend(succ, length + 1, on_path)
            on_path.discard(succ)
            if not ok:
                return False
        return True

    for root in _roots(graph):
        if not extend(root, 0, {root}):
            return None
    for node in _graph_nodes(graph):
        best.setdefault(node, 0)
    return best


def graph_has_cycle(graph: CallLoopGraph) -> bool:
    """True if the call-loop graph contains a directed cycle."""
    WHITE, GRAY, BLACK = 0, 1, 2
    color: Dict[Node, int] = {n: WHITE for n in _graph_nodes(graph)}

    def visit(node: Node) -> bool:
        color[node] = GRAY
        for succ in graph.successors(node):
            if color[succ] == GRAY:
                return True
            if color[succ] == WHITE and visit(succ):
                return True
        color[node] = BLACK
        return False

    return any(color[n] == WHITE and visit(n) for n in list(color))


def oracle_processing_order(
    graph: CallLoopGraph, depths: Optional[Dict[Node, int]] = None
) -> List[Node]:
    """Decreasing depth, ties by increasing out-degree then name."""
    if depths is None:
        depths = oracle_estimate_depth(graph)
    out_degree: Dict[Node, int] = {n: 0 for n in _graph_nodes(graph)}
    for edge in graph.edges:
        out_degree[edge.src] += 1
    return sorted(
        _graph_nodes(graph),
        key=lambda n: (-depths[n], out_degree[n], str(n)),
    )


# ---------------------------------------------------------------------------
# selection oracle: both passes as direct filters
# ---------------------------------------------------------------------------


@dataclass
class OracleSelection:
    """Pass-1/Pass-2 decisions made with plain-python arithmetic."""

    candidates: List[EdgeKey] = field(default_factory=list)
    cov_base: float = 0.0
    cov_spread: float = 0.0
    selected: List[EdgeKey] = field(default_factory=list)
    #: applied threshold per candidate edge (after the cov floor)
    thresholds: Dict[EdgeKey, float] = field(default_factory=dict)


def oracle_select_markers(
    graph: CallLoopGraph,
    params: Optional[SelectionParams] = None,
    order: Optional[List[Node]] = None,
) -> OracleSelection:
    """Run the two-pass selection as direct set filters over *graph*.

    Operates on the optimized graph's edge annotations (so it verifies
    the *selection logic* in isolation; the statistics themselves are
    verified separately against :class:`OracleGraph`).
    """
    params = params or SelectionParams()
    if order is None:
        order = oracle_processing_order(graph)

    def eligible(edge: Edge) -> bool:
        if edge.src.kind is NodeKind.ROOT:
            return False
        if params.procedures_only and edge.dst.kind.is_loop:
            return False
        return True

    result = OracleSelection()
    for node in order:
        for edge in graph.in_edges(node):
            if eligible(edge) and edge.avg >= params.ilower:
                result.candidates.append((edge.src, edge.dst))

    # Only finite CoVs feed the threshold statistics (the intended
    # semantics mirrored by ``cov_threshold_stats``): one inf/NaN CoV
    # from a serialized zero-observation edge must not poison the
    # per-program threshold and deselect every marker.
    covs = [graph.find_edge(*key).cov for key in result.candidates]
    covs = [c for c in covs if math.isfinite(c)]
    if covs:
        result.cov_base = math.fsum(covs) / len(covs)
        variance = math.fsum((c - result.cov_base) ** 2 for c in covs) / len(covs)
        result.cov_spread = math.sqrt(max(0.0, variance))

    avg_hi = params.ilower * params.slack_saturation
    candidate_set = set(result.candidates)
    for node in order:
        for edge in graph.in_edges(node):
            key = (edge.src, edge.dst)
            if key not in candidate_set:
                continue
            if avg_hi <= params.ilower:
                threshold = result.cov_base
            else:
                scale = (edge.avg - params.ilower) / (avg_hi - params.ilower)
                scale = min(1.0, max(0.0, scale))
                threshold = result.cov_base + result.cov_spread * scale
            threshold = max(threshold, params.cov_floor)
            result.thresholds[key] = threshold
            if edge.cov <= threshold:
                result.selected.append(key)
    return result


# ---------------------------------------------------------------------------
# interval oracle
# ---------------------------------------------------------------------------


@dataclass
class OracleIntervals:
    """Naive marker-driven partition of a run."""

    row_bounds: List[int]
    start_ts: List[int]
    lengths: List[int]
    phase_ids: List[int]


def oracle_split_at_markers(
    program: Program, trace: Trace, marker_set: MarkerSet
) -> OracleIntervals:
    """Re-derive VLI boundaries from the naive walk.

    Only valid for markers selected on *program* itself (node identities
    are matched directly, with no cross-binary table resolution).
    """
    by_pair = {(m.src, m.dst): m for m in marker_set}
    counters: Dict[EdgeKey, int] = {}
    reset_on_head: Dict[Node, List[EdgeKey]] = {}
    for marker in marker_set:
        if marker.merge_iterations > 1:
            pair = (marker.src, marker.dst)
            counters[pair] = 0
            reset_on_head.setdefault(marker.src, []).append(pair)

    boundaries: List[Tuple[int, int, int]] = []  # (row, t, phase)

    def on_open(src, dst, t, source, row):
        for pair in reset_on_head.get(dst, ()):
            counters[pair] = 0
        marker = by_pair.get((src, dst))
        if marker is None:
            return
        if marker.merge_iterations > 1:
            seen = counters[(src, dst)]
            counters[(src, dst)] = seen + 1
            if seen % marker.merge_iterations != 0:
                return
        if boundaries and boundaries[-1][1] == t:
            # coincident firing: keep the innermost (last) marker
            boundaries[-1] = (boundaries[-1][0], t, marker.marker_id)
        else:
            boundaries.append((row, t, marker.marker_id))

    total = oracle_walk(program, trace, on_open=on_open)

    first_phase = 0
    while boundaries and boundaries[0][1] == 0:
        first_phase = boundaries[0][2]
        boundaries = boundaries[1:]

    rows = [0] + [b[0] for b in boundaries] + [len(trace)]
    start_ts = [0] + [b[1] for b in boundaries]
    ends = start_ts[1:] + [total]
    lengths = [e - s for s, e in zip(start_ts, ends)]
    phase_ids = [first_phase] + [b[2] for b in boundaries]

    if len(lengths) > 1 and lengths[-1] == 0:
        rows = rows[:-2] + rows[-1:]
        start_ts = start_ts[:-1]
        lengths = lengths[:-1]
        phase_ids = phase_ids[:-1]
    return OracleIntervals(rows, start_ts, lengths, phase_ids)


# ---------------------------------------------------------------------------
# reuse-distance oracle
# ---------------------------------------------------------------------------


def oracle_reuse_distances(
    addresses: Sequence[int], line_bytes: int = 64
) -> List[float]:
    """Textbook O(n²) reuse distances; first touches are ``inf``."""
    lines = [int(a) // line_bytes for a in addresses]
    out: List[float] = []
    for t, line in enumerate(lines):
        prev = -1
        for s in range(t - 1, -1, -1):
            if lines[s] == line:
                prev = s
                break
        if prev < 0:
            out.append(math.inf)
        else:
            out.append(float(len(set(lines[prev + 1: t]))))
    return out


def oracle_reuse_histogram(
    distances: Sequence[float], num_bins: int = 26
) -> List[int]:
    """Log2-binned reuse-distance histogram, one distance at a time.

    Bin of a finite distance d is ``floor(log2(d + 1))`` computed with
    exact integer arithmetic (``bit_length``), saturated into the
    next-to-last bin; the last bin counts first touches (infinite).
    """
    counts = [0] * num_bins
    for d in distances:
        if math.isinf(d):
            counts[num_bins - 1] += 1
        else:
            counts[min((int(d) + 1).bit_length() - 1, num_bins - 2)] += 1
    return counts
