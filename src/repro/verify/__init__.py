"""Differential-oracle verification of the core algorithms.

The paper's claims rest on exact algorithmic behavior — hierarchical
edge statistics (Section 4.2), the depth-ordered two-pass marker
selection (Section 5.1), marker-driven interval splitting (Section 6.2),
and the reuse-distance baseline (Shen et al.).  As the surrounding
system grows (parallel runner, caching, telemetry), this package guards
the algorithms themselves:

* :mod:`repro.verify.oracles` — deliberately naive, obviously-correct
  re-implementations of each algorithm (full observation lists instead
  of Welford accumulators, brute-force path enumeration instead of the
  modified DFS, direct set filters instead of the streaming passes,
  O(n²) scans instead of the Fenwick tree);
* :mod:`repro.verify.diff` — runs the optimized and oracle
  implementations on the same program and reports structured
  mismatches, with tolerance rules for floating-point statistics;
* :mod:`repro.verify.fuzz` — a seeded structured-program generator
  producing adversarial shapes (deep mutual recursion, zero-iteration
  loops, 100+-way call fan-out, degenerate procedures), with automatic
  shrinking of failing programs to minimal reproducers;
* :mod:`repro.verify.golden` — the committed golden regression corpus
  under ``tests/golden/`` (serialized graphs + expected marker
  selections for every bundled workload);
* :mod:`repro.verify.streaming` — the streaming-vs-batch equivalence
  pass: every workload's ``train`` trace is run through the incremental
  streaming path and must reproduce the batch walker callbacks, graph,
  selection, and phase changes bit for bit (the same
  :func:`~repro.verify.diff.diff_streaming` check also rides every fuzz
  iteration);
* :mod:`repro.verify.split` — the segmented-split equivalence pass:
  every workload's ``train`` trace is split through the vectorized
  pre-scan, the batched collector, and the segmented parallel walk,
  and all must reproduce the scalar per-event splitter's intervals bit
  for bit (the same :func:`~repro.verify.diff.diff_segmented_split`
  check also rides every fuzz iteration).

Entry points: ``repro verify`` (CLI), ``make verify`` (golden corpus +
fuzz smoke), ``make verify-fuzz FUZZ_ITERS=N`` (long fuzz loop).  The
oracle contract and triage procedure are documented in
``docs/VERIFICATION.md``.
"""

from repro.verify.diff import (
    DiffReport,
    Mismatch,
    diff_depths,
    diff_graphs,
    diff_intervals,
    diff_reuse,
    diff_segmented_profile,
    diff_segmented_split,
    diff_selection,
    diff_streaming,
    diff_trace_pipeline,
    diff_vectorized_kernels,
    verify_program,
)
from repro.verify.fuzz import (
    FuzzFailure,
    FuzzReport,
    build_program,
    generate_spec,
    run_fuzz,
    shrink_spec,
)
from repro.verify.golden import (
    GOLDEN_FORMAT_VERSION,
    check_golden_corpus,
    compute_golden_entry,
    default_golden_dir,
    write_golden_corpus,
)
from repro.verify.split import (
    SplitCheckResult,
    check_split_corpus,
)
from repro.verify.streaming import (
    StreamingCheckResult,
    check_streaming_corpus,
)
from repro.verify.oracles import (
    OracleGraph,
    oracle_call_loop_graph,
    oracle_estimate_depth,
    oracle_longest_path_depths,
    oracle_processing_order,
    oracle_reuse_distances,
    oracle_reuse_histogram,
    oracle_select_markers,
    oracle_split_at_markers,
)

__all__ = [
    "DiffReport",
    "Mismatch",
    "diff_depths",
    "diff_graphs",
    "diff_intervals",
    "diff_reuse",
    "diff_segmented_profile",
    "diff_segmented_split",
    "diff_selection",
    "diff_streaming",
    "diff_trace_pipeline",
    "diff_vectorized_kernels",
    "verify_program",
    "SplitCheckResult",
    "check_split_corpus",
    "StreamingCheckResult",
    "check_streaming_corpus",
    "FuzzFailure",
    "FuzzReport",
    "build_program",
    "generate_spec",
    "run_fuzz",
    "shrink_spec",
    "GOLDEN_FORMAT_VERSION",
    "check_golden_corpus",
    "compute_golden_entry",
    "default_golden_dir",
    "write_golden_corpus",
    "OracleGraph",
    "oracle_call_loop_graph",
    "oracle_estimate_depth",
    "oracle_longest_path_depths",
    "oracle_processing_order",
    "oracle_reuse_distances",
    "oracle_reuse_histogram",
    "oracle_select_markers",
    "oracle_split_at_markers",
]
