"""Command-line interface: ``python -m repro <command>``.

Commands (full reference with examples: ``docs/CLI.md``)
--------------------------------------------------------
``list``
    List the bundled workloads with their categories and inputs.
``markers WORKLOAD``
    Profile a workload and print (optionally save) its phase markers.
``phases WORKLOAD``
    Select markers, split the run into VLIs, and summarize the phases.
``timeplot WORKLOAD``
    Figure-3-style time-varying CPI/miss-rate plot in the terminal.
``graph WORKLOAD``
    Export the annotated call-loop graph as Graphviz DOT.
``monitor WORKLOAD``
    Run under the online phase monitor and print the transition log.
``stream WORKLOAD``
    Incremental streaming phase detection: cold-start marker pickup
    over a bounded sliding window of interval moments, CoV drift
    detection, and rolling marker re-selection (``--window 0`` streams
    with an unbounded window, which is bit-identical to the batch
    pipeline; see ``docs/STREAMING.md``).
``experiment NAME``
    Regenerate one of the paper's figures (fig3, fig4, fig56, fig7,
    fig8, fig9, fig10, fig11, fig12, crossbin, selection).  Supports
    ``--jobs N`` (parallel profiling), ``--profile-shards N``
    (segmented parallel trace walk, bit-identical results),
    ``--split-shards N`` (segmented marker application, bit-identical
    intervals), ``--cache-dir DIR`` and
    ``--no-cache`` (on-disk profile cache); a run summary with per-job
    timings and cache hit/miss counters is printed to stderr, keeping
    stdout byte-identical across serial, parallel, and cached runs.
``verify``
    Differential-oracle verification: check the golden regression
    corpus under ``tests/golden/`` and run ``--iters`` seeded fuzz
    iterations comparing the optimized pipeline against the naive
    oracles (``--refresh-golden`` regenerates the corpus; failing fuzz
    programs are shrunk and written to ``tests/verify/repros/``).
``stats [PATH]``
    Render the stage-by-stage span/counter tables from a telemetry
    JSONL trace (default: the last ``--telemetry`` run).
    ``--critical-path`` reports the straggler chain, per-span self-time
    attribution, and per-lane parallel efficiency instead;
    ``--series [PATH]`` summarizes a ``--metrics-series`` time series;
    ``--prometheus`` prints the trace's metrics in the Prometheus text
    exposition format.
``query KIND WORKLOAD``
    Compute one serving payload inline (the batch path of the
    served-equals-batch contract) and print its canonical JSON bytes.
``serve``
    Run the phase-marker query service: an asyncio HTTP server
    deduplicating and batching queries over a worker pool, sharing the
    profile cache and trace store (``POST /v1/query``, ``GET
    /healthz``, ``GET /stats``, ``POST /v1/shutdown``).
``loadgen``
    Drive a live server with the MLPerf-style load generator
    (SingleStream or Server scenario, seeded Poisson schedule) and
    report achieved QPS and latency percentiles.  See
    ``docs/SERVING.md``.

Every command also accepts ``--telemetry[=PATH]`` (record spans and
counters across the whole pipeline, write a Chrome-trace-compatible
JSONL file, and print a per-stage report to stderr),
``--quiet-telemetry`` (write the JSONL but suppress the stderr report),
and ``--metrics-series[=PATH]`` with ``--metrics-interval S`` (sample
counters/gauges on a background thread into a time-series JSONL).
Telemetry never writes to stdout: command output stays byte-identical
with telemetry on or off.  See ``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

import numpy as np

from repro.util import diag


def _cmd_list(args: argparse.Namespace) -> int:
    from repro.workloads import all_workloads

    for wl in all_workloads():
        inputs = ", ".join(sorted(wl.inputs))
        print(f"{wl.spec_name:20s} [{wl.category}] inputs: {inputs}")
        print(f"  {wl.description}")
    return 0


def _select(args: argparse.Namespace):
    from repro.callloop import (
        LimitParams,
        SelectionParams,
        build_call_loop_graph,
        select_markers,
        select_markers_with_limit,
    )
    from repro.workloads import get_workload

    workload = get_workload(args.workload)
    program = workload.build()
    profile_input = (
        workload.train_input if args.train else workload.ref_input
    )
    graph = build_call_loop_graph(program, [profile_input])
    if args.max_limit:
        result = select_markers_with_limit(
            graph, LimitParams(ilower=args.ilower, max_limit=args.max_limit)
        )
    else:
        result = select_markers(
            graph,
            SelectionParams(
                ilower=args.ilower, procedures_only=args.procedures_only
            ),
        )
    return workload, program, graph, result.markers


def _cmd_markers(args: argparse.Namespace) -> int:
    workload, program, graph, markers = _select(args)
    print(graph.summary())
    print(markers.describe())
    if args.output:
        from repro.callloop.serialization import save_markers

        save_markers(markers, args.output)
        print(f"saved to {args.output}")
    return 0


def _cmd_phases(args: argparse.Namespace) -> int:
    from repro.analysis import phase_cov, whole_program_cov
    from repro.engine import Machine, record_trace
    from repro.intervals import attach_metrics, split_at_markers

    workload, program, graph, markers = _select(args)
    ref = workload.ref_input
    trace = record_trace(Machine(program, ref))
    intervals = split_at_markers(
        program, trace, markers, shards=args.split_shards
    )
    attach_metrics(intervals, trace, program, ref)
    cov = phase_cov(intervals)
    print(
        f"{len(intervals)} intervals, {intervals.num_phases} phases, "
        f"avg length {intervals.average_length:,.0f} instructions"
    )
    print(
        f"CoV of CPI: {cov.overall:.2%} within phases vs "
        f"{whole_program_cov(intervals):.2%} whole-program"
    )
    for phase in sorted(cov.per_phase):
        mask = intervals.phase_ids == phase
        lengths = intervals.lengths[mask]
        mean_cpi = float(np.average(intervals.cpis[mask], weights=lengths))
        print(
            f"  phase {phase:3d}: {int(mask.sum()):4d} intervals, "
            f"{cov.phase_weights[phase]:6.1%} of execution, "
            f"mean CPI {mean_cpi:5.2f}, CoV {cov.per_phase[phase]:6.2%}"
        )
    return 0


def _cmd_timeplot(args: argparse.Namespace) -> int:
    from repro.analysis.ascii_plot import render_series
    from repro.analysis.timevarying import time_varying_series
    from repro.engine import Machine, record_trace

    workload, program, graph, markers = _select(args)
    ref = workload.ref_input
    trace = record_trace(Machine(program, ref))
    series = time_varying_series(
        program, ref, trace, markers, interval_length=args.resolution
    )
    print(render_series(series, width=args.width))
    print(
        f"marker/transition alignment: {series.transition_alignment():.0%}"
    )
    return 0


def _cmd_graph(args: argparse.Namespace) -> int:
    from repro.callloop.dot import to_dot

    workload, program, graph, markers = _select(args)
    dot = to_dot(graph, markers if args.highlight_markers else None)
    if args.output:
        with open(args.output, "w") as f:
            f.write(dot + "\n")
        print(f"wrote {args.output}")
    else:
        print(dot)
    return 0


def _cmd_monitor(args: argparse.Namespace) -> int:
    from repro.runtime import (
        MarkovPredictor,
        evaluate_predictor,
        monitor_run,
    )

    workload, program, graph, markers = _select(args)
    monitor = monitor_run(
        program, workload.ref_input, markers, min_interval=args.ilower // 10
    )
    print(f"{len(monitor.changes)} phase changes observed:")
    limit = args.head or len(monitor.changes)
    for change in monitor.changes[:limit]:
        print(
            f"  t={change.t:>12,}  phase {change.previous_phase:3d} -> "
            f"{change.new_phase:3d}  (spent {change.time_in_previous:,})"
        )
    if len(monitor.changes) > limit:
        print(f"  ... {len(monitor.changes) - limit} more")
    report = evaluate_predictor(monitor.phase_sequence, MarkovPredictor(1))
    print(f"order-1 Markov next-phase accuracy: {report.accuracy:.1%}")
    print(monitor.dwell_table().render())
    return 0


def _cmd_stream(args: argparse.Namespace) -> int:
    from repro.callloop import CallLoopProfiler, SelectionParams, select_markers
    from repro.engine import Machine, record_trace
    from repro.streaming import StreamingConfig, stream_trace
    from repro.workloads import get_workload

    workload = get_workload(args.workload)
    program = workload.build()
    run_input = workload.train_input if args.train else workload.ref_input
    trace = record_trace(Machine(program, run_input))
    config = StreamingConfig(
        slot_instructions=args.slot,
        window_slots=args.window,
        drift_threshold=args.drift_threshold or None,
        min_interval=args.ilower // 10,
        selection=SelectionParams(
            ilower=args.ilower, procedures_only=args.procedures_only
        ),
    )
    # drift off = the batch-equivalence mode: select markers up front
    # (batch pipeline order) and apply them unchanged; with drift on the
    # monitor cold-starts and picks markers from the window itself
    marker_set = None
    if config.drift_threshold is None:
        graph = CallLoopProfiler(program).profile_trace(trace)
        marker_set = select_markers(graph, config.selection).markers
    monitor = stream_trace(
        program, trace, marker_set=marker_set, config=config,
        chunk_rows=args.chunk,
    )

    print(
        f"streamed {workload.spec_name}/{run_input.name}: "
        f"{trace.total_instructions:,} instructions, "
        f"{monitor.events_fed:,} events in chunks of {args.chunk}"
    )
    bound = "unbounded" if not config.window_slots else f"{config.window_slots} slot(s)"
    print(
        f"window: {bound} x {config.slot_instructions:,} instructions "
        f"(sealed {monitor.slots_sealed}, evicted {monitor.window.evicted_slots})"
    )
    print(
        f"{len(monitor.reselections)} re-selection(s), "
        f"{monitor.drift_events} drifted edge(s), "
        f"{len(monitor.marker_set.markers)} marker(s) live at end"
    )
    for r in monitor.reselections:
        reason = f"drift x{r.drifted_edges}" if r.drifted_edges else "cold start"
        print(
            f"  t={r.t:>12,}  slot {r.slot:4d}  -> "
            f"{r.num_markers} marker(s)  [{reason}]"
        )
    print(f"{len(monitor.changes)} phase changes observed:")
    limit = args.head or len(monitor.changes)
    for change in monitor.changes[:limit]:
        print(
            f"  t={change.t:>12,}  phase {change.previous_phase:3d} -> "
            f"{change.new_phase:3d}  (spent {change.time_in_previous:,})"
        )
    if len(monitor.changes) > limit:
        print(f"  ... {len(monitor.changes) - limit} more")
    return 0


_EXPERIMENTS = {
    "fig3": ("repro.experiments.fig3", "run"),
    "fig4": ("repro.experiments.fig4", "run"),
    "fig56": ("repro.experiments.fig56", "run"),
    "fig7": ("repro.experiments.fig7", "run"),
    "fig8": ("repro.experiments.fig8", "run"),
    "fig9": ("repro.experiments.fig9", "run"),
    "fig10": ("repro.experiments.fig10", "run"),
    "fig11": ("repro.experiments.fig1112", "run_fig11"),
    "fig12": ("repro.experiments.fig1112", "run_fig12"),
    "crossbin": ("repro.experiments.crossbin", "run"),
    "selection": ("repro.experiments.selection_time", "run"),
}


def _cmd_experiment(args: argparse.Namespace) -> int:
    import importlib

    from repro.experiments.plans import PROFILE_PLANS
    from repro.experiments.runner import Runner
    from repro.runner import ProfileCache

    cache = None if args.no_cache else ProfileCache(args.cache_dir)
    runner = Runner(
        cache=cache,
        jobs=args.jobs,
        profile_shards=args.profile_shards,
        split_shards=args.split_shards,
    )
    plan = PROFILE_PLANS.get(args.name, ())
    if plan and args.jobs > 1:
        runner.prefetch_graphs(plan)
    module_name, fn_name = _EXPERIMENTS[args.name]
    module = importlib.import_module(module_name)
    table = getattr(module, fn_name)(runner)
    print(table.render())
    # observability goes to stderr (via diag) so experiment output stays
    # byte-identical across serial, parallel, cached, and telemetry runs
    diag(runner.run_summary().render())
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    from repro.verify.fuzz import run_fuzz
    from repro.verify.golden import (
        check_golden_corpus,
        default_golden_dir,
        write_golden_corpus,
    )

    golden_dir = args.golden_dir or default_golden_dir()
    workloads = args.workload or None
    failed = False

    if args.refresh_golden:
        written = write_golden_corpus(golden_dir, workloads)
        print(f"golden corpus: wrote {len(written)} file(s) to {golden_dir}")
    elif not args.skip_golden:
        result = check_golden_corpus(golden_dir, workloads)
        print(result.describe())
        failed = failed or not result.ok

    if not args.refresh_golden and not args.skip_streaming:
        from repro.verify.streaming import check_streaming_corpus

        streaming = check_streaming_corpus(workloads)
        print(streaming.describe())
        failed = failed or not streaming.ok

    if not args.refresh_golden and not args.skip_split:
        from repro.verify.split import check_split_corpus

        split = check_split_corpus(workloads)
        print(split.describe())
        failed = failed or not split.ok

    if args.iters > 0:
        report = run_fuzz(
            seed=args.seed,
            iters=args.iters,
            max_instructions=args.max_instructions,
            repro_dir=args.repro_dir,
            progress=(
                (lambda i, shape: diag(f"fuzz iteration {i}: {shape}"))
                if args.verbose
                else None
            ),
        )
        print(report.describe())
        failed = failed or not report.ok
    return 1 if failed else 0


def _cmd_stats(args: argparse.Namespace) -> int:
    from repro.telemetry import (
        critical_path_report,
        default_series_path,
        default_trace_path,
        prometheus_text,
        read_jsonl,
        read_series_jsonl,
        series_report,
        stats_report,
        trace_metrics,
    )

    if args.series is not None:
        series_path = args.series or str(default_series_path())
        try:
            meta, samples = read_series_jsonl(series_path)
        except OSError as exc:
            diag(
                f"no metrics series at {series_path}: {exc}",
                "run a command with --metrics-series[=PATH] first",
            )
            return 1
        print(
            series_report(
                samples,
                source=series_path,
                skipped_lines=meta.get("skipped_lines", 0),
            )
        )
        return 0

    path = args.path or str(default_trace_path())
    try:
        events = read_jsonl(path)
    except OSError as exc:
        diag(
            f"no telemetry trace at {path}: {exc}",
            "run a command with --telemetry[=PATH] first",
        )
        return 1
    if args.prometheus:
        counters, gauges, histograms = trace_metrics(events)
        print(prometheus_text(counters, gauges, histograms), end="")
        return 0
    if args.critical_path:
        print(critical_path_report(events, source=path))
        return 0
    print(stats_report(events, source=path))
    return 0


def _serving_stores(args: argparse.Namespace):
    """(cache, trace_store) from the shared --cache-dir/--no-cache/
    --trace-root flags, defaulting like the server does."""
    from repro.runner.cache import ProfileCache, default_cache_dir
    from repro.runner.traces import TraceStore, default_trace_dir

    cache = (
        None
        if args.no_cache
        else ProfileCache(args.cache_dir or default_cache_dir())
    )
    store = TraceStore(args.trace_root or default_trace_dir())
    return cache, store


def _cmd_query(args: argparse.Namespace) -> int:
    from repro.serving import compute_payload, query_from_dict

    query = query_from_dict(
        {
            "kind": args.kind,
            "workload": args.workload,
            "which": args.which,
            "ilower": args.ilower,
            "max_limit": args.max_limit,
            "procedures_only": args.procedures_only,
            "window": args.window,
        }
    )
    cache, store = _serving_stores(args)
    payload = compute_payload(
        query, cache=cache, trace_store=store, split_shards=args.split_shards
    )
    if args.output:
        with open(args.output, "wb") as f:
            f.write(payload)
        diag(f"wrote {len(payload)} payload bytes to {args.output}")
    else:
        # exact canonical bytes + one newline: `repro query ... | head -c-1`
        # is byte-identical to the served response body
        sys.stdout.buffer.write(payload + b"\n")
        sys.stdout.buffer.flush()
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio
    import contextlib
    import signal

    from repro.serving import PhaseMarkerServer

    server = PhaseMarkerServer(
        host=args.host,
        port=args.port,
        jobs=args.jobs,
        cache_dir=args.cache_dir,
        no_cache=args.no_cache,
        trace_root=args.trace_root,
        batch_window_s=args.batch_window,
        max_batch=args.max_batch,
        split_shards=args.split_shards,
    )

    async def _serve() -> None:
        await server.start()
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGINT, signal.SIGTERM):
            with contextlib.suppress(NotImplementedError):
                loop.add_signal_handler(sig, server.request_shutdown)
        # the one stdout line: scripts parse the bound (possibly
        # ephemeral) port from it; everything else goes to stderr
        print(f"listening on http://{server.host}:{server.port}", flush=True)
        diag(
            f"serve: {server.jobs} worker(s), "
            f"cache {server.cache_dir or 'disabled'}, "
            f"traces {server.trace_root}"
        )
        await server.serve_until_shutdown()
        diag(
            f"serve: drained after {server.stats.requests} request(s), "
            f"{server.stats.errors} error(s)"
        )

    asyncio.run(_serve())
    return 0


def _build_loadgen_queries(args: argparse.Namespace):
    from repro.serving import query_from_dict

    workloads = args.workload or ["compress95", "tomcatv"]
    kinds = args.kind or ["markers"]
    return [
        query_from_dict(
            {
                "kind": kind,
                "workload": workload,
                "which": args.which,
                "ilower": args.ilower,
                "max_limit": args.max_limit,
                "procedures_only": args.procedures_only,
                "window": args.window if kind == "stream" else 0,
            }
        )
        for workload in workloads
        for kind in kinds
    ]


def _cmd_loadgen(args: argparse.Namespace) -> int:
    import json as _json

    from repro.serving import (
        LoadGenSettings,
        ServeClient,
        expected_payloads,
        run_loadgen,
    )

    settings = LoadGenSettings(
        scenario=args.scenario,
        target_qps=args.target_qps,
        max_async_queries=args.max_async_queries,
        min_duration_s=args.min_duration,
        max_duration_s=args.max_duration,
        min_queries=args.min_queries,
        seed=args.seed,
    )
    settings.validate()
    queries = _build_loadgen_queries(args)
    expected = None
    if args.check:
        from repro.runner.cache import default_cache_dir
        from repro.runner.traces import default_trace_dir

        diag(f"loadgen: precomputing {len(queries)} expected payload(s)")
        expected = expected_payloads(
            queries,
            cache_dir=(
                None
                if args.no_cache
                else str(args.cache_dir or default_cache_dir())
            ),
            trace_root=str(args.trace_root or default_trace_dir()),
        )
    summary = run_loadgen(
        args.host, args.port, queries, settings, expected=expected
    )
    print(summary.render())
    if args.output:
        with open(args.output, "w") as f:
            _json.dump(summary.as_dict(), f, indent=2, sort_keys=True)
            f.write("\n")
        diag(f"loadgen summary written to {args.output}")
    if args.shutdown:
        with ServeClient(args.host, args.port) as client:
            client.shutdown()
        diag("loadgen: server shutdown requested")
    failed = summary.errors > 0 or bool(summary.check_mismatches)
    return 1 if failed else 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Software phase markers (CGO 2006) reproduction toolkit",
    )
    # Telemetry flags are shared by every subcommand via a parent parser.
    tel = argparse.ArgumentParser(add_help=False)
    tel.add_argument(
        "--telemetry", nargs="?", const="", default=None, metavar="PATH",
        help="record pipeline spans/counters; write a Chrome-trace JSONL "
        "to PATH (default: the repro stats location) and print a "
        "per-stage report to stderr",
    )
    tel.add_argument(
        "--quiet-telemetry", action="store_true",
        help="with --telemetry: write the JSONL but skip the stderr report",
    )
    tel.add_argument(
        "--metrics-series", nargs="?", const="", default=None, metavar="PATH",
        help="sample counters/gauges on a background thread and write a "
        "metrics time-series JSONL to PATH (default: next to the "
        "telemetry trace); implies a telemetry session",
    )
    tel.add_argument(
        "--metrics-interval", type=float, default=0.05, metavar="S",
        help="seconds between --metrics-series samples (default 0.05)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser(
        "list", help="list bundled workloads", parents=[tel]
    ).set_defaults(fn=_cmd_list)

    def add_selection_args(p):
        p.add_argument("workload", help="workload name (see `repro list`)")
        p.add_argument(
            "--ilower", type=int, default=10_000,
            help="minimum average interval size (default 10000)",
        )
        p.add_argument(
            "--max-limit", type=int, default=0,
            help="maximum interval size (0 = no limit)",
        )
        p.add_argument(
            "--procedures-only", action="store_true",
            help="only mark procedure edges (no loops)",
        )
        p.add_argument(
            "--train", action="store_true",
            help="profile on the train input instead of ref",
        )

    p_markers = sub.add_parser(
        "markers", help="select and print phase markers", parents=[tel]
    )
    add_selection_args(p_markers)
    p_markers.add_argument("-o", "--output", help="save markers as JSON")
    p_markers.set_defaults(fn=_cmd_markers)

    p_phases = sub.add_parser(
        "phases", help="summarize the phases markers define", parents=[tel]
    )
    add_selection_args(p_phases)
    p_phases.add_argument(
        "--split-shards", type=int, default=None, metavar="N",
        help="apply markers over N parallel trace segments "
        "(bit-identical intervals; default: the sparsity-aware "
        "sequential fast path)",
    )
    p_phases.set_defaults(fn=_cmd_phases)

    p_plot = sub.add_parser(
        "timeplot",
        help="Figure-3-style time-varying plot in the terminal",
        parents=[tel],
    )
    add_selection_args(p_plot)
    p_plot.add_argument(
        "--resolution", type=int, default=2000,
        help="instructions per plotted interval (default 2000)",
    )
    p_plot.add_argument("--width", type=int, default=100, help="plot columns")
    p_plot.set_defaults(fn=_cmd_timeplot)

    p_graph = sub.add_parser(
        "graph",
        help="export the annotated call-loop graph as Graphviz DOT",
        parents=[tel],
    )
    add_selection_args(p_graph)
    p_graph.add_argument("-o", "--output", help="write DOT to a file")
    p_graph.add_argument(
        "--highlight-markers", action="store_true",
        help="draw selected marker edges bold red",
    )
    p_graph.set_defaults(fn=_cmd_graph)

    p_monitor = sub.add_parser(
        "monitor", help="run under the online phase monitor", parents=[tel]
    )
    add_selection_args(p_monitor)
    p_monitor.add_argument(
        "--head", type=int, default=20, help="transitions to print (default 20)"
    )
    p_monitor.set_defaults(fn=_cmd_monitor)

    p_stream = sub.add_parser(
        "stream",
        help="incremental streaming phase detection with bounded memory",
        parents=[tel],
    )
    p_stream.add_argument("workload", help="workload name (see `repro list`)")
    p_stream.add_argument(
        "--ilower", type=int, default=10_000,
        help="minimum average interval size (default 10000)",
    )
    p_stream.add_argument(
        "--procedures-only", action="store_true",
        help="only mark procedure edges (no loops)",
    )
    p_stream.add_argument(
        "--train", action="store_true",
        help="stream the train input instead of ref",
    )
    p_stream.add_argument(
        "--window", type=int, default=8, metavar="SLOTS",
        help="sliding-window length in slots (0 = unbounded; default 8)",
    )
    p_stream.add_argument(
        "--slot", type=int, default=100_000, metavar="INSTRUCTIONS",
        help="instructions per window slot (default 100000)",
    )
    p_stream.add_argument(
        "--drift-threshold", type=float, default=0.25, metavar="COV",
        help="absolute CoV drift on a marker edge that triggers rolling "
        "re-selection (0 disables drift detection; default 0.25)",
    )
    p_stream.add_argument(
        "--chunk", type=int, default=4096, metavar="ROWS",
        help="trace rows fed per chunk (default 4096)",
    )
    p_stream.add_argument(
        "--head", type=int, default=20,
        help="transitions to print (default 20)",
    )
    p_stream.set_defaults(fn=_cmd_stream)

    p_exp = sub.add_parser(
        "experiment", help="regenerate a paper figure", parents=[tel]
    )
    p_exp.add_argument("name", choices=sorted(_EXPERIMENTS))
    p_exp.add_argument(
        "-j", "--jobs", type=int, default=1,
        help="profile independent workloads across N processes (default 1)",
    )
    p_exp.add_argument(
        "--cache-dir", default=None,
        help="profile cache directory (default: $REPRO_CACHE_DIR or "
        "~/.cache/repro/profiles)",
    )
    p_exp.add_argument(
        "--no-cache", action="store_true",
        help="disable the on-disk profile cache",
    )
    p_exp.add_argument(
        "--profile-shards", type=int, default=None, metavar="N",
        help="walk each profiled trace as N parallel segments "
        "(bit-identical results; default: sequential walk)",
    )
    p_exp.add_argument(
        "--split-shards", type=int, default=None, metavar="N",
        help="apply markers over N parallel trace segments "
        "(bit-identical intervals; default: the sparsity-aware "
        "sequential fast path)",
    )
    p_exp.set_defaults(fn=_cmd_experiment)

    p_verify = sub.add_parser(
        "verify",
        help="differential-oracle checks: golden corpus + seeded fuzzing",
        parents=[tel],
    )
    p_verify.add_argument(
        "--seed", type=int, default=0, help="base fuzz seed (default 0)"
    )
    p_verify.add_argument(
        "--iters", type=int, default=50,
        help="fuzz iterations (default 50; 0 skips fuzzing)",
    )
    p_verify.add_argument(
        "--max-instructions", type=int, default=20_000,
        help="instruction cap per fuzzed run (default 20000)",
    )
    p_verify.add_argument(
        "--skip-golden", action="store_true",
        help="skip the golden-corpus check",
    )
    p_verify.add_argument(
        "--skip-streaming", action="store_true",
        help="skip the streaming-vs-batch equivalence pass",
    )
    p_verify.add_argument(
        "--skip-split", action="store_true",
        help="skip the segmented-split equivalence pass",
    )
    p_verify.add_argument(
        "--refresh-golden", action="store_true",
        help="regenerate the golden corpus instead of checking it",
    )
    p_verify.add_argument(
        "--golden-dir", default=None,
        help="golden corpus directory (default: tests/golden/)",
    )
    p_verify.add_argument(
        "--repro-dir", default="tests/verify/repros",
        help="where shrunk failing programs are written "
        "(default tests/verify/repros)",
    )
    p_verify.add_argument(
        "--workload", action="append", metavar="NAME",
        help="restrict the golden check/refresh to NAME (repeatable)",
    )
    p_verify.add_argument(
        "-v", "--verbose", action="store_true",
        help="log each fuzz iteration to stderr",
    )
    p_verify.set_defaults(fn=_cmd_verify)

    p_stats = sub.add_parser(
        "stats",
        help="render the per-stage tables from a telemetry JSONL trace",
        parents=[tel],
    )
    p_stats.add_argument(
        "path", nargs="?", default=None,
        help="trace file (default: the last --telemetry run)",
    )
    p_stats.add_argument(
        "--critical-path", action="store_true",
        help="report the critical path, per-span self-time attribution, "
        "and per-lane parallel efficiency instead of the stage tables",
    )
    p_stats.add_argument(
        "--series", nargs="?", const="", default=None, metavar="PATH",
        help="summarize a --metrics-series time series instead of a "
        "trace (default: the last --metrics-series run)",
    )
    p_stats.add_argument(
        "--prometheus", action="store_true",
        help="print the trace's metrics in the Prometheus text "
        "exposition format",
    )
    p_stats.set_defaults(fn=_cmd_stats)

    # -- serving layer (docs/SERVING.md) --------------------------------------

    def add_query_args(p, positional: bool):
        if positional:
            from repro.serving.queries import QUERY_KINDS

            p.add_argument(
                "kind", choices=QUERY_KINDS, help="payload kind to compute"
            )
            p.add_argument(
                "workload", help="workload name (see `repro list`)"
            )
        p.add_argument(
            "--which", default="ref",
            help="profiled input: ref, train, or an input name (default ref)",
        )
        p.add_argument(
            "--ilower", type=int, default=10_000,
            help="minimum average interval size (default 10000)",
        )
        p.add_argument(
            "--max-limit", type=int, default=0,
            help="maximum interval size (0 = no limit)",
        )
        p.add_argument(
            "--procedures-only", action="store_true",
            help="only mark procedure edges (no loops)",
        )
        p.add_argument(
            "--window", type=int, default=0, metavar="SLOTS",
            help="stream queries only: sliding-window length in slots "
            "(0 = unbounded, the batch-equivalent mode; default 0)",
        )

    def add_store_args(p):
        p.add_argument(
            "--cache-dir", default=None,
            help="profile cache directory (default: $REPRO_CACHE_DIR or "
            "~/.cache/repro/profiles)",
        )
        p.add_argument(
            "--no-cache", action="store_true",
            help="disable the on-disk profile cache",
        )
        p.add_argument(
            "--trace-root", default=None,
            help="trace store directory (default: $REPRO_TRACE_DIR or "
            "~/.cache/repro/traces)",
        )

    p_query = sub.add_parser(
        "query",
        help="compute one serving payload inline (the batch path)",
        parents=[tel],
    )
    add_query_args(p_query, positional=True)
    add_store_args(p_query)
    p_query.add_argument(
        "--split-shards", type=int, default=None, metavar="N",
        help="segment the VLI split of bbv/vli/phases payloads "
        "(payload bytes are shard-count-invariant)",
    )
    p_query.add_argument(
        "-o", "--output", help="write the payload bytes to a file"
    )
    p_query.set_defaults(fn=_cmd_query)

    p_serve = sub.add_parser(
        "serve",
        help="run the phase-marker query service (HTTP)",
        parents=[tel],
    )
    p_serve.add_argument(
        "--host", default="127.0.0.1", help="bind address (default 127.0.0.1)"
    )
    p_serve.add_argument(
        "--port", type=int, default=8321,
        help="bind port; 0 picks an ephemeral port (default 8321)",
    )
    p_serve.add_argument(
        "-j", "--jobs", type=int, default=None,
        help="worker pool size (default: the parallel-runner default)",
    )
    add_store_args(p_serve)
    p_serve.add_argument(
        "--batch-window", type=float, default=None, metavar="S",
        help="micro-batch collection window in seconds (default 0.002)",
    )
    p_serve.add_argument(
        "--max-batch", type=int, default=None, metavar="N",
        help="dispatch a batch at N queries even inside the window "
        "(default 16)",
    )
    p_serve.add_argument(
        "--split-shards", type=int, default=None, metavar="N",
        help="segment the VLI split of bbv/vli/phases payloads in "
        "workers (payload bytes are shard-count-invariant)",
    )
    p_serve.set_defaults(fn=_cmd_serve)

    p_load = sub.add_parser(
        "loadgen",
        help="drive a live server with the MLPerf-style load generator",
        parents=[tel],
    )
    p_load.add_argument(
        "--host", default="127.0.0.1", help="server address (default 127.0.0.1)"
    )
    p_load.add_argument(
        "--port", type=int, default=8321, help="server port (default 8321)"
    )
    p_load.add_argument(
        "--scenario", choices=["singlestream", "server"], default="server",
        help="singlestream (closed loop) or server (open loop, default)",
    )
    p_load.add_argument(
        "--target-qps", type=float, default=20.0,
        help="Poisson arrival rate for the server scenario (default 20)",
    )
    p_load.add_argument(
        "--max-async-queries", type=int, default=64,
        help="outstanding-query cap in the server scenario (default 64)",
    )
    p_load.add_argument(
        "--min-duration", type=float, default=1.0, metavar="S",
        help="keep issuing until at least S seconds of schedule (default 1)",
    )
    p_load.add_argument(
        "--max-duration", type=float, default=30.0, metavar="S",
        help="hard stop after S seconds of schedule (default 30)",
    )
    p_load.add_argument(
        "--min-queries", type=int, default=16,
        help="issue at least N queries (default 16)",
    )
    p_load.add_argument(
        "--seed", type=int, default=0,
        help="schedule seed; same seed, same schedule (default 0)",
    )
    p_load.add_argument(
        "--workload", action="append", metavar="NAME",
        help="workload(s) to query, repeatable "
        "(default: compress95, tomcatv)",
    )
    from repro.serving.queries import QUERY_KINDS as _query_kinds

    p_load.add_argument(
        "--kind", action="append", metavar="KIND",
        choices=list(_query_kinds),
        help="query kind(s) to mix in, repeatable (default: markers)",
    )
    add_query_args(p_load, positional=False)
    add_store_args(p_load)
    p_load.add_argument(
        "--check", action="store_true",
        help="byte-verify every response against locally computed payloads",
    )
    p_load.add_argument(
        "--shutdown", action="store_true",
        help="request a graceful server shutdown after the run",
    )
    p_load.add_argument(
        "-o", "--output", metavar="PATH",
        help="also write the summary as JSON to PATH",
    )
    p_load.set_defaults(fn=_cmd_loadgen)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    telemetry_arg = getattr(args, "telemetry", None)
    series_arg = getattr(args, "metrics_series", None)
    if telemetry_arg is None and series_arg is None:
        return args.fn(args)

    from repro import telemetry as _telemetry
    from repro.telemetry import (
        MetricsSampler,
        default_series_path,
        default_trace_path,
        render_report,
        write_jsonl,
        write_series_jsonl,
    )

    tm = _telemetry.enable_telemetry()
    sampler = None
    if series_arg is not None:
        sampler = MetricsSampler(
            tm, interval_s=getattr(args, "metrics_interval", 0.05)
        ).start()
    try:
        return args.fn(args)
    finally:
        _telemetry.disable_telemetry()
        notes = []
        if sampler is not None:
            samples = sampler.stop()
            series_path = write_series_jsonl(
                samples,
                series_arg or default_series_path(),
                run_id=tm.run_id,
                interval_s=sampler.interval_s,
                dropped=sampler.dropped,
            )
            notes.append(f"metrics series written to {series_path}")
        if telemetry_arg is not None:
            path = telemetry_arg or str(default_trace_path())
            write_jsonl(tm, path)
            notes.append(f"telemetry trace written to {path}")
        if getattr(args, "quiet_telemetry", False):
            pass  # files written, stderr stays clean
        elif telemetry_arg is not None:
            diag(render_report(tm), *notes)
        elif notes:
            diag(*notes)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
