"""Deterministic data-address streams for cache simulation.

Each basic block's :class:`~repro.ir.program.MemSpec` describes the shape
of the addresses its loads/stores touch.  The paper's cache experiments
only need *realistic reuse behavior per code region* — streaming regions
that never re-hit, working sets that fit (or don't fit) in a given cache
configuration, and pointer chases with poor locality — so each spec is
realized as a pregenerated cyclic **pool** of addresses that block
executions walk through.  Pools make address generation O(n) numpy slicing
instead of per-access Python work, while preserving the reuse distances
that determine hit rates.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.engine.rng import make_rng
from repro.ir.program import MemPattern, MemSpec, Program, ProgramInput

#: cache line size used for address granularity of pointer chases
LINE_BYTES = 64

#: cap on pool length; pools wrap (a loop re-walks its arrays, so wrapping
#: is the natural behavior)
MAX_POOL = 1 << 16

#: spacing between region base addresses (keeps regions disjoint in all
#: realistic cache index spaces)
REGION_SPACING = 1 << 31


class _Pool:
    """A cyclic address pool with a cursor."""

    __slots__ = ("addresses", "cursor")

    def __init__(self, addresses: np.ndarray):
        if len(addresses) == 0:
            raise ValueError("empty address pool")
        self.addresses = addresses
        self.cursor = 0

    def take(self, n: int) -> np.ndarray:
        """The next *n* addresses, wrapping around the pool."""
        pool = self.addresses
        size = len(pool)
        start = self.cursor
        self.cursor = (start + n) % size
        if n <= size - start:
            return pool[start : start + n]
        parts = [pool[start:]]
        remaining = n - (size - start)
        while remaining > size:
            parts.append(pool)
            remaining -= size
        parts.append(pool[:remaining])
        return np.concatenate(parts)


class MemorySystem:
    """Produces the data-address stream of a recorded run.

    The system is constructed per (program, input) pair: footprints may be
    input-dependent, and pool contents are seeded by the input.  Blocks
    sharing a MemSpec share a pool — repeated executions of the same code
    region re-touch the same addresses, which is where cache reuse comes
    from.
    """

    def __init__(self, program: Program, program_input: ProgramInput):
        self.program = program
        self.input = program_input
        self._rng = make_rng(program_input.seed, "memory", program.name)
        self._region_bases: Dict[str, int] = {}
        self._pools: Dict[Tuple, _Pool] = {}
        self._block_pool: List[Optional[_Pool]] = []
        self._block_mem_ops: np.ndarray = np.zeros(program.num_blocks, dtype=np.int64)
        for block in program.blocks:
            self._block_mem_ops[block.block_id] = block.mix.mem_ops
            if block.mem is None or block.mix.mem_ops == 0:
                self._block_pool.append(None)
            else:
                self._block_pool.append(self._pool_for(block.mem))

    # -- pool construction ------------------------------------------------------

    def _base_for(self, region: str) -> int:
        if region not in self._region_bases:
            index = len(self._region_bases)
            self._region_bases[region] = 0x1_0000_0000 + index * REGION_SPACING
        return self._region_bases[region]

    def _pool_for(self, spec: MemSpec) -> _Pool:
        footprint = spec.resolve_footprint(self.input.params)
        key = (spec.pattern, spec.region, footprint, spec.stride)
        if key in self._pools:
            return self._pools[key]
        base = self._base_for(spec.region)
        pattern = spec.pattern
        if pattern in (MemPattern.SEQ, MemPattern.STACK):
            n = max(1, min(footprint // max(1, spec.stride), MAX_POOL))
            offsets = (np.arange(n, dtype=np.int64) * spec.stride) % max(
                footprint, spec.stride
            )
        elif pattern is MemPattern.WSET:
            slots = max(1, footprint // 8)
            n = min(slots, MAX_POOL)
            offsets = self._rng.integers(0, slots, size=n, dtype=np.int64) * 8
        elif pattern is MemPattern.CHASE:
            lines = max(1, footprint // LINE_BYTES)
            n = min(lines, MAX_POOL)
            offsets = self._rng.permutation(lines)[:n].astype(np.int64) * LINE_BYTES
        else:  # pragma: no cover - exhaustive over MemPattern
            raise ValueError(f"unknown pattern {pattern}")
        pool = _Pool(base + offsets)
        self._pools[key] = pool
        return pool

    # -- address stream -----------------------------------------------------------

    def addresses_for_block(self, block_id: int) -> np.ndarray:
        """Addresses touched by one execution of *block_id* (may be empty)."""
        pool = self._block_pool[block_id]
        if pool is None:
            return _EMPTY
        return pool.take(int(self._block_mem_ops[block_id]))

    def mem_ops_for_block(self, block_id: int) -> int:
        return int(self._block_mem_ops[block_id])

    def addresses_for_blocks(self, block_ids: np.ndarray) -> np.ndarray:
        """Concatenated address stream for a sequence of block executions."""
        chunks = []
        for bid in block_ids.tolist():
            pool = self._block_pool[bid]
            if pool is not None:
                chunks.append(pool.take(int(self._block_mem_ops[bid])))
        if not chunks:
            return _EMPTY
        return np.concatenate(chunks)

    def reset(self) -> None:
        """Rewind all pool cursors (for deterministic re-streaming)."""
        for pool in self._pools.values():
            pool.cursor = 0


_EMPTY = np.empty(0, dtype=np.int64)
