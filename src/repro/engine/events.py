"""Dynamic event types produced by the execution engine.

Events are lightweight named tuples; hot consumers (the call-loop
profiler, interval collectors) may instead read the packed columnar form
from :class:`~repro.engine.tracing.Trace` directly.
"""

from __future__ import annotations

from typing import NamedTuple

#: packed-kind codes used by Trace's columnar storage
K_BLOCK = 0
K_BRANCH = 1
K_CALL = 2
K_RETURN = 3

KIND_NAMES = {K_BLOCK: "block", K_BRANCH: "branch", K_CALL: "call", K_RETURN: "return"}


class BlockEvent(NamedTuple):
    """One execution of a basic block."""

    block_id: int
    address: int
    size: int


class BranchEvent(NamedTuple):
    """One execution of a conditional branch instruction."""

    address: int  #: address of the branch instruction itself
    target: int  #: branch target address
    taken: bool


class CallEvent(NamedTuple):
    """A procedure call; the callee's code runs until the matching return."""

    site_address: int  #: address of the call instruction
    callee_id: int  #: proc_id of the callee


class ReturnEvent(NamedTuple):
    """Return from a procedure."""

    proc_id: int


Event = object  # union alias for documentation purposes
