"""The interpreter: runs an IR program on an input, yielding events.

The machine is deliberately simple — programs are structured, so execution
is a walk of the statement tree — but the *events it emits* are faithful to
what binary instrumentation sees:

* every block execution carries the block's address and size;
* every loop iteration ends with the latch's conditional branch, whose
  target is the loop header — a *backwards branch*, which is how the
  call-loop profiler discovers loops (paper Section 4.2);
* calls and returns bracket callee execution.

Determinism: all data-dependent control flow (trip counts, branch
outcomes, switch dispatch) is sampled from a generator seeded by the
input, so identical (program, input) pairs yield identical traces.
"""

from __future__ import annotations

from typing import Iterator, List, Optional

import numpy as np

from repro.engine.events import BlockEvent, BranchEvent, CallEvent, ReturnEvent
from repro.engine.rng import make_rng
from repro.ir.program import (
    BasicBlock,
    BlockStmt,
    CallStmt,
    IfStmt,
    LoopStmt,
    Program,
    ProgramInput,
    Stmt,
    SwitchStmt,
)

#: assumed gap between a forward branch and its target (address modeling
#: for if/switch branches; exact values only matter to the predictor's
#: table indexing, not to loop discovery)
_FORWARD_BRANCH_SPAN = 8


class ExecutionLimitExceeded(Exception):
    """Raised when a run would exceed the configured instruction limit."""


class _StopRun(Exception):
    """Internal: unwind the interpreter when the soft cap is reached."""


class Machine:
    """Interprets a program for one input.

    Parameters
    ----------
    program:
        The program to run.
    program_input:
        Parameters and seed for this run.
    max_instructions:
        Optional cap.  With ``strict=False`` (default) the run stops
        cleanly once the cap is crossed; with ``strict=True`` it raises
        :class:`ExecutionLimitExceeded`.
    """

    def __init__(
        self,
        program: Program,
        program_input: ProgramInput,
        max_instructions: Optional[int] = None,
        strict: bool = False,
    ):
        self.program = program
        self.input = program_input
        self.max_instructions = max_instructions
        self.strict = strict
        self.instructions_executed = 0
        self._rng: Optional[np.random.Generator] = None
        self._events: List[object] = []

    # -- public API -----------------------------------------------------------

    def run(self) -> Iterator[object]:
        """Yield the run's events in order."""
        self.instructions_executed = 0
        # Control-flow randomness depends only on (input name, seed), not on
        # the binary variant: two compilations of the same source make the
        # same data-dependent decisions on the same input.
        self._rng = make_rng(self.input.seed, "control", self.input.name)
        params = self.input.params
        self._events = []
        try:
            yield from self._run_body(self.program.procedures[self.program.entry].body, params)
        except _StopRun:
            if self.strict:
                raise ExecutionLimitExceeded(
                    f"{self.program.name}/{self.input.name}: exceeded "
                    f"{self.max_instructions} instructions"
                )

    # -- interpreter -------------------------------------------------------

    def _exec_block(self, block: BasicBlock) -> BlockEvent:
        self.instructions_executed += block.size
        if (
            self.max_instructions is not None
            and self.instructions_executed > self.max_instructions
        ):
            raise _StopRun()
        return BlockEvent(block.block_id, block.address, block.size)

    def _run_body(self, stmts: List[Stmt], params) -> Iterator[object]:
        rng = self._rng
        for stmt in stmts:
            if isinstance(stmt, BlockStmt):
                yield self._exec_block(stmt.block)
            elif isinstance(stmt, LoopStmt):
                trips = stmt.trips.sample(params, rng)
                header = stmt.header_block
                latch = stmt.latch_block
                back_src = latch.end_address
                back_dst = header.address
                for i in range(trips):
                    yield self._exec_block(header)
                    yield from self._run_body(stmt.body, params)
                    yield self._exec_block(latch)
                    yield BranchEvent(back_src, back_dst, i + 1 < trips)
            elif isinstance(stmt, CallStmt):
                site = stmt.site_block
                yield self._exec_block(site)
                callee = self.program.procedures[stmt.callee]
                yield CallEvent(site.end_address, callee.proc_id)
                yield from self._run_body(callee.body, params)
                yield ReturnEvent(callee.proc_id)
            elif isinstance(stmt, IfStmt):
                cond = stmt.cond_block
                yield self._exec_block(cond)
                take_then = rng.random() < stmt.prob.value(params)
                # Convention: the branch is *taken* when it jumps over the
                # then-side (i.e. the else path executes).
                yield BranchEvent(
                    cond.end_address,
                    cond.end_address + _FORWARD_BRANCH_SPAN,
                    not take_then,
                )
                if take_then:
                    yield from self._run_body(stmt.then_body, params)
                else:
                    yield from self._run_body(stmt.else_body, params)
            elif isinstance(stmt, SwitchStmt):
                cond = stmt.cond_block
                yield self._exec_block(cond)
                weights = np.asarray(stmt.weights, dtype=float)
                probs = weights / weights.sum()
                case_idx = int(rng.choice(len(stmt.cases), p=probs))
                yield BranchEvent(
                    cond.end_address,
                    cond.end_address + _FORWARD_BRANCH_SPAN * (case_idx + 1),
                    case_idx != 0,
                )
                yield from self._run_body(stmt.cases[case_idx], params)
            else:  # pragma: no cover - exhaustive over Stmt subclasses
                raise TypeError(f"unknown statement {type(stmt).__name__}")


def run_program(
    program: Program,
    program_input: ProgramInput,
    max_instructions: Optional[int] = None,
) -> Iterator[object]:
    """Convenience wrapper: iterate a fresh Machine's events."""
    return Machine(program, program_input, max_instructions=max_instructions).run()
