"""The interpreter: runs an IR program on an input, yielding events.

The machine is deliberately simple — programs are structured, so execution
is a walk of the statement tree — but the *events it emits* are faithful to
what binary instrumentation sees:

* every block execution carries the block's address and size;
* every loop iteration ends with the latch's conditional branch, whose
  target is the loop header — a *backwards branch*, which is how the
  call-loop profiler discovers loops (paper Section 4.2);
* calls and returns bracket callee execution.

Determinism: all data-dependent control flow (trip counts, branch
outcomes, switch dispatch) is sampled from a generator seeded by the
input, so identical (program, input) pairs yield identical traces.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

import numpy as np

from repro.engine.events import (
    K_BLOCK,
    K_BRANCH,
    K_CALL,
    K_RETURN,
    BlockEvent,
    BranchEvent,
    CallEvent,
    ReturnEvent,
)
from repro.engine.rng import make_rng
from repro.ir.program import (
    BasicBlock,
    BlockStmt,
    CallStmt,
    IfStmt,
    LoopStmt,
    Program,
    ProgramInput,
    Stmt,
    SwitchStmt,
)

#: assumed gap between a forward branch and its target (address modeling
#: for if/switch branches; exact values only matter to the predictor's
#: table indexing, not to loop discovery)
_FORWARD_BRANCH_SPAN = 8


class ExecutionLimitExceeded(Exception):
    """Raised when a run would exceed the configured instruction limit."""


class _StopRun(Exception):
    """Internal: unwind the interpreter when the soft cap is reached."""


class _LoopPattern:
    """Precomputed packed rows of one iteration of a pure-block loop.

    A loop whose body is nothing but :class:`BlockStmt`\\ s consumes no
    randomness inside an iteration, so every iteration emits the same
    row sequence — header block, body blocks, latch block, back-edge
    branch — except that the final iteration's branch falls through.
    The fast recording path tiles this pattern ``trips`` times in one
    numpy operation instead of interpreting each iteration.
    """

    __slots__ = ("kinds", "a", "b", "c", "cum_instr", "instr_per_iter", "rows")

    def __init__(self, kinds, a, b, c, cum_instr, instr_per_iter):
        self.kinds = kinds
        self.a = a
        self.b = b
        self.c = c
        #: inclusive running total of instruction contributions per row
        self.cum_instr = cum_instr
        self.instr_per_iter = instr_per_iter
        #: the same rows as python tuples, for trip counts too small to
        #: amortize np.tile
        self.rows = list(zip(kinds.tolist(), a.tolist(), b.tolist(), c.tolist()))


class Machine:
    """Interprets a program for one input.

    Parameters
    ----------
    program:
        The program to run.
    program_input:
        Parameters and seed for this run.
    max_instructions:
        Optional cap.  With ``strict=False`` (default) the run stops
        cleanly once the cap is crossed; with ``strict=True`` it raises
        :class:`ExecutionLimitExceeded`.
    """

    def __init__(
        self,
        program: Program,
        program_input: ProgramInput,
        max_instructions: Optional[int] = None,
        strict: bool = False,
    ):
        self.program = program
        self.input = program_input
        self.max_instructions = max_instructions
        self.strict = strict
        self.instructions_executed = 0
        self._rng: Optional[np.random.Generator] = None
        self._events: List[object] = []
        self._patterns: Dict[int, Optional[_LoopPattern]] = {}
        # Record-path caches, keyed by object identity: packed block rows
        # (block.size walks the instruction list on every access) and
        # per-statement control constants (branch probabilities, switch
        # cdfs, emit addresses).  Params are fixed for the whole run, so
        # caching keeps the values — and therefore the rng draws —
        # identical to run()'s per-execution evaluation.
        self._block_rows: Dict[int, tuple] = {}
        self._branch_consts: Dict[int, tuple] = {}
        self._cap = float("inf") if max_instructions is None else max_instructions

    # -- public API -----------------------------------------------------------

    def run(self) -> Iterator[object]:
        """Yield the run's events in order."""
        self.instructions_executed = 0
        # Control-flow randomness depends only on (input name, seed), not on
        # the binary variant: two compilations of the same source make the
        # same data-dependent decisions on the same input.
        self._rng = make_rng(self.input.seed, "control", self.input.name)
        params = self.input.params
        self._events = []
        try:
            yield from self._run_body(self.program.procedures[self.program.entry].body, params)
        except _StopRun:
            if self.strict:
                raise ExecutionLimitExceeded(
                    f"{self.program.name}/{self.input.name}: exceeded "
                    f"{self.max_instructions} instructions"
                )

    def record(self, builder=None):
        """Run and record directly into columnar storage; returns a Trace.

        The zero-object fast path: packed ``(kind, a, b, c)`` rows are
        written into a :class:`~repro.engine.tracing.TraceBuilder`'s
        preallocated chunks (no event objects, no generator frames), and
        loops with pure-block bodies are emitted as one tiled numpy
        block per entry instead of one row at a time.  Produces a trace
        bit-identical to ``Trace.from_events(self.run())`` — the object
        path stays as the oracle, and the equivalence is enforced by the
        ``trace-pipeline`` verify check and the fuzz suite.
        """
        from repro.engine.tracing import TraceBuilder

        if builder is None:
            builder = TraceBuilder()
        self.instructions_executed = 0
        # Same stream as run(): identical (input name, seed) -> identical
        # control-flow decisions, so both paths replay the same run.
        self._rng = make_rng(self.input.seed, "control", self.input.name)
        try:
            self._record_body(
                self.program.procedures[self.program.entry].body,
                self.input.params,
                builder,
            )
        except _StopRun:
            if self.strict:
                raise ExecutionLimitExceeded(
                    f"{self.program.name}/{self.input.name}: exceeded "
                    f"{self.max_instructions} instructions"
                )
        return builder.build()

    # -- interpreter -------------------------------------------------------

    def _exec_block(self, block: BasicBlock) -> BlockEvent:
        self.instructions_executed += block.size
        if (
            self.max_instructions is not None
            and self.instructions_executed > self.max_instructions
        ):
            raise _StopRun()
        return BlockEvent(block.block_id, block.address, block.size)

    def _run_body(self, stmts: List[Stmt], params) -> Iterator[object]:
        rng = self._rng
        for stmt in stmts:
            if isinstance(stmt, BlockStmt):
                yield self._exec_block(stmt.block)
            elif isinstance(stmt, LoopStmt):
                trips = stmt.trips.sample(params, rng)
                header = stmt.header_block
                latch = stmt.latch_block
                back_src = latch.end_address
                back_dst = header.address
                for i in range(trips):
                    yield self._exec_block(header)
                    yield from self._run_body(stmt.body, params)
                    yield self._exec_block(latch)
                    yield BranchEvent(back_src, back_dst, i + 1 < trips)
            elif isinstance(stmt, CallStmt):
                site = stmt.site_block
                yield self._exec_block(site)
                callee = self.program.procedures[stmt.callee]
                yield CallEvent(site.end_address, callee.proc_id)
                yield from self._run_body(callee.body, params)
                yield ReturnEvent(callee.proc_id)
            elif isinstance(stmt, IfStmt):
                cond = stmt.cond_block
                yield self._exec_block(cond)
                take_then = rng.random() < stmt.prob.value(params)
                # Convention: the branch is *taken* when it jumps over the
                # then-side (i.e. the else path executes).
                yield BranchEvent(
                    cond.end_address,
                    cond.end_address + _FORWARD_BRANCH_SPAN,
                    not take_then,
                )
                if take_then:
                    yield from self._run_body(stmt.then_body, params)
                else:
                    yield from self._run_body(stmt.else_body, params)
            elif isinstance(stmt, SwitchStmt):
                cond = stmt.cond_block
                yield self._exec_block(cond)
                weights = np.asarray(stmt.weights, dtype=float)
                probs = weights / weights.sum()
                case_idx = int(rng.choice(len(stmt.cases), p=probs))
                yield BranchEvent(
                    cond.end_address,
                    cond.end_address + _FORWARD_BRANCH_SPAN * (case_idx + 1),
                    case_idx != 0,
                )
                yield from self._run_body(stmt.cases[case_idx], params)
            else:  # pragma: no cover - exhaustive over Stmt subclasses
                raise TypeError(f"unknown statement {type(stmt).__name__}")

    # -- fast columnar recording -------------------------------------------

    def _rec_block(self, block: BasicBlock, emit) -> None:
        row = self._block_rows.get(id(block))
        if row is None:
            row = self._block_rows[id(block)] = (
                block.block_id,
                block.address,
                block.size,
            )
        executed = self.instructions_executed = self.instructions_executed + row[2]
        if executed > self._cap:
            # Matches _exec_block: the crossing block is counted but its
            # event is never emitted.
            raise _StopRun()
        emit(K_BLOCK, row[0], row[1], row[2])

    def _loop_pattern(self, stmt: LoopStmt) -> Optional[_LoopPattern]:
        key = id(stmt)
        if key not in self._patterns:
            self._patterns[key] = self._build_pattern(stmt)
        return self._patterns[key]

    @staticmethod
    def _build_pattern(stmt: LoopStmt) -> Optional[_LoopPattern]:
        blocks = [stmt.header_block]
        for s in stmt.body:
            if not isinstance(s, BlockStmt):
                return None  # body consumes randomness; interpret per iteration
            blocks.append(s.block)
        blocks.append(stmt.latch_block)
        n = len(blocks)
        kinds = np.empty(n + 1, dtype=np.int8)
        kinds[:n] = K_BLOCK
        kinds[n] = K_BRANCH
        a = np.empty(n + 1, dtype=np.int64)
        b = np.empty(n + 1, dtype=np.int64)
        c = np.empty(n + 1, dtype=np.int64)
        contrib = np.zeros(n + 1, dtype=np.int64)
        for i, blk in enumerate(blocks):
            a[i], b[i], c[i] = blk.block_id, blk.address, blk.size
            contrib[i] = blk.size
        # the latch's backwards branch; taken on every non-final iteration
        a[n] = stmt.latch_block.end_address
        b[n] = stmt.header_block.address
        c[n] = 1
        per_iter = int(contrib.sum())
        if per_iter == 0:
            return None  # degenerate all-empty blocks; scalar path handles it
        return _LoopPattern(kinds, a, b, c, np.cumsum(contrib), per_iter)

    def _record_loop_tiled(self, pat: _LoopPattern, trips: int, builder) -> None:
        """Emit *trips* iterations of a pure-block loop in bulk."""
        per = pat.instr_per_iter
        if self.max_instructions is None:
            full, truncated = trips, False
        else:
            fit = (self.max_instructions - self.instructions_executed) // per
            truncated = fit < trips
            full = fit if truncated else trips
        if full:
            rows = pat.rows
            if full * len(rows) <= 32:
                # np.tile costs more than it saves on tiny trip counts
                emit = builder.emit
                last = len(rows) - 1
                for it in range(full):
                    final = it + 1 == full and not truncated
                    for i, (kind, a_v, b_v, c_v) in enumerate(rows):
                        if final and i == last:
                            c_v = 0  # final back-edge branch falls through
                        emit(kind, a_v, b_v, c_v)
            else:
                kinds = np.tile(pat.kinds, full)
                a = np.tile(pat.a, full)
                b = np.tile(pat.b, full)
                c = np.tile(pat.c, full)
                if not truncated:
                    c[-1] = 0  # final back-edge branch falls through
                builder.append_rows(kinds, a, b, c)
            self.instructions_executed += per * full
        if truncated:
            # Partial iteration: emit rows up to (excluding) the first
            # block that crosses the cap, count that block, and stop —
            # exactly what the per-block check in _rec_block does.
            remaining = self.max_instructions - self.instructions_executed
            idx = int(np.searchsorted(pat.cum_instr, remaining, side="right"))
            if idx:
                builder.append_rows(
                    pat.kinds[:idx].copy(),
                    pat.a[:idx].copy(),
                    pat.b[:idx].copy(),
                    pat.c[:idx].copy(),
                )
            self.instructions_executed += int(pat.cum_instr[idx])
            raise _StopRun()

    def _record_body(self, stmts: List[Stmt], params, builder) -> None:
        """Mirror of _run_body that emits packed rows instead of objects.

        Control-flow decisions draw from the same rng in the same order,
        so the recorded rows match the object path bit for bit.
        """
        rng = self._rng
        emit = builder.emit
        for stmt in stmts:
            if isinstance(stmt, BlockStmt):
                self._rec_block(stmt.block, emit)
            elif isinstance(stmt, LoopStmt):
                trips = stmt.trips.sample(params, rng)
                pat = self._loop_pattern(stmt)
                if pat is not None:
                    self._record_loop_tiled(pat, trips, builder)
                    continue
                header = stmt.header_block
                latch = stmt.latch_block
                back_src = latch.end_address
                back_dst = header.address
                for i in range(trips):
                    self._rec_block(header, emit)
                    self._record_body(stmt.body, params, builder)
                    self._rec_block(latch, emit)
                    emit(K_BRANCH, back_src, back_dst, 1 if i + 1 < trips else 0)
            elif isinstance(stmt, CallStmt):
                site = stmt.site_block
                self._rec_block(site, emit)
                consts = self._branch_consts.get(id(stmt))
                if consts is None:
                    callee = self.program.procedures[stmt.callee]
                    consts = self._branch_consts[id(stmt)] = (
                        site.end_address,
                        callee.proc_id,
                        callee.body,
                    )
                emit(K_CALL, consts[0], consts[1], 0)
                self._record_body(consts[2], params, builder)
                emit(K_RETURN, consts[1], 0, 0)
            elif isinstance(stmt, IfStmt):
                cond = stmt.cond_block
                self._rec_block(cond, emit)
                consts = self._branch_consts.get(id(stmt))
                if consts is None:
                    p = float(stmt.prob.value(params))
                    end = cond.end_address
                    consts = self._branch_consts[id(stmt)] = (
                        p,
                        end,
                        end + _FORWARD_BRANCH_SPAN,
                    )
                take_then = rng.random() < consts[0]
                # taken == jumping over the then-side (see _run_body)
                emit(K_BRANCH, consts[1], consts[2], 0 if take_then else 1)
                self._record_body(
                    stmt.then_body if take_then else stmt.else_body, params, builder
                )
            elif isinstance(stmt, SwitchStmt):
                cond = stmt.cond_block
                self._rec_block(cond, emit)
                consts = self._branch_consts.get(id(stmt))
                if consts is None:
                    weights = np.asarray(stmt.weights, dtype=float)
                    probs = weights / weights.sum()
                    # rng.choice's own sampling: normalized cdf, one
                    # uniform draw, right-sided binary search — cached
                    # here so each dispatch is a single random() call
                    # drawing the very same value choice() would.
                    cdf = probs.cumsum()
                    cdf /= cdf[-1]
                    consts = self._branch_consts[id(stmt)] = (cdf, cond.end_address)
                case_idx = int(consts[0].searchsorted(rng.random(), side="right"))
                emit(
                    K_BRANCH,
                    consts[1],
                    consts[1] + _FORWARD_BRANCH_SPAN * (case_idx + 1),
                    1 if case_idx != 0 else 0,
                )
                self._record_body(stmt.cases[case_idx], params, builder)
            else:  # pragma: no cover - exhaustive over Stmt subclasses
                raise TypeError(f"unknown statement {type(stmt).__name__}")


def run_program(
    program: Program,
    program_input: ProgramInput,
    max_instructions: Optional[int] = None,
) -> Iterator[object]:
    """Convenience wrapper: iterate a fresh Machine's events."""
    return Machine(program, program_input, max_instructions=max_instructions).run()
