"""Execution engine: interprets IR programs into dynamic event streams.

This is the substitute for running an instrumented binary.  The
:class:`~repro.engine.machine.Machine` walks a program's statement tree
for a given input and yields the events an ATOM-instrumented run would
observe: basic-block executions (with addresses and sizes), conditional
branches, calls, and returns.  :class:`~repro.engine.tracing.Trace`
records a run compactly so multiple analyses can replay it, and
:class:`~repro.engine.memory.MemorySystem` attaches deterministic data
address streams to block executions for the cache experiments.
"""

from repro.engine.events import BlockEvent, BranchEvent, CallEvent, ReturnEvent
from repro.engine.machine import Machine, run_program
from repro.engine.memory import MemorySystem
from repro.engine.tracing import Trace, record_trace
from repro.engine.rng import derive_seed

__all__ = [
    "BlockEvent",
    "BranchEvent",
    "CallEvent",
    "ReturnEvent",
    "Machine",
    "run_program",
    "MemorySystem",
    "Trace",
    "record_trace",
    "derive_seed",
]
