"""Compact recorded traces of program runs.

A :class:`Trace` stores an event stream in columnar numpy arrays so the
several analyses that need the same run (call-loop profiling, interval
splitting, BBV collection, cache simulation) can each replay it cheaply
instead of re-executing the program.

Packed encoding (kind, a, b, c):

========  ==========  ===========  ==========
kind      a           b            c
========  ==========  ===========  ==========
K_BLOCK   block_id    address      size
K_BRANCH  address     target       taken(0/1)
K_CALL    site_addr   callee_id    0
K_RETURN  proc_id     0            0
========  ==========  ===========  ==========
"""

from __future__ import annotations

from typing import Iterable, Iterator, Tuple

import numpy as np

from repro.engine.events import (
    K_BLOCK,
    K_BRANCH,
    K_CALL,
    K_RETURN,
    BlockEvent,
    BranchEvent,
    CallEvent,
    ReturnEvent,
)


class Trace:
    """A recorded run: columnar event storage plus summary statistics."""

    def __init__(self, kinds: np.ndarray, a: np.ndarray, b: np.ndarray, c: np.ndarray):
        if not (len(kinds) == len(a) == len(b) == len(c)):
            raise ValueError("column length mismatch")
        self.kinds = kinds
        self.a = a
        self.b = b
        self.c = c

    # -- construction --------------------------------------------------------

    @classmethod
    def from_events(cls, events: Iterable[object]) -> "Trace":
        kinds, a, b, c = [], [], [], []
        for ev in events:
            t = type(ev)
            if t is BlockEvent:
                kinds.append(K_BLOCK)
                a.append(ev.block_id)
                b.append(ev.address)
                c.append(ev.size)
            elif t is BranchEvent:
                kinds.append(K_BRANCH)
                a.append(ev.address)
                b.append(ev.target)
                c.append(1 if ev.taken else 0)
            elif t is CallEvent:
                kinds.append(K_CALL)
                a.append(ev.site_address)
                b.append(ev.callee_id)
                c.append(0)
            elif t is ReturnEvent:
                kinds.append(K_RETURN)
                a.append(ev.proc_id)
                b.append(0)
                c.append(0)
            else:
                raise TypeError(f"unknown event {t.__name__}")
        return cls(
            np.asarray(kinds, dtype=np.int8),
            np.asarray(a, dtype=np.int64),
            np.asarray(b, dtype=np.int64),
            np.asarray(c, dtype=np.int64),
        )

    # -- queries -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self.kinds)

    @property
    def total_instructions(self) -> int:
        """Total dynamic instructions (sum of block sizes)."""
        mask = self.kinds == K_BLOCK
        return int(self.c[mask].sum())

    @property
    def num_block_events(self) -> int:
        return int((self.kinds == K_BLOCK).sum())

    def block_ids(self) -> np.ndarray:
        """Executed block ids in order."""
        mask = self.kinds == K_BLOCK
        return self.a[mask]

    def block_sizes(self) -> np.ndarray:
        """Sizes of the executed blocks, aligned with :meth:`block_ids`."""
        mask = self.kinds == K_BLOCK
        return self.c[mask]

    def replay(self) -> Iterator[object]:
        """Yield the recorded events as event objects."""
        kinds, a, b, c = self.kinds, self.a, self.b, self.c
        for i in range(len(kinds)):
            k = kinds[i]
            if k == K_BLOCK:
                yield BlockEvent(int(a[i]), int(b[i]), int(c[i]))
            elif k == K_BRANCH:
                yield BranchEvent(int(a[i]), int(b[i]), bool(c[i]))
            elif k == K_CALL:
                yield CallEvent(int(a[i]), int(b[i]))
            else:
                yield ReturnEvent(int(a[i]))

    def iter_packed(self) -> Iterator[Tuple[int, int, int, int]]:
        """Yield packed (kind, a, b, c) tuples — the fast replay path."""
        return zip(
            self.kinds.tolist(), self.a.tolist(), self.b.tolist(), self.c.tolist()
        )

    # -- persistence -------------------------------------------------------

    def save(self, path) -> None:
        """Persist the trace to a compressed ``.npz`` file.

        Profiling is the expensive step of the pipeline; saved traces let
        analyses run offline (the profile-once / analyze-many workflow of
        the paper's ATOM tooling).
        """
        np.savez_compressed(
            path, kinds=self.kinds, a=self.a, b=self.b, c=self.c
        )

    @classmethod
    def load(cls, path) -> "Trace":
        """Load a trace saved with :meth:`save`."""
        with np.load(path) as data:
            return cls(data["kinds"], data["a"], data["b"], data["c"])


def record_trace(events: Iterable[object]) -> Trace:
    """Record an event stream into a :class:`Trace`."""
    from repro.telemetry import get_telemetry

    tm = get_telemetry()
    if not tm.enabled:
        return Trace.from_events(events)
    with tm.span("engine.record_trace"):
        trace = Trace.from_events(events)
        tm.counter("engine.trace.events", len(trace))
        tm.counter("engine.trace.instructions", trace.total_instructions)
    return trace
