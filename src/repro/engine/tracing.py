"""Compact recorded traces of program runs.

A :class:`Trace` stores an event stream in columnar numpy arrays so the
several analyses that need the same run (call-loop profiling, interval
splitting, BBV collection, cache simulation) can each replay it cheaply
instead of re-executing the program.

Packed encoding (kind, a, b, c):

========  ==========  ===========  ==========
kind      a           b            c
========  ==========  ===========  ==========
K_BLOCK   block_id    address      size
K_BRANCH  address     target       taken(0/1)
K_CALL    site_addr   callee_id    0
K_RETURN  proc_id     0            0
========  ==========  ===========  ==========

Two recording paths produce the same columnar form:

* the **object path** — :meth:`Trace.from_events` consumes the event
  objects yielded by :meth:`Machine.run`; retained as the oracle the
  fast path is differentially verified against (``repro verify``'s
  ``trace-pipeline`` check);
* the **fast path** — :class:`TraceBuilder` accepts packed rows (and
  whole pre-tiled row blocks) directly into preallocated numpy chunks,
  so recording allocates no per-event objects at all.  This is what
  :meth:`Machine.record` writes into.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Tuple

import numpy as np

from repro.engine.events import (
    K_BLOCK,
    K_BRANCH,
    K_CALL,
    K_RETURN,
    BlockEvent,
    BranchEvent,
    CallEvent,
    ReturnEvent,
)
from repro.telemetry import get_telemetry

#: first chunk size of a TraceBuilder; chunks grow geometrically up to
#: MAX_CHUNK_ROWS so tiny traces stay tiny and long runs amortize growth
DEFAULT_CHUNK_ROWS = 4096
MAX_CHUNK_ROWS = 1 << 20


class TraceBuilder:
    """Zero-object event recorder: packed rows into preallocated chunks.

    Rows are written column-wise into numpy chunks (``int8`` kind plus
    three ``int64`` operand columns).  When a chunk fills, it is sealed
    and a new one twice the size (capped) is allocated — classic
    geometric growth, so recording is amortized O(1) per row with no
    Python object per event.  :meth:`append_rows` splices whole
    pre-built column blocks (e.g. a tiled loop body) in between scalar
    rows without copying them through the chunk.

    :meth:`build` concatenates the sealed chunks into one
    :class:`Trace` — the "record_trace is a chunk concatenation" step.
    """

    __slots__ = (
        "_segments", "_kinds", "_a", "_b", "_c", "_pos", "_start", "_cap",
        "_next", "rows",
    )

    def __init__(self, chunk_rows: int = DEFAULT_CHUNK_ROWS):
        if chunk_rows <= 0:
            raise ValueError("chunk_rows must be positive")
        self._segments: List[Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]] = []
        self.rows = 0
        self._pos = 0
        self._start = 0  # first row of the chunk not yet sealed into a segment
        self._cap = 0  # chunks allocate lazily on the first emit
        self._next = chunk_rows

    def _alloc(self) -> None:
        n = self._next
        self._kinds = np.empty(n, dtype=np.int8)
        self._a = np.empty(n, dtype=np.int64)
        self._b = np.empty(n, dtype=np.int64)
        self._c = np.empty(n, dtype=np.int64)
        self._pos = 0
        self._start = 0
        self._cap = n
        self._next = min(n * 2, MAX_CHUNK_ROWS)

    def _seal(self) -> None:
        """Move the chunk's unsealed written range to the segment list.

        Sealed segments are *views* of the chunk, so the chunk's
        remaining capacity keeps being written in place — interleaving
        scalar rows with spliced blocks never reallocates.
        """
        if self._pos > self._start:
            self._segments.append(
                (
                    self._kinds[self._start : self._pos],
                    self._a[self._start : self._pos],
                    self._b[self._start : self._pos],
                    self._c[self._start : self._pos],
                )
            )
            self._start = self._pos

    def emit(self, kind: int, a: int, b: int, c: int) -> None:
        """Append one packed row."""
        i = self._pos
        if i >= self._cap:
            self._seal()
            self._alloc()
            i = 0
        self._kinds[i] = kind
        self._a[i] = a
        self._b[i] = b
        self._c[i] = c
        self._pos = i + 1
        self.rows += 1

    def append_rows(
        self, kinds: np.ndarray, a: np.ndarray, b: np.ndarray, c: np.ndarray
    ) -> None:
        """Splice a whole pre-built column block (adopted, not copied)."""
        n = len(kinds)
        if n == 0:
            return
        self._seal()
        self._segments.append((kinds, a, b, c))
        self.rows += n

    @property
    def num_chunks(self) -> int:
        return len(self._segments) + (1 if self._pos > self._start else 0)

    def build(self) -> "Trace":
        """Concatenate all chunks into a :class:`Trace`."""
        self._seal()
        segments = self._segments
        if not segments:
            return Trace(
                np.empty(0, dtype=np.int8),
                np.empty(0, dtype=np.int64),
                np.empty(0, dtype=np.int64),
                np.empty(0, dtype=np.int64),
            )
        if len(segments) == 1:
            return Trace(*segments[0])
        return Trace(
            np.concatenate([s[0] for s in segments]),
            np.concatenate([s[1] for s in segments]),
            np.concatenate([s[2] for s in segments]),
            np.concatenate([s[3] for s in segments]),
        )


class Trace:
    """A recorded run: columnar event storage plus summary statistics."""

    def __init__(self, kinds: np.ndarray, a: np.ndarray, b: np.ndarray, c: np.ndarray):
        if not (len(kinds) == len(a) == len(b) == len(c)):
            raise ValueError("column length mismatch")
        self.kinds = kinds
        self.a = a
        self.b = b
        self.c = c

    # -- construction --------------------------------------------------------

    @classmethod
    def from_events(cls, events: Iterable[object]) -> "Trace":
        kinds, a, b, c = [], [], [], []
        for ev in events:
            t = type(ev)
            if t is BlockEvent:
                kinds.append(K_BLOCK)
                a.append(ev.block_id)
                b.append(ev.address)
                c.append(ev.size)
            elif t is BranchEvent:
                kinds.append(K_BRANCH)
                a.append(ev.address)
                b.append(ev.target)
                c.append(1 if ev.taken else 0)
            elif t is CallEvent:
                kinds.append(K_CALL)
                a.append(ev.site_address)
                b.append(ev.callee_id)
                c.append(0)
            elif t is ReturnEvent:
                kinds.append(K_RETURN)
                a.append(ev.proc_id)
                b.append(0)
                c.append(0)
            else:
                raise TypeError(f"unknown event {t.__name__}")
        return cls(
            np.asarray(kinds, dtype=np.int8),
            np.asarray(a, dtype=np.int64),
            np.asarray(b, dtype=np.int64),
            np.asarray(c, dtype=np.int64),
        )

    # -- queries -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self.kinds)

    @property
    def total_instructions(self) -> int:
        """Total dynamic instructions (sum of block sizes)."""
        mask = self.kinds == K_BLOCK
        return int(self.c[mask].sum())

    @property
    def num_block_events(self) -> int:
        return int((self.kinds == K_BLOCK).sum())

    def block_ids(self) -> np.ndarray:
        """Executed block ids in order."""
        mask = self.kinds == K_BLOCK
        return self.a[mask]

    def block_sizes(self) -> np.ndarray:
        """Sizes of the executed blocks, aligned with :meth:`block_ids`."""
        mask = self.kinds == K_BLOCK
        return self.c[mask]

    def replay(self) -> Iterator[object]:
        """Yield the recorded events as event objects."""
        kinds, a, b, c = self.kinds, self.a, self.b, self.c
        for i in range(len(kinds)):
            k = kinds[i]
            if k == K_BLOCK:
                yield BlockEvent(int(a[i]), int(b[i]), int(c[i]))
            elif k == K_BRANCH:
                yield BranchEvent(int(a[i]), int(b[i]), bool(c[i]))
            elif k == K_CALL:
                yield CallEvent(int(a[i]), int(b[i]))
            else:
                yield ReturnEvent(int(a[i]))

    def iter_packed(self) -> Iterator[Tuple[int, int, int, int]]:
        """Yield packed (kind, a, b, c) tuples — the fast replay path."""
        return zip(
            self.kinds.tolist(), self.a.tolist(), self.b.tolist(), self.c.tolist()
        )

    def iter_chunks(
        self, chunk_rows: int = DEFAULT_CHUNK_ROWS
    ) -> Iterator[Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]]:
        """Yield ``(kinds, a, b, c)`` column views of at most
        *chunk_rows* rows each — the incremental feed used by the
        streaming profiler, so recording and streaming share one
        packed-row chunk representation (the views alias the trace's
        columns; no copies)."""
        if chunk_rows < 1:
            raise ValueError(f"chunk_rows must be >= 1, got {chunk_rows}")
        n = len(self.kinds)
        for start in range(0, n, chunk_rows):
            stop = min(start + chunk_rows, n)
            yield (
                self.kinds[start:stop],
                self.a[start:stop],
                self.b[start:stop],
                self.c[start:stop],
            )

    # -- persistence -------------------------------------------------------

    def save(self, path) -> None:
        """Persist the trace to a compressed ``.npz`` file.

        Profiling is the expensive step of the pipeline; saved traces let
        analyses run offline (the profile-once / analyze-many workflow of
        the paper's ATOM tooling).
        """
        np.savez_compressed(
            path, kinds=self.kinds, a=self.a, b=self.b, c=self.c
        )

    @classmethod
    def load(cls, path) -> "Trace":
        """Load a trace saved with :meth:`save`."""
        with np.load(path) as data:
            return cls(data["kinds"], data["a"], data["b"], data["c"])


def record_trace(source) -> Trace:
    """Record a run into a :class:`Trace`.

    *source* is either an event iterable (the object path, e.g.
    ``Machine(...).run()`` or a hand-built event list) or a
    :class:`~repro.engine.machine.Machine` instance — the latter takes
    the zero-object fast path (:meth:`Machine.record`), which writes
    packed rows straight into columnar chunks and tiles pure-block loop
    bodies in bulk.  Both paths produce bit-identical traces (enforced
    by the ``trace-pipeline`` verify check).
    """
    from repro.engine.machine import Machine

    tm = get_telemetry()
    fast = isinstance(source, Machine)
    if not tm.enabled:
        return source.record() if fast else Trace.from_events(source)
    with tm.span("engine.record_trace", path="fast" if fast else "objects"):
        if fast:
            builder = TraceBuilder()
            trace = source.record(builder)
            tm.counter("engine.trace.chunks", builder.num_chunks)
        else:
            trace = Trace.from_events(source)
        tm.counter("engine.trace.events", len(trace))
        tm.counter("engine.trace.instructions", trace.total_instructions)
    return trace
