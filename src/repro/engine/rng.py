"""Deterministic random-stream derivation.

Every stochastic choice in the system (trip counts, branch outcomes,
memory address pools) is driven by a numpy Generator seeded from the
input's base seed plus a purpose label, so that independently consumed
streams never interfere and the whole pipeline is reproducible from
(program, input) alone.
"""

from __future__ import annotations

import zlib

import numpy as np


def derive_seed(base_seed: int, *labels: object) -> int:
    """A stable 63-bit seed derived from *base_seed* and the labels."""
    text = "|".join(str(x) for x in labels)
    h = zlib.crc32(text.encode())
    mixed = (base_seed * 0x9E3779B1 + h) & 0x7FFFFFFFFFFFFFFF
    return mixed


def make_rng(base_seed: int, *labels: object) -> np.random.Generator:
    """A numpy Generator on the derived sub-stream."""
    return np.random.default_rng(derive_seed(base_seed, *labels))
