"""Weighted k-means with k-means++ seeding.

SimPoint 2.0 clusters equal-weight intervals; SimPoint 3.0 VLI weights
each interval by the fraction of execution it represents so that a long
interval influences the centroids proportionally.  Both reduce to this
one implementation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np


@dataclass
class KMeansResult:
    """A clustering: assignments, centroids, and its within-cluster SSE."""

    assignments: np.ndarray  # (n,) int
    centroids: np.ndarray  # (k, d)
    sse: float  # weighted sum of squared distances
    iterations: int

    @property
    def k(self) -> int:
        return len(self.centroids)


def pairwise_sq_dists(points: np.ndarray, centroids: np.ndarray) -> np.ndarray:
    """Squared Euclidean distances, shape (n, k).

    One subtract-square-sum per centroid: bit-identical to the naive
    broadcast ``((p[:, None, :] - c[None, :, :]) ** 2).sum(axis=2)``
    (same elementwise ops, same per-row pairwise summation) while
    allocating O(nk) instead of an O(nkd) temporary.  The matmul
    expansion ``|x|^2 - 2x.c + |c|^2`` is *not* bit-identical and would
    perturb assignments on ties, so it is deliberately not used.
    """
    n, k = len(points), len(centroids)
    out = np.empty((n, k), dtype=np.float64)
    for j in range(k):
        diff = points - centroids[j]
        out[:, j] = (diff * diff).sum(axis=1)
    return out


def _plusplus_init(
    points: np.ndarray, weights: np.ndarray, k: int, rng: np.random.Generator
) -> np.ndarray:
    """k-means++ seeding (weighted)."""
    n = len(points)
    centroids = np.empty((k, points.shape[1]))
    probs = weights / weights.sum()
    first = rng.choice(n, p=probs)
    centroids[0] = points[first]
    closest = ((points - centroids[0]) ** 2).sum(axis=1)
    for j in range(1, k):
        scores = closest * weights
        total = scores.sum()
        if total <= 0:
            # all points coincide with chosen centroids; duplicate one
            centroids[j:] = centroids[0]
            break
        idx = rng.choice(n, p=scores / total)
        centroids[j] = points[idx]
        dist = ((points - centroids[j]) ** 2).sum(axis=1)
        np.minimum(closest, dist, out=closest)
    return centroids


def kmeans(
    points: np.ndarray,
    k: int,
    weights: Optional[np.ndarray] = None,
    seed: int = 0,
    max_iter: int = 100,
) -> KMeansResult:
    """Lloyd's algorithm with k-means++ init; deterministic per seed."""
    points = np.asarray(points, dtype=np.float64)
    n = len(points)
    if n == 0:
        raise ValueError("cannot cluster zero points")
    if k <= 0:
        raise ValueError("k must be positive")
    k = min(k, n)
    if weights is None:
        weights = np.ones(n)
    weights = np.asarray(weights, dtype=np.float64)
    if len(weights) != n:
        raise ValueError("weights length mismatch")
    if weights.sum() <= 0:
        raise ValueError("total weight must be positive")

    rng = np.random.default_rng(seed)
    centroids = _plusplus_init(points, weights, k, rng)
    assignments = np.full(n, -1, dtype=np.int64)
    iterations = 0
    for iterations in range(1, max_iter + 1):
        d2 = pairwise_sq_dists(points, centroids)
        new_assignments = d2.argmin(axis=1)
        if np.array_equal(new_assignments, assignments):
            break
        assignments = new_assignments
        for j in range(k):
            mask = assignments == j
            total = weights[mask].sum()
            if total > 0:
                centroids[j] = (points[mask] * weights[mask, None]).sum(0) / total
            else:
                # empty cluster: re-seed at the worst-served point
                worst = (d2[np.arange(n), assignments] * weights).argmax()
                centroids[j] = points[worst]
    d2 = pairwise_sq_dists(points, centroids)
    assignments = d2.argmin(axis=1)
    sse = float((d2[np.arange(n), assignments] * weights).sum())
    return KMeansResult(assignments, centroids, sse, iterations)


def kmeans_best_of(
    points: np.ndarray,
    k: int,
    weights: Optional[np.ndarray] = None,
    seeds: int = 5,
    base_seed: int = 0,
    max_iter: int = 100,
) -> KMeansResult:
    """The lowest-SSE clustering over several random initializations."""
    best: Optional[KMeansResult] = None
    for s in range(seeds):
        result = kmeans(points, k, weights, seed=base_seed + s, max_iter=max_iter)
        if best is None or result.sse < best.sse:
            best = result
    assert best is not None
    return best
