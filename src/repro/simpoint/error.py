"""Simulation-point accuracy: estimated vs true CPI, coverage filters.

Figures 11 and 12 report, per configuration, the number of simulated
instructions and the relative CPI error of estimating whole-program CPI
from the chosen simulation points.  The common "top-N clusters covering
95%/99% of execution" optimization trades simulated instructions for
accuracy; :func:`filter_by_coverage` reproduces it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.intervals.base import IntervalSet
from repro.simpoint.simpoint import SimPointResult


def true_weighted_metric(interval_set: IntervalSet, values: np.ndarray) -> float:
    """Whole-run value of a per-instruction metric (e.g. CPI): the
    instruction-weighted mean over intervals."""
    lengths = interval_set.lengths.astype(np.float64)
    total = lengths.sum()
    if total == 0:
        return 0.0
    return float((values * lengths).sum() / total)


@dataclass
class CoverageResult:
    """A (possibly filtered) set of simulation points."""

    sim_point_indices: np.ndarray
    weights: np.ndarray  #: renormalized cluster weights
    coverage: float  #: fraction of execution the kept clusters represent
    simulated_instructions: int


def filter_by_coverage(
    result: SimPointResult,
    interval_set: IntervalSet,
    coverage: float = 1.0,
) -> CoverageResult:
    """Keep the heaviest clusters until *coverage* of execution is reached.

    ``coverage=1.0`` keeps every cluster (the VLI 100% configuration).
    """
    if not 0.0 < coverage <= 1.0:
        raise ValueError("coverage must be in (0, 1]")
    order = np.argsort(result.cluster_weights)[::-1]
    kept = []
    covered = 0.0
    for j in order:
        kept.append(j)
        covered += result.cluster_weights[j]
        if covered >= coverage - 1e-12:
            break
    kept = np.array(kept, dtype=np.int64)
    indices = result.sim_point_indices[kept]
    weights = result.cluster_weights[kept]
    weights = weights / weights.sum()
    simulated = int(interval_set.lengths[indices].sum())
    return CoverageResult(
        sim_point_indices=indices,
        weights=weights,
        coverage=float(covered),
        simulated_instructions=simulated,
    )


def estimate_metric(
    coverage_result: CoverageResult, values: np.ndarray
) -> float:
    """Weighted estimate of a metric from the chosen simulation points."""
    return float(
        (values[coverage_result.sim_point_indices] * coverage_result.weights).sum()
    )


def relative_error(estimated: float, true: float) -> float:
    """|estimated - true| / true (0 when true is 0)."""
    if true == 0:
        return 0.0
    return abs(estimated - true) / abs(true)
