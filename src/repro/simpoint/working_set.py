"""Working-set phase detection (Dhodapkar & Smith).

The related-work baseline of [6, 7]: "phase changes occur when the
working set changes."  Each fixed interval's *instruction working set* is
the set of basic blocks it executes; the relative working set distance

    delta(A, B) = |A xor B| / |A union B|

between consecutive intervals exceeds a threshold exactly at phase
changes.  Like the online BBV classifier this is causal and cheap in
hardware (working set signatures are bit vectors); unlike it, it only
*detects changes* — it does not assign recurring phase ids.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.intervals.base import IntervalSet


@dataclass(frozen=True)
class WorkingSetOptions:
    """``threshold`` is the relative working-set distance (in [0, 1])
    above which consecutive intervals belong to different phases."""

    threshold: float = 0.5

    def __post_init__(self) -> None:
        if not 0.0 < self.threshold <= 1.0:
            raise ValueError("threshold must be in (0, 1]")


@dataclass
class WorkingSetDetection:
    """Result: per-boundary distances and the detected change points."""

    distances: np.ndarray  #: (n-1,) delta between consecutive intervals
    change_points: np.ndarray  #: interval indices where a new phase begins


def relative_distance(a: np.ndarray, b: np.ndarray) -> float:
    """Relative working-set distance between two block-membership rows."""
    union = np.logical_or(a, b).sum()
    if union == 0:
        return 0.0
    sym_diff = np.logical_xor(a, b).sum()
    return float(sym_diff / union)


def detect_changes(
    bbvs: np.ndarray, options: WorkingSetOptions = WorkingSetOptions()
) -> WorkingSetDetection:
    """Detect working-set changes over an interval sequence's BBVs.

    The BBV matrix is reduced to boolean membership (the working set is
    *which* blocks ran, not how often).
    """
    members = np.asarray(bbvs) > 0
    n = len(members)
    if n < 2:
        return WorkingSetDetection(
            distances=np.empty(0), change_points=np.empty(0, dtype=np.int64)
        )
    union = np.logical_or(members[:-1], members[1:]).sum(axis=1)
    sym = np.logical_xor(members[:-1], members[1:]).sum(axis=1)
    distances = np.where(union > 0, sym / np.maximum(union, 1), 0.0)
    change_points = np.nonzero(distances > options.threshold)[0] + 1
    return WorkingSetDetection(
        distances=distances, change_points=change_points.astype(np.int64)
    )


def detect_on_intervals(
    interval_set: IntervalSet,
    options: WorkingSetOptions = WorkingSetOptions(),
) -> WorkingSetDetection:
    """Run the detector over an interval set's BBVs."""
    if interval_set.bbvs is None:
        raise ValueError("interval set has no BBVs; run collect_bbvs first")
    return detect_changes(interval_set.bbvs, options)


def boundary_agreement(
    detected_ts: Sequence[int],
    reference_ts: Sequence[int],
    tolerance: int,
) -> tuple:
    """(precision, recall, f1) of detected boundaries vs a reference set.

    A detected boundary matches if a reference boundary lies within
    *tolerance* instructions.
    """
    detected = np.sort(np.asarray(list(detected_ts), dtype=np.int64))
    reference = np.sort(np.asarray(list(reference_ts), dtype=np.int64))
    if len(detected) == 0 or len(reference) == 0:
        return 0.0, 0.0, 0.0

    def matched(points: np.ndarray, against: np.ndarray) -> int:
        pos = np.searchsorted(against, points)
        left = np.abs(points - against[np.clip(pos - 1, 0, len(against) - 1)])
        right = np.abs(against[np.clip(pos, 0, len(against) - 1)] - points)
        return int((np.minimum(left, right) <= tolerance).sum())

    precision = matched(detected, reference) / len(detected)
    recall = matched(reference, detected) / len(reference)
    if precision + recall == 0:
        return precision, recall, 0.0
    return precision, recall, 2 * precision * recall / (precision + recall)
