"""Bayesian Information Criterion model selection for k.

SimPoint scores each candidate clustering with the BIC of a spherical
Gaussian mixture (the Pelleg & Moore X-means formulation, extended with
interval weights) and picks the smallest k whose score reaches a set
fraction of the best score's range — favoring few phases unless more are
clearly justified.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

import numpy as np

from repro.simpoint.kmeans import KMeansResult


def bic_score(
    points: np.ndarray,
    result: KMeansResult,
    weights: Optional[np.ndarray] = None,
) -> float:
    """Weighted spherical-Gaussian BIC of a clustering (higher is better)."""
    n, d = points.shape
    if weights is None:
        weights = np.ones(n)
    # Rescale weights to an effective sample size of n: the Pelleg-Moore
    # formula assumes counts, and fractional totals distort its
    # -(r_j - k)/2 term.
    weights = np.asarray(weights, dtype=np.float64)
    scale = n / weights.sum()
    weights = weights * scale
    r = float(n)
    k = result.k
    # ML variance estimate (weighted, pooled over clusters), floored at a
    # small fraction of the data's total variance: a spherical-Gaussian
    # likelihood with variance -> 0 diverges and would always prefer more
    # clusters once they become pure.
    denom = max(r - k, 1e-9)
    variance = result.sse * scale / denom  # sse was computed pre-rescale
    data_scale = float(points.var(axis=0).sum())
    variance = max(variance, 1e-3 * data_scale, 1e-12)

    log_likelihood = 0.0
    for j in range(k):
        mask = result.assignments == j
        r_j = float(weights[mask].sum())
        if r_j <= 0:
            continue
        log_likelihood += (
            -r_j / 2.0 * math.log(2.0 * math.pi)
            - r_j * d / 2.0 * math.log(variance)
            - (r_j - k) / 2.0
            + r_j * math.log(r_j)
            - r_j * math.log(r)
        )
    num_params = k * (d + 1)
    return log_likelihood - num_params / 2.0 * math.log(r)


def choose_k(
    scores: Sequence[float], threshold: float = 0.9
) -> int:
    """Index (0-based) of the chosen clustering given per-k BIC scores.

    Picks the first (smallest-k) score that reaches ``threshold`` of the
    way from the worst to the best score — SimPoint's published rule.
    """
    if not scores:
        raise ValueError("no scores")
    lo, hi = min(scores), max(scores)
    if hi == lo:
        return 0
    cutoff = lo + threshold * (hi - lo)
    for i, s in enumerate(scores):
        if s >= cutoff:
            return i
    return int(np.argmax(scores))  # pragma: no cover - cutoff <= hi
