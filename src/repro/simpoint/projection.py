"""Random linear projection of basic block vectors.

SimPoint projects the (very high dimensional) BBV space down to ~15
dimensions before clustering; random projection approximately preserves
relative distances (Johnson-Lindenstrauss) at a fraction of the cost.
The same machinery with 3 dimensions generates the paper's Figure 5/6
scatter data.
"""

from __future__ import annotations

import numpy as np

from repro.intervals.bbv import normalize_bbvs


def random_projection_matrix(
    num_blocks: int, dims: int = 15, seed: int = 2006
) -> np.ndarray:
    """A (num_blocks, dims) matrix with entries uniform in [-1, 1]."""
    if dims <= 0 or num_blocks <= 0:
        raise ValueError("dimensions must be positive")
    rng = np.random.default_rng(seed)
    return rng.uniform(-1.0, 1.0, size=(num_blocks, dims))


def project_bbvs(
    bbvs: np.ndarray, dims: int = 15, seed: int = 2006, normalize: bool = True
) -> np.ndarray:
    """Project (n, num_blocks) BBVs to (n, dims).

    BBVs are row-normalized first (each interval compared by *where* it
    spends time, not how long it is) unless ``normalize=False``.
    """
    data = normalize_bbvs(bbvs) if normalize else bbvs
    matrix = random_projection_matrix(bbvs.shape[1], dims, seed)
    return data @ matrix
