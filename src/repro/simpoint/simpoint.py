"""The SimPoint pipeline: project, cluster over k, choose, pick points.

``run_simpoint`` works on any BBV matrix; ``run_simpoint_on_intervals``
is the convenience entry taking an :class:`IntervalSet` — with
``weighted=True`` it is the SimPoint 3.0 VLI algorithm (weights are each
interval's fraction of execution), with ``weighted=False`` it is the
classic SimPoint 2.0 on fixed-length intervals.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.intervals.base import IntervalSet
from repro.simpoint.bic import bic_score, choose_k
from repro.simpoint.kmeans import KMeansResult, kmeans_best_of
from repro.simpoint.projection import project_bbvs


@dataclass(frozen=True)
class SimPointOptions:
    """Knobs of the SimPoint pipeline (paper defaults in brackets)."""

    dims: int = 15  #: projected dimensionality [15]
    k_max: int = 10  #: maximum clusters considered [10/30/100 by interval size]
    bic_threshold: float = 0.9  #: fraction of BIC range required [0.9]
    seeds: int = 5  #: random k-means restarts per k
    seed: int = 2006  #: base RNG seed (projection + clustering)
    #: how to break near-ties when choosing each cluster's representative:
    #: "median" avoids the cold-start bias of always picking the earliest;
    #: "early" minimizes fast-forwarding before each simulation point (the
    #: "early simulation points" optimization of Perelman et al.), at the
    #: cost of picking warm-up-affected intervals on short runs
    pick: str = "median"

    def __post_init__(self) -> None:
        if self.k_max < 1:
            raise ValueError("k_max must be >= 1")
        if not 0.0 < self.bic_threshold <= 1.0:
            raise ValueError("bic_threshold must be in (0, 1]")
        if self.pick not in ("median", "early"):
            raise ValueError("pick must be 'median' or 'early'")


@dataclass
class SimPointResult:
    """A phase classification plus one simulation point per phase."""

    phase_ids: np.ndarray  #: (n,) cluster of each interval
    k: int
    sim_point_indices: np.ndarray  #: (k,) chosen interval per cluster
    cluster_weights: np.ndarray  #: (k,) fraction of execution per cluster
    bic_scores: List[float]
    projected: np.ndarray

    @property
    def num_phases(self) -> int:
        return self.k


def run_simpoint(
    bbvs: np.ndarray,
    weights: Optional[np.ndarray] = None,
    options: SimPointOptions = SimPointOptions(),
) -> SimPointResult:
    """Cluster BBVs into phases and pick simulation points.

    *weights* are per-interval execution fractions (VLI mode); None means
    equal weights (fixed-length mode).
    """
    n = bbvs.shape[0]
    if n == 0:
        raise ValueError("no intervals to cluster")
    if weights is None:
        weights = np.ones(n)
    weights = np.asarray(weights, dtype=np.float64)
    total = weights.sum()
    if total <= 0:
        raise ValueError("total weight must be positive")
    weights = weights / total

    projected = project_bbvs(bbvs, dims=options.dims, seed=options.seed)

    results: List[KMeansResult] = []
    scores: List[float] = []
    for k in range(1, min(options.k_max, n) + 1):
        result = kmeans_best_of(
            projected, k, weights, seeds=options.seeds, base_seed=options.seed + k
        )
        results.append(result)
        scores.append(bic_score(projected, result, weights))
    chosen = choose_k(scores, options.bic_threshold)
    best = results[chosen]

    # One simulation point per cluster: the interval closest to the centroid.
    k = best.k
    sim_points = np.zeros(k, dtype=np.int64)
    cluster_weights = np.zeros(k)
    for j in range(k):
        members = np.nonzero(best.assignments == j)[0]
        if len(members) == 0:
            sim_points[j] = 0
            continue
        d2 = ((projected[members] - best.centroids[j]) ** 2).sum(axis=1)
        # Near-ties (identical code signatures) are common; breaking them
        # toward the lowest index would systematically pick the earliest —
        # coldest — interval, so "median" takes the temporally middle
        # candidate; "early" deliberately takes the first to minimize
        # fast-forwarding.
        near = members[d2 <= d2.min() * (1.0 + 1e-9) + 1e-18]
        sim_points[j] = near[0] if options.pick == "early" else near[len(near) // 2]
        cluster_weights[j] = weights[members].sum()

    return SimPointResult(
        phase_ids=best.assignments,
        k=k,
        sim_point_indices=sim_points,
        cluster_weights=cluster_weights,
        bic_scores=scores,
        projected=projected,
    )


def run_simpoint_on_intervals(
    interval_set: IntervalSet,
    options: SimPointOptions = SimPointOptions(),
    weighted: bool = True,
) -> SimPointResult:
    """Run SimPoint on an interval set's BBVs.

    ``weighted=True`` (SimPoint 3.0 VLI) weights intervals by instruction
    count — required whenever intervals have different lengths.
    """
    if interval_set.bbvs is None:
        raise ValueError("interval set has no BBVs; run collect_bbvs first")
    weights = interval_set.lengths.astype(np.float64) if weighted else None
    return run_simpoint(interval_set.bbvs, weights, options)
