"""Online (hardware-style) BBV phase classification.

The paper's cache experiment uses "an ideal SimPoint-based approach"
and notes: "We find this approach to be a good approximation to the
hardware BBV phase classification approach in [26, 17] with perfect
next-phase prediction."  This module implements that hardware approach
(Sherwood et al.'s phase tracker) so the approximation can be checked:

* execution is divided into fixed intervals; each interval's (normalized)
  basic block vector is its signature;
* a table of phase signatures is kept; an interval whose Manhattan
  distance to the nearest known signature is below a threshold joins that
  phase (and nudges its signature, exponential moving average); otherwise
  it founds a new phase;
* unlike offline k-means, classification is causal — each interval is
  labeled using only the past.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.intervals.base import IntervalSet
from repro.intervals.bbv import normalize_bbvs


@dataclass(frozen=True)
class OnlineClassifierOptions:
    """Knobs of the hardware phase table.

    ``threshold`` is the Manhattan distance (on distribution-normalized
    BBVs, so in [0, 2]) below which an interval matches a known phase;
    ``max_phases`` models the finite hardware table (overflow falls back
    to the nearest signature regardless of distance);
    ``update_rate`` is the EMA weight of a new member on its phase
    signature.
    """

    threshold: float = 0.35
    max_phases: int = 32
    update_rate: float = 0.25

    def __post_init__(self) -> None:
        if not 0.0 < self.threshold <= 2.0:
            raise ValueError("threshold must be in (0, 2]")
        if self.max_phases < 1:
            raise ValueError("max_phases must be >= 1")
        if not 0.0 < self.update_rate <= 1.0:
            raise ValueError("update_rate must be in (0, 1]")


@dataclass
class OnlineClassification:
    """The causal phase labeling of an interval sequence."""

    phase_ids: np.ndarray
    signatures: np.ndarray  #: (num_phases, num_blocks) final signatures
    new_phase_events: int  #: how many intervals founded a phase
    table_overflows: int  #: intervals classified after the table filled

    @property
    def num_phases(self) -> int:
        return len(self.signatures)


def classify_online(
    bbvs: np.ndarray, options: OnlineClassifierOptions = OnlineClassifierOptions()
) -> OnlineClassification:
    """Causally classify interval BBVs into phases."""
    n = len(bbvs)
    normalized = normalize_bbvs(np.asarray(bbvs, dtype=np.float64))
    phase_ids = np.zeros(n, dtype=np.int64)
    signatures: List[np.ndarray] = []
    new_events = 0
    overflows = 0
    for i in range(n):
        vector = normalized[i]
        if signatures:
            table = np.vstack(signatures)
            distances = np.abs(table - vector).sum(axis=1)
            best = int(distances.argmin())
            best_distance = float(distances[best])
        else:
            best, best_distance = -1, np.inf
        if best_distance <= options.threshold:
            phase = best
        elif len(signatures) < options.max_phases:
            signatures.append(vector.copy())
            phase = len(signatures) - 1
            new_events += 1
        else:
            phase = best
            overflows += 1
        if phase == best and best >= 0 and best_distance <= options.threshold:
            # nudge the signature toward the new member
            signatures[phase] = (
                (1.0 - options.update_rate) * signatures[phase]
                + options.update_rate * vector
            )
        phase_ids[i] = phase
    return OnlineClassification(
        phase_ids=phase_ids,
        signatures=np.vstack(signatures) if signatures else np.empty((0, bbvs.shape[1])),
        new_phase_events=new_events,
        table_overflows=overflows,
    )


def classify_intervals_online(
    interval_set: IntervalSet,
    options: OnlineClassifierOptions = OnlineClassifierOptions(),
) -> IntervalSet:
    """An interval set re-labeled by the online hardware classifier."""
    if interval_set.bbvs is None:
        raise ValueError("interval set has no BBVs; run collect_bbvs first")
    result = classify_online(interval_set.bbvs, options)
    return interval_set.with_phase_ids(result.phase_ids)
