"""SimPoint: off-line phase classification by clustering basic block vectors.

Reimplementation of the published SimPoint algorithms the paper compares
against and builds on:

* **SimPoint 2.0** (fixed-length intervals): random-project the BBVs to a
  low dimension, run k-means for k = 1..k_max with multiple seeds, choose
  k by the BIC score, pick one representative interval (simulation point)
  per cluster.
* **SimPoint 3.0 VLI** (variable-length intervals): identical pipeline
  with every interval weighted by the fraction of execution it represents,
  which is what makes marker-produced VLIs usable (Section 6.2).
"""

from repro.simpoint.projection import project_bbvs, random_projection_matrix
from repro.simpoint.kmeans import KMeansResult, kmeans, kmeans_best_of
from repro.simpoint.bic import bic_score, choose_k
from repro.simpoint.simpoint import (
    SimPointOptions,
    SimPointResult,
    run_simpoint,
    run_simpoint_on_intervals,
)
from repro.simpoint.error import (
    CoverageResult,
    estimate_metric,
    filter_by_coverage,
    true_weighted_metric,
)
from repro.simpoint.online import (
    OnlineClassification,
    OnlineClassifierOptions,
    classify_intervals_online,
    classify_online,
)
from repro.simpoint.xbin import (
    LocatedPoint,
    SimPointSpec,
    locate_points,
    specs_from_selection,
    validate_transfer,
)

__all__ = [
    "project_bbvs",
    "random_projection_matrix",
    "KMeansResult",
    "kmeans",
    "kmeans_best_of",
    "bic_score",
    "choose_k",
    "SimPointOptions",
    "SimPointResult",
    "run_simpoint",
    "run_simpoint_on_intervals",
    "CoverageResult",
    "estimate_metric",
    "filter_by_coverage",
    "true_weighted_metric",
    "OnlineClassification",
    "OnlineClassifierOptions",
    "classify_intervals_online",
    "classify_online",
    "LocatedPoint",
    "SimPointSpec",
    "locate_points",
    "specs_from_selection",
    "validate_transfer",
]
