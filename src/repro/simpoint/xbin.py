"""Cross-binary simulation points (the paper's Section 6.2.1 direction).

The paper verifies that marker traces match across compilations and
closes with: "Presenting the details for this approach and flushing out
the algorithm is our current and future research ... which we call
cross-binary simulation points."  This module flushes that algorithm
out:

1. simulation points chosen on one binary (via VLI SimPoint) are
   re-expressed **binary-independently** as *firing-index ranges*: "the
   execution region between the F1-th and F2-th marker firings";
2. on any other compilation of the same source, the same marker set is
   mapped through source anchors and its firing trace locates each
   simulation point's instruction range in *that* binary;
3. validation checks the firing sequences actually match before trusting
   the transfer.

The instruction counts differ between binaries (an -O0 build executes
more instructions for the same source region) — the *source-level
execution region* is what transfers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.callloop.crossbinary import MarkerFiring, traces_identical
from repro.intervals.base import IntervalSet
from repro.simpoint.error import CoverageResult


@dataclass(frozen=True)
class SimPointSpec:
    """One simulation point, expressed independently of any binary.

    ``start_firing`` / ``end_firing`` are indices into the program's
    marker firing sequence; ``None`` means program start / program end.
    The region is [start, end) in execution order.
    """

    point_id: int
    phase_id: int
    weight: float
    start_firing: Optional[int]
    end_firing: Optional[int]


@dataclass(frozen=True)
class LocatedPoint:
    """A simulation point resolved to one binary's instruction counts."""

    point_id: int
    weight: float
    start_instruction: int
    end_instruction: int

    @property
    def length(self) -> int:
        return self.end_instruction - self.start_instruction


def _firing_index_before(firings: Sequence[MarkerFiring], t: int) -> int:
    """Number of firings strictly before instruction count *t*."""
    ts = [f.t for f in firings]
    return int(np.searchsorted(ts, t, side="left"))


def specs_from_selection(
    intervals: IntervalSet,
    firings: Sequence[MarkerFiring],
    coverage: CoverageResult,
) -> List[SimPointSpec]:
    """Express chosen simulation points as firing-index ranges.

    *intervals* is the VLI partition the points were chosen from;
    *firings* is the same run's marker trace; *coverage* holds the chosen
    interval indices and weights.
    """
    specs: List[SimPointSpec] = []
    n = len(intervals)
    for point_id, (idx, weight) in enumerate(
        zip(coverage.sim_point_indices, coverage.weights)
    ):
        start_t = int(intervals.start_ts[idx])
        end_is_last = idx == n - 1
        start_firing = (
            None if start_t == 0 else _firing_index_before(firings, start_t)
        )
        if end_is_last:
            end_firing = None
        else:
            next_start = int(intervals.start_ts[idx + 1])
            end_firing = _firing_index_before(firings, next_start)
        specs.append(
            SimPointSpec(
                point_id=point_id,
                phase_id=int(intervals.phase_ids[idx]),
                weight=float(weight),
                start_firing=start_firing,
                end_firing=end_firing,
            )
        )
    return specs


def locate_points(
    specs: Sequence[SimPointSpec],
    firings: Sequence[MarkerFiring],
    total_instructions: int,
) -> List[LocatedPoint]:
    """Resolve firing-index ranges against one binary's marker trace."""
    located: List[LocatedPoint] = []
    for spec in specs:
        if spec.start_firing is None:
            start = 0
        else:
            if spec.start_firing >= len(firings):
                raise ValueError(
                    f"point {spec.point_id}: start firing "
                    f"{spec.start_firing} beyond trace ({len(firings)})"
                )
            start = firings[spec.start_firing].t
        if spec.end_firing is None:
            end = total_instructions
        else:
            if spec.end_firing >= len(firings):
                raise ValueError(
                    f"point {spec.point_id}: end firing "
                    f"{spec.end_firing} beyond trace ({len(firings)})"
                )
            end = firings[spec.end_firing].t
        if end < start:
            raise ValueError(f"point {spec.point_id}: negative-length region")
        located.append(
            LocatedPoint(
                point_id=spec.point_id,
                weight=spec.weight,
                start_instruction=start,
                end_instruction=end,
            )
        )
    return located


def validate_transfer(
    base_firings: Sequence[MarkerFiring],
    target_firings: Sequence[MarkerFiring],
) -> bool:
    """The transfer precondition: identical marker id sequences."""
    return traces_identical(list(base_firings), list(target_firings))


def estimate_from_located(
    located: Sequence[LocatedPoint],
    intervals: IntervalSet,
    values: np.ndarray,
) -> float:
    """Weighted metric estimate by *re-measuring* the located regions on
    the target binary's own interval metrics.

    Each located region is mapped onto the target's partition: the value
    used for a point is the length-weighted mean of the target intervals
    it overlaps.  This is how a cross-binary simulation point would be
    "simulated in detail" on the new binary.
    """
    starts = intervals.start_ts
    ends = intervals.start_ts + intervals.lengths
    estimate = 0.0
    for point in located:
        lo = np.searchsorted(ends, point.start_instruction, side="right")
        hi = np.searchsorted(starts, point.end_instruction, side="left")
        hi = max(hi, lo + 1)
        overlap_lo = np.maximum(starts[lo:hi], point.start_instruction)
        overlap_hi = np.minimum(ends[lo:hi], point.end_instruction)
        weights = np.maximum(0, overlap_hi - overlap_lo).astype(np.float64)
        total = weights.sum()
        if total <= 0:
            continue
        estimate += point.weight * float(
            (values[lo:hi] * weights).sum() / total
        )
    return estimate
