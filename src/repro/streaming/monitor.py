"""Online phase detection with bounded memory and rolling re-selection.

This is ROADMAP item 1 made concrete: the paper selects markers offline
from a complete trace, but its killer application is *runtime*
reconfiguration (Section 5.3), which means phase detection has to run
against a live stream — bounded memory, O(1) amortized per-event cost,
and markers that adapt when behavior drifts.

:class:`StreamingPhaseMonitor` composes the pieces:

* an :class:`~repro.streaming.walker.IncrementalWalker` consumes packed
  rows chunk by chunk (the same columns ``TraceBuilder`` records);
* every closed edge span folds into a :class:`~repro.streaming.window.
  StreamingWindow` slot of exact integer moments; slots seal every
  ``slot_instructions`` instructions and only the newest
  ``window_slots`` are retained;
* the current :class:`~repro.callloop.markers.MarkerSet` is applied
  online exactly as the batch :class:`~repro.runtime.monitor.
  PhaseMonitor` applies it (same tracker, same hysteresis, same dwell
  accounting);
* when ``drift_threshold`` is set, each slot seal runs the
  :class:`~repro.streaming.drift.DriftDetector` over the windowed CoV
  of the marker edges and, on drift (or when no markers exist yet —
  cold start), re-selects markers from the windowed graph via the
  existing vectorized selection engine and hot-swaps the tracker.

**Batch-equivalence guarantee:** with an unbounded window
(``window_slots=0``) and drift disabled (``drift_threshold=None``),
the windowed graph after :meth:`finish` — and therefore
:meth:`select_now` — is bit-identical to the batch
``profile_trace`` + ``select_markers`` path, and the phase-change
sequence matches the batch monitor's exactly.  The ``streaming`` verify
check pins this on every fuzz iteration and across the golden corpus.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.callloop.graph import CallLoopGraph, NodeTable
from repro.callloop.markers import MarkerSet, MarkerTracker
from repro.callloop.selection import SelectionParams, SelectionResult, select_markers
from repro.callloop.walker import ContextHandler
from repro.engine.tracing import DEFAULT_CHUNK_ROWS, Trace
from repro.ir.program import Program, SourceLoc
from repro.runtime.monitor import PhaseChange
from repro.streaming.drift import DriftDetector
from repro.streaming.walker import IncrementalWalker
from repro.streaming.window import StreamingWindow
from repro.telemetry import get_telemetry


@dataclass(frozen=True)
class StreamingConfig:
    """Knobs for one streaming session.

    ``drift_threshold=None`` disables rolling re-selection entirely (the
    marker set given at construction is applied unchanged — the
    batch-equivalence configuration); a float enables it, both for CoV
    drift on the current marker edges and for cold-start pickup when the
    session begins with no markers.
    """

    #: instructions per window slot (seal granularity)
    slot_instructions: int = 100_000
    #: sealed slots retained; 0 = unbounded (keep everything)
    window_slots: int = 0
    #: absolute CoV delta that triggers re-selection; None = disabled
    drift_threshold: Optional[float] = None
    #: phase-change hysteresis, as in the batch monitor
    min_interval: int = 0
    #: observations a marker edge needs in-window before its CoV counts
    min_edge_count: int = 2
    #: selection parameters for (re-)selection from the windowed graph
    selection: SelectionParams = field(default_factory=SelectionParams)

    def __post_init__(self) -> None:
        if self.slot_instructions < 1:
            raise ValueError(
                f"slot_instructions must be >= 1, got {self.slot_instructions}"
            )
        if self.window_slots < 0:
            raise ValueError(
                f"window_slots must be >= 0, got {self.window_slots}"
            )
        if self.drift_threshold is not None and self.drift_threshold <= 0:
            raise ValueError(
                f"drift_threshold must be positive, got {self.drift_threshold}"
            )
        if self.min_interval < 0:
            raise ValueError(
                f"min_interval must be >= 0, got {self.min_interval}"
            )
        if self.min_edge_count < 1:
            raise ValueError(
                f"min_edge_count must be >= 1, got {self.min_edge_count}"
            )


@dataclass(frozen=True)
class Reselection:
    """One rolling re-selection event."""

    t: int  #: instruction count at the triggering slot seal
    slot: int  #: ordinal of the sealed slot that triggered it
    num_markers: int  #: markers in the new set
    drifted_edges: int  #: marker edges that drifted (0 = cold-start pickup)


class StreamingPhaseMonitor(ContextHandler):
    """Applies (and adapts) a marker set over a live packed-row stream.

    Parameters
    ----------
    program:
        The binary being streamed.
    marker_set:
        Initial markers; ``None`` starts cold (phase stays 0 until the
        first re-selection picks markers up — requires
        ``drift_threshold``).
    config:
        :class:`StreamingConfig`; defaults to an unbounded window with
        re-selection disabled.
    on_change:
        Called with each :class:`~repro.runtime.monitor.PhaseChange`;
        exceptions propagate.

    Feed with :meth:`feed_rows` (packed column chunks) or
    :meth:`feed_trace`; call :meth:`finish` when the stream ends.
    Memory is bounded by the window (``window_slots`` slot maps, each at
    most one entry per call-loop edge) plus the shadow stack; per-event
    cost is O(1) amortized — slot seals and re-selections are rare and
    touch only window-resident state.
    """

    def __init__(
        self,
        program: Program,
        marker_set: Optional[MarkerSet] = None,
        config: Optional[StreamingConfig] = None,
        on_change: Optional[Callable[[PhaseChange], None]] = None,
        table: Optional[NodeTable] = None,
    ):
        self.program = program
        self.config = config or StreamingConfig()
        self.table = table or NodeTable(program)
        if marker_set is None:
            marker_set = MarkerSet(
                program.name, program.variant, self.config.selection.ilower, None
            )
        self.marker_set = marker_set
        self.tracker = MarkerTracker(marker_set, self.table)
        self.on_change = on_change
        self.window = StreamingWindow(self.config.window_slots)
        self.current_phase = 0
        self.phase_start_t = 0
        self.changes: List[PhaseChange] = []
        self.time_in_phase: Dict[int, int] = {}
        #: (phase, dwell) per completed stay, as in the batch monitor
        self.dwells: List[Tuple[int, int]] = []
        self.reselections: List[Reselection] = []
        #: marker-edge drift observations (edges over threshold at a seal)
        self.drift_events = 0
        self.slots_sealed = 0
        self.events_fed = 0
        self._drift = (
            DriftDetector(self.config.drift_threshold)
            if self.config.drift_threshold is not None
            else None
        )
        self._next_slot_t = self.config.slot_instructions
        self._last_t = 0
        tm = get_telemetry()
        self._tm = tm if tm.enabled else None
        # last: construction fires the entry-edge opens into this handler
        self._walker = IncrementalWalker(program, self.table, handler=self)

    # -- ContextHandler -------------------------------------------------------

    def on_edge_open(
        self, src: int, dst: int, t: int, source: Optional[SourceLoc]
    ) -> None:
        marker = self.tracker.edge_opened(src, dst)
        if marker is None:
            return
        if marker.marker_id == self.current_phase:
            return
        if t - self.phase_start_t < self.config.min_interval:
            return
        change = PhaseChange(
            t=t,
            previous_phase=self.current_phase,
            new_phase=marker.marker_id,
            marker=marker,
            time_in_previous=t - self.phase_start_t,
        )
        self.time_in_phase[self.current_phase] = (
            self.time_in_phase.get(self.current_phase, 0) + change.time_in_previous
        )
        self.dwells.append((self.current_phase, change.time_in_previous))
        self.current_phase = marker.marker_id
        self.phase_start_t = t
        self.changes.append(change)
        if self.on_change is not None:
            self.on_change(change)

    def on_edge_close(
        self,
        src: int,
        dst: int,
        t_open: int,
        t_close: int,
        source: Optional[SourceLoc],
    ) -> None:
        self.window.observe(src, dst, t_close - t_open, source)

    def on_block(self, block_id: int, size: int, t: int) -> None:
        t_after = t + size
        self._last_t = t_after
        while t_after >= self._next_slot_t:
            self._next_slot_t += self.config.slot_instructions
            self._seal_slot(t_after)

    # -- windowing + re-selection ---------------------------------------------

    def _seal_slot(self, t: int) -> None:
        evicted = self.window.seal()
        self.slots_sealed += 1
        tm = self._tm
        if tm is not None:
            tm.counter("streaming.slots_sealed")
            if evicted:
                tm.counter("streaming.slots_evicted", evicted)
        if self._drift is None:
            return
        if not self.marker_set.markers:
            # cold start: keep trying until the window yields markers
            self._reselect(t, drifted=0)
            return
        covs = self._marker_covs()
        # marker edges joining the watch list (initial marker set, or
        # reaching min_edge_count late) baseline at first sighting
        self._drift.extend(covs)
        drifted = self._drift.check(covs)
        if not drifted:
            return
        self.drift_events += len(drifted)
        if tm is not None:
            tm.counter("streaming.drift_events", len(drifted))
            tm.instant(
                "streaming.drift",
                tid=tm.lane("streaming"),
                t=t,
                slot=self.slots_sealed,
                edges=len(drifted),
            )
        self._reselect(t, drifted=len(drifted))

    def _marker_pairs(self) -> List[Tuple[int, int]]:
        """The current marker edges as node-id pairs (tracker mapping)."""
        return list(self.tracker._by_pair.keys())

    def _marker_covs(self) -> Dict[Tuple[int, int], float]:
        """Windowed CoV per marker edge with enough observations."""
        moments = self.window.merged_moments(self._marker_pairs())
        return {
            pair: ms.to_running_stats().cov
            for pair, ms in moments.items()
            if ms.count >= self.config.min_edge_count
        }

    def _reselect(self, t: int, drifted: int) -> None:
        result = self.select_now()
        new_set = result.markers
        if not new_set.markers and not self.marker_set.markers:
            return  # still cold: nothing to pick up yet
        self.marker_set = new_set
        self.tracker = MarkerTracker(new_set, self.table)
        self._drift.rebase(self._marker_covs())
        event = Reselection(
            t=t,
            slot=self.slots_sealed,
            num_markers=len(new_set.markers),
            drifted_edges=drifted,
        )
        self.reselections.append(event)
        tm = self._tm
        if tm is not None:
            tm.counter("streaming.reselections")
            tm.instant(
                "streaming.reselection",
                tid=tm.lane("streaming"),
                t=t,
                slot=event.slot,
                markers=event.num_markers,
                drifted=drifted,
            )

    def window_graph(self) -> CallLoopGraph:
        """The call-loop graph of the window's merged moments.

        Slot maps merge in arrival order, so with an unbounded window
        this graph — edge order included — is bit-identical to the
        batch profile of the same stream (see
        :mod:`repro.streaming.window`).
        """
        graph = CallLoopGraph(self.program.name, self.program.variant)
        nodes = self.table.nodes
        for (src, dst), entry in self.window.merged_edges().items():
            edge = graph.edge(nodes[src], nodes[dst])
            edge.stats = edge.stats.merge(entry[0].to_running_stats())
            edge.site_sources |= entry[1]
        graph.total_instructions += self._walker.t
        return graph

    def select_now(self) -> SelectionResult:
        """Run marker selection on the current windowed graph."""
        return select_markers(self.window_graph(), self.config.selection)

    # -- feeding --------------------------------------------------------------

    def feed(self, kind: int, a: int, b: int, c: int) -> None:
        """Feed one packed row."""
        self._walker.feed(kind, a, b, c)
        self.events_fed += 1

    def feed_rows(self, kinds, a, b, c) -> None:
        """Feed one packed-row column chunk."""
        self._walker.feed_rows(kinds, a, b, c)
        self.events_fed += len(kinds)

    def feed_trace(self, trace: Trace, chunk_rows: int = DEFAULT_CHUNK_ROWS) -> None:
        """Feed a recorded trace chunk-wise (testing / replay driver)."""
        for chunk in trace.iter_chunks(chunk_rows):
            self.feed_rows(*chunk)

    def finish(self) -> int:
        """End the stream: unwind, seal the trailing partial slot, close
        out the final dwell; returns total dynamic instructions."""
        total = self._walker.finish()
        if self.window.current:
            # trailing partial slot: sealed for accounting, but no
            # re-selection — the stream is over
            self.window.seal()
            self.slots_sealed += 1
        final_dwell = total - self.phase_start_t
        self.time_in_phase[self.current_phase] = (
            self.time_in_phase.get(self.current_phase, 0) + final_dwell
        )
        self.dwells.append((self.current_phase, final_dwell))
        tm = self._tm
        if tm is not None:
            tm.counter("streaming.events", self.events_fed)
            tm.counter("streaming.instructions", total)
            tm.counter("streaming.phase_changes", len(self.changes))
        return total

    @property
    def finished(self) -> bool:
        return self._walker.finished

    @property
    def phase_sequence(self) -> List[int]:
        """Phase ids in observation order (starting with phase 0)."""
        return [0] + [c.new_phase for c in self.changes]


def stream_trace(
    program: Program,
    trace: Trace,
    marker_set: Optional[MarkerSet] = None,
    config: Optional[StreamingConfig] = None,
    on_change: Optional[Callable[[PhaseChange], None]] = None,
    chunk_rows: int = DEFAULT_CHUNK_ROWS,
) -> StreamingPhaseMonitor:
    """Drive a recorded trace through a streaming monitor chunk-wise."""
    monitor = StreamingPhaseMonitor(program, marker_set, config, on_change)
    monitor.feed_trace(trace, chunk_rows)
    monitor.finish()
    return monitor
