"""Streaming phase detection: incremental profiling over live streams.

The batch pipeline records a complete trace, profiles it, selects
markers, and only then can a monitor apply them.  This package collapses
that into a single online pass with bounded memory (ROADMAP item 1):

* :class:`IncrementalWalker` — the batch shadow-stack walker's state
  machine as push-based instance state; packed rows in, edge-span
  callbacks out, O(1) per event.
* :class:`StreamingWindow` — a bounded sliding window of per-slot exact
  edge moments; associativity makes any windowed merge bit-consistent.
* :class:`DriftDetector` — per-marker-edge CoV drift against the
  baseline captured at selection time.
* :class:`StreamingPhaseMonitor` — applies the current marker set
  online (same semantics as the batch monitor) and hot-swaps it on
  rolling re-selection.

See ``docs/STREAMING.md`` for the window model, the re-selection
contract, and the batch-equivalence guarantee.
"""

from repro.streaming.drift import DriftDetector
from repro.streaming.monitor import (
    Reselection,
    StreamingConfig,
    StreamingPhaseMonitor,
    stream_trace,
)
from repro.streaming.walker import IncrementalWalker
from repro.streaming.window import StreamingWindow

__all__ = [
    "DriftDetector",
    "IncrementalWalker",
    "Reselection",
    "StreamingConfig",
    "StreamingPhaseMonitor",
    "StreamingWindow",
    "stream_trace",
]
