"""CoV drift detection over the current marker edges.

The selection algorithm picked each marker because its edge's intervals
were *regular* — coefficient of variation under the threshold (paper
Section 5.1).  When program behavior shifts, that regularity is the
first thing to go: the windowed CoV of a marker edge drifts away from
what it was when the marker was selected.  :class:`DriftDetector`
watches exactly that signal: it keeps the per-edge CoV baseline captured
at (re-)selection time and flags any marker edge whose windowed CoV has
moved more than ``threshold`` away from its baseline, triggering a
rolling re-selection (see :class:`~repro.streaming.monitor.
StreamingPhaseMonitor`).

Everything here is deterministic — baselines and current values are
pure functions of the windowed integer moments — so streaming runs
replay exactly.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Tuple

Pair = Tuple[int, int]


class DriftDetector:
    """Flags marker edges whose windowed CoV left the baseline band.

    Parameters
    ----------
    threshold:
        Absolute CoV delta that counts as drift (CoV is dimensionless;
        the selection threshold itself is an absolute CoV bound, so the
        drift band is expressed in the same unit).
    """

    def __init__(self, threshold: float):
        if threshold <= 0:
            raise ValueError(f"threshold must be positive, got {threshold}")
        self.threshold = threshold
        self._baseline: Dict[Pair, float] = {}

    def rebase(self, cov_by_pair: Mapping[Pair, float]) -> None:
        """Capture the post-(re)selection CoV baseline."""
        self._baseline = dict(cov_by_pair)

    def extend(self, cov_by_pair: Mapping[Pair, float]) -> None:
        """Adopt baselines for pairs not tracked yet (first sighting —
        a marker edge reaching ``min_edge_count`` observations after the
        baseline was captured joins the watch list at its current CoV)."""
        for pair, cov in cov_by_pair.items():
            self._baseline.setdefault(pair, cov)

    @property
    def baseline(self) -> Dict[Pair, float]:
        return dict(self._baseline)

    def check(self, cov_by_pair: Mapping[Pair, float]) -> List[Pair]:
        """The marker edges that drifted, in baseline (selection) order.

        Pairs missing from *cov_by_pair* (no observations in the current
        window yet) are not judged — silence is not drift.
        """
        drifted: List[Pair] = []
        for pair, baseline in self._baseline.items():
            now = cov_by_pair.get(pair)
            if now is None:
                continue
            if abs(now - baseline) > self.threshold:
                drifted.append(pair)
        return drifted
