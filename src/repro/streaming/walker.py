"""Push-based incremental shadow-stack walking of a live event stream.

The batch :class:`~repro.callloop.walker.ContextWalker` *pulls* a
complete trace through its loop and unwinds the shadow stack when the
iterator is exhausted; a live stream has no end until the producer says
so.  :class:`IncrementalWalker` keeps the identical state machine —
frames, per-frame loop stacks, outermost-activation call accounting —
as *instance* state instead of loop locals: packed rows arrive through
:meth:`feed` / :meth:`feed_rows` (the same ``(kind, a, b, c)`` column
representation :class:`~repro.engine.tracing.TraceBuilder` records and
:meth:`~repro.engine.tracing.Trace.iter_chunks` serves, so recording
and streaming share one chunk format), and the unwind happens only on
:meth:`finish`.

Callback-for-callback equivalence with the batch walker — same
``on_edge_open`` / ``on_edge_close`` sequence, same row cursor, same
total — is pinned by the ``streaming`` verify check on every fuzz
iteration (:func:`repro.verify.diff.diff_streaming`).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.callloop.graph import NodeTable
from repro.callloop.walker import ContextHandler, ContextWalker, _Frame, _LoopSpan
from repro.engine.events import K_BLOCK, K_BRANCH, K_CALL, K_RETURN
from repro.ir.program import Program


class IncrementalWalker:
    """Consumes packed rows one chunk at a time, reporting edge spans.

    Construction opens the entry procedure's edges (exactly as the batch
    walker does before its first row); each :meth:`feed` processes one
    packed row in O(1); :meth:`finish` unwinds whatever is still active
    and returns the total dynamic instruction count.  A finished walker
    rejects further rows.

    The handler contract is :class:`~repro.callloop.walker.ContextHandler`;
    ``walker.row`` is the row currently being processed, mirroring the
    batch walker's cursor.
    """

    def __init__(
        self,
        program: Program,
        table: Optional[NodeTable] = None,
        handler: Optional[ContextHandler] = None,
    ):
        self.program = program
        self.table = table or NodeTable(program)
        self.handler = handler if handler is not None else ContextHandler()
        # Borrow the batch walker's static lookup state (source maps and
        # loop regions) so both walkers resolve identically.
        base = ContextWalker(program, self.table)
        self._site_source = base._site_source
        self._proc_source = base._proc_source
        self._loop_source = base._loop_source
        self._loops_by_header = base.loops_by_header
        self._proc_head = self.table.proc_head
        self._proc_body = self.table.proc_body
        self._loop_head_ids = self.table.loop_head
        self._loop_body_ids = self.table.loop_body
        self._proc_by_id = {p.proc_id: p for p in program.procedures.values()}

        #: dynamic instruction count so far
        self.t = 0
        #: row currently being processed (batch-walker cursor semantics)
        self.row = -1
        self._finished = False
        self._active: Dict[int, int] = {}

        # Open the entry procedure as if called from the root context.
        entry = program.procedures[program.entry]
        root = 0
        main_frame = _Frame(
            entry.proc_id,
            self._proc_head[entry.name],
            self._proc_body[entry.name],
            self.t,
            outermost=True,
            head_parent=root,
            site_source=self._proc_source.get(entry.proc_id),
        )
        self._active[entry.proc_id] = 1
        self.handler.on_edge_open(
            root, main_frame.head_node, self.t, main_frame.site_source
        )
        self.handler.on_edge_open(
            main_frame.head_node, main_frame.body_node, self.t, None
        )
        self._frames: List[_Frame] = [main_frame]

    @property
    def finished(self) -> bool:
        return self._finished

    @property
    def depth(self) -> int:
        """Current call depth (frames on the shadow stack)."""
        return len(self._frames)

    # -- feeding --------------------------------------------------------------

    def feed(self, kind: int, a: int, b: int, c: int) -> None:
        """Process one packed row."""
        if self._finished:
            raise RuntimeError("walker already finished; cannot feed rows")
        self._step(kind, a, b, c)

    def feed_rows(self, kinds, a, b, c) -> None:
        """Process one packed-row column chunk (``int8`` kinds + three
        ``int64`` operand columns, as recorded by ``TraceBuilder`` and
        served by ``Trace.iter_chunks``)."""
        if self._finished:
            raise RuntimeError("walker already finished; cannot feed rows")
        step = self._step
        for row in zip(kinds.tolist(), a.tolist(), b.tolist(), c.tolist()):
            step(*row)

    def _step(self, kind: int, a: int, b: int, c: int) -> None:
        handler = self.handler
        t = self.t
        frames = self._frames
        self.row += 1
        if kind == K_BLOCK:
            addr = b
            frame = frames[-1]
            ls = frame.loop_stack
            on_close = handler.on_edge_close
            # Leave loops whose static region no longer covers us.
            while ls:
                span = ls[-1]
                if span.header <= addr <= span.latch:
                    break
                ls.pop()
                on_close(span.head_node, span.body_node, span.iter_open_t, t, span.source)
                on_close(span.parent_ctx, span.head_node, span.head_open_t, t, span.source)
            loop = self._loops_by_header.get(addr)
            if loop is not None:
                if ls and ls[-1].header == addr:
                    # back-edge arrival: iteration boundary
                    span = ls[-1]
                    on_close(span.head_node, span.body_node, span.iter_open_t, t, span.source)
                    span.iter_open_t = t
                    handler.on_edge_open(span.head_node, span.body_node, t, span.source)
                else:
                    parent_ctx = ls[-1].body_node if ls else frame.body_node
                    head_node = self._loop_head_ids[addr]
                    body_node = self._loop_body_ids[addr]
                    source = self._loop_source.get(addr)
                    span = _LoopSpan(
                        addr,
                        loop.latch_branch_address,
                        head_node,
                        body_node,
                        parent_ctx,
                        t,
                        source,
                    )
                    ls.append(span)
                    handler.on_edge_open(parent_ctx, head_node, t, source)
                    handler.on_edge_open(head_node, body_node, t, source)
            handler.on_block(a, c, t)
            self.t = t + c
        elif kind == K_BRANCH:
            handler.on_branch(a, b, bool(c))
        elif kind == K_CALL:
            site_addr, callee_id = a, b
            proc = self._proc_by_id[callee_id]
            frame = frames[-1]
            ls = frame.loop_stack
            parent_ctx = ls[-1].body_node if ls else frame.body_node
            active = self._active
            outermost = active.get(callee_id, 0) == 0
            active[callee_id] = active.get(callee_id, 0) + 1
            source = self._site_source.get(site_addr)
            head_node = self._proc_head[proc.name]
            body_node = self._proc_body[proc.name]
            new_frame = _Frame(
                callee_id, head_node, body_node, t, outermost, parent_ctx, source
            )
            if outermost:
                handler.on_edge_open(parent_ctx, head_node, t, source)
            handler.on_edge_open(head_node, body_node, t, source)
            frames.append(new_frame)
        elif kind == K_RETURN:
            frame = frames.pop()
            ContextWalker._close_frame(frame, t, handler.on_edge_close)
            self._active[frame.proc_id] -= 1

    # -- end of stream --------------------------------------------------------

    def finish(self) -> int:
        """Unwind the remaining shadow stack; total dynamic instructions.

        Mirrors the batch walker's end-of-run unwind: every still-open
        frame and loop span closes at the final instruction count.
        """
        if self._finished:
            raise RuntimeError("walker already finished")
        self._finished = True
        self.row += 1
        t = self.t
        on_close = self.handler.on_edge_close
        frames = self._frames
        while frames:
            frame = frames.pop()
            ContextWalker._close_frame(frame, t, on_close)
            self._active[frame.proc_id] -= 1
        return t
