"""Bounded sliding window of exact per-edge moment statistics.

The streaming profiler partitions the live stream into fixed-size
instruction-count *slots*; each slot accumulates its own per-edge
:class:`~repro.callloop.stats.MomentStats` map (the exact shape the
batch profiler's ``_MomentBuilder`` keeps).  A bounded window retains
only the newest ``window_slots`` sealed slots — memory stays constant no
matter how long the stream runs — and aggregation happens only at
(rare) re-selection time by merging the slot maps in arrival order.

Exactness is the point: ``MomentStats`` is integer and associative, so
merging slot maps in order reproduces, bit for bit, what a sequential
walk over the same span would have accumulated; and per-slot first-close
order concatenates to the sequential first-close order, fixing the edge
order of any graph built from the merge (the same argument the
segmented profile's ``_fold_edges`` relies on).  With an unbounded
window (``window_slots=0``) this is what makes streaming selection
bit-identical to the batch path.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Optional, Tuple

from repro.callloop.stats import MomentStats
from repro.ir.program import SourceLoc

#: one window slot: (src, dst) -> [MomentStats, source_set, last_source]
SlotMap = Dict[Tuple[int, int], list]


class StreamingWindow:
    """Per-slot edge moments with bounded retention.

    ``window_slots=0`` keeps every sealed slot (unbounded — the
    batch-equivalence configuration); ``window_slots=N`` evicts the
    oldest sealed slot beyond N, counting evictions in
    :attr:`evicted_slots` (never silent).
    """

    def __init__(self, window_slots: int = 0):
        if window_slots < 0:
            raise ValueError(f"window_slots must be >= 0, got {window_slots}")
        self.window_slots = window_slots
        self.slots: Deque[SlotMap] = deque()
        self.current: SlotMap = {}
        #: sealed slots dropped from the window bound
        self.evicted_slots = 0
        #: observations folded in (window-wide, including evicted)
        self.observations = 0

    def observe(
        self, src: int, dst: int, value: int, source: Optional[SourceLoc]
    ) -> None:
        """Fold one closed edge span into the live slot."""
        entry = self.current.get((src, dst))
        if entry is None:
            entry = self.current[(src, dst)] = [MomentStats(), set(), None]
        entry[0].add(value)
        if source is not None and source is not entry[2]:
            entry[1].add(source)
            entry[2] = source
        self.observations += 1

    def seal(self) -> int:
        """Seal the live slot into the window; returns slots evicted."""
        self.slots.append(self.current)
        self.current = {}
        evicted = 0
        if self.window_slots:
            while len(self.slots) > self.window_slots:
                self.slots.popleft()
                evicted += 1
        self.evicted_slots += evicted
        return evicted

    @property
    def num_slots(self) -> int:
        """Sealed slots currently retained."""
        return len(self.slots)

    def slot_maps(self):
        """The retained slot maps in arrival order, live slot last."""
        maps = list(self.slots)
        if self.current:
            maps.append(self.current)
        return maps

    def merged_edges(self) -> SlotMap:
        """Merge the retained slots (in arrival order) into one map.

        Entries are fresh copies — the slot maps stay intact so the
        window can keep sliding after an aggregation.
        """
        merged: SlotMap = {}
        for edges in self.slot_maps():
            for key, entry in edges.items():
                into = merged.get(key)
                if into is None:
                    stats = MomentStats()
                    stats.merge(entry[0])
                    into = merged[key] = [stats, set(entry[1]), entry[2]]
                else:
                    into[0].merge(entry[0])
                    into[1] |= entry[1]
        return merged

    def merged_moments(self, pairs) -> Dict[Tuple[int, int], MomentStats]:
        """Window-merged moments for just *pairs* (the drift check's
        cheap path: marker edges only, no full-map merge)."""
        wanted = list(dict.fromkeys(pairs))
        out: Dict[Tuple[int, int], MomentStats] = {}
        for edges in self.slot_maps():
            for key in wanted:
                entry = edges.get(key)
                if entry is None:
                    continue
                into = out.get(key)
                if into is None:
                    into = out[key] = MomentStats()
                into.merge(entry[0])
        return out
