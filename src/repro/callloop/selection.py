"""The two-pass software phase marker selection algorithm (Section 5.1).

Pass 1 prunes the call-loop graph to edges whose **average hierarchical
instruction count** meets the minimum interval size ``ilower``; pass 2
derives a per-program CoV threshold from those candidates and selects the
edges whose hierarchical-count CoV falls below it.

The CoV threshold applied to each edge lies between ``avg(CoV)`` and
``avg(CoV) + stddev(CoV)`` over the candidates, scaled linearly with the
edge's average hierarchical count: edges near ``ilower`` must be very
stable; larger-interval edges are allowed more variability.  This is the
paper's mechanism for tuning the threshold to each program's inherent
variability (integer codes are noisier than floating-point codes).

Complexity: O(E + N log N) — one sort for the depth ordering plus a
constant number of passes over the edges.

Two engines implement the algorithm:

* :func:`select_markers` — the default, running both passes on the
  graph's struct-of-arrays edge view with the NumPy kernels from
  :mod:`repro.callloop.vectorized` (one ``np.clip``-based threshold
  kernel instead of a per-edge ``_cov_threshold`` call);
* :func:`select_markers_scalar` — the original per-edge Python loops,
  kept verbatim as the reference implementation.  ``repro.verify``
  diff-checks the two engines for exact equality on every run, and the
  benchmarks record their speed ratio.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.callloop.depth import _processing_order_uncached, processing_order
from repro.callloop.graph import CallLoopGraph, Edge, Node, NodeKind
from repro.callloop.markers import MarkerSet, PhaseMarker
from repro.callloop.vectorized import (
    candidate_mask,
    cov_threshold_kernel,
    finite_cov_stats,
    traversal_indices,
)


@dataclass(frozen=True)
class SelectionParams:
    """Inputs to the base (no-limit) selection algorithm.

    ``ilower`` is the minimum average interval size in instructions.
    ``procedures_only`` restricts candidates to edges entering procedure
    head/body nodes — the configuration the paper evaluates as
    "procs only" (the Huang et al. style baseline) in Figures 7-10.

    Two reproduction decisions the paper leaves unspecified:

    * ``slack_saturation`` — the linear CoV-slack scaling reaches its
      maximum at ``slack_saturation * ilower`` (rather than at the
      largest candidate, which a single whole-program edge would
      dominate);
    * ``cov_floor`` — the applied threshold is never below this absolute
      CoV.  For programs whose candidate edges are uniformly stable the
      paper's avg(CoV) rule would arbitrarily reject half of an
      all-stable population; a few-percent CoV is stable by the paper's
      own Section 6.1 standard (marked edges there show CoV < 10%).
    """

    ilower: float = 10_000.0
    procedures_only: bool = False
    slack_saturation: float = 10.0
    cov_floor: float = 0.05

    def __post_init__(self) -> None:
        if self.ilower <= 0:
            raise ValueError("ilower must be positive")
        if self.slack_saturation <= 1.0:
            raise ValueError("slack_saturation must exceed 1")
        if self.cov_floor < 0:
            raise ValueError("cov_floor must be non-negative")


@dataclass
class SelectionResult:
    """Markers plus the diagnostics the paper discusses."""

    markers: MarkerSet
    candidates: List[Edge] = field(default_factory=list)
    cov_base: float = 0.0
    cov_spread: float = 0.0

    def threshold_for(self, avg: float, ilower: float, avg_hi: float) -> float:
        return _cov_threshold(avg, ilower, avg_hi, self.cov_base, self.cov_spread)


def _eligible(edge: Edge, params: SelectionParams) -> bool:
    """Structural eligibility of an edge as a marker site."""
    if edge.src.kind is NodeKind.ROOT:
        return False  # program entry is not an instrumentable phase change
    if params.procedures_only and edge.dst.kind.is_loop:
        return False
    return True


def collect_candidates(
    graph: CallLoopGraph, params: SelectionParams
) -> Tuple[List[Node], List[Edge]]:
    """Pass 1: depth-ordered nodes and the edges meeting ``ilower``.

    Runs on the struct-of-arrays edge view; the candidate list comes out
    in the same traversal order as the per-edge loop it replaced.
    """
    order = processing_order(graph)
    arrays = graph.edge_arrays()
    trav = traversal_indices(graph, arrays, order)
    mask = candidate_mask(arrays, params.ilower, params.procedures_only)
    cand_idx = trav[mask[trav]]
    edges = arrays.edges
    return order, [edges[i] for i in cand_idx.tolist()]


def collect_candidates_scalar(
    graph: CallLoopGraph, params: SelectionParams
) -> Tuple[List[Node], List[Edge]]:
    """Pass 1 as the original per-edge loop (the reference engine)."""
    order = _processing_order_uncached(graph)
    candidates: List[Edge] = []
    for node in order:
        for edge in graph.in_edges(node):
            if not _eligible(edge, params):
                continue
            if edge.avg >= params.ilower:
                candidates.append(edge)
    return order, candidates


def cov_threshold_stats(candidates: List[Edge]) -> Tuple[float, float]:
    """The per-program CoV threshold base and spread (Pass 2 setup).

    Only finite CoVs contribute: zero-observation edges round-tripped
    through serialization can carry inf/NaN moments, and a single such
    CoV would poison the mean/std (threshold base inf, spread NaN) and
    silently deselect every marker.
    """
    if not candidates:
        return 0.0, 0.0
    covs = np.array([e.cov for e in candidates], dtype=float)
    return finite_cov_stats(covs)


def _cov_threshold(
    avg: float, ilower: float, avg_hi: float, base: float, spread: float
) -> float:
    """Threshold between base and base+spread, linear in the edge's A.

    Edges at ``ilower`` get the tight threshold (base); the largest
    candidate gets the loose one (base + spread).
    """
    if avg_hi <= ilower:
        return base
    scale = (avg - ilower) / (avg_hi - ilower)
    scale = min(1.0, max(0.0, scale))
    return base + spread * scale


def select_markers(
    graph: CallLoopGraph, params: Optional[SelectionParams] = None
) -> SelectionResult:
    """Run both passes of the no-limit selection algorithm.

    Both passes run on the graph's struct-of-arrays edge view: pass 1 is
    a boolean mask over the traversal-ordered edge indices, pass 2 is a
    single threshold kernel plus one comparison over the candidates.
    The selected markers (identity, order, and float annotations) are
    exactly those of :func:`select_markers_scalar`.
    """
    from repro.telemetry import get_telemetry

    tm = get_telemetry()
    params = params or SelectionParams()
    with tm.span("callloop.select.pass1", program=graph.program_name):
        order = processing_order(graph)
        arrays = graph.edge_arrays()
        trav = traversal_indices(graph, arrays, order)
        mask = candidate_mask(arrays, params.ilower, params.procedures_only)
        cand_idx = trav[mask[trav]]
        candidates = [arrays.edges[i] for i in cand_idx.tolist()]
        if tm.enabled:
            tm.counter("callloop.select.pass1.kept", len(candidates))
            tm.counter(
                "callloop.select.pass1.rejected",
                graph.num_edges - len(candidates),
            )
    cov_base, cov_spread = finite_cov_stats(arrays.cov[cand_idx])
    avg_hi = params.ilower * params.slack_saturation

    selected: List[PhaseMarker] = []
    with tm.span("callloop.select.pass2", program=graph.program_name):
        thresholds = cov_threshold_kernel(
            arrays.avg[cand_idx],
            params.ilower,
            avg_hi,
            cov_base,
            cov_spread,
            params.cov_floor,
        )
        with np.errstate(invalid="ignore"):
            keep = arrays.cov[cand_idx] <= thresholds
        sel_idx = cand_idx[keep]
        # marker annotations come from the SoA columns — bit-identical
        # to the Edge properties (the "kernels" verify check pins this),
        # skipping the per-marker sqrt chain of Edge.cov
        sel_avg = arrays.avg[sel_idx].tolist()
        sel_cov = arrays.cov[sel_idx].tolist()
        sel_max = arrays.max[sel_idx].tolist()
        for marker_id, i in enumerate(sel_idx.tolist(), start=1):
            edge = arrays.edges[i]
            selected.append(
                PhaseMarker(
                    marker_id=marker_id,
                    src=edge.src,
                    dst=edge.dst,
                    avg_interval=sel_avg[marker_id - 1],
                    cov=sel_cov[marker_id - 1],
                    max_interval=sel_max[marker_id - 1],
                    site_sources=tuple(sorted(edge.site_sources)),
                )
            )
        if tm.enabled:
            tm.counter("callloop.select.pass2.kept", len(selected))
            tm.counter(
                "callloop.select.pass2.rejected", len(candidates) - len(selected)
            )

    markers = MarkerSet(
        program_name=graph.program_name,
        variant=graph.variant,
        ilower=params.ilower,
        max_limit=None,
        markers=selected,
    )
    return SelectionResult(
        markers=markers,
        candidates=candidates,
        cov_base=cov_base,
        cov_spread=cov_spread,
    )


def select_markers_scalar(
    graph: CallLoopGraph, params: Optional[SelectionParams] = None
) -> SelectionResult:
    """The original per-edge-loop engine, kept as the reference.

    Byte-for-byte the pre-vectorization implementation (including the
    uncached depth ordering), except that :func:`cov_threshold_stats`
    now filters non-finite CoVs on both engines — the scalar engine
    defines the intended semantics, not the NaN-poisoning bug.
    ``repro.verify`` asserts this engine and :func:`select_markers`
    produce identical results; the benchmarks record their speed ratio.
    """
    from repro.telemetry import get_telemetry

    tm = get_telemetry()
    params = params or SelectionParams()
    with tm.span("callloop.select.pass1", program=graph.program_name):
        order, candidates = collect_candidates_scalar(graph, params)
        if tm.enabled:
            tm.counter("callloop.select.pass1.kept", len(candidates))
            tm.counter(
                "callloop.select.pass1.rejected",
                graph.num_edges - len(candidates),
            )
    cov_base, cov_spread = cov_threshold_stats(candidates)
    avg_hi = params.ilower * params.slack_saturation

    candidate_set = {e.key() for e in candidates}
    selected: List[PhaseMarker] = []
    marker_id = 1
    with tm.span("callloop.select.pass2", program=graph.program_name):
        for node in order:
            for edge in graph.in_edges(node):
                if edge.key() not in candidate_set:
                    continue
                threshold = max(
                    _cov_threshold(
                        edge.avg, params.ilower, avg_hi, cov_base, cov_spread
                    ),
                    params.cov_floor,
                )
                if edge.cov <= threshold:
                    selected.append(
                        PhaseMarker(
                            marker_id=marker_id,
                            src=edge.src,
                            dst=edge.dst,
                            avg_interval=edge.avg,
                            cov=edge.cov,
                            max_interval=edge.max,
                            site_sources=tuple(sorted(edge.site_sources)),
                        )
                    )
                    marker_id += 1
        if tm.enabled:
            tm.counter("callloop.select.pass2.kept", len(selected))
            tm.counter(
                "callloop.select.pass2.rejected", len(candidates) - len(selected)
            )

    markers = MarkerSet(
        program_name=graph.program_name,
        variant=graph.variant,
        ilower=params.ilower,
        max_limit=None,
        markers=selected,
    )
    return SelectionResult(
        markers=markers,
        candidates=candidates,
        cov_base=cov_base,
        cov_spread=cov_spread,
    )
