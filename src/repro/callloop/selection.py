"""The two-pass software phase marker selection algorithm (Section 5.1).

Pass 1 prunes the call-loop graph to edges whose **average hierarchical
instruction count** meets the minimum interval size ``ilower``; pass 2
derives a per-program CoV threshold from those candidates and selects the
edges whose hierarchical-count CoV falls below it.

The CoV threshold applied to each edge lies between ``avg(CoV)`` and
``avg(CoV) + stddev(CoV)`` over the candidates, scaled linearly with the
edge's average hierarchical count: edges near ``ilower`` must be very
stable; larger-interval edges are allowed more variability.  This is the
paper's mechanism for tuning the threshold to each program's inherent
variability (integer codes are noisier than floating-point codes).

Complexity: O(E + N log N) — one sort for the depth ordering plus a
constant number of passes over the edges.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.callloop.depth import processing_order
from repro.callloop.graph import CallLoopGraph, Edge, Node, NodeKind
from repro.callloop.markers import MarkerSet, PhaseMarker


@dataclass(frozen=True)
class SelectionParams:
    """Inputs to the base (no-limit) selection algorithm.

    ``ilower`` is the minimum average interval size in instructions.
    ``procedures_only`` restricts candidates to edges entering procedure
    head/body nodes — the configuration the paper evaluates as
    "procs only" (the Huang et al. style baseline) in Figures 7-10.

    Two reproduction decisions the paper leaves unspecified:

    * ``slack_saturation`` — the linear CoV-slack scaling reaches its
      maximum at ``slack_saturation * ilower`` (rather than at the
      largest candidate, which a single whole-program edge would
      dominate);
    * ``cov_floor`` — the applied threshold is never below this absolute
      CoV.  For programs whose candidate edges are uniformly stable the
      paper's avg(CoV) rule would arbitrarily reject half of an
      all-stable population; a few-percent CoV is stable by the paper's
      own Section 6.1 standard (marked edges there show CoV < 10%).
    """

    ilower: float = 10_000.0
    procedures_only: bool = False
    slack_saturation: float = 10.0
    cov_floor: float = 0.05

    def __post_init__(self) -> None:
        if self.ilower <= 0:
            raise ValueError("ilower must be positive")
        if self.slack_saturation <= 1.0:
            raise ValueError("slack_saturation must exceed 1")
        if self.cov_floor < 0:
            raise ValueError("cov_floor must be non-negative")


@dataclass
class SelectionResult:
    """Markers plus the diagnostics the paper discusses."""

    markers: MarkerSet
    candidates: List[Edge] = field(default_factory=list)
    cov_base: float = 0.0
    cov_spread: float = 0.0

    def threshold_for(self, avg: float, ilower: float, avg_hi: float) -> float:
        return _cov_threshold(avg, ilower, avg_hi, self.cov_base, self.cov_spread)


def _eligible(edge: Edge, params: SelectionParams) -> bool:
    """Structural eligibility of an edge as a marker site."""
    if edge.src.kind is NodeKind.ROOT:
        return False  # program entry is not an instrumentable phase change
    if params.procedures_only and edge.dst.kind.is_loop:
        return False
    return True


def collect_candidates(
    graph: CallLoopGraph, params: SelectionParams
) -> Tuple[List[Node], List[Edge]]:
    """Pass 1: depth-ordered nodes and the edges meeting ``ilower``."""
    order = processing_order(graph)
    candidates: List[Edge] = []
    for node in order:
        for edge in graph.in_edges(node):
            if not _eligible(edge, params):
                continue
            if edge.avg >= params.ilower:
                candidates.append(edge)
    return order, candidates


def cov_threshold_stats(candidates: List[Edge]) -> Tuple[float, float]:
    """The per-program CoV threshold base and spread (Pass 2 setup)."""
    if not candidates:
        return 0.0, 0.0
    covs = np.array([e.cov for e in candidates], dtype=float)
    return float(covs.mean()), float(covs.std())


def _cov_threshold(
    avg: float, ilower: float, avg_hi: float, base: float, spread: float
) -> float:
    """Threshold between base and base+spread, linear in the edge's A.

    Edges at ``ilower`` get the tight threshold (base); the largest
    candidate gets the loose one (base + spread).
    """
    if avg_hi <= ilower:
        return base
    scale = (avg - ilower) / (avg_hi - ilower)
    scale = min(1.0, max(0.0, scale))
    return base + spread * scale


def select_markers(
    graph: CallLoopGraph, params: Optional[SelectionParams] = None
) -> SelectionResult:
    """Run both passes of the no-limit selection algorithm."""
    from repro.telemetry import get_telemetry

    tm = get_telemetry()
    params = params or SelectionParams()
    with tm.span("callloop.select.pass1", program=graph.program_name):
        order, candidates = collect_candidates(graph, params)
        if tm.enabled:
            tm.counter("callloop.select.pass1.kept", len(candidates))
            tm.counter(
                "callloop.select.pass1.rejected",
                graph.num_edges - len(candidates),
            )
    cov_base, cov_spread = cov_threshold_stats(candidates)
    avg_hi = params.ilower * params.slack_saturation

    candidate_set = {e.key() for e in candidates}
    selected: List[PhaseMarker] = []
    marker_id = 1
    with tm.span("callloop.select.pass2", program=graph.program_name):
        for node in order:
            for edge in graph.in_edges(node):
                if edge.key() not in candidate_set:
                    continue
                threshold = max(
                    _cov_threshold(
                        edge.avg, params.ilower, avg_hi, cov_base, cov_spread
                    ),
                    params.cov_floor,
                )
                if edge.cov <= threshold:
                    selected.append(
                        PhaseMarker(
                            marker_id=marker_id,
                            src=edge.src,
                            dst=edge.dst,
                            avg_interval=edge.avg,
                            cov=edge.cov,
                            max_interval=edge.max,
                            site_sources=tuple(sorted(edge.site_sources)),
                        )
                    )
                    marker_id += 1
        if tm.enabled:
            tm.counter("callloop.select.pass2.kept", len(selected))
            tm.counter(
                "callloop.select.pass2.rejected", len(candidates) - len(selected)
            )

    markers = MarkerSet(
        program_name=graph.program_name,
        variant=graph.variant,
        ilower=params.ilower,
        max_limit=None,
        markers=selected,
    )
    return SelectionResult(
        markers=markers,
        candidates=candidates,
        cov_base=cov_base,
        cov_spread=cov_spread,
    )
