"""Shared executor machinery for segmented trace replays.

Both segmented stages — the profile (:mod:`repro.callloop.profiler`) and
the VLI split (:mod:`repro.intervals.vli`) — walk the slices planned by
:meth:`ContextWalker.plan_segments` the same three ways: serially, on a
thread pool, or on a forked process pool.  This module holds that
machinery once: callers supply a walker factory (fresh cursor per
worker, shared read-only lookup tables), a handler factory, and a
``finish`` projection that extracts the per-segment result (must be
picklable for the fork executor); back comes the segment-ordered list of
``(result, (start_ns, end_ns))`` pairs.

Workers never touch the telemetry session — they only *measure* with
``time.monotonic_ns`` (system-wide on Linux), and the caller emits the
per-shard spans on its own timeline afterwards.
"""

from __future__ import annotations

import time
from typing import Any, Callable, List, Optional, Sequence, Tuple

#: executors for the segmented replay paths
SHARD_EXECUTORS = ("serial", "threads", "processes")

#: (program-independent) state a forked shard pool inherits; set just
#: before the pool starts and cleared right after — fork shares it
#: copy-on-write, so nothing is pickled per task
_FORK_STATE: Optional[tuple] = None


def shard_workers() -> int:
    """Worker cap for shard executors: the CPUs available to us."""
    from repro.runner.parallel import available_cpus

    return available_cpus()


def _walk_shard(index: int):
    """Fork-pool entry point: walk one planned segment.

    Returns ``(finish(handler), (start_ns, end_ns))`` — the walk is
    bracketed with ``time.monotonic_ns`` so the parent can place the
    shard's span on its own timeline without any clock translation.
    """
    walker_for, make_handler, finish, trace, segments = _FORK_STATE
    walker = walker_for()
    handler = make_handler(walker)
    t0 = time.monotonic_ns()
    walker.walk_segment(
        trace,
        handler,
        segments[index],
        is_first=index == 0,
        is_last=index == len(segments) - 1,
    )
    return finish(handler), (t0, time.monotonic_ns())


def run_segments(
    walker_for: Callable[[], Any],
    make_handler: Callable[[Any], Any],
    finish: Callable[[Any], Any],
    trace,
    segments: Sequence,
    executor: str,
    workers: Optional[int] = None,
) -> List[Tuple[Any, Tuple[int, int]]]:
    """Walk every segment under *executor*; segment-ordered
    ``(finish(handler), (start_ns, end_ns))`` pairs.

    Workers share the read-only walker tables and trace columns (memmap
    pages when the trace came from a
    :class:`~repro.runner.traces.TraceStore`); each gets its own walker
    cursor (``walker_for()``) and handler (``make_handler(walker)``).
    ``"processes"`` falls back to ``"threads"`` on platforms without
    fork.
    """
    if executor not in SHARD_EXECUTORS:
        raise ValueError(
            f"unknown shard executor {executor!r}; "
            f"expected one of {SHARD_EXECUTORS}"
        )
    if workers is None:
        workers = shard_workers()
    last = len(segments) - 1

    def walk_one(i: int) -> Tuple[Any, Tuple[int, int]]:
        walker = walker_for()
        handler = make_handler(walker)
        t0 = time.monotonic_ns()
        walker.walk_segment(
            trace, handler, segments[i], is_first=i == 0, is_last=i == last
        )
        return finish(handler), (t0, time.monotonic_ns())

    if executor == "processes":
        got = _run_forked(walker_for, make_handler, finish, trace, segments, workers)
        if got is not None:
            return got
        executor = "threads"  # no fork on this platform
    workers = min(len(segments), workers)
    if executor == "serial" or workers <= 1 or len(segments) <= 1:
        return [walk_one(i) for i in range(len(segments))]
    from concurrent.futures import ThreadPoolExecutor

    with ThreadPoolExecutor(max_workers=workers) as pool:
        return list(pool.map(walk_one, range(len(segments))))


def _run_forked(
    walker_for, make_handler, finish, trace, segments, workers
) -> Optional[List[Tuple[Any, Tuple[int, int]]]]:
    """Walk segments on a forked process pool (``None`` if unavailable).

    Forked children inherit the program, node table, and trace columns
    copy-on-write; only the segment index crosses into each worker and
    only the small per-segment results come back through pickling.
    """
    import multiprocessing

    global _FORK_STATE
    try:
        ctx = multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return None
    workers = min(len(segments), workers)
    _FORK_STATE = (walker_for, make_handler, finish, trace, segments)
    try:
        with ctx.Pool(processes=max(workers, 1)) as pool:
            return pool.map(_walk_shard, range(len(segments)))
    finally:
        _FORK_STATE = None
