"""Streaming statistics for call-loop edge annotations.

Each edge of the call-loop graph tracks the count, average, standard
deviation, and maximum of the hierarchical instruction count across its
traversals (paper Section 4.2).  Welford's online algorithm gives
numerically stable single-pass mean/variance; `merge` combines stats from
independent profiles (used when aggregating multiple runs of the same
input set).

:class:`MomentStats` is the accumulator behind the (default) segmented
profile path: it keeps the *raw* moments — count, sum, sum of squares —
as arbitrary-precision Python integers.  Hierarchical instruction counts
are integers, so the moments are exact, and exact addition is
associative and commutative: folding a trace in one pass, in N segment
passes, or in any interleaving produces the same integers, which is what
makes the sharded profile bit-identical to the sequential one.  The
float statistics are derived once at the end
(:meth:`MomentStats.to_running_stats`), each with a single
correctly-rounded division.

The ``batch_*`` kernels are the array form of the derived-statistic
properties, used by the struct-of-arrays edge view
(:mod:`repro.callloop.vectorized`).  Each one reproduces the scalar
property bit-for-bit, including the non-finite corner cases (a NaN
variance maps to a 0.0 standard deviation exactly like
``max(0.0, nan)`` does in Python), so vectorized and scalar selection
decisions can be diff-checked for exact equality.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np


@dataclass
class RunningStats:
    """Single-pass count/mean/variance/max accumulator (Welford)."""

    count: int = 0
    mean: float = 0.0
    m2: float = 0.0
    max_value: float = -math.inf
    min_value: float = math.inf

    def add(self, value: float) -> None:
        """Fold one observation into the accumulator."""
        self.count += 1
        delta = value - self.mean
        self.mean += delta / self.count
        self.m2 += delta * (value - self.mean)
        if value > self.max_value:
            self.max_value = value
        if value < self.min_value:
            self.min_value = value

    @property
    def total(self) -> float:
        """Sum of all observations."""
        return self.mean * self.count

    @property
    def variance(self) -> float:
        """Population variance (0 for fewer than 2 observations)."""
        if self.count < 2:
            return 0.0
        return self.m2 / self.count

    @property
    def std(self) -> float:
        return math.sqrt(max(0.0, self.variance))

    @property
    def cov(self) -> float:
        """Coefficient of variation: std / mean (0 when mean is 0)."""
        if self.mean == 0:
            return 0.0
        return self.std / abs(self.mean)

    def merge(self, other: "RunningStats") -> "RunningStats":
        """Combined stats of both accumulators (Chan's parallel formula)."""
        if other.count == 0:
            return RunningStats(
                self.count, self.mean, self.m2, self.max_value, self.min_value
            )
        if self.count == 0:
            return RunningStats(
                other.count, other.mean, other.m2, other.max_value, other.min_value
            )
        n = self.count + other.count
        delta = other.mean - self.mean
        mean = self.mean + delta * other.count / n
        m2 = self.m2 + other.m2 + delta * delta * self.count * other.count / n
        return RunningStats(
            n,
            mean,
            m2,
            max(self.max_value, other.max_value),
            min(self.min_value, other.min_value),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RunningStats(n={self.count}, mean={self.mean:.2f}, "
            f"std={self.std:.2f}, max={self.max_value:.0f})"
        )


class MomentStats:
    """Exact integer moments of a stream of non-negative integers.

    ``add``/``add_run``/``merge`` are all plain integer additions, so
    any partition of the observations into batches — per-iteration
    callbacks, vectorized back-edge runs, or whole trace segments —
    accumulates to identical integers.  ``to_running_stats`` converts to
    the float :class:`RunningStats` form the graph stores:

    * ``mean = total / count`` — one correctly-rounded division;
    * ``m2 = (count * sumsq - total²) / count`` — the numerator is an
      exact (non-negative, by Cauchy-Schwarz) integer, so unlike a
      Welford stream the result carries no accumulated rounding.
    """

    __slots__ = ("count", "total", "sumsq", "max_value", "min_value")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0
        self.sumsq = 0
        self.max_value: int | None = None
        self.min_value: int | None = None

    def add(self, value: int) -> None:
        """Fold one observation into the moments."""
        self.count += 1
        self.total += value
        self.sumsq += value * value
        if self.max_value is None:
            self.max_value = value
            self.min_value = value
        else:
            if value > self.max_value:
                self.max_value = value
            if value < self.min_value:
                self.min_value = value

    def add_run(self, values: np.ndarray) -> None:
        """Fold a batch of observations (int64 array) in one shot.

        Equivalent to ``add`` in a loop; the numpy reductions are used
        only when ``len * max²`` provably fits int64, otherwise the
        batch falls back to exact Python-int summation.
        """
        k = len(values)
        if k == 0:
            return
        mx = int(values.max())
        mn = int(values.min())
        if self.max_value is None:
            self.max_value = mx
            self.min_value = mn
        else:
            if mx > self.max_value:
                self.max_value = mx
            if mn < self.min_value:
                self.min_value = mn
        self.count += k
        if mx * mx * k < 2**63:
            self.total += int(values.sum(dtype=np.int64))
            self.sumsq += int(np.dot(values, values))
        else:  # pragma: no cover - astronomically long spans
            for v in values.tolist():
                self.total += v
                self.sumsq += v * v

    def merge(self, other: "MomentStats") -> None:
        """Fold *other*'s moments into this accumulator (in place)."""
        if other.count == 0:
            return
        self.count += other.count
        self.total += other.total
        self.sumsq += other.sumsq
        if self.max_value is None:
            self.max_value = other.max_value
            self.min_value = other.min_value
        else:
            if other.max_value > self.max_value:
                self.max_value = other.max_value
            if other.min_value < self.min_value:
                self.min_value = other.min_value

    def to_running_stats(self) -> RunningStats:
        """The float :class:`RunningStats` these moments determine."""
        if self.count == 0:
            return RunningStats()
        mean = self.total / self.count
        m2 = (self.count * self.sumsq - self.total * self.total) / self.count
        return RunningStats(
            self.count, mean, m2, float(self.max_value), float(self.min_value)
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MomentStats(n={self.count}, total={self.total}, "
            f"sumsq={self.sumsq})"
        )


# ---------------------------------------------------------------------------
# batch (struct-of-arrays) forms of the derived statistics
# ---------------------------------------------------------------------------


def batch_variance(count: np.ndarray, m2: np.ndarray) -> np.ndarray:
    """Elementwise :attr:`RunningStats.variance`: ``m2 / count``, 0 below
    two observations."""
    with np.errstate(invalid="ignore", divide="ignore"):
        var = m2 / np.maximum(count, 1)
    return np.where(count < 2, 0.0, var)


def batch_std(count: np.ndarray, m2: np.ndarray) -> np.ndarray:
    """Elementwise :attr:`RunningStats.std`.

    ``np.where(var > 0, var, 0)`` rather than ``np.maximum`` so a NaN
    variance clamps to 0.0, exactly as Python's ``max(0.0, nan)`` keeps
    its first argument.
    """
    var = batch_variance(count, m2)
    return np.sqrt(np.where(var > 0.0, var, 0.0))


def batch_cov(mean: np.ndarray, std: np.ndarray) -> np.ndarray:
    """Elementwise :attr:`RunningStats.cov`: ``std / |mean|``, 0 when the
    mean is 0."""
    with np.errstate(invalid="ignore", divide="ignore"):
        cov = std / np.abs(mean)
    return np.where(mean == 0.0, 0.0, cov)
