"""Shadow call/loop stack walking of execution traces (paper Section 4.2).

This is the paper's profiling mechanism: "we keep track of a call stack
and a loop stack" while the instrumented program runs, and every push or
pop corresponds to traversing an edge of the call-loop graph.  Both the
call-loop profiler (which *builds* the annotated graph) and the
variable-length-interval splitter (which *applies* a marker set at run
time) need the same machinery: track, from the raw event stream, when
each call-loop graph edge opens and closes, maintaining per-frame loop
stacks driven purely by block addresses and statically discovered loop
regions — the information binary instrumentation has.

The walker reports edge traversals to a handler:

* ``on_edge_open(src, dst, t, source)`` — the edge begins a span at
  dynamic instruction count *t*;
* ``on_edge_close(src, dst, t_open, t_close, source)`` — the span ends;
  ``t_close - t_open`` is the edge's *hierarchical instruction count*;
* ``on_block(block_id, size, t)`` — a block executes (t is the count
  *before* the block);
* ``on_branch(address, target, taken)`` — a conditional branch executes.

Edge endpoints are integer node ids from a :class:`NodeTable`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.callloop.graph import NodeTable
from repro.callloop.loops import StaticLoop
from repro.engine.events import K_BLOCK, K_BRANCH, K_CALL, K_RETURN
from repro.engine.tracing import Trace
from repro.ir.program import Program, SourceLoc, TermKind
from repro.telemetry import get_telemetry

#: traces shorter than this replay through the scalar walker — the bulk
#: mode's vectorized preprocessing only pays for itself on long traces
BULK_MIN_ROWS = 1024

#: minimum back-edge run length routed through ``on_edge_iterations``;
#: shorter runs fire the per-iteration callbacks directly (the numpy
#: slice overhead beats the callback cost only past a few iterations)
BATCH_MIN_RUN = 8


class ContextHandler:
    """Callback interface; subclass and override what you need."""

    def on_edge_open(self, src: int, dst: int, t: int, source: Optional[SourceLoc]) -> None:
        pass

    def on_edge_close(
        self,
        src: int,
        dst: int,
        t_open: int,
        t_close: int,
        source: Optional[SourceLoc],
    ) -> None:
        pass

    def on_edge_iterations(
        self,
        head: int,
        body: int,
        t_prev: int,
        ts: np.ndarray,
        source: Optional[SourceLoc],
    ) -> None:
        """Optional batch form of a loop back-edge run.

        Equivalent to, for each ``t`` in the int64 array ``ts`` (in
        order): ``on_edge_close(head, body, prev, t, source)`` then
        ``on_edge_open(head, body, t, source)`` with ``prev`` starting
        at *t_prev* — i.e. ``np.diff(ts, prepend=t_prev)`` are the
        per-iteration hierarchical instruction counts.  The bulk walker
        routes consecutive back-edge arrivals of one loop span here
        *only when the handler class overrides this method*; handlers
        that rely on per-iteration callbacks (or on ``walker.row``
        advancing per iteration) simply leave it alone.

        During the callback ``walker.iter_rows`` holds the absolute
        trace rows of the batched arrivals (int64 array aligned with
        *ts*), so handlers that record firing positions — the VLI
        splitter — see the same rows the per-iteration path would have
        reported through ``walker.row``.
        """
        pass  # pragma: no cover - dispatch checks the override, see walk()

    def on_block(self, block_id: int, size: int, t: int) -> None:
        pass

    def on_branch(self, address: int, target: int, taken: bool) -> None:
        pass


@dataclass(frozen=True)
class TraceSegment:
    """One independently walkable slice of a trace.

    ``loop_state`` reconstructs the entry frame's loop stack at the
    segment boundary: ``(header, head_open_t, iter_open_t)`` triples,
    outermost first.  Both timestamps are *absolute* instruction counts,
    derived statically from the block-size cumsum (see
    :meth:`ContextWalker.plan_segments`), so a segment can restore the
    exact shadow-stack state the sequential walker would hold there
    without replaying the prefix.
    """

    start: int
    stop: int
    t_start: int
    loop_state: Tuple[Tuple[int, int, int], ...] = ()


class _LoopSpan:
    """An active loop on a frame's loop stack."""

    __slots__ = (
        "header",
        "latch",
        "head_node",
        "body_node",
        "parent_ctx",
        "head_open_t",
        "iter_open_t",
        "source",
    )

    def __init__(self, header, latch, head_node, body_node, parent_ctx, t, source):
        self.header = header
        self.latch = latch
        self.head_node = head_node
        self.body_node = body_node
        self.parent_ctx = parent_ctx
        self.head_open_t = t
        self.iter_open_t = t
        self.source = source


class _Frame:
    """An active procedure invocation."""

    __slots__ = (
        "proc_id",
        "head_node",
        "body_node",
        "body_open_t",
        "outermost",
        "head_parent",
        "head_open_t",
        "site_source",
        "loop_stack",
    )

    def __init__(self, proc_id, head_node, body_node, t, outermost, head_parent, site_source):
        self.proc_id = proc_id
        self.head_node = head_node
        self.body_node = body_node
        self.body_open_t = t
        self.outermost = outermost
        self.head_parent = head_parent
        self.head_open_t = t
        self.site_source = site_source
        self.loop_stack: List[_LoopSpan] = []


class ContextWalker:
    """Walks a trace once, reporting edge spans to a handler.

    The walker reproduces the paper's node semantics:

    * a call to procedure P from context X opens the edge ``X -> P.head``
      only for the *outermost* activation (recursion keeps the head span
      open) and the edge ``P.head -> P.body`` for *every* activation;
    * executing the header block of loop L for the first time (loop entry)
      opens ``ctx -> L.head`` and ``L.head -> L.body``; re-executing it via
      the back-edge closes and reopens the head->body span (one per
      iteration); leaving the static loop region closes both.
    """

    def __init__(self, program: Program, table: NodeTable):
        self.program = program
        self.table = table
        #: trace row currently being processed (readable from handlers)
        self.row = -1
        #: absolute rows of the current batched back-edge run (valid
        #: only inside an ``on_edge_iterations`` callback, aligned with
        #: its ``ts`` argument)
        self.iter_rows: Optional[np.ndarray] = None
        self.loops_by_header: Dict[int, StaticLoop] = table.loops
        # Map call-site addresses to debug info (source locations).
        self._site_source: Dict[int, SourceLoc] = {}
        for block in program.blocks:
            if block.terminator.kind == TermKind.CALL:
                self._site_source[block.end_address] = block.source
        self._proc_source: Dict[int, SourceLoc] = {
            p.proc_id: p.source for p in program.procedures.values()
        }
        self._loop_source: Dict[int, SourceLoc] = {
            header: loop.source for header, loop in table.loops.items()
        }
        # Lazily built vectorized lookup tables for the bulk replay mode.
        self._addr_tables: Optional[
            Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]
        ] = None

    def walk_events(self, events, handler: ContextHandler) -> int:
        """Process a *live* event stream (for online monitoring).

        Same semantics as :meth:`walk`, but consumes event objects as
        they are produced instead of a recorded trace.
        """
        from repro.engine.events import (
            BlockEvent,
            BranchEvent,
            CallEvent,
            ReturnEvent,
        )

        def packed():
            for ev in events:
                t = type(ev)
                if t is BlockEvent:
                    yield (K_BLOCK, ev.block_id, ev.address, ev.size)
                elif t is BranchEvent:
                    yield (K_BRANCH, ev.address, ev.target, 1 if ev.taken else 0)
                elif t is CallEvent:
                    yield (K_CALL, ev.site_address, ev.callee_id, 0)
                else:
                    yield (K_RETURN, ev.proc_id, 0, 0)

        tm = get_telemetry()
        if not tm.enabled:
            return self._walk_packed(packed(), handler, num_rows=None)
        with tm.span("callloop.walk_events"):
            total = self._walk_packed(packed(), handler, num_rows=None)
            tm.counter("callloop.walk.events", self.row)
            tm.counter("callloop.walk.instructions", total)
        return total

    def walk(
        self, trace: Trace, handler: ContextHandler, bulk: Optional[bool] = None
    ) -> int:
        """Process *trace*; returns total dynamic instructions.

        Long traces whose handler does not observe individual blocks
        (``on_block`` left as the base no-op) replay through the bulk
        mode: instruction counts come from a single ``cumsum`` over the
        block-size column, and the shadow stack is fed only the
        *interesting* rows — control events plus the small subset of
        blocks that can move a loop stack.  Handlers that do override
        ``on_block`` (or short traces) take the scalar path.  The two
        paths produce identical callback sequences (pinned by the
        ``trace-pipeline`` verify check and fuzz suite).

        ``bulk`` overrides the length heuristic: ``True`` runs the bulk
        mode even on short traces (the verify harness uses this to pit
        it against :meth:`walk_scalar` on tiny fuzz programs), ``False``
        forces the scalar path.  An ineligible handler still walks
        scalar either way.
        """
        tm = get_telemetry()
        if not tm.enabled:
            return self._walk_dispatch(trace, handler, bulk)
        # Bulk-granularity instrumentation: one span around the whole
        # replay, event totals counted once after it — never per event.
        with tm.span("callloop.walk", events=len(trace)):
            total = self._walk_dispatch(trace, handler, bulk)
            tm.counter("callloop.walk.events", len(trace))
            tm.counter("callloop.walk.instructions", total)
        return total

    def walk_scalar(self, trace: Trace, handler: ContextHandler) -> int:
        """Process *trace* event-by-event — the bulk mode's oracle."""
        return self._walk_packed(trace.iter_packed(), handler, num_rows=len(trace))

    def _walk_dispatch(
        self, trace: Trace, handler: ContextHandler, bulk: Optional[bool] = None
    ) -> int:
        cls = type(handler)
        if bulk is None:
            bulk = len(trace) >= BULK_MIN_ROWS
        if bulk and cls.on_block is ContextHandler.on_block:
            result = self._walk_bulk(
                trace, handler, cls.on_branch is not ContextHandler.on_branch
            )
            if result is not None:
                return result
        return self._walk_packed(trace.iter_packed(), handler, num_rows=len(trace))

    # -- bulk replay -------------------------------------------------------

    def _ensure_addr_tables(
        self,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Sorted block-address table with per-address loop metadata.

        For every static block address: whether it is a loop header, a
        dense id for its *static loop chain* (the set of loop regions
        covering the address), and whether that chain is empty.  Two
        consecutive block rows in the same frame with equal chain ids,
        neither a header, cannot move the loop stack — that is what lets
        the bulk walker skip them.  A chain-empty block executed at call
        depth zero leaves the shadow stack in a statically known state,
        which is what makes the row after it a safe segment cut point
        (:meth:`segment_cut_rows`).
        """
        if self._addr_tables is not None:
            return self._addr_tables
        loops = self.loops_by_header
        addrs = sorted({b.address for b in self.program.blocks})
        addr_arr = np.asarray(addrs, dtype=np.int64)
        is_header = np.zeros(len(addrs), dtype=bool)
        chain_ids = np.zeros(len(addrs), dtype=np.int64)
        chain_empty = np.zeros(len(addrs), dtype=bool)
        chain_map: Dict[tuple, int] = {}
        for i, addr in enumerate(addrs):
            if addr in loops:
                is_header[i] = True
            chain = tuple(
                sorted(
                    h
                    for h, lp in loops.items()
                    if h <= addr <= lp.latch_branch_address
                )
            )
            chain_ids[i] = chain_map.setdefault(chain, len(chain_map))
            chain_empty[i] = not chain
        self._addr_tables = (addr_arr, is_header, chain_ids, chain_empty)
        return self._addr_tables

    def plan_segments(
        self, trace: Trace, num_segments: int
    ) -> List[TraceSegment]:
        """Cut *trace* into up to *num_segments* frame-boundary-safe slices.

        A cut is placed only after a block executed at call depth zero:
        there the shadow stack holds exactly the entry frame, and the
        frame's loop stack is the static loop chain of that block's
        address.  Each open span's timestamps are recovered from the
        block-size cumsum — ``head_open_t`` at the activation's entry
        row (first in-region depth-0 block of the current run),
        ``iter_open_t`` at the last execution of its header — so every
        segment starts from a state identical to the sequential
        walker's, without replaying the prefix (see
        :class:`TraceSegment` and :meth:`walk_segment`).

        Cut rows are chosen nearest the ideal equal row division and
        deduplicated, so fewer than *num_segments* slices can come
        back.  An **empty list** means the trace cannot be segmented —
        too short, never at depth zero (one call frame spans
        everything), or referencing unknown block addresses — and the
        caller should fall back to the sequential walk.
        """
        n = len(trace)
        if num_segments <= 1 or n < 2:
            return []
        kinds = trace.kinds
        block_mask = kinds == K_BLOCK
        blk_rows = np.nonzero(block_mask)[0]
        if not len(blk_rows):
            return []
        addr_arr, _, _, _ = self._ensure_addr_tables()
        if len(addr_arr) == 0:
            return []
        baddrs = trace.b[blk_rows]
        pos = np.searchsorted(addr_arr, baddrs)
        pos = np.minimum(pos, len(addr_arr) - 1)
        if not np.array_equal(addr_arr[pos], baddrs):
            return []  # unknown block address: bulk replay would bail too
        depth = np.cumsum(
            (kinds == K_CALL).astype(np.int64) - (kinds == K_RETURN)
        )
        d0 = blk_rows[depth[blk_rows] == 0]
        starts = d0 + 1
        starts = starts[starts < n]
        if not len(starts):
            return []
        ideals = (np.arange(1, num_segments, dtype=np.int64) * n) // num_segments
        right = np.clip(np.searchsorted(starts, ideals), 0, len(starts) - 1)
        left = np.maximum(right - 1, 0)
        use_left = np.abs(starts[left] - ideals) <= np.abs(starts[right] - ideals)
        cuts = sorted(set(np.where(use_left, starts[left], starts[right]).tolist()))
        if not cuts:
            return []

        sizes = np.where(block_mask, trace.c, 0)
        t_before = np.cumsum(sizes) - sizes
        loops = self.loops_by_header
        d0_addrs = trace.b[d0]
        # Per header: its depth-0 execution rows and the depth-0 rows
        # where its static region is (re-)entered — one activation each.
        row_memo: Dict[int, Tuple[np.ndarray, np.ndarray]] = {}

        def header_rows(h: int) -> Tuple[np.ndarray, np.ndarray]:
            got = row_memo.get(h)
            if got is None:
                latch = loops[h].latch_branch_address
                in_region = (d0_addrs >= h) & (d0_addrs <= latch)
                occ = d0[d0_addrs == h]
                enters = d0[
                    in_region & np.concatenate(([True], ~in_region[:-1]))
                ]
                got = row_memo[h] = (occ, enters)
            return got

        bounds = [0] + cuts + [n]
        segments: List[TraceSegment] = []
        for a, b in zip(bounds[:-1], bounds[1:]):
            if a == 0:
                segments.append(TraceSegment(a, b, 0, ()))
                continue
            r = a - 1  # the depth-0 block row this cut follows
            addr = int(trace.b[r])
            chain = sorted(
                h
                for h, lp in loops.items()
                if h <= addr <= lp.latch_branch_address
            )
            state = []
            for h in chain:  # ascending header address = outermost first
                occ, enters = header_rows(h)
                oi = int(np.searchsorted(occ, r, side="right")) - 1
                ei = int(np.searchsorted(enters, r, side="right")) - 1
                if oi < 0 or ei < 0:
                    # Region covers the cut row but its header never ran
                    # (unstructured flow): refuse to segment the trace.
                    return []
                state.append(
                    (h, int(t_before[enters[ei]]), int(t_before[occ[oi]]))
                )
            segments.append(TraceSegment(a, b, int(t_before[a - 1] + sizes[a - 1]), tuple(state)))
        return segments

    def walk_segment(
        self,
        trace: Trace,
        handler: ContextHandler,
        segment: TraceSegment,
        is_first: bool = False,
        is_last: bool = False,
    ) -> int:
        """Replay one :class:`TraceSegment` from :meth:`plan_segments`.

        Only the first segment emits the entry-procedure opens; only
        the last unwinds still-open frames at trace end — so the
        per-segment callback sequences of consecutive segments
        concatenate to exactly the sequential walk's (the
        ``segmented-profile`` verify check pins this against
        :meth:`walk_scalar`).  ``walker.row`` reports absolute trace
        rows throughout.  Returns the instruction count at segment end.
        """
        cls = type(handler)
        if cls.on_block is not ContextHandler.on_block:
            raise ValueError(
                "segmented replay requires a bulk-eligible handler "
                "(on_block must stay the base no-op)"
            )
        result = self._walk_bulk(
            trace,
            handler,
            cls.on_branch is not ContextHandler.on_branch,
            start=segment.start,
            stop=segment.stop,
            t_start=segment.t_start,
            open_entry=is_first,
            unwind=is_last,
            loop_state=segment.loop_state,
        )
        if result is None:
            raise ValueError(
                "segmented replay requires all block addresses to be known "
                "(plan_segments returns no segments for such traces)"
            )
        return result

    def _walk_bulk(
        self,
        trace: Trace,
        handler: ContextHandler,
        need_branch: bool,
        start: int = 0,
        stop: Optional[int] = None,
        t_start: int = 0,
        open_entry: bool = True,
        unwind: bool = True,
        loop_state: Tuple[Tuple[int, int, int], ...] = (),
    ) -> Optional[int]:
        """Vectorized replay over the interesting rows only.

        Segments the trace at control events, accumulates instruction
        counts with one ``cumsum``, and runs the scalar state machine
        over control events plus loop-relevant blocks (headers, chain
        changes, frame boundaries).  Returns ``None`` when the trace
        references addresses outside the program (caller falls back to
        the scalar walker).

        ``start``/``stop``/``t_start``/``open_entry``/``unwind``
        restrict the replay to one segment of a cut trace (see
        :meth:`walk_segment`); the defaults replay the whole trace.
        """
        if stop is None:
            stop = len(trace.kinds)
        kinds = trace.kinds[start:stop]
        a_col = trace.a[start:stop]
        b_col = trace.b[start:stop]
        c_col = trace.c[start:stop]
        n = len(kinds)

        block_mask = kinds == K_BLOCK
        sizes = np.where(block_mask, c_col, 0)
        t_after = t_start + np.cumsum(sizes)
        total = int(t_after[-1]) if n else t_start
        t_before = t_after - sizes

        cr_mask = (kinds == K_CALL) | (kinds == K_RETURN)
        ctrl_mask = cr_mask | (kinds == K_BRANCH) if need_branch else cr_mask

        blk_rows = np.nonzero(block_mask)[0]
        if len(blk_rows):
            addr_arr, is_header, chain_ids, _ = self._ensure_addr_tables()
            if len(addr_arr) == 0:
                return None
            baddrs = b_col[blk_rows]
            pos = np.searchsorted(addr_arr, baddrs)
            pos = np.minimum(pos, len(addr_arr) - 1)
            if not np.array_equal(addr_arr[pos], baddrs):
                return None  # unknown block address — let the oracle decide
            # A block row is interesting iff it can touch the loop stack:
            # loop headers, the first block after a call/return (frame or
            # region boundary), and blocks whose static loop chain differs
            # from the previous block's (region exit/entry).
            interesting = is_header[pos].copy()
            interesting[0] = True
            cr_at = np.cumsum(cr_mask)[blk_rows]
            ch = chain_ids[pos]
            interesting[1:] |= (cr_at[1:] != cr_at[:-1]) | (ch[1:] != ch[:-1])
            rows = np.concatenate((np.nonzero(ctrl_mask)[0], blk_rows[interesting]))
            rows.sort()
        else:
            rows = np.nonzero(ctrl_mask)[0]

        program = self.table.program
        entry = program.procedures[program.entry]
        proc_head = self.table.proc_head
        proc_body = self.table.proc_body
        loop_head_ids = self.table.loop_head
        loop_body_ids = self.table.loop_body
        loops_by_header = self.loops_by_header

        active: Dict[int, int] = {}
        root = 0
        main_frame = _Frame(
            entry.proc_id,
            proc_head[entry.name],
            proc_body[entry.name],
            0,
            outermost=True,
            head_parent=root,
            site_source=self._proc_source.get(entry.proc_id),
        )
        active[entry.proc_id] = 1
        if open_entry:
            handler.on_edge_open(root, main_frame.head_node, 0, main_frame.site_source)
            handler.on_edge_open(main_frame.head_node, main_frame.body_node, 0, None)
        frames: List[_Frame] = [main_frame]
        if loop_state:
            # Restore the loop stack a previous segment left open (the
            # spans were opened there; their callbacks already fired).
            parent_ctx = main_frame.body_node
            for header, head_open_t, iter_open_t in loop_state:
                lp = loops_by_header[header]
                span = _LoopSpan(
                    header,
                    lp.latch_branch_address,
                    loop_head_ids[header],
                    loop_body_ids[header],
                    parent_ctx,
                    head_open_t,
                    self._loop_source.get(header),
                )
                span.iter_open_t = iter_open_t
                main_frame.loop_stack.append(span)
                parent_ctx = span.body_node

        proc_by_id = {p.proc_id: p for p in program.procedures.values()}
        on_branch = handler.on_branch
        on_open = handler.on_edge_open
        on_close = handler.on_edge_close

        rt_arr = t_before[rows]
        rk = kinds[rows].tolist()
        ra = a_col[rows].tolist()
        rb = b_col[rows].tolist()
        rc = c_col[rows].tolist()
        rt = rt_arr.tolist()
        rlist = (rows + start).tolist() if start else rows.tolist()

        m = len(rlist)
        run_end = None
        rows_abs = None
        if (
            type(handler).on_edge_iterations
            is not ContextHandler.on_edge_iterations
        ) and m:
            # Batched back-edge dispatch: precompute, for every selected
            # row, the end of the maximal run of consecutive block rows
            # sharing its address (the same runs the absorb loop below
            # walks one row at a time).
            rk_arr = kinds[rows]
            rb_arr = b_col[rows]
            is_blk = rk_arr == K_BLOCK
            same = is_blk[1:] & is_blk[:-1] & (rb_arr[1:] == rb_arr[:-1])
            idx = np.arange(m)
            ends = np.where(np.append(~same, True), idx, m)
            run_end = np.minimum.accumulate(ends[::-1])[::-1].tolist()
            rows_abs = rows + start if start else rows

        j = 0
        while j < m:
            kind = rk[j]
            t = rt[j]
            self.row = rlist[j]
            if kind == K_BLOCK:
                addr = rb[j]
                frame = frames[-1]
                ls = frame.loop_stack
                while ls:
                    span = ls[-1]
                    if span.header <= addr <= span.latch:
                        break
                    ls.pop()
                    on_close(span.head_node, span.body_node, span.iter_open_t, t, span.source)
                    on_close(span.parent_ctx, span.head_node, span.head_open_t, t, span.source)
                loop = loops_by_header.get(addr)
                if loop is not None:
                    if ls and ls[-1].header == addr:
                        # Back-edge arrival.  Consecutive interesting rows
                        # with this same header address are guaranteed
                        # further back-edges of the same span (any exit or
                        # re-entry needs an intervening interesting row),
                        # so absorb the whole iteration run in one tight
                        # loop instead of re-dispatching per row — or, for
                        # a handler with a batch hook, in one callback.
                        span = ls[-1]
                        head_node = span.head_node
                        body_node = span.body_node
                        source = span.source
                        e = run_end[j] if run_end is not None else j
                        if e - j + 1 >= BATCH_MIN_RUN:
                            self.iter_rows = rows_abs[j : e + 1]
                            handler.on_edge_iterations(
                                head_node,
                                body_node,
                                span.iter_open_t,
                                rt_arr[j : e + 1],
                                source,
                            )
                            self.iter_rows = None
                            span.iter_open_t = rt[e]
                            j = e
                            self.row = rlist[e]
                        else:
                            prev_t = span.iter_open_t
                            while True:
                                on_close(head_node, body_node, prev_t, t, source)
                                on_open(head_node, body_node, t, source)
                                prev_t = t
                                jn = j + 1
                                if jn >= m or rk[jn] != K_BLOCK or rb[jn] != addr:
                                    break
                                j = jn
                                t = rt[jn]
                                self.row = rlist[jn]
                            span.iter_open_t = prev_t
                    else:
                        parent_ctx = ls[-1].body_node if ls else frame.body_node
                        head_node = loop_head_ids[addr]
                        body_node = loop_body_ids[addr]
                        source = self._loop_source.get(addr)
                        span = _LoopSpan(
                            addr,
                            loop.latch_branch_address,
                            head_node,
                            body_node,
                            parent_ctx,
                            t,
                            source,
                        )
                        ls.append(span)
                        on_open(parent_ctx, head_node, t, source)
                        on_open(head_node, body_node, t, source)
                # handler.on_block is the base no-op (bulk eligibility)
            elif kind == K_BRANCH:
                on_branch(ra[j], rb[j], bool(rc[j]))
            elif kind == K_CALL:
                site_addr, callee_id = ra[j], rb[j]
                proc = proc_by_id[callee_id]
                frame = frames[-1]
                ls = frame.loop_stack
                parent_ctx = ls[-1].body_node if ls else frame.body_node
                outermost = active.get(callee_id, 0) == 0
                active[callee_id] = active.get(callee_id, 0) + 1
                source = self._site_source.get(site_addr)
                head_node = proc_head[proc.name]
                body_node = proc_body[proc.name]
                new_frame = _Frame(
                    callee_id, head_node, body_node, t, outermost, parent_ctx, source
                )
                if outermost:
                    on_open(parent_ctx, head_node, t, source)
                on_open(head_node, body_node, t, source)
                frames.append(new_frame)
            else:  # K_RETURN
                frame = frames.pop()
                self._close_frame(frame, t, on_close)
                active[frame.proc_id] -= 1
            j += 1

        self.row = stop
        if unwind:
            while frames:
                frame = frames.pop()
                self._close_frame(frame, total, on_close)
                active[frame.proc_id] -= 1
        elif frames != [main_frame]:
            # A non-final segment must end at call depth zero, where the
            # next one restarts.  Anything else means the cut row was
            # not frame-boundary-safe.
            raise RuntimeError(
                f"segment [{start}, {stop}) did not end at a clean frame "
                "boundary; segments must come from plan_segments()"
            )
        return total

    def _walk_packed(self, packed_events, handler: ContextHandler, num_rows) -> int:
        program = self.table.program
        entry = program.procedures[program.entry]
        proc_head = self.table.proc_head
        proc_body = self.table.proc_body
        loop_head_ids = self.table.loop_head
        loop_body_ids = self.table.loop_body
        loops_by_header = self.loops_by_header

        active: Dict[int, int] = {}
        t = 0

        # Open the entry procedure as if called from the root context.
        root = 0
        main_frame = _Frame(
            entry.proc_id,
            proc_head[entry.name],
            proc_body[entry.name],
            t,
            outermost=True,
            head_parent=root,
            site_source=self._proc_source.get(entry.proc_id),
        )
        active[entry.proc_id] = 1
        handler.on_edge_open(root, main_frame.head_node, t, main_frame.site_source)
        handler.on_edge_open(main_frame.head_node, main_frame.body_node, t, None)
        frames: List[_Frame] = [main_frame]

        proc_by_id = {p.proc_id: p for p in program.procedures.values()}
        on_block = handler.on_block
        on_branch = handler.on_branch
        on_open = handler.on_edge_open
        on_close = handler.on_edge_close

        row = -1
        for kind, a, b, c in packed_events:
            row += 1
            self.row = row
            if kind == K_BLOCK:
                addr = b
                frame = frames[-1]
                ls = frame.loop_stack
                # Leave loops whose static region no longer covers us.
                while ls:
                    span = ls[-1]
                    if span.header <= addr <= span.latch:
                        break
                    ls.pop()
                    on_close(span.head_node, span.body_node, span.iter_open_t, t, span.source)
                    on_close(span.parent_ctx, span.head_node, span.head_open_t, t, span.source)
                loop = loops_by_header.get(addr)
                if loop is not None:
                    if ls and ls[-1].header == addr:
                        # back-edge arrival: iteration boundary
                        span = ls[-1]
                        on_close(span.head_node, span.body_node, span.iter_open_t, t, span.source)
                        span.iter_open_t = t
                        on_open(span.head_node, span.body_node, t, span.source)
                    else:
                        parent_ctx = ls[-1].body_node if ls else frame.body_node
                        head_node = loop_head_ids[addr]
                        body_node = loop_body_ids[addr]
                        source = self._loop_source.get(addr)
                        span = _LoopSpan(
                            addr,
                            loop.latch_branch_address,
                            head_node,
                            body_node,
                            parent_ctx,
                            t,
                            source,
                        )
                        ls.append(span)
                        on_open(parent_ctx, head_node, t, source)
                        on_open(head_node, body_node, t, source)
                on_block(a, c, t)
                t += c
            elif kind == K_BRANCH:
                on_branch(a, b, bool(c))
            elif kind == K_CALL:
                site_addr, callee_id = a, b
                proc = proc_by_id[callee_id]
                frame = frames[-1]
                ls = frame.loop_stack
                parent_ctx = ls[-1].body_node if ls else frame.body_node
                outermost = active.get(callee_id, 0) == 0
                active[callee_id] = active.get(callee_id, 0) + 1
                source = self._site_source.get(site_addr)
                head_node = proc_head[proc.name]
                body_node = proc_body[proc.name]
                new_frame = _Frame(
                    callee_id, head_node, body_node, t, outermost, parent_ctx, source
                )
                if outermost:
                    on_open(parent_ctx, head_node, t, source)
                on_open(head_node, body_node, t, source)
                frames.append(new_frame)
            elif kind == K_RETURN:
                frame = frames.pop()
                self._close_frame(frame, t, on_close)
                active[frame.proc_id] -= 1

        # End of run: unwind whatever is still active (normally just main).
        self.row = num_rows if num_rows is not None else row + 1
        while frames:
            frame = frames.pop()
            self._close_frame(frame, t, on_close)
            active[frame.proc_id] -= 1
            if frame.outermost:
                pass  # head edge closed inside _close_frame
        return t

    @staticmethod
    def _close_frame(frame: _Frame, t: int, on_close) -> None:
        ls = frame.loop_stack
        while ls:
            span = ls.pop()
            on_close(span.head_node, span.body_node, span.iter_open_t, t, span.source)
            on_close(span.parent_ctx, span.head_node, span.head_open_t, t, span.source)
        on_close(frame.head_node, frame.body_node, frame.body_open_t, t, None)
        if frame.outermost:
            on_close(
                frame.head_parent, frame.head_node, frame.head_open_t, t, frame.site_source
            )
