"""Static loop discovery from the binary.

The paper identifies loops the way ATOM sees them: "we identify loop back
edges by looking for non-interprocedural backwards branches.  A loop is
the static code region from the backwards branch to its target."  This
module scans block terminators for such branches — it does *not* look at
the structured statement tree, so it works on any laid-out program
(including linker-produced variants whose offsets differ).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.ir.program import Program, SourceLoc, TermKind


@dataclass(frozen=True)
class StaticLoop:
    """A discovered loop: the code region [header_address, latch_branch]."""

    proc: str
    label: str
    header_address: int
    latch_branch_address: int
    source: SourceLoc  #: debug info of the back-edge (stable across builds)

    def contains_address(self, address: int) -> bool:
        """True if *address* lies within the static loop region."""
        return self.header_address <= address <= self.latch_branch_address

    @property
    def uid(self) -> str:
        """Stable identity across recompilations: proc + source line."""
        return f"{self.proc}@{self.source.file}:{self.source.line}"


def discover_loops(program: Program) -> Dict[int, StaticLoop]:
    """Find all loops; returns a map from header address to loop.

    Raises ``ValueError`` if two back-edges share a header (our IR never
    produces that shape, and the profiler's region tracking assumes it).
    """
    loops: Dict[int, StaticLoop] = {}
    for proc in program.procedures.values():
        for block in proc.blocks:
            term = block.terminator
            if term.kind != TermKind.COND_BRANCH or term.target_offset is None:
                continue
            if term.target_offset > block.offset:
                continue  # forward branch: not a back-edge
            header_address = proc.base_address + term.target_offset * 4
            latch_branch = block.end_address
            label = block.label
            if label.endswith(".latch"):
                label = label[: -len(".latch")]
            loop = StaticLoop(
                proc=proc.name,
                label=label,
                header_address=header_address,
                latch_branch_address=latch_branch,
                source=block.source,
            )
            if header_address in loops:
                raise ValueError(
                    f"{proc.name}: multiple back-edges to {header_address:#x}"
                )
            loops[header_address] = loop
    return loops


def loops_by_procedure(loops: Dict[int, StaticLoop]) -> Dict[str, List[StaticLoop]]:
    """Group discovered loops by procedure, sorted by header address."""
    grouped: Dict[str, List[StaticLoop]] = {}
    for loop in loops.values():
        grouped.setdefault(loop.proc, []).append(loop)
    for entry in grouped.values():
        entry.sort(key=lambda lp: lp.header_address)
    return grouped


def check_proper_nesting(loops: Dict[int, StaticLoop]) -> None:
    """Verify loop regions in each procedure are disjoint or nested."""
    for proc, plist in loops_by_procedure(loops).items():
        stack: List[StaticLoop] = []
        for loop in plist:
            while stack and loop.header_address > stack[-1].latch_branch_address:
                stack.pop()
            if stack and loop.latch_branch_address > stack[-1].latch_branch_address:
                raise ValueError(
                    f"{proc}: loops {stack[-1].label} and {loop.label} "
                    f"overlap without nesting"
                )
            stack.append(loop)
