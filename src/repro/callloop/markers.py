"""Phase markers: selected call-loop edges and their runtime matching.

A software phase marker is a call-loop graph edge chosen by the selection
algorithm; executing the corresponding code location (call site, loop
entry, or loop back-edge) signals the start of a new behavior interval.
Marker identity is source-stable (node identities are proc names and loop
source lines), so a :class:`MarkerSet` selected on one binary can be
applied to another compilation of the same source.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.callloop.graph import Node, NodeTable
from repro.ir.program import SourceLoc


@dataclass(frozen=True)
class PhaseMarker:
    """One selected marker.

    ``merge_iterations`` > 1 means the marker sits on a loop's head->body
    edge and fires only every Nth iteration (Section 5.2's grouping of
    consecutive loop iterations).  ``forced`` flags markers inserted by the
    max-limit heuristic rather than by the CoV test.
    """

    marker_id: int
    src: Node
    dst: Node
    avg_interval: float
    cov: float
    max_interval: float
    merge_iterations: int = 1
    forced: bool = False
    site_sources: Tuple[SourceLoc, ...] = ()

    @property
    def edge_key(self) -> Tuple[Node, Node]:
        return (self.src, self.dst)

    def describe(self) -> str:
        """Human-readable location, e.g. ``work[body] -> inner[loop-head]``."""
        extra = f" x{self.merge_iterations}" if self.merge_iterations > 1 else ""
        flag = " (forced)" if self.forced else ""
        return f"#{self.marker_id} {self.src} -> {self.dst}{extra}{flag}"


@dataclass
class MarkerSet:
    """All markers selected for one program under one parameterization."""

    program_name: str
    variant: str
    ilower: float
    max_limit: Optional[float]
    markers: List[PhaseMarker] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._by_edge: Dict[Tuple[Node, Node], PhaseMarker] = {
            m.edge_key: m for m in self.markers
        }
        if len(self._by_edge) != len(self.markers):
            raise ValueError("duplicate markers on the same edge")

    def __len__(self) -> int:
        return len(self.markers)

    def __iter__(self):
        return iter(self.markers)

    def marker_for(self, src: Node, dst: Node) -> Optional[PhaseMarker]:
        return self._by_edge.get((src, dst))

    @property
    def num_phase_ids(self) -> int:
        """Phase ids: one per marker, plus phase 0 for the unmarked prologue."""
        return len(self.markers) + 1

    def describe(self) -> str:
        lines = [
            f"{len(self.markers)} markers for {self.program_name} "
            f"({self.variant}), ilower={self.ilower:g}"
            + (f", max_limit={self.max_limit:g}" if self.max_limit else "")
        ]
        lines.extend("  " + m.describe() for m in self.markers)
        return "\n".join(lines)


class MarkerTracker:
    """Runtime marker matching against walker edge-open notifications.

    Used by the VLI splitter and the cross-binary marker tracer.  The
    tracker resolves markers to the *target* program's node table (which
    may belong to a different compilation than the markers were selected
    on) and implements every-Nth-iteration firing for merged loop markers.
    """

    def __init__(self, marker_set: MarkerSet, table: NodeTable):
        self.marker_set = marker_set
        self.table = table
        self._by_pair: Dict[Tuple[int, int], PhaseMarker] = {}
        self._counters: Dict[Tuple[int, int], int] = {}
        self._reset_on_head: Dict[int, List[Tuple[int, int]]] = {}
        self.unmapped: List[PhaseMarker] = []
        node_index = {node: i for i, node in enumerate(table.nodes)}
        for marker in marker_set:
            src = node_index.get(marker.src)
            dst = node_index.get(marker.dst)
            if src is None or dst is None:
                self.unmapped.append(marker)
                continue
            pair = (src, dst)
            self._by_pair[pair] = marker
            if marker.merge_iterations > 1:
                self._counters[pair] = 0
                # reset the counter whenever the loop is (re-)entered
                self._reset_on_head.setdefault(src, []).append(pair)

    def reset(self) -> None:
        """Zero the merged-iteration counters (fresh-run state).

        Callers that reuse a tracker across independent runs (e.g.
        :meth:`repro.runtime.monitor.PhaseMonitor.run`) call this so a
        merged marker's every-Nth cadence restarts with the stream.
        """
        for pair in self._counters:
            self._counters[pair] = 0

    def edge_opened(self, src: int, dst: int) -> Optional[PhaseMarker]:
        """Returns the marker that fires on this edge opening, if any."""
        resets = self._reset_on_head.get(dst)
        if resets is not None:
            for pair in resets:
                self._counters[pair] = 0
        pair = (src, dst)
        marker = self._by_pair.get(pair)
        if marker is None:
            return None
        n = marker.merge_iterations
        if n <= 1:
            return marker
        count = self._counters[pair]
        self._counters[pair] = count + 1
        if count % n == 0:
            return marker
        return None
