"""Marker-set serialization: the handoff to binary instrumentation.

The paper's deployment model is offline: select markers once, then
"insert code into the binary at phase markers ... with a binary
modification tool such as OM or ALTO".  That handoff needs a durable,
binary-independent representation — which is exactly what the
source-anchored node identities provide.  This module round-trips
:class:`MarkerSet` objects through plain JSON so a marker file produced
by one profiling session can drive instrumentation (or this package's
own runtime monitor) anywhere.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Union

from repro.callloop.graph import Node, NodeKind
from repro.callloop.markers import MarkerSet, PhaseMarker
from repro.ir.program import SourceLoc

FORMAT_VERSION = 1


def node_to_dict(node: Node) -> Dict[str, Any]:
    return {
        "kind": node.kind.name,
        "proc": node.proc,
        "loop_uid": node.loop_uid,
        "label": node.label,
    }


def node_from_dict(data: Dict[str, Any]) -> Node:
    return Node(
        kind=NodeKind[data["kind"]],
        proc=data["proc"],
        loop_uid=data.get("loop_uid", ""),
        label=data.get("label", ""),
    )


def marker_to_dict(marker: PhaseMarker) -> Dict[str, Any]:
    return {
        "marker_id": marker.marker_id,
        "src": node_to_dict(marker.src),
        "dst": node_to_dict(marker.dst),
        "avg_interval": marker.avg_interval,
        "cov": marker.cov,
        "max_interval": marker.max_interval,
        "merge_iterations": marker.merge_iterations,
        "forced": marker.forced,
        "site_sources": [
            {"file": s.file, "line": s.line} for s in marker.site_sources
        ],
    }


def marker_from_dict(data: Dict[str, Any]) -> PhaseMarker:
    return PhaseMarker(
        marker_id=int(data["marker_id"]),
        src=node_from_dict(data["src"]),
        dst=node_from_dict(data["dst"]),
        avg_interval=float(data["avg_interval"]),
        cov=float(data["cov"]),
        max_interval=float(data["max_interval"]),
        merge_iterations=int(data.get("merge_iterations", 1)),
        forced=bool(data.get("forced", False)),
        site_sources=tuple(
            SourceLoc(s["file"], int(s["line"]))
            for s in data.get("site_sources", ())
        ),
    )


def marker_set_to_dict(marker_set: MarkerSet) -> Dict[str, Any]:
    """A JSON-ready representation of a marker set."""
    return {
        "format_version": FORMAT_VERSION,
        "program_name": marker_set.program_name,
        "variant": marker_set.variant,
        "ilower": marker_set.ilower,
        "max_limit": marker_set.max_limit,
        "markers": [marker_to_dict(m) for m in marker_set],
    }


def marker_set_from_dict(data: Dict[str, Any]) -> MarkerSet:
    """Reconstruct a marker set (raises on unknown format versions)."""
    version = data.get("format_version")
    if version != FORMAT_VERSION:
        raise ValueError(
            f"unsupported marker file version {version!r} "
            f"(expected {FORMAT_VERSION})"
        )
    return MarkerSet(
        program_name=data["program_name"],
        variant=data.get("variant", "base"),
        ilower=float(data["ilower"]),
        max_limit=data.get("max_limit"),
        markers=[marker_from_dict(m) for m in data["markers"]],
    )


def save_markers(marker_set: MarkerSet, path: Union[str, Path]) -> None:
    """Write a marker set to a JSON file."""
    Path(path).write_text(
        json.dumps(marker_set_to_dict(marker_set), indent=2, sort_keys=True)
    )


def load_markers(path: Union[str, Path]) -> MarkerSet:
    """Read a marker set from a JSON file."""
    return marker_set_from_dict(json.loads(Path(path).read_text()))
