"""Marker-set and call-loop-graph serialization.

The paper's deployment model is offline: select markers once, then
"insert code into the binary at phase markers ... with a binary
modification tool such as OM or ALTO".  That handoff needs a durable,
binary-independent representation — which is exactly what the
source-anchored node identities provide.  This module round-trips
:class:`MarkerSet` objects through plain JSON so a marker file produced
by one profiling session can drive instrumentation (or this package's
own runtime monitor) anywhere.

It also round-trips whole :class:`CallLoopGraph` profiles.  Profiling is
by far the most expensive stage of the pipeline (one shadow-stack pass
over the full trace), while the graph itself is tiny — a few hundred
edges of (count, mean, M2, max) accumulators.  Serialized graphs are what
the experiment runner's on-disk profile cache stores
(:mod:`repro.runner.cache`), so a re-run selects markers from the saved
annotations instead of re-profiling.

Both round-trips are *exact*: floats survive via ``repr`` (the JSON
encoder's float format), and edge insertion order is preserved so
selection over a loaded graph is byte-identical to selection over the
original.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Union

from repro.callloop.graph import CallLoopGraph, Node, NodeKind
from repro.callloop.markers import MarkerSet, PhaseMarker
from repro.callloop.stats import RunningStats
from repro.ir.program import SourceLoc

FORMAT_VERSION = 1
GRAPH_FORMAT_VERSION = 1


def node_to_dict(node: Node) -> Dict[str, Any]:
    return {
        "kind": node.kind.name,
        "proc": node.proc,
        "loop_uid": node.loop_uid,
        "label": node.label,
    }


def node_from_dict(data: Dict[str, Any]) -> Node:
    return Node(
        kind=NodeKind[data["kind"]],
        proc=data["proc"],
        loop_uid=data.get("loop_uid", ""),
        label=data.get("label", ""),
    )


def marker_to_dict(marker: PhaseMarker) -> Dict[str, Any]:
    return {
        "marker_id": marker.marker_id,
        "src": node_to_dict(marker.src),
        "dst": node_to_dict(marker.dst),
        "avg_interval": marker.avg_interval,
        "cov": marker.cov,
        "max_interval": marker.max_interval,
        "merge_iterations": marker.merge_iterations,
        "forced": marker.forced,
        "site_sources": [
            {"file": s.file, "line": s.line} for s in marker.site_sources
        ],
    }


def marker_from_dict(data: Dict[str, Any]) -> PhaseMarker:
    return PhaseMarker(
        marker_id=int(data["marker_id"]),
        src=node_from_dict(data["src"]),
        dst=node_from_dict(data["dst"]),
        avg_interval=float(data["avg_interval"]),
        cov=float(data["cov"]),
        max_interval=float(data["max_interval"]),
        merge_iterations=int(data.get("merge_iterations", 1)),
        forced=bool(data.get("forced", False)),
        site_sources=tuple(
            SourceLoc(s["file"], int(s["line"]))
            for s in data.get("site_sources", ())
        ),
    )


def marker_set_to_dict(marker_set: MarkerSet) -> Dict[str, Any]:
    """A JSON-ready representation of a marker set."""
    return {
        "format_version": FORMAT_VERSION,
        "program_name": marker_set.program_name,
        "variant": marker_set.variant,
        "ilower": marker_set.ilower,
        "max_limit": marker_set.max_limit,
        "markers": [marker_to_dict(m) for m in marker_set],
    }


def marker_set_from_dict(data: Dict[str, Any]) -> MarkerSet:
    """Reconstruct a marker set (raises on unknown format versions)."""
    version = data.get("format_version")
    if version != FORMAT_VERSION:
        raise ValueError(
            f"unsupported marker file version {version!r} "
            f"(expected {FORMAT_VERSION})"
        )
    return MarkerSet(
        program_name=data["program_name"],
        variant=data.get("variant", "base"),
        ilower=float(data["ilower"]),
        max_limit=data.get("max_limit"),
        markers=[marker_from_dict(m) for m in data["markers"]],
    )


def save_markers(marker_set: MarkerSet, path: Union[str, Path]) -> None:
    """Write a marker set to a JSON file."""
    Path(path).write_text(
        json.dumps(marker_set_to_dict(marker_set), indent=2, sort_keys=True)
    )


def load_markers(path: Union[str, Path]) -> MarkerSet:
    """Read a marker set from a JSON file."""
    return marker_set_from_dict(json.loads(Path(path).read_text()))


# -- call-loop graphs ---------------------------------------------------------


def stats_to_dict(stats: RunningStats) -> Dict[str, Any]:
    """The accumulator state; max/min are None for an empty accumulator
    (JSON has no infinities)."""
    return {
        "count": stats.count,
        "mean": stats.mean,
        "m2": stats.m2,
        "max_value": stats.max_value if stats.count else None,
        "min_value": stats.min_value if stats.count else None,
    }


def stats_from_dict(data: Dict[str, Any]) -> RunningStats:
    # values pass through untouched: JSON keeps int vs float distinct and
    # round-trips both exactly, so the loaded accumulator is bit-identical
    empty = RunningStats()
    return RunningStats(
        count=data["count"],
        mean=data["mean"],
        m2=data["m2"],
        max_value=empty.max_value if data["max_value"] is None else data["max_value"],
        min_value=empty.min_value if data["min_value"] is None else data["min_value"],
    )


def graph_to_dict(graph: CallLoopGraph) -> Dict[str, Any]:
    """A JSON-ready representation of an annotated call-loop graph.

    Edges appear in insertion (observation) order and site sources are
    sorted, so equal graphs serialize to equal documents.
    """
    return {
        "graph_format_version": GRAPH_FORMAT_VERSION,
        "program_name": graph.program_name,
        "variant": graph.variant,
        "total_instructions": graph.total_instructions,
        "edges": [
            {
                "src": node_to_dict(e.src),
                "dst": node_to_dict(e.dst),
                "stats": stats_to_dict(e.stats),
                "site_sources": [
                    {"file": s.file, "line": s.line}
                    for s in sorted(e.site_sources, key=lambda s: (s.file, s.line))
                ],
            }
            for e in graph.edges
        ],
    }


def graph_from_dict(data: Dict[str, Any]) -> CallLoopGraph:
    """Reconstruct a call-loop graph (raises on unknown format versions).

    The loaded graph is selection-equivalent to the original: identical
    edge statistics *and* identical edge ordering.
    """
    version = data.get("graph_format_version")
    if version != GRAPH_FORMAT_VERSION:
        raise ValueError(
            f"unsupported graph file version {version!r} "
            f"(expected {GRAPH_FORMAT_VERSION})"
        )
    graph = CallLoopGraph(data["program_name"], data.get("variant", "base"))
    graph.total_instructions = int(data["total_instructions"])
    for edge_data in data["edges"]:
        edge = graph.edge(
            node_from_dict(edge_data["src"]), node_from_dict(edge_data["dst"])
        )
        edge.stats = stats_from_dict(edge_data["stats"])
        edge.site_sources = {
            SourceLoc(s["file"], int(s["line"]))
            for s in edge_data.get("site_sources", ())
        }
    return graph


def save_graph(graph: CallLoopGraph, path: Union[str, Path]) -> None:
    """Write an annotated call-loop graph to a JSON file."""
    Path(path).write_text(json.dumps(graph_to_dict(graph), sort_keys=True))


def load_graph(path: Union[str, Path]) -> CallLoopGraph:
    """Read an annotated call-loop graph from a JSON file."""
    return graph_from_dict(json.loads(Path(path).read_text()))
