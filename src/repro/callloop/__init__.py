"""The paper's primary contribution: hierarchical call-loop graph analysis.

Pipeline (paper Sections 4 and 5):

1. :func:`~repro.callloop.loops.discover_loops` finds loops statically as
   non-interprocedural backwards branches (Section 4.2).
2. :class:`~repro.callloop.profiler.CallLoopProfiler` walks an execution
   trace with a shadow call/loop stack and builds the
   :class:`~repro.callloop.graph.CallLoopGraph`, annotating every edge with
   traversal count, average / standard deviation / max of the hierarchical
   instruction count (Section 4).
3. :func:`~repro.callloop.selection.select_markers` runs the two-pass
   selection algorithm over the graph (Section 5.1);
   :func:`~repro.callloop.limits.select_markers_with_limit` adds the
   max-interval-size heuristics used for SimPoint (Section 5.2).
4. :mod:`~repro.callloop.crossbinary` maps a marker set across
   recompilations of the same source via source locations (Section 6.2.1).
"""

from repro.callloop.graph import CallLoopGraph, Edge, Node, NodeKind
from repro.callloop.loops import StaticLoop, discover_loops
from repro.callloop.profiler import CallLoopProfiler, build_call_loop_graph
from repro.callloop.markers import MarkerSet, PhaseMarker
from repro.callloop.selection import (
    SelectionParams,
    select_markers,
    select_markers_scalar,
)
from repro.callloop.limits import LimitParams, select_markers_with_limit
from repro.callloop.stats import RunningStats
from repro.callloop.vectorized import EdgeArrays, build_edge_arrays
from repro.callloop.crossbinary import map_markers, marker_trace
from repro.callloop.serialization import (
    load_graph,
    load_markers,
    save_graph,
    save_markers,
)
from repro.callloop.dot import to_dot

__all__ = [
    "CallLoopGraph",
    "Edge",
    "Node",
    "NodeKind",
    "StaticLoop",
    "discover_loops",
    "CallLoopProfiler",
    "build_call_loop_graph",
    "MarkerSet",
    "PhaseMarker",
    "SelectionParams",
    "select_markers",
    "select_markers_scalar",
    "LimitParams",
    "select_markers_with_limit",
    "RunningStats",
    "EdgeArrays",
    "build_edge_arrays",
    "map_markers",
    "marker_trace",
    "load_graph",
    "load_markers",
    "save_graph",
    "save_markers",
    "to_dot",
]
