"""Maximum call-loop depth estimation and node processing order.

Pass 1 of the selection algorithm (paper Section 5.1) processes nodes in
decreasing estimated maximum depth (children before parents), breaking
ties by increasing out-degree (leaves before non-leaves).  Depth is
estimated with "a modified depth-first search, where a node can be
traversed more than once if we later find a longer path to that node.  We
never re-traverse a node on the current path, to ensure the algorithm
terminates if the graph contains a cycle."
"""

from __future__ import annotations

from typing import Dict, List

from repro.callloop.graph import CallLoopGraph, Node, ROOT


def estimate_max_depth(graph: CallLoopGraph) -> Dict[Node, int]:
    """Longest-path depth estimate from the graph roots.

    Cycles (recursion) are cut by never revisiting a node on the current
    path, exactly as the paper specifies.

    Depth depends only on the edge set, so the result is memoized on the
    graph and reused until an edge is added (selection runs several
    marker configurations over one profiled graph).
    """
    cached = graph._analysis_cache.get("max_depth")
    if cached is not None and cached[0] == graph.num_edges:
        return dict(cached[1])
    depth = _estimate_max_depth_uncached(graph)
    graph._analysis_cache["max_depth"] = (graph.num_edges, depth)
    return dict(depth)


def _estimate_max_depth_uncached(graph: CallLoopGraph) -> Dict[Node, int]:
    depth: Dict[Node, int] = {}
    roots = [n for n in graph.nodes if not graph.in_edges(n)]
    if not roots:
        roots = [ROOT] if ROOT in graph.nodes else graph.nodes[:1]
    # Iterative DFS; each stack entry re-expands a node whose depth grew.
    for root in roots:
        depth.setdefault(root, 0)
        stack: List[tuple] = [(root, iter(list(graph.successors(root))))]
        on_path = {root}
        while stack:
            node, it = stack[-1]
            advanced = False
            for succ in it:
                if succ in on_path:
                    continue
                candidate = depth[node] + 1
                if candidate > depth.get(succ, -1):
                    depth[succ] = candidate
                    stack.append((succ, iter(list(graph.successors(succ)))))
                    on_path.add(succ)
                    advanced = True
                    break
            if not advanced:
                stack.pop()
                on_path.discard(node)
    # Nodes unreachable from any root (shouldn't happen in practice).
    for node in graph.nodes:
        depth.setdefault(node, 0)
    return depth


def processing_order(graph: CallLoopGraph) -> List[Node]:
    """Nodes sorted by decreasing max depth, ties by increasing out-degree.

    This is the queue order of both selection passes: leaves (small
    behaviors) are examined before their parents (large behaviors).
    Memoized per edge set, like :func:`estimate_max_depth`.
    """
    cached = graph._analysis_cache.get("processing_order")
    if cached is not None and cached[0] == graph.num_edges:
        return list(cached[1])
    order = _processing_order_uncached(graph)
    graph._analysis_cache["processing_order"] = (graph.num_edges, order)
    return list(order)


def _processing_order_uncached(graph: CallLoopGraph) -> List[Node]:
    """The depth ordering with no memoization — the pre-vectorization
    behavior, kept as the scalar engine's baseline."""
    depth = _estimate_max_depth_uncached(graph)
    return sorted(
        graph.nodes,
        key=lambda n: (-depth[n], graph.out_degree(n), str(n)),
    )
