"""Cross-binary phase markers (paper Section 6.2.1 and Figure 4).

Markers are selected on one binary, mapped "back to source code level,
using debug line number information", and applied to a different
compilation of the same source (different optimization level or ISA).
Because our node identities are already source-anchored (procedure names
and loop back-edge source lines), mapping reduces to re-resolving each
marker's nodes against the target binary's discovered structure — exactly
the role debug info plays in the paper — and reporting anything that
"compiled away".

:func:`marker_trace` produces the executed-marker sequence used both for
the Figure 4 time-varying overlay and for the Section 6.2.1 identity
check (the paper verifies the two binaries produce "the exact same number
of phase markers, and the exact same order").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.callloop.graph import NodeTable
from repro.callloop.markers import MarkerSet, MarkerTracker, PhaseMarker
from repro.callloop.walker import ContextHandler, ContextWalker
from repro.engine.machine import Machine
from repro.engine.tracing import Trace, record_trace
from repro.ir.program import Program, ProgramInput, SourceLoc


@dataclass
class MappingReport:
    """Result of mapping a marker set onto a target binary."""

    markers: MarkerSet
    mapped: List[PhaseMarker] = field(default_factory=list)
    unmapped: List[PhaseMarker] = field(default_factory=list)

    @property
    def fully_mapped(self) -> bool:
        return not self.unmapped


def map_markers(marker_set: MarkerSet, target: Program) -> MappingReport:
    """Map *marker_set* onto *target* (a recompilation of the same source).

    A marker maps iff both its endpoint nodes exist in the target binary's
    call-loop structure; node identity carries the source anchoring.
    """
    table = NodeTable(target)
    known = set(table.nodes)
    mapped: List[PhaseMarker] = []
    unmapped: List[PhaseMarker] = []
    for marker in marker_set:
        if marker.src in known and marker.dst in known:
            mapped.append(marker)
        else:
            unmapped.append(marker)
    result = MarkerSet(
        program_name=target.name,
        variant=target.variant,
        ilower=marker_set.ilower,
        max_limit=marker_set.max_limit,
        markers=mapped,
    )
    return MappingReport(markers=result, mapped=mapped, unmapped=unmapped)


@dataclass(frozen=True)
class MarkerFiring:
    """One executed marker: which marker, at what instruction count."""

    marker_id: int
    t: int


class _TraceRecorder(ContextHandler):
    def __init__(self, tracker: MarkerTracker):
        self.tracker = tracker
        self.firings: List[MarkerFiring] = []

    def on_edge_open(self, src: int, dst: int, t: int, source: Optional[SourceLoc]) -> None:
        marker = self.tracker.edge_opened(src, dst)
        if marker is not None:
            self.firings.append(MarkerFiring(marker.marker_id, t))


def marker_trace(
    program: Program,
    program_input: ProgramInput,
    marker_set: MarkerSet,
    trace: Optional[Trace] = None,
    max_instructions: Optional[int] = None,
) -> List[MarkerFiring]:
    """Run (or replay) the program and return the executed-marker sequence."""
    if trace is None:
        trace = record_trace(
            Machine(program, program_input, max_instructions=max_instructions)
        )
    table = NodeTable(program)
    tracker = MarkerTracker(marker_set, table)
    recorder = _TraceRecorder(tracker)
    ContextWalker(program, table).walk(trace, recorder)
    return recorder.firings


def traces_identical(
    a: List[MarkerFiring], b: List[MarkerFiring]
) -> bool:
    """Section 6.2.1's check: same markers, same order (counts included).

    Instruction counts are *expected* to differ between binaries; only the
    id sequence must match.
    """
    return [f.marker_id for f in a] == [f.marker_id for f in b]
