"""Struct-of-arrays edge view and the vectorized selection kernels.

The call-loop graph stores one :class:`~repro.callloop.graph.Edge`
object per edge, which is the right shape for construction (the profiler
folds observations in one at a time) but the wrong shape for analysis:
both selection passes, the threshold rule, and the per-program CoV
statistics are elementwise formulas over every edge.  This module gives
the graph a parallel-array view — ``avg``, ``cov``, ``max``, ``count``,
``total`` plus node-kind masks, all keyed by a **stable edge index**
(the graph's insertion order, which never changes because edges are only
ever added) — and the NumPy kernels that replace the per-edge Python
loops.

Exactness contract: every kernel here reproduces its scalar counterpart
bit-for-bit.  The derived statistics use the ``batch_*`` forms from
:mod:`repro.callloop.stats` (IEEE divide/sqrt are correctly rounded, and
the non-finite corner cases mirror Python's ``max``/comparison
semantics); the threshold kernel applies the same clip/affine formula as
``selection._cov_threshold``; candidate and traversal ordering reproduce
the scalar two-pass iteration order edge-for-edge.  ``repro.verify``
diff-checks the two engines on every run, and the golden corpus pins the
selections byte-for-byte.

The inputs are as reproducible as the kernels: edge statistics are
derived from exact integer moments
(:class:`~repro.callloop.stats.MomentStats`), so the arrays built here
are identical whether the profile ran sequentially or segmented across
any number of shards (``--profile-shards``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.callloop.graph import CallLoopGraph, Edge, Node, NodeKind
from repro.callloop.stats import batch_cov, batch_std

EdgeKey = Tuple[Node, Node]


@dataclass
class EdgeArrays:
    """Parallel per-edge arrays over a graph's edges, in insertion order.

    ``edges[i]`` is the Edge object behind index ``i``; ``index`` maps an
    edge's ``(src, dst)`` key back to its position.  The float arrays are
    bit-identical to the corresponding Edge properties.
    """

    edges: List[Edge]
    index: Dict[EdgeKey, int]
    count: np.ndarray  #: (E,) int64 traversal counts
    avg: np.ndarray  #: (E,) float64 average hierarchical count
    cov: np.ndarray  #: (E,) float64 CoV of the hierarchical count
    max: np.ndarray  #: (E,) float64 maximum hierarchical count
    total: np.ndarray  #: (E,) float64 total hierarchical count
    src_kind: np.ndarray  #: (E,) int8 NodeKind of the source node
    dst_kind: np.ndarray  #: (E,) int8 NodeKind of the destination node
    dst_is_loop: np.ndarray  #: (E,) bool — destination is a loop node

    def __len__(self) -> int:
        return len(self.edges)


def build_edge_arrays(graph: CallLoopGraph) -> EdgeArrays:
    """The struct-of-arrays view of *graph* (see ``graph.edge_arrays()``
    for the cached accessor)."""
    edges = graph.edges
    n = len(edges)
    count = np.fromiter((e.stats.count for e in edges), dtype=np.int64, count=n)
    mean = np.fromiter((e.stats.mean for e in edges), dtype=np.float64, count=n)
    m2 = np.fromiter((e.stats.m2 for e in edges), dtype=np.float64, count=n)
    max_value = np.fromiter(
        (e.stats.max_value for e in edges), dtype=np.float64, count=n
    )
    std = batch_std(count, m2)
    return EdgeArrays(
        edges=edges,
        index={e.key(): i for i, e in enumerate(edges)},
        count=count,
        avg=mean,
        cov=batch_cov(mean, std),
        max=max_value,
        total=mean * count,
        src_kind=np.fromiter(
            (int(e.src.kind) for e in edges), dtype=np.int8, count=n
        ),
        dst_kind=np.fromiter(
            (int(e.dst.kind) for e in edges), dtype=np.int8, count=n
        ),
        dst_is_loop=np.fromiter(
            (e.dst.kind.is_loop for e in edges), dtype=bool, count=n
        ),
    )


def candidate_mask(
    arrays: EdgeArrays, ilower: float, procedures_only: bool
) -> np.ndarray:
    """Pass-1 filter over all edges: structurally eligible and ``avg >=
    ilower`` (a NaN average fails the comparison, as in the scalar path)."""
    eligible = arrays.src_kind != int(NodeKind.ROOT)
    if procedures_only:
        eligible &= ~arrays.dst_is_loop
    with np.errstate(invalid="ignore"):
        return eligible & (arrays.avg >= ilower)


def traversal_indices(
    graph: CallLoopGraph, arrays: EdgeArrays, order: Sequence[Node]
) -> np.ndarray:
    """Edge indices in the two-pass iteration order: nodes in *order*,
    each node's in-edges in insertion order.

    Every edge appears exactly once (it has one destination node).  The
    result depends only on the edge set, so it is cached on the graph
    keyed by the edge count.
    """
    cached = graph._analysis_cache.get("traversal")
    if cached is not None and cached[0] == graph.num_edges:
        return cached[1]
    index = arrays.index
    flat: List[int] = []
    for node in order:
        for edge in graph.in_edges(node):
            flat.append(index[edge.key()])
    trav = np.array(flat, dtype=np.int64)
    graph._analysis_cache["traversal"] = (graph.num_edges, trav)
    return trav


def cov_threshold_kernel(
    avg: np.ndarray,
    ilower: float,
    avg_hi: float,
    base: float,
    spread: float,
    cov_floor: float,
) -> np.ndarray:
    """Pass-2 thresholds for every candidate at once.

    The batch form of ``max(_cov_threshold(avg, ...), cov_floor)``:
    linear in ``avg`` between ``base`` (at ``ilower``) and ``base +
    spread`` (at ``avg_hi``), clipped to that range, floored at
    ``cov_floor``.  Candidate averages are finite-or-``+inf`` by
    construction (a NaN average is never a candidate), so ``np.clip``
    matches the scalar min/max pair exactly.
    """
    if avg_hi <= ilower:
        thresholds = np.full(avg.shape, float(base))
    else:
        scale = np.clip((avg - ilower) / (avg_hi - ilower), 0.0, 1.0)
        thresholds = base + spread * scale
    return np.maximum(thresholds, cov_floor)


def finite_cov_stats(covs: np.ndarray) -> Tuple[float, float]:
    """Mean and standard deviation of the finite candidate CoVs.

    Non-finite CoVs (zero-observation edges round-tripped through
    serialization can carry inf/NaN moments) are excluded: a single
    ``inf`` would otherwise drive the per-program threshold base to
    ``inf`` and its spread to NaN, deselecting every marker.
    """
    covs = np.asarray(covs, dtype=np.float64)
    finite = covs[np.isfinite(covs)]
    if finite.size == 0:
        return 0.0, 0.0
    # hand-rolled population std: same pairwise summation as
    # ndarray.std (bit-identical) without its reduction dispatch cost
    mean = float(finite.mean())
    dev = finite - mean
    return mean, math.sqrt(float((dev * dev).mean()))
