"""Building the annotated call-loop graph from execution traces.

This is the reproduction of the paper's ATOM-based profiling step
(Section 4.2): one pass over the trace with the shadow call/loop stack,
folding every edge traversal's hierarchical instruction count into that
edge's running statistics.

The default path accumulates **exact integer moments** per edge
(:class:`~repro.callloop.stats.MomentStats`) and derives the float
:class:`~repro.callloop.stats.RunningStats` once at the end.  Exact
moments are associative, which unlocks the segmented profile: the trace
is cut at frame-boundary-safe rows (:meth:`ContextWalker.plan_segments`)
and the segments are walked independently — serially, on a thread pool,
or on a forked process pool — then merged, with a result bit-identical
to the sequential walk.  ``profile_trace(trace, shards=N)`` (the
``--profile-shards`` CLI flag) selects the segmented path; the
``segmented-profile`` verify check pins its equivalence on every fuzz
iteration.

:class:`_GraphBuilder` — the pre-segmentation handler that streamed
every traversal through a per-edge Welford accumulator — is retained as
the legacy reference implementation; ``benchmarks/
test_bench_profile_shards.py`` measures the shipping path against it.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.callloop.graph import CallLoopGraph, NodeTable
from repro.callloop.shards import SHARD_EXECUTORS, run_segments
from repro.callloop.stats import MomentStats
from repro.callloop.walker import ContextHandler, ContextWalker, TraceSegment
from repro.engine.machine import Machine
from repro.engine.tracing import Trace, record_trace
from repro.engine.events import K_BLOCK
from repro.ir.program import Program, ProgramInput, SourceLoc
from repro.telemetry import get_telemetry


class _GraphBuilder(ContextHandler):
    """Per-traversal Welford accumulation into a CallLoopGraph.

    The legacy (pre-segmentation) handler, kept as the baseline side of
    the profile-shards benchmark and as an independent second
    implementation: it streams ``t_close - t_open`` straight into each
    edge's :class:`RunningStats`, one callback per traversal.
    """

    def __init__(self, graph: CallLoopGraph, table: NodeTable):
        self.graph = graph
        self.table = table
        # (src, dst) node-id pair -> (RunningStats, site_sources); spares
        # the per-traversal Node hashing of CallLoopGraph.edge on the
        # walk's hottest callback.
        self._edge_cache = {}

    def on_edge_close(
        self,
        src: int,
        dst: int,
        t_open: int,
        t_close: int,
        source: Optional[SourceLoc],
    ) -> None:
        cached = self._edge_cache.get((src, dst))
        if cached is None:
            nodes = self.table.nodes
            edge = self.graph.edge(nodes[src], nodes[dst])
            cached = (edge.stats, edge.site_sources)
            self._edge_cache[(src, dst)] = cached
        cached[0].add(t_close - t_open)
        if source is not None:
            cached[1].add(source)


class _MomentBuilder(ContextHandler):
    """Exact integer edge moments — the default profiling handler.

    Keyed by ``(src, dst)`` node-id pair in first-close order (dict
    insertion order), which is what fixes the graph's edge order when
    the moments fold in.  Implements the batched back-edge hook, so
    long loop iteration runs arrive as one numpy ``diff`` + moment
    update instead of thousands of per-iteration callbacks.  Site
    sources dedupe through an identity check against the last source
    seen per edge before falling back to the set insert (sources are
    interned per call site / loop, so the common case never hashes).
    """

    def __init__(self) -> None:
        # (src, dst) -> [MomentStats, source_set, last_source]
        self.edges: Dict[Tuple[int, int], list] = {}

    def on_edge_close(
        self,
        src: int,
        dst: int,
        t_open: int,
        t_close: int,
        source: Optional[SourceLoc],
    ) -> None:
        entry = self.edges.get((src, dst))
        if entry is None:
            entry = self.edges[(src, dst)] = [MomentStats(), set(), None]
        entry[0].add(t_close - t_open)
        if source is not None and source is not entry[2]:
            entry[1].add(source)
            entry[2] = source

    def on_edge_iterations(
        self,
        head: int,
        body: int,
        t_prev: int,
        ts: np.ndarray,
        source: Optional[SourceLoc],
    ) -> None:
        entry = self.edges.get((head, body))
        if entry is None:
            entry = self.edges[(head, body)] = [MomentStats(), set(), None]
        entry[0].add_run(np.diff(ts, prepend=t_prev))
        if source is not None and source is not entry[2]:
            entry[1].add(source)
            entry[2] = source


class CallLoopProfiler:
    """Profiles runs of one program into a single call-loop graph.

    Multiple traces (e.g. several inputs of a train set) can be folded into
    the same graph with repeated :meth:`profile_trace` calls.

    ``shards`` sets the default segment count for :meth:`profile_trace`
    (``None``/``1`` = sequential); ``shard_executor`` picks how segments
    run (see :data:`SHARD_EXECUTORS`, default ``"threads"``).  The
    segmented result is bit-identical to the sequential one, so sharding
    is purely a throughput knob.
    """

    def __init__(
        self,
        program: Program,
        table: Optional[NodeTable] = None,
        shards: Optional[int] = None,
        shard_executor: Optional[str] = None,
    ):
        self.program = program
        self.table = table or NodeTable(program)
        self.graph = CallLoopGraph(program.name, program.variant)
        self.shards = shards
        self.shard_executor = shard_executor
        self._walker = ContextWalker(program, self.table)

    def profile_trace(
        self,
        trace: Trace,
        shards: Optional[int] = None,
        executor: Optional[str] = None,
    ) -> CallLoopGraph:
        """Fold one recorded trace into the graph.

        ``shards > 1`` cuts the trace at frame-boundary-safe rows and
        walks the segments independently (*executor*: ``"serial"``,
        ``"threads"`` — the default — or ``"processes"``), merging the
        exact per-segment moments afterwards; traces without safe cut
        points fall back to the sequential walk.  Either way the
        resulting graph is bit-identical.
        """
        tm = get_telemetry()
        shards = self.shards if shards is None else shards
        executor = executor or self.shard_executor
        if not tm.enabled:
            return self._profile_trace(trace, shards, executor)
        with tm.span(
            "callloop.profile_trace",
            program=self.program.name,
            shards=shards or 1,
        ):
            graph = self._profile_trace(trace, shards, executor)
            tm.gauge("callloop.graph.nodes", self.graph.num_nodes)
            tm.gauge("callloop.graph.edges", self.graph.num_edges)
        return graph

    def _profile_trace(
        self, trace: Trace, shards: Optional[int], executor: Optional[str]
    ) -> CallLoopGraph:
        tm = get_telemetry()
        if shards is not None and shards > 1:
            segments = self._walker.plan_segments(trace, shards)
            if segments:
                return self._profile_segmented(trace, segments, executor)
            if tm.enabled:
                tm.counter("callloop.profile.sequential_fallbacks")
        handler = _MomentBuilder()
        total = self._walker.walk(trace, handler)
        self._fold_edges([handler.edges])
        self.graph.total_instructions += total
        if tm.enabled:
            tm.counter("callloop.profile.instructions", total)
        return self.graph

    def _profile_segmented(
        self, trace: Trace, segments: List[TraceSegment], executor: Optional[str]
    ) -> CallLoopGraph:
        tm = get_telemetry()
        executor = executor or "threads"
        if executor not in SHARD_EXECUTORS:
            raise ValueError(
                f"unknown shard executor {executor!r}; "
                f"expected one of {SHARD_EXECUTORS}"
            )
        # Build the shared lookup tables once, before any worker touches
        # the walker (they are lazily cached and not locked).
        self._walker._ensure_addr_tables()
        total = int(
            np.sum(np.where(trace.kinds == K_BLOCK, trace.c, 0), dtype=np.int64)
        )
        with tm.span(
            "callloop.profile_segments",
            segments=len(segments),
            executor=executor,
        ):
            sharded = self._run_segments(trace, segments, executor)
            edge_maps = [edges for edges, _ in sharded]
            if tm.enabled:
                # Parent-emitted shard spans: workers only *measure*
                # (monotonic_ns brackets), so nothing touches the
                # session from worker threads or forked children.
                for i, (_, (t0, t1)) in enumerate(sharded):
                    tm.emit_span(
                        "callloop.walk_segment",
                        t0,
                        t1,
                        tid=tm.lane(f"shard {i}"),
                        segment=i,
                        executor=executor,
                    )
        self._fold_edges(edge_maps)
        self.graph.total_instructions += total
        if tm.enabled:
            tm.counter("callloop.profile.instructions", total)
            tm.counter("callloop.profile.segments", len(segments))
        return self.graph

    def _run_segments(
        self, trace: Trace, segments: List[TraceSegment], executor: str
    ) -> List[Tuple[Dict[Tuple[int, int], list], Tuple[int, int]]]:
        """Walk every segment under *executor*; segment-ordered
        ``(edge_map, (start_ns, end_ns))`` pairs.

        Delegates to the shared :func:`repro.callloop.shards.run_segments`
        machinery: each worker gets its own :class:`ContextWalker` cursor
        (sharing the parent's lazily built address tables) and its own
        :class:`_MomentBuilder`; only the per-segment edge maps (exact
        integer moments + source sets) come back.
        """
        shared_tables = self._walker._addr_tables

        def walker_for() -> ContextWalker:
            walker = ContextWalker(self.program, self.table)
            walker._addr_tables = shared_tables
            return walker

        return run_segments(
            walker_for,
            lambda walker: _MomentBuilder(),
            lambda handler: handler.edges,
            trace,
            segments,
            executor,
            workers=_shard_workers(),
        )

    def _fold_edges(
        self, edge_maps: Iterable[Dict[Tuple[int, int], list]]
    ) -> None:
        """Merge per-segment edge maps into the graph, in segment order.

        Exact integer moments merge by addition, so the totals equal the
        sequential walk's regardless of the segmentation; per-segment
        first-close order concatenates to the sequential first-close
        order, fixing the graph's edge order.  The derived
        :class:`RunningStats` adopt exactly when the edge is fresh and
        fold via the parallel merge formula when several traces
        accumulate into one graph.
        """
        merged: Dict[Tuple[int, int], list] = {}
        for edges in edge_maps:
            for key, entry in edges.items():
                into = merged.get(key)
                if into is None:
                    merged[key] = entry
                else:
                    into[0].merge(entry[0])
                    into[1] |= entry[1]
        nodes = self.table.nodes
        for (src, dst), entry in merged.items():
            edge = self.graph.edge(nodes[src], nodes[dst])
            edge.stats = edge.stats.merge(entry[0].to_running_stats())
            edge.site_sources |= entry[1]

    def profile_input(
        self, program_input: ProgramInput, max_instructions: Optional[int] = None
    ) -> CallLoopGraph:
        """Run the program on *program_input* and fold the trace in."""
        trace = record_trace(
            Machine(self.program, program_input, max_instructions=max_instructions)
        )
        return self.profile_trace(trace)


def _shard_workers() -> int:
    """Worker cap for shard executors: the CPUs available to us."""
    from repro.runner.parallel import available_cpus

    return available_cpus()


def build_call_loop_graph(
    program: Program,
    inputs: Iterable[ProgramInput],
    max_instructions: Optional[int] = None,
) -> CallLoopGraph:
    """Profile *program* over all *inputs* and return the merged graph."""
    profiler = CallLoopProfiler(program)
    ran_any = False
    for program_input in inputs:
        profiler.profile_input(program_input, max_instructions=max_instructions)
        ran_any = True
    if not ran_any:
        raise ValueError("at least one input is required")
    return profiler.graph
