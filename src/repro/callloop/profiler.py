"""Building the annotated call-loop graph from execution traces.

This is the reproduction of the paper's ATOM-based profiling step
(Section 4.2): one pass over the trace with the shadow call/loop stack,
folding every edge traversal's hierarchical instruction count into that
edge's running statistics.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.callloop.graph import CallLoopGraph, NodeTable
from repro.callloop.walker import ContextHandler, ContextWalker
from repro.engine.machine import Machine
from repro.engine.tracing import Trace, record_trace
from repro.ir.program import Program, ProgramInput, SourceLoc
from repro.telemetry import get_telemetry


class _GraphBuilder(ContextHandler):
    """Handler that accumulates edge statistics into a CallLoopGraph."""

    def __init__(self, graph: CallLoopGraph, table: NodeTable):
        self.graph = graph
        self.table = table
        # (src, dst) node-id pair -> (RunningStats, site_sources); spares
        # the per-traversal Node hashing of CallLoopGraph.edge on the
        # walk's hottest callback.
        self._edge_cache = {}

    def on_edge_close(
        self,
        src: int,
        dst: int,
        t_open: int,
        t_close: int,
        source: Optional[SourceLoc],
    ) -> None:
        cached = self._edge_cache.get((src, dst))
        if cached is None:
            nodes = self.table.nodes
            edge = self.graph.edge(nodes[src], nodes[dst])
            cached = (edge.stats, edge.site_sources)
            self._edge_cache[(src, dst)] = cached
        cached[0].add(t_close - t_open)
        if source is not None:
            cached[1].add(source)


class CallLoopProfiler:
    """Profiles runs of one program into a single call-loop graph.

    Multiple traces (e.g. several inputs of a train set) can be folded into
    the same graph with repeated :meth:`profile_trace` calls.
    """

    def __init__(self, program: Program, table: Optional[NodeTable] = None):
        self.program = program
        self.table = table or NodeTable(program)
        self.graph = CallLoopGraph(program.name, program.variant)
        self._walker = ContextWalker(program, self.table)

    def profile_trace(self, trace: Trace) -> CallLoopGraph:
        """Fold one recorded trace into the graph."""
        tm = get_telemetry()
        handler = _GraphBuilder(self.graph, self.table)
        if not tm.enabled:
            total = self._walker.walk(trace, handler)
            self.graph.total_instructions += total
            return self.graph
        with tm.span("callloop.profile_trace", program=self.program.name):
            total = self._walker.walk(trace, handler)
            self.graph.total_instructions += total
            tm.gauge("callloop.graph.nodes", self.graph.num_nodes)
            tm.gauge("callloop.graph.edges", self.graph.num_edges)
            tm.counter("callloop.profile.instructions", total)
        return self.graph

    def profile_input(
        self, program_input: ProgramInput, max_instructions: Optional[int] = None
    ) -> CallLoopGraph:
        """Run the program on *program_input* and fold the trace in."""
        trace = record_trace(
            Machine(self.program, program_input, max_instructions=max_instructions)
        )
        return self.profile_trace(trace)


def build_call_loop_graph(
    program: Program,
    inputs: Iterable[ProgramInput],
    max_instructions: Optional[int] = None,
) -> CallLoopGraph:
    """Profile *program* over all *inputs* and return the merged graph."""
    profiler = CallLoopProfiler(program)
    ran_any = False
    for program_input in inputs:
        profiler.profile_input(program_input, max_instructions=max_instructions)
        ran_any = True
    if not ran_any:
        raise ValueError("at least one input is required")
    return profiler.graph
