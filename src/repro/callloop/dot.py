"""Graphviz DOT export of annotated call-loop graphs.

The paper's Figure 2 is exactly this picture: nodes for procedure and
loop heads/bodies, edges labeled with C (traversals), A (average
hierarchical instructions), and CoV.  ``to_dot`` renders any profiled
graph in that style; selected markers can be highlighted.
"""

from __future__ import annotations

from typing import Optional, Set, Tuple

from repro.callloop.graph import CallLoopGraph, Node, NodeKind
from repro.callloop.markers import MarkerSet

_SHAPES = {
    NodeKind.ROOT: "point",
    NodeKind.PROC_HEAD: "box",
    NodeKind.PROC_BODY: "box",
    NodeKind.LOOP_HEAD: "ellipse",
    NodeKind.LOOP_BODY: "ellipse",
}


def _node_id(node: Node) -> str:
    return (
        f"n_{node.kind.name}_{node.proc}_{node.loop_uid}".replace(":", "_")
        .replace("@", "_")
        .replace(".", "_")
        .replace("/", "_")
        .replace("-", "_")
    )


def _quote(text: str) -> str:
    return '"' + text.replace("\\", "\\\\").replace('"', '\\"') + '"'


def to_dot(
    graph: CallLoopGraph,
    markers: Optional[MarkerSet] = None,
    min_edge_count: int = 1,
) -> str:
    """Render *graph* as a DOT digraph string.

    Edges selected in *markers* are drawn bold red; edges traversed fewer
    than *min_edge_count* times are omitted (useful on large graphs).
    """
    marked: Set[Tuple[Node, Node]] = set()
    if markers is not None:
        marked = {m.edge_key for m in markers}

    lines = [
        f"digraph {_quote(graph.program_name)} {{",
        "  rankdir=TB;",
        f"  label={_quote(graph.summary())};",
        "  node [fontsize=10];",
        "  edge [fontsize=9];",
    ]
    nodes_used = set()
    edge_lines = []
    for edge in graph.edges:
        if edge.count < min_edge_count:
            continue
        nodes_used.add(edge.src)
        nodes_used.add(edge.dst)
        label = f"C={edge.count} A={edge.avg:,.0f} CoV={edge.cov:.0%}"
        attrs = [f"label={_quote(label)}"]
        if edge.key() in marked:
            attrs.append("color=red")
            attrs.append("penwidth=2.5")
        edge_lines.append(
            f"  {_node_id(edge.src)} -> {_node_id(edge.dst)} "
            f"[{', '.join(attrs)}];"
        )
    for node in sorted(nodes_used, key=str):
        style = "dashed" if node.kind.is_head else "solid"
        lines.append(
            f"  {_node_id(node)} [label={_quote(str(node))}, "
            f"shape={_SHAPES[node.kind]}, style={style}];"
        )
    lines.extend(edge_lines)
    lines.append("}")
    return "\n".join(lines)
