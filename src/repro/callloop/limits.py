"""Marker selection with a maximum interval size (paper Section 5.2).

The base algorithm bounds interval size only from below; when markers feed
SimPoint, simulation time must also be bounded from above.  Two heuristics
are added in pass 2:

* **Maximum interval limit** — while searching up the graph, if a node's
  incoming edge has a *maximum* hierarchical count above ``max_limit``,
  stop searching this path (everything above is even larger) and mark the
  node's outgoing edges instead, recursing further down if an outgoing
  edge itself exceeds the limit.  These forced markers are why programs
  like galgel and gcc end up with many small intervals.
* **Merging loop iterations** — when a loop's head->body edge is stable
  (CoV below threshold) but each iteration is smaller than ``ilower``,
  group N consecutive iterations into one interval, choosing the N in
  ``[ilower/A, max_limit/A]`` that most evenly divides the loop's average
  iterations per entry.

The paper notes these markers can be input specific; they are intended
only for SimPoint, not for cross-input reuse.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional, Set, Tuple

from repro.callloop.graph import CallLoopGraph, Edge, Node, NodeKind
from repro.callloop.markers import MarkerSet, PhaseMarker
from repro.callloop.selection import (
    SelectionParams,
    SelectionResult,
    _cov_threshold,
    collect_candidates,
    cov_threshold_stats,
)


@dataclass(frozen=True)
class LimitParams:
    """Inputs to the limit selection algorithm.

    The paper's values are ilower = 10M and max-limit = 200M instructions
    ("limit 10-200m"); the reproduction runs at 1/1000 scale by default.
    ``force_floor_fraction`` bounds how small a force-marked interval may
    be, as a fraction of ``ilower`` (our interpretation — the paper only
    says small intervals result).
    """

    ilower: float = 10_000.0
    max_limit: float = 200_000.0
    procedures_only: bool = False
    force_floor_fraction: float = 0.1
    slack_saturation: float = 10.0
    cov_floor: float = 0.05

    def __post_init__(self) -> None:
        if self.ilower <= 0:
            raise ValueError("ilower must be positive")
        if self.max_limit <= self.ilower:
            raise ValueError("max_limit must exceed ilower")

    def base_params(self) -> SelectionParams:
        return SelectionParams(
            ilower=self.ilower,
            procedures_only=self.procedures_only,
            slack_saturation=self.slack_saturation,
            cov_floor=self.cov_floor,
        )


def _force_mark_below(
    graph: CallLoopGraph,
    node: Node,
    params: LimitParams,
    forced: Dict[Tuple[Node, Node], Edge],
    visited: Set[Node],
) -> None:
    """Mark *node*'s outgoing edges; recurse where even those are too big."""
    if node in visited:
        return
    visited.add(node)
    floor = params.ilower * params.force_floor_fraction
    for edge in graph.out_edges(node):
        if edge.avg < floor:
            continue  # too tiny to be a useful interval at all
        if edge.max <= params.max_limit:
            forced[edge.key()] = edge
        else:
            _force_mark_below(graph, edge.dst, params, forced, visited)


def _merge_iteration_count(
    avg_iter_size: float, avg_iters_per_entry: float, params: LimitParams
) -> Optional[int]:
    """The N of Section 5.2's iteration grouping, or None if impossible.

    N must put the merged interval in [ilower, max_limit]; among feasible
    N we minimize ``avg_iters mod N`` relative to N (how unevenly the last
    group comes out), breaking ties toward smaller N.
    """
    if avg_iter_size <= 0:
        return None
    n_lo = max(2, math.ceil(params.ilower / avg_iter_size))
    n_hi = math.floor(params.max_limit / avg_iter_size)
    if n_hi < n_lo:
        return None
    if avg_iters_per_entry < n_lo:
        return None  # the loop doesn't iterate enough to merge
    best_n = None
    best_score = None
    for n in range(n_lo, n_hi + 1):
        score = (avg_iters_per_entry % n) / n
        if best_score is None or score < best_score - 1e-12:
            best_score = score
            best_n = n
    return best_n


def select_markers_with_limit(
    graph: CallLoopGraph, params: Optional[LimitParams] = None
) -> SelectionResult:
    """Pass 2 with the max-limit and iteration-merging heuristics."""
    from repro.telemetry import get_telemetry

    tm = get_telemetry()
    params = params or LimitParams()
    with tm.span("callloop.select.pass1", program=graph.program_name, limit=True):
        order, candidates = collect_candidates(graph, params.base_params())
        if tm.enabled:
            tm.counter("callloop.select.pass1.kept", len(candidates))
            tm.counter(
                "callloop.select.pass1.rejected",
                graph.num_edges - len(candidates),
            )
    cov_base, cov_spread = cov_threshold_stats(candidates)
    avg_hi = params.ilower * params.slack_saturation

    candidate_set = {e.key() for e in candidates}
    chosen: Dict[Tuple[Node, Node], PhaseMarker] = {}
    forced: Dict[Tuple[Node, Node], Edge] = {}
    force_visited: Set[Node] = set()
    merge_n: Dict[Tuple[Node, Node], int] = {}

    def threshold(edge: Edge) -> float:
        return max(
            _cov_threshold(edge.avg, params.ilower, avg_hi, cov_base, cov_spread),
            params.cov_floor,
        )

    with tm.span("callloop.select.pass2", program=graph.program_name, limit=True):
        for node in order:
            for edge in graph.in_edges(node):
                if edge.key() in candidate_set:
                    if edge.max > params.max_limit:
                        # Everything further up this path is larger still:
                        # bound interval size by marking below this node.
                        _force_mark_below(graph, node, params, forced, force_visited)
                        continue
                    if edge.cov <= threshold(edge):
                        chosen[edge.key()] = _marker_from_edge(edge, 0)
                elif (
                    edge.src.kind is NodeKind.LOOP_HEAD
                    and edge.dst.kind is NodeKind.LOOP_BODY
                    and edge.avg < params.ilower
                    and edge.cov <= threshold(edge)
                ):
                    # Stable but tiny iterations: merge N of them per interval.
                    entries = sum(e.count for e in graph.in_edges(edge.src))
                    if entries == 0:
                        continue
                    avg_iters = edge.count / entries
                    n = _merge_iteration_count(edge.avg, avg_iters, params)
                    if n is not None:
                        chosen[edge.key()] = _marker_from_edge(edge, 0, merge=n)

        # Forced markers that were not already chosen.
        for key, edge in forced.items():
            if key not in chosen:
                chosen[key] = _marker_from_edge(edge, 0, is_forced=True)
        if tm.enabled:
            kept = chosen.values()
            tm.counter("callloop.select.pass2.kept", len(chosen))
            tm.counter(
                "callloop.select.pass2.rejected",
                max(0, len(candidates) - len(chosen)),
            )
            tm.counter(
                "callloop.select.forced", sum(1 for m in kept if m.forced)
            )
            tm.counter(
                "callloop.select.merged",
                sum(1 for m in kept if m.merge_iterations > 1),
            )

    # Renumber deterministically (depth order of dst, then src).
    node_rank = {node: i for i, node in enumerate(order)}
    ordered = sorted(
        chosen.values(),
        key=lambda m: (node_rank.get(m.dst, 1 << 30), str(m.src), str(m.dst)),
    )
    markers = [
        PhaseMarker(
            marker_id=i + 1,
            src=m.src,
            dst=m.dst,
            avg_interval=m.avg_interval,
            cov=m.cov,
            max_interval=m.max_interval,
            merge_iterations=m.merge_iterations,
            forced=m.forced,
            site_sources=m.site_sources,
        )
        for i, m in enumerate(ordered)
    ]
    marker_set = MarkerSet(
        program_name=graph.program_name,
        variant=graph.variant,
        ilower=params.ilower,
        max_limit=params.max_limit,
        markers=markers,
    )
    return SelectionResult(
        markers=marker_set,
        candidates=candidates,
        cov_base=cov_base,
        cov_spread=cov_spread,
    )


def _marker_from_edge(
    edge: Edge, marker_id: int, merge: int = 1, is_forced: bool = False
) -> PhaseMarker:
    return PhaseMarker(
        marker_id=marker_id,
        src=edge.src,
        dst=edge.dst,
        avg_interval=edge.avg * merge,
        cov=edge.cov,
        max_interval=edge.max * merge,
        merge_iterations=merge,
        forced=is_forced,
        site_sources=tuple(sorted(edge.site_sources)),
    )
