"""The hierarchical call-loop graph (paper Section 4).

A call graph extended with loop nodes.  Every procedure and every loop is
represented by a *head* node and a *body* node:

* ``PROC_HEAD -> PROC_BODY``: head spans an outermost activation (elapsed
  time for recursive procedures); body spans each activation.
* ``LOOP_HEAD -> LOOP_BODY``: head spans loop entry to exit; body spans
  each iteration.

Edges carry the traversal count ``C``, and the average ``A``, standard
deviation / CoV, and maximum of the *hierarchical* dynamic instruction
count per traversal — the number of instructions executed between the
edge opening and closing, including everything called underneath.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import IntEnum
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.callloop.loops import StaticLoop, discover_loops
from repro.callloop.stats import RunningStats
from repro.ir.program import Program, SourceLoc


class NodeKind(IntEnum):
    ROOT = 0
    PROC_HEAD = 1
    PROC_BODY = 2
    LOOP_HEAD = 3
    LOOP_BODY = 4

    @property
    def is_head(self) -> bool:
        return self in (NodeKind.PROC_HEAD, NodeKind.LOOP_HEAD)

    @property
    def is_loop(self) -> bool:
        return self in (NodeKind.LOOP_HEAD, NodeKind.LOOP_BODY)


@dataclass(frozen=True)
class Node:
    """A call-loop graph node.

    Identity is *source-stable*: procedures are identified by name and
    loops by their ``uid`` (procedure + back-edge source line), so the same
    node exists in the graphs of different compilations of one source.
    """

    kind: NodeKind
    proc: str
    loop_uid: str = ""
    label: str = ""

    def __str__(self) -> str:
        if self.kind is NodeKind.ROOT:
            return "<root>"
        base = f"{self.proc}:{self.label}" if self.kind.is_loop else self.proc
        suffix = {
            NodeKind.PROC_HEAD: "head",
            NodeKind.PROC_BODY: "body",
            NodeKind.LOOP_HEAD: "loop-head",
            NodeKind.LOOP_BODY: "loop-body",
        }[self.kind]
        return f"{base}[{suffix}]"


ROOT = Node(NodeKind.ROOT, proc="")


@dataclass
class Edge:
    """An annotated edge: (C, A, CoV, max) over hierarchical counts."""

    src: Node
    dst: Node
    stats: RunningStats = field(default_factory=RunningStats)
    site_sources: Set[SourceLoc] = field(default_factory=set)

    @property
    def count(self) -> int:
        """C — number of traversals."""
        return self.stats.count

    @property
    def avg(self) -> float:
        """A — average hierarchical instructions per traversal."""
        return self.stats.mean

    @property
    def cov(self) -> float:
        """CoV of the hierarchical instruction count."""
        return self.stats.cov

    @property
    def max(self) -> float:
        """Maximum hierarchical instructions on a single traversal."""
        return self.stats.max_value

    @property
    def total(self) -> float:
        """Total hierarchical instructions across all traversals."""
        return self.stats.total

    def key(self) -> Tuple[Node, Node]:
        return (self.src, self.dst)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Edge({self.src} -> {self.dst}: C={self.count} A={self.avg:.1f} "
            f"CoV={self.cov:.3f} max={self.max:.0f})"
        )


class NodeTable:
    """Dense integer ids for every static node of a program.

    The profiler's hot loop works on ints; this table maps between ints
    and :class:`Node` objects.
    """

    def __init__(self, program: Program, loops: Optional[Dict[int, StaticLoop]] = None):
        if loops is None:
            loops = discover_loops(program)
        self.program = program
        self.loops = loops
        self.nodes: List[Node] = [ROOT]
        self._index: Dict[Node, int] = {ROOT: 0}
        self.proc_head: Dict[str, int] = {}
        self.proc_body: Dict[str, int] = {}
        self.loop_head: Dict[int, int] = {}  # header address -> node id
        self.loop_body: Dict[int, int] = {}
        for proc in program.procedures.values():
            self.proc_head[proc.name] = self._add(
                Node(NodeKind.PROC_HEAD, proc.name, label=proc.name)
            )
            self.proc_body[proc.name] = self._add(
                Node(NodeKind.PROC_BODY, proc.name, label=proc.name)
            )
        for header, loop in sorted(loops.items()):
            self.loop_head[header] = self._add(
                Node(NodeKind.LOOP_HEAD, loop.proc, loop.uid, loop.label)
            )
            self.loop_body[header] = self._add(
                Node(NodeKind.LOOP_BODY, loop.proc, loop.uid, loop.label)
            )

    def _add(self, node: Node) -> int:
        idx = len(self.nodes)
        self.nodes.append(node)
        self._index[node] = idx
        return idx

    def __len__(self) -> int:
        return len(self.nodes)

    def node(self, idx: int) -> Node:
        return self.nodes[idx]

    def index(self, node: Node) -> int:
        return self._index[node]


class CallLoopGraph:
    """The annotated graph produced by profiling one or more runs."""

    def __init__(self, program_name: str, variant: str = "base"):
        self.program_name = program_name
        self.variant = variant
        self.total_instructions = 0
        self._edges: Dict[Tuple[Node, Node], Edge] = {}
        self._out: Dict[Node, List[Edge]] = {}
        self._in: Dict[Node, List[Edge]] = {}
        #: derived-view memos (edge arrays, depth order, traversal),
        #: each entry keyed by the graph version it was built against
        self._analysis_cache: Dict[str, tuple] = {}

    # -- construction --------------------------------------------------------

    def edge(self, src: Node, dst: Node) -> Edge:
        """Get or create the edge src -> dst."""
        key = (src, dst)
        found = self._edges.get(key)
        if found is None:
            found = Edge(src, dst)
            self._edges[key] = found
            self._out.setdefault(src, []).append(found)
            self._in.setdefault(dst, []).append(found)
            self._out.setdefault(dst, self._out.get(dst, []))
            self._in.setdefault(src, self._in.get(src, []))
        return found

    def observe(
        self,
        src: Node,
        dst: Node,
        hierarchical_count: float,
        site_source: Optional[SourceLoc] = None,
    ) -> None:
        """Record one traversal of src -> dst."""
        e = self.edge(src, dst)
        e.stats.add(hierarchical_count)
        if site_source is not None:
            e.site_sources.add(site_source)

    # -- queries -----------------------------------------------------------

    @property
    def nodes(self) -> List[Node]:
        seen: Dict[Node, None] = {}
        for (src, dst) in self._edges:
            seen.setdefault(src)
            seen.setdefault(dst)
        return list(seen)

    @property
    def edges(self) -> List[Edge]:
        return list(self._edges.values())

    @property
    def num_nodes(self) -> int:
        return len(self.nodes)

    @property
    def num_edges(self) -> int:
        return len(self._edges)

    def out_edges(self, node: Node) -> List[Edge]:
        return list(self._out.get(node, ()))

    def in_edges(self, node: Node) -> List[Edge]:
        return list(self._in.get(node, ()))

    def out_degree(self, node: Node) -> int:
        return len(self._out.get(node, ()))

    def find_edge(self, src: Node, dst: Node) -> Optional[Edge]:
        return self._edges.get((src, dst))

    def analysis_version(self) -> Tuple[int, int, float, float, float]:
        """Cheap fingerprint of the edge set and its statistics.

        ``(num_edges, sum of counts, sum of means, sum of m2, sum of
        maxima)`` — every observation raises a count, and direct
        mutation of a stats field (tests and the verification harness
        perturb ``mean``/``m2`` in place) moves one of the moment sums.
        A NaN anywhere in the fingerprint makes the equality check fail
        unconditionally, which only forces a harmless rebuild.  Cached
        analysis views (:meth:`edge_arrays`, the depth ordering) rebuild
        when the version moves.
        """
        count = 0
        mean_sum = 0.0
        m2_sum = 0.0
        max_sum = 0.0
        for e in self._edges.values():
            s = e.stats
            count += s.count
            mean_sum += s.mean
            m2_sum += s.m2
            max_sum += s.max_value
        return (len(self._edges), count, mean_sum, m2_sum, max_sum)

    def edge_arrays(self):
        """The cached struct-of-arrays view of every edge (see
        :class:`repro.callloop.vectorized.EdgeArrays`)."""
        from repro.callloop.vectorized import build_edge_arrays

        version = self.analysis_version()
        cached = self._analysis_cache.get("edge_arrays")
        if cached is not None and cached[0] == version:
            return cached[1]
        arrays = build_edge_arrays(self)
        self._analysis_cache["edge_arrays"] = (version, arrays)
        return arrays

    def successors(self, node: Node) -> Iterator[Node]:
        for e in self._out.get(node, ()):
            yield e.dst

    def merged_with(self, other: "CallLoopGraph") -> "CallLoopGraph":
        """A new graph combining this profile with *other* (same program)."""
        if other.program_name != self.program_name:
            raise ValueError("cannot merge graphs of different programs")
        merged = CallLoopGraph(self.program_name, self.variant)
        merged.total_instructions = self.total_instructions + other.total_instructions
        for graph in (self, other):
            for e in graph.edges:
                target = merged.edge(e.src, e.dst)
                target.stats = target.stats.merge(e.stats)
                target.site_sources |= e.site_sources
        return merged

    def summary(self) -> str:
        """One-line description for logs."""
        return (
            f"call-loop graph of {self.program_name} ({self.variant}): "
            f"{self.num_nodes} nodes, {self.num_edges} edges, "
            f"{self.total_instructions:,} instructions profiled"
        )

    def to_networkx(self):
        """The graph as a ``networkx.DiGraph`` (nodes keyed by ``str(node)``).

        Edge attributes: ``count``, ``avg``, ``cov``, ``max``; node
        attributes: ``kind``, ``proc``, ``label``.  For users who want
        graph algorithms or layouts beyond what this package ships.
        """
        import networkx as nx

        g = nx.DiGraph(program=self.program_name, variant=self.variant)
        for node in self.nodes:
            g.add_node(
                str(node), kind=node.kind.name, proc=node.proc, label=node.label
            )
        for edge in self.edges:
            g.add_edge(
                str(edge.src),
                str(edge.dst),
                count=edge.count,
                avg=edge.avg,
                cov=edge.cov,
                max=edge.max,
            )
        return g
