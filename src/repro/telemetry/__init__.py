"""Unified telemetry: spans, counters, and per-stage metrics.

The measurement substrate for the whole reproduction pipeline — you
cannot scale or speed up what you cannot measure, the same lesson that
motivates profiling in the source paper itself.  Three pieces:

* :mod:`repro.telemetry.core` — hierarchical **spans** (context manager
  + :func:`timed` decorator, monotonic timings, parent/child nesting,
  per-span attributes) and the process-wide session
  (:func:`get_telemetry` / :func:`enable_telemetry`), with a no-op fast
  path when disabled;
* :mod:`repro.telemetry.registry` — **counters, gauges, and
  histograms** (nodes/edges built, trace events replayed, selection
  candidates kept vs. rejected, cache hits/misses, pool queue depth),
  snapshot/merge-able across processes;
* :mod:`repro.telemetry.exporters` — the stderr tree/table report, the
  Chrome-trace-compatible JSONL writer behind ``--telemetry[=PATH]``,
  the Prometheus text exposition writer, and the aggregation behind
  ``repro stats``;
* :mod:`repro.telemetry.sampler` — the background **metrics sampler**
  (``--metrics-series``): a bounded ring-buffer time series of
  counters/gauges with JSONL export;
* :mod:`repro.telemetry.analysis` — **critical-path and attribution
  analysis** over a stitched trace (``repro stats --critical-path``):
  per-span self time, the straggler chain, per-lane busy time, and
  parallel efficiency.

Span taxonomy, metric names, lane/stitching model, and the JSONL
schema are documented in ``docs/OBSERVABILITY.md``.
"""

from repro.telemetry.analysis import (
    CriticalPathReport,
    analyze_critical_path,
    critical_path_report,
    series_report,
)
from repro.telemetry.core import (
    InstantRecord,
    NoopTelemetry,
    SpanRecord,
    Telemetry,
    disable_telemetry,
    enable_telemetry,
    get_telemetry,
    install_telemetry,
    telemetry_session,
    timed,
)
from repro.telemetry.exporters import (
    JSONL_SCHEMA_VERSION,
    chrome_events,
    default_series_path,
    default_trace_path,
    prometheus_text,
    read_jsonl,
    render_report,
    span_table,
    stats_report,
    trace_metrics,
    write_jsonl,
)
from repro.telemetry.registry import Histogram, MetricsRegistry
from repro.telemetry.sampler import (
    MetricsSampler,
    read_series_jsonl,
    write_series_jsonl,
)

__all__ = [
    "CriticalPathReport",
    "InstantRecord",
    "MetricsSampler",
    "NoopTelemetry",
    "SpanRecord",
    "Telemetry",
    "analyze_critical_path",
    "critical_path_report",
    "disable_telemetry",
    "enable_telemetry",
    "get_telemetry",
    "install_telemetry",
    "read_series_jsonl",
    "series_report",
    "telemetry_session",
    "timed",
    "write_series_jsonl",
    "JSONL_SCHEMA_VERSION",
    "chrome_events",
    "default_series_path",
    "default_trace_path",
    "prometheus_text",
    "read_jsonl",
    "render_report",
    "span_table",
    "stats_report",
    "trace_metrics",
    "write_jsonl",
    "Histogram",
    "MetricsRegistry",
]
