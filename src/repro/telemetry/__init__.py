"""Unified telemetry: spans, counters, and per-stage metrics.

The measurement substrate for the whole reproduction pipeline — you
cannot scale or speed up what you cannot measure, the same lesson that
motivates profiling in the source paper itself.  Three pieces:

* :mod:`repro.telemetry.core` — hierarchical **spans** (context manager
  + :func:`timed` decorator, monotonic timings, parent/child nesting,
  per-span attributes) and the process-wide session
  (:func:`get_telemetry` / :func:`enable_telemetry`), with a no-op fast
  path when disabled;
* :mod:`repro.telemetry.registry` — **counters, gauges, and
  histograms** (nodes/edges built, trace events replayed, selection
  candidates kept vs. rejected, cache hits/misses, pool queue depth),
  snapshot/merge-able across processes;
* :mod:`repro.telemetry.exporters` — the stderr tree/table report, the
  Chrome-trace-compatible JSONL writer behind ``--telemetry[=PATH]``,
  and the aggregation behind ``repro stats``.

Span taxonomy, metric names, and the JSONL schema are documented in
``docs/OBSERVABILITY.md``.
"""

from repro.telemetry.core import (
    NoopTelemetry,
    SpanRecord,
    Telemetry,
    disable_telemetry,
    enable_telemetry,
    get_telemetry,
    install_telemetry,
    telemetry_session,
    timed,
)
from repro.telemetry.exporters import (
    JSONL_SCHEMA_VERSION,
    chrome_events,
    default_trace_path,
    read_jsonl,
    render_report,
    span_table,
    stats_report,
    write_jsonl,
)
from repro.telemetry.registry import Histogram, MetricsRegistry

__all__ = [
    "NoopTelemetry",
    "SpanRecord",
    "Telemetry",
    "disable_telemetry",
    "enable_telemetry",
    "get_telemetry",
    "install_telemetry",
    "telemetry_session",
    "timed",
    "JSONL_SCHEMA_VERSION",
    "chrome_events",
    "default_trace_path",
    "read_jsonl",
    "render_report",
    "span_table",
    "stats_report",
    "write_jsonl",
    "Histogram",
    "MetricsRegistry",
]
