"""Rendering a telemetry session: stderr report, JSONL trace, stats.

Three pluggable outputs over the same session data:

* :func:`render_report` — the human-readable tree/table shown on stderr
  at the end of a ``--telemetry`` run, built from
  :class:`~repro.util.tables.Table` like every other report in the repo;
* :func:`write_jsonl` / :func:`read_jsonl` — a JSON-Lines trace file,
  one event per line with Chrome-trace-compatible fields (``ph``/``ts``/
  ``dur`` in microseconds; complete spans are ``ph: "X"`` events,
  counters/gauges/histograms are ``ph: "C"`` events), so a trace can be
  dropped into ``chrome://tracing``-style viewers or grepped directly;
* :func:`stats_report` — the stage-by-stage aggregation ``repro stats``
  prints from a previously written JSONL trace.

JSONL schema (one JSON object per line)
---------------------------------------
``{"name", "cat", "ph", "ts", "dur", "pid", "tid", "args"}`` where
``cat`` is ``meta`` (header + ``process_name``/``thread_name`` lane
labels), ``span``, ``instant``, ``counter``, ``gauge``, or
``histogram``; span ``args`` carry the span ``path``, ``id``,
``parent``, and user attributes; counter/gauge ``args`` carry
``{"value": v}``; histogram ``args`` map bucket labels to counts.
``tid`` is the lane (one per worker/shard/phase track — see
:meth:`~repro.telemetry.core.Telemetry.lane`); the header carries the
run id.

:func:`prometheus_text` renders a metrics snapshot in the Prometheus
text exposition format — the groundwork for a scrape endpoint on the
future ``repro serve``.
"""

from __future__ import annotations

import json
import os
import re
from pathlib import Path
from typing import Any, Dict, Iterable, Iterator, List, Mapping, Optional, Tuple, Union

from repro.telemetry.core import SpanRecord, Telemetry
from repro.util.tables import Table

#: bump when the JSONL layout changes incompatibly
#: (2: multi-lane ``tid`` + thread_name metadata, instant events,
#: run id in the header, fractional histogram buckets)
JSONL_SCHEMA_VERSION = 2


def default_trace_path() -> Path:
    """Where ``--telemetry`` (no path) writes and ``repro stats`` reads:
    ``$REPRO_TELEMETRY_DIR`` else ``~/.cache/repro/telemetry``, file
    ``last-run.jsonl``."""
    env = os.environ.get("REPRO_TELEMETRY_DIR")
    if env:
        return Path(env) / "last-run.jsonl"
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro" / "telemetry" / "last-run.jsonl"


def default_series_path() -> Path:
    """Where ``--metrics-series`` (no path) writes and
    ``repro stats --series`` reads: next to the default trace."""
    return default_trace_path().with_name("last-series.jsonl")


# -- Chrome-trace JSONL -------------------------------------------------------


def span_to_chrome(span: SpanRecord, pid: Optional[int] = None) -> Dict[str, Any]:
    """One complete-span event (``ph: "X"``, timestamps in microseconds).

    *pid* is the run's process-group id for the stitched timeline
    (default: the span's own).  A span recorded by a different process
    keeps its origin as ``args["worker_pid"]``.
    """
    args = {"path": span.path, "id": span.span_id, "parent": span.parent_id}
    if pid is not None and span.pid and span.pid != pid:
        args["worker_pid"] = span.pid
    args.update(span.attrs)
    return {
        "name": span.name,
        "cat": "span",
        "ph": "X",
        "ts": span.start_us,
        "dur": span.duration_us,
        "pid": pid if pid is not None else span.pid,
        "tid": span.tid,
        "args": args,
    }


def chrome_events(tm: Telemetry) -> Iterator[Dict[str, Any]]:
    """Every event of the session, metadata lines first.

    All events share one ``pid`` (the session's) and spread across
    lanes via ``tid``; ``thread_name`` metadata labels every lane, so
    Chrome-trace viewers render one process group with one named row
    per worker/shard/phase track.
    """
    pid = tm.pid
    yield {
        "name": "telemetry",
        "cat": "meta",
        "ph": "M",
        "ts": 0,
        "pid": pid,
        "tid": 0,
        "args": {
            "schema": JSONL_SCHEMA_VERSION,
            "tool": "repro",
            "run_id": tm.run_id,
        },
    }
    yield {
        "name": "process_name",
        "cat": "meta",
        "ph": "M",
        "ts": 0,
        "pid": pid,
        "tid": 0,
        "args": {"name": f"repro run {tm.run_id}"},
    }
    for tid in sorted(tm.lane_labels):
        yield {
            "name": "thread_name",
            "cat": "meta",
            "ph": "M",
            "ts": 0,
            "pid": pid,
            "tid": tid,
            "args": {"name": tm.lane_labels[tid]},
        }
    end_ts = 0.0
    for span in tm.spans:
        end_ts = max(end_ts, span.start_us + span.duration_us)
        yield span_to_chrome(span, pid=pid)
    for inst in tm.instants:
        end_ts = max(end_ts, inst.ts_us)
        yield {
            "name": inst.name,
            "cat": "instant",
            "ph": "i",
            "ts": inst.ts_us,
            "pid": pid,
            "tid": inst.tid,
            "s": "t",
            "args": dict(inst.attrs),
        }
    metrics = tm.metrics
    for cat, mapping in (("counter", metrics.counters), ("gauge", metrics.gauges)):
        for name in sorted(mapping):
            yield {
                "name": name,
                "cat": cat,
                "ph": "C",
                "ts": end_ts,
                "pid": pid,
                "tid": 0,
                "args": {"value": mapping[name]},
            }
    for name in sorted(metrics.histograms):
        yield {
            "name": name,
            "cat": "histogram",
            "ph": "C",
            "ts": end_ts,
            "pid": pid,
            "tid": 0,
            "args": dict(metrics.histograms[name].rows()),
        }


def write_jsonl(tm: Telemetry, path: Union[str, Path]) -> Path:
    """Write the session as one JSON object per line; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w") as f:
        for event in chrome_events(tm):
            f.write(json.dumps(event, sort_keys=True))
            f.write("\n")
    return path


def read_jsonl(path: Union[str, Path]) -> List[Dict[str, Any]]:
    """Load a trace written by :func:`write_jsonl`; blank lines and
    malformed lines are skipped (a truncated trace still renders)."""
    events = []
    with open(path) as f:
        for line in f:
            line = line.strip()
            if not line:
                continue
            try:
                events.append(json.loads(line))
            except json.JSONDecodeError:
                continue
    return events


# -- Prometheus text exposition -----------------------------------------------

_PROM_INVALID = re.compile(r"[^a-zA-Z0-9_:]")


def _prom_name(name: str) -> str:
    """A metric name in Prometheus form: dots and other invalid
    characters become underscores, everything prefixed ``repro_``."""
    return "repro_" + _PROM_INVALID.sub("_", name)


def _prom_number(value: float) -> str:
    v = float(value)
    if v != v:
        return "NaN"
    if v == float("inf"):
        return "+Inf"
    if v == float("-inf"):
        return "-Inf"
    return repr(int(v)) if v.is_integer() else repr(v)


def hist_bounds(buckets: Mapping[str, int]) -> List[Tuple[float, int]]:
    """Parse histogram bucket labels (``"[2, 4)"``, ``"0"``, ``"inf"``)
    back into (upper bound, count) pairs, ascending by bound."""
    rows = []
    for label, count in buckets.items():
        if label == "invalid":
            continue
        if label == "0":
            upper = 0.0
        elif label == "inf":
            upper = float("inf")
        else:
            # "[lower, upper)" — bounds separated by ", ", thousands
            # separators are bare commas inside a bound
            upper_text = label.strip("[)").split(", ")[-1]
            upper = float(upper_text.replace(",", ""))
        rows.append((upper, int(count)))
    return sorted(rows)


def prometheus_text(
    counters: Mapping[str, float],
    gauges: Mapping[str, float],
    histograms: Mapping[str, Mapping[str, int]],
) -> str:
    """A metrics snapshot in the Prometheus text exposition format.

    Counters become ``repro_<name>_total``, gauges ``repro_<name>``,
    and histograms cumulative ``_bucket{le="..."}`` series plus
    ``_count`` (the registry tracks bucket counts, not value sums, so
    no ``_sum`` series is emitted).  *histograms* map name → bucket
    label → count, the shape both :meth:`Histogram.rows` (via ``dict``)
    and the JSONL histogram events carry.
    """
    lines: List[str] = []
    for name in sorted(counters):
        prom = _prom_name(name) + "_total"
        lines.append(f"# TYPE {prom} counter")
        lines.append(f"{prom} {_prom_number(counters[name])}")
    for name in sorted(gauges):
        prom = _prom_name(name)
        lines.append(f"# TYPE {prom} gauge")
        lines.append(f"{prom} {_prom_number(gauges[name])}")
    for name in sorted(histograms):
        prom = _prom_name(name)
        lines.append(f"# TYPE {prom} histogram")
        rows = hist_bounds(histograms[name])
        cumulative = 0
        for upper, count in rows:
            cumulative += count
            le = "+Inf" if upper == float("inf") else _prom_number(upper)
            lines.append(f'{prom}_bucket{{le="{le}"}} {cumulative}')
        if not rows or rows[-1][0] != float("inf"):
            lines.append(f'{prom}_bucket{{le="+Inf"}} {cumulative}')
        lines.append(f"{prom}_count {cumulative}")
    return "\n".join(lines) + ("\n" if lines else "")


# -- aggregation --------------------------------------------------------------


def trace_metrics(
    events: Iterable[Dict[str, Any]],
) -> Tuple[Dict[str, float], Dict[str, float], Dict[str, Dict[str, int]]]:
    """``(counters, gauges, histograms)`` from a parsed JSONL trace."""
    counters: Dict[str, float] = {}
    gauges: Dict[str, float] = {}
    histograms: Dict[str, Dict[str, int]] = {}
    for e in events:
        cat = e.get("cat")
        if cat == "counter":
            counters[e["name"]] = e["args"]["value"]
        elif cat == "gauge":
            gauges[e["name"]] = e["args"]["value"]
        elif cat == "histogram":
            histograms[e["name"]] = dict(e["args"])
    return counters, gauges, histograms


def _aggregate(paths_durations: Iterable[Tuple[str, float]]) -> Dict[str, List[float]]:
    """path -> [count, total_us], in first-seen order (dicts are ordered)."""
    agg: Dict[str, List[float]] = {}
    for path, dur_us in paths_durations:
        entry = agg.get(path)
        if entry is None:
            agg[path] = [1, dur_us]
        else:
            entry[0] += 1
            entry[1] += dur_us
    return agg


def _self_us(agg: Dict[str, List[float]]) -> Dict[str, float]:
    """Per-path self time: total minus the totals of direct children."""
    self_us = {path: entry[1] for path, entry in agg.items()}
    for path, entry in agg.items():
        if "/" in path:
            parent = path.rsplit("/", 1)[0]
            if parent in self_us:
                self_us[parent] -= entry[1]
    return self_us


def span_table(paths_durations: Iterable[Tuple[str, float]], title: str) -> Table:
    """The stage-by-stage span aggregation as an indented tree table."""
    agg = _aggregate(paths_durations)
    self_us = _self_us(agg)
    table = Table(title, ["span", "count", "total s", "self s", "mean ms"], digits=3)
    for path in sorted(agg):
        count, total_us = agg[path]
        depth = path.count("/")
        name = ("  " * depth) + path.rsplit("/", 1)[-1]
        table.add_row(
            [
                name,
                int(count),
                total_us / 1e6,
                max(0.0, self_us[path]) / 1e6,
                total_us / count / 1e3,
            ]
        )
    return table


def metrics_tables(
    counters: Dict[str, float],
    gauges: Dict[str, float],
    histograms: Dict[str, Dict[str, int]],
) -> List[Table]:
    """Counter/gauge and histogram tables (omitted when empty)."""
    tables: List[Table] = []
    if counters or gauges:
        table = Table("Telemetry: counters and gauges", ["metric", "value"], digits=3)
        for name in sorted(counters):
            value = counters[name]
            table.add_row([name, int(value) if float(value).is_integer() else value])
        for name in sorted(gauges):
            table.add_row([f"{name} (gauge)", gauges[name]])
        tables.append(table)
    if histograms:
        table = Table(
            "Telemetry: histograms", ["histogram", "bucket", "count"], digits=0
        )
        for name in sorted(histograms):
            for label, count in histograms[name].items():
                table.add_row([name, label, int(count)])
        tables.append(table)
    return tables


def render_report(tm: Telemetry) -> str:
    """The end-of-run stderr report for a live session."""
    parts = []
    if tm.spans:
        parts.append(
            span_table(
                ((s.path, s.duration_us) for s in tm.spans),
                "Telemetry: per-stage spans",
            ).render()
        )
    metrics = tm.metrics
    parts.extend(
        t.render()
        for t in metrics_tables(
            metrics.counters,
            metrics.gauges,
            {n: dict(h.rows()) for n, h in metrics.histograms.items()},
        )
    )
    if not parts:
        return "Telemetry: no spans or metrics recorded"
    return "\n\n".join(parts)


def stats_report(events: List[Dict[str, Any]], source: Optional[str] = None) -> str:
    """Render ``repro stats`` output from a parsed JSONL trace."""
    spans = [
        (e["args"].get("path", e["name"]), float(e.get("dur", 0.0)))
        for e in events
        if e.get("ph") == "X"
    ]
    counters, gauges, histograms = trace_metrics(events)
    title = "Telemetry: per-stage spans"
    if source:
        title += f" ({source})"
    parts = []
    if spans:
        parts.append(span_table(spans, title).render())
    parts.extend(t.render() for t in metrics_tables(counters, gauges, histograms))
    if not parts:
        return "Telemetry: trace contains no spans or metrics"
    return "\n\n".join(parts)
