"""Rendering a telemetry session: stderr report, JSONL trace, stats.

Three pluggable outputs over the same session data:

* :func:`render_report` — the human-readable tree/table shown on stderr
  at the end of a ``--telemetry`` run, built from
  :class:`~repro.util.tables.Table` like every other report in the repo;
* :func:`write_jsonl` / :func:`read_jsonl` — a JSON-Lines trace file,
  one event per line with Chrome-trace-compatible fields (``ph``/``ts``/
  ``dur`` in microseconds; complete spans are ``ph: "X"`` events,
  counters/gauges/histograms are ``ph: "C"`` events), so a trace can be
  dropped into ``chrome://tracing``-style viewers or grepped directly;
* :func:`stats_report` — the stage-by-stage aggregation ``repro stats``
  prints from a previously written JSONL trace.

JSONL schema (one JSON object per line)
---------------------------------------
``{"name", "cat", "ph", "ts", "dur", "pid", "tid", "args"}`` where
``cat`` is ``meta`` (first line, schema version), ``span``, ``counter``,
``gauge``, or ``histogram``; span ``args`` carry the span ``path``,
``id``, ``parent``, and user attributes; counter/gauge ``args`` carry
``{"value": v}``; histogram ``args`` map bucket labels to counts.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Dict, Iterable, Iterator, List, Optional, Tuple, Union

from repro.telemetry.core import SpanRecord, Telemetry
from repro.util.tables import Table

#: bump when the JSONL layout changes incompatibly
JSONL_SCHEMA_VERSION = 1


def default_trace_path() -> Path:
    """Where ``--telemetry`` (no path) writes and ``repro stats`` reads:
    ``$REPRO_TELEMETRY_DIR`` else ``~/.cache/repro/telemetry``, file
    ``last-run.jsonl``."""
    env = os.environ.get("REPRO_TELEMETRY_DIR")
    if env:
        return Path(env) / "last-run.jsonl"
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro" / "telemetry" / "last-run.jsonl"


# -- Chrome-trace JSONL -------------------------------------------------------


def span_to_chrome(span: SpanRecord) -> Dict[str, Any]:
    """One complete-span event (``ph: "X"``, timestamps in microseconds)."""
    args = {"path": span.path, "id": span.span_id, "parent": span.parent_id}
    args.update(span.attrs)
    return {
        "name": span.name,
        "cat": "span",
        "ph": "X",
        "ts": span.start_us,
        "dur": span.duration_us,
        "pid": span.pid,
        "tid": 0,
        "args": args,
    }


def chrome_events(tm: Telemetry) -> Iterator[Dict[str, Any]]:
    """Every event of the session, metadata line first."""
    yield {
        "name": "telemetry",
        "cat": "meta",
        "ph": "M",
        "ts": 0,
        "pid": os.getpid(),
        "tid": 0,
        "args": {"schema": JSONL_SCHEMA_VERSION, "tool": "repro"},
    }
    end_ts = 0.0
    for span in tm.spans:
        end_ts = max(end_ts, span.start_us + span.duration_us)
        yield span_to_chrome(span)
    metrics = tm.metrics
    for cat, mapping in (("counter", metrics.counters), ("gauge", metrics.gauges)):
        for name in sorted(mapping):
            yield {
                "name": name,
                "cat": cat,
                "ph": "C",
                "ts": end_ts,
                "pid": os.getpid(),
                "tid": 0,
                "args": {"value": mapping[name]},
            }
    for name in sorted(metrics.histograms):
        yield {
            "name": name,
            "cat": "histogram",
            "ph": "C",
            "ts": end_ts,
            "pid": os.getpid(),
            "tid": 0,
            "args": dict(metrics.histograms[name].rows()),
        }


def write_jsonl(tm: Telemetry, path: Union[str, Path]) -> Path:
    """Write the session as one JSON object per line; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w") as f:
        for event in chrome_events(tm):
            f.write(json.dumps(event, sort_keys=True))
            f.write("\n")
    return path


def read_jsonl(path: Union[str, Path]) -> List[Dict[str, Any]]:
    """Load a trace written by :func:`write_jsonl`; blank lines and
    malformed lines are skipped (a truncated trace still renders)."""
    events = []
    with open(path) as f:
        for line in f:
            line = line.strip()
            if not line:
                continue
            try:
                events.append(json.loads(line))
            except json.JSONDecodeError:
                continue
    return events


# -- aggregation --------------------------------------------------------------


def _aggregate(paths_durations: Iterable[Tuple[str, float]]) -> Dict[str, List[float]]:
    """path -> [count, total_us], in first-seen order (dicts are ordered)."""
    agg: Dict[str, List[float]] = {}
    for path, dur_us in paths_durations:
        entry = agg.get(path)
        if entry is None:
            agg[path] = [1, dur_us]
        else:
            entry[0] += 1
            entry[1] += dur_us
    return agg


def _self_us(agg: Dict[str, List[float]]) -> Dict[str, float]:
    """Per-path self time: total minus the totals of direct children."""
    self_us = {path: entry[1] for path, entry in agg.items()}
    for path, entry in agg.items():
        if "/" in path:
            parent = path.rsplit("/", 1)[0]
            if parent in self_us:
                self_us[parent] -= entry[1]
    return self_us


def span_table(paths_durations: Iterable[Tuple[str, float]], title: str) -> Table:
    """The stage-by-stage span aggregation as an indented tree table."""
    agg = _aggregate(paths_durations)
    self_us = _self_us(agg)
    table = Table(title, ["span", "count", "total s", "self s", "mean ms"], digits=3)
    for path in sorted(agg):
        count, total_us = agg[path]
        depth = path.count("/")
        name = ("  " * depth) + path.rsplit("/", 1)[-1]
        table.add_row(
            [
                name,
                int(count),
                total_us / 1e6,
                max(0.0, self_us[path]) / 1e6,
                total_us / count / 1e3,
            ]
        )
    return table


def metrics_tables(
    counters: Dict[str, float],
    gauges: Dict[str, float],
    histograms: Dict[str, Dict[str, int]],
) -> List[Table]:
    """Counter/gauge and histogram tables (omitted when empty)."""
    tables: List[Table] = []
    if counters or gauges:
        table = Table("Telemetry: counters and gauges", ["metric", "value"], digits=3)
        for name in sorted(counters):
            value = counters[name]
            table.add_row([name, int(value) if float(value).is_integer() else value])
        for name in sorted(gauges):
            table.add_row([f"{name} (gauge)", gauges[name]])
        tables.append(table)
    if histograms:
        table = Table(
            "Telemetry: histograms", ["histogram", "bucket", "count"], digits=0
        )
        for name in sorted(histograms):
            for label, count in histograms[name].items():
                table.add_row([name, label, int(count)])
        tables.append(table)
    return tables


def render_report(tm: Telemetry) -> str:
    """The end-of-run stderr report for a live session."""
    parts = []
    if tm.spans:
        parts.append(
            span_table(
                ((s.path, s.duration_us) for s in tm.spans),
                "Telemetry: per-stage spans",
            ).render()
        )
    metrics = tm.metrics
    parts.extend(
        t.render()
        for t in metrics_tables(
            metrics.counters,
            metrics.gauges,
            {n: dict(h.rows()) for n, h in metrics.histograms.items()},
        )
    )
    if not parts:
        return "Telemetry: no spans or metrics recorded"
    return "\n\n".join(parts)


def stats_report(events: List[Dict[str, Any]], source: Optional[str] = None) -> str:
    """Render ``repro stats`` output from a parsed JSONL trace."""
    spans = [
        (e["args"].get("path", e["name"]), float(e.get("dur", 0.0)))
        for e in events
        if e.get("ph") == "X"
    ]
    counters = {
        e["name"]: e["args"]["value"] for e in events if e.get("cat") == "counter"
    }
    gauges = {e["name"]: e["args"]["value"] for e in events if e.get("cat") == "gauge"}
    histograms = {
        e["name"]: dict(e["args"]) for e in events if e.get("cat") == "histogram"
    }
    title = "Telemetry: per-stage spans"
    if source:
        title += f" ({source})"
    parts = []
    if spans:
        parts.append(span_table(spans, title).render())
    parts.extend(t.render() for t in metrics_tables(counters, gauges, histograms))
    if not parts:
        return "Telemetry: trace contains no spans or metrics"
    return "\n\n".join(parts)
