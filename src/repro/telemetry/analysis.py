"""Critical-path and attribution analysis over a telemetry trace.

*Parallel Binary Code Analysis* (Meng et al.) makes the case that a
parallel analysis pipeline is tunable only once you can answer two
questions: **where did the wall-clock actually go** (critical path —
the chain of stragglers no amount of extra workers can hide) and **how
efficient were the workers you paid for** (busy time over wall x
workers).  This module answers both from a stitched Chrome-trace JSONL
(``repro stats --critical-path``) or a live session's events:

* per-span **self time** (duration minus direct children) aggregated by
  span path — attribution that separates a stage's own cost from its
  substages';
* the **critical path**: from the longest root span, repeatedly descend
  into the longest child — the chain whose spans bound the run end to
  end;
* per-lane **busy time** (union of span intervals per ``tid``) and
  **parallel efficiency** — worker-lane busy time / (wall x worker
  lanes) — for both ``--jobs`` pool workers and ``--profile-shards``
  shard lanes;
* the **series report** behind ``repro stats --series``: per-metric
  first/last/min/max and rate over a sampler time series.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.util.tables import Table


@dataclass
class SpanEvent:
    """One complete-span event lifted out of a parsed JSONL trace."""

    span_id: Optional[int]
    parent_id: Optional[int]
    name: str
    path: str
    ts: float
    dur: float
    tid: int
    children: List["SpanEvent"] = field(default_factory=list)

    @property
    def end(self) -> float:
        return self.ts + self.dur


def span_events(events: Sequence[Mapping[str, Any]]) -> List[SpanEvent]:
    """The ``ph: "X"`` events of a parsed trace as :class:`SpanEvent`s
    with child links resolved (orphaned parent ids become roots)."""
    spans: List[SpanEvent] = []
    by_id: Dict[int, SpanEvent] = {}
    for e in events:
        if e.get("ph") != "X":
            continue
        args = e.get("args", {})
        span = SpanEvent(
            span_id=args.get("id"),
            parent_id=args.get("parent"),
            name=e.get("name", "?"),
            path=args.get("path", e.get("name", "?")),
            ts=float(e.get("ts", 0.0)),
            dur=float(e.get("dur", 0.0)),
            tid=int(e.get("tid", 0)),
        )
        spans.append(span)
        if span.span_id is not None:
            by_id[span.span_id] = span
    for span in spans:
        parent = by_id.get(span.parent_id) if span.parent_id is not None else None
        if parent is not None and parent is not span:
            parent.children.append(span)
    return spans


def lane_names(events: Sequence[Mapping[str, Any]]) -> Dict[int, str]:
    """``tid`` → label from the trace's ``thread_name`` metadata."""
    names: Dict[int, str] = {}
    for e in events:
        if e.get("ph") == "M" and e.get("name") == "thread_name":
            names[int(e.get("tid", 0))] = e.get("args", {}).get("name", "")
    return names


def _merged_intervals(intervals: List[Tuple[float, float]]) -> List[Tuple[float, float]]:
    """Union of (start, end) intervals — overlap collapses, gaps stay."""
    merged: List[Tuple[float, float]] = []
    for start, end in sorted(intervals):
        if merged and start <= merged[-1][1]:
            merged[-1] = (merged[-1][0], max(merged[-1][1], end))
        else:
            merged.append((start, end))
    return merged


def lane_busy_us(spans: Sequence[SpanEvent]) -> Dict[int, float]:
    """Per-lane busy time: the union of each lane's span intervals.

    Union, not sum — nested spans on one lane cover the same wall time
    once, so a lane's busy time never exceeds the wall.
    """
    by_lane: Dict[int, List[Tuple[float, float]]] = {}
    for span in spans:
        by_lane.setdefault(span.tid, []).append((span.ts, span.end))
    return {
        tid: sum(end - start for start, end in _merged_intervals(ivs))
        for tid, ivs in by_lane.items()
    }


@dataclass
class CriticalPathStep:
    """One span on the critical path."""

    name: str
    path: str
    duration_us: float
    self_us: float
    tid: int


@dataclass
class CriticalPathReport:
    """Everything ``repro stats --critical-path`` reports."""

    wall_us: float
    #: root-to-leaf chain of straggler spans
    steps: List[CriticalPathStep]
    #: span path -> (count, total_us, self_us)
    attribution: Dict[str, Tuple[int, float, float]]
    #: lane tid -> busy microseconds (interval union)
    busy_us: Dict[int, float]
    #: lane tid -> label
    lanes: Dict[int, str]
    #: busy/(wall x lanes) over the non-main lanes (None: no worker lanes)
    parallel_efficiency: Optional[float]
    #: number of non-main lanes with any spans
    worker_lanes: int


def _self_times(spans: Sequence[SpanEvent]) -> Dict[int, float]:
    """Exact per-span self time: duration minus direct children's
    durations, clamped at zero (defensive against clock skew)."""
    return {
        id(span): max(0.0, span.dur - sum(c.dur for c in span.children))
        for span in spans
    }


def analyze_critical_path(
    events: Sequence[Mapping[str, Any]],
) -> Optional[CriticalPathReport]:
    """Analyze a parsed JSONL trace; ``None`` when it has no spans."""
    spans = span_events(events)
    if not spans:
        return None
    self_us = _self_times(spans)

    wall_us = max(s.end for s in spans) - min(s.ts for s in spans)

    # attribution by path
    attribution: Dict[str, Tuple[int, float, float]] = {}
    for span in spans:
        count, total, self_total = attribution.get(span.path, (0, 0.0, 0.0))
        attribution[span.path] = (
            count + 1,
            total + span.dur,
            self_total + self_us[id(span)],
        )

    # critical path: longest root, then repeatedly the longest child
    child_ids = {id(c) for s in spans for c in s.children}
    roots = [s for s in spans if id(s) not in child_ids]
    steps: List[CriticalPathStep] = []
    node: Optional[SpanEvent] = max(roots, key=lambda s: s.dur, default=None)
    while node is not None:
        steps.append(
            CriticalPathStep(
                name=node.name,
                path=node.path,
                duration_us=node.dur,
                self_us=self_us[id(node)],
                tid=node.tid,
            )
        )
        node = max(node.children, key=lambda s: s.dur, default=None)

    busy = lane_busy_us(spans)
    lanes = lane_names(events)
    worker_tids = [tid for tid in busy if tid != 0]
    efficiency: Optional[float] = None
    if worker_tids and wall_us > 0:
        efficiency = sum(busy[t] for t in worker_tids) / (
            wall_us * len(worker_tids)
        )
    return CriticalPathReport(
        wall_us=wall_us,
        steps=steps,
        attribution=attribution,
        busy_us=busy,
        lanes=lanes,
        parallel_efficiency=efficiency,
        worker_lanes=len(worker_tids),
    )


def critical_path_report(
    events: Sequence[Mapping[str, Any]], source: Optional[str] = None
) -> str:
    """Render the critical-path/attribution analysis as report tables."""
    report = analyze_critical_path(events)
    if report is None:
        return "Telemetry: trace contains no spans to analyze"
    suffix = f" ({source})" if source else ""
    parts: List[str] = []

    chain = Table(
        f"Critical path{suffix}: wall {report.wall_us / 1e6:.3f} s",
        ["step", "span", "lane", "total s", "self s", "% of wall"],
        digits=3,
    )
    for i, step in enumerate(report.steps):
        label = report.lanes.get(step.tid, str(step.tid))
        share = 100.0 * step.duration_us / report.wall_us if report.wall_us else 0.0
        chain.add_row(
            [i, step.name, label, step.duration_us / 1e6, step.self_us / 1e6, share]
        )
    parts.append(chain.render())

    attr = Table(
        "Self-time attribution (top spans by self time)",
        ["span", "count", "total s", "self s", "child s"],
        digits=3,
    )
    ranked = sorted(
        report.attribution.items(), key=lambda kv: kv[1][2], reverse=True
    )
    for path, (count, total, self_total) in ranked[:15]:
        attr.add_row(
            [
                path.rsplit("/", 1)[-1] if "/" in path else path,
                count,
                total / 1e6,
                self_total / 1e6,
                max(0.0, total - self_total) / 1e6,
            ]
        )
    parts.append(attr.render())

    eff = Table(
        "Parallel efficiency: per-lane busy time",
        ["lane", "busy s", "utilization %"],
        digits=3,
    )
    for tid in sorted(report.busy_us):
        label = report.lanes.get(tid, f"lane {tid}")
        busy = report.busy_us[tid]
        util = 100.0 * busy / report.wall_us if report.wall_us else 0.0
        eff.add_row([label, busy / 1e6, util])
    summary = (
        f"{report.worker_lanes} worker lane(s); parallel efficiency "
        + (
            f"{report.parallel_efficiency:.1%}"
            if report.parallel_efficiency is not None
            else "n/a (no worker lanes)"
        )
    )
    parts.append(eff.render() + "\n" + summary)
    return "\n\n".join(parts)


# -- metrics time series ------------------------------------------------------


def series_report(
    samples: Sequence[Mapping[str, Any]],
    source: Optional[str] = None,
    skipped_lines: int = 0,
) -> str:
    """Render a sampler time series as a per-metric summary table.

    ``skipped_lines`` (from ``read_series_jsonl`` meta) flags a
    truncated/corrupted series in the report title instead of letting
    data loss pass silently.
    """
    truncated = (
        f" — WARNING: {skipped_lines} malformed line(s) skipped"
        if skipped_lines
        else ""
    )
    if not samples:
        return "Telemetry: series contains no samples" + truncated
    t0 = float(samples[0].get("t_s", 0.0))
    t1 = float(samples[-1].get("t_s", 0.0))
    span_s = t1 - t0

    metrics: Dict[Tuple[str, str], List[Tuple[float, float]]] = {}
    for sample in samples:
        t = float(sample.get("t_s", 0.0))
        for kind in ("counters", "gauges"):
            for name, value in sample.get(kind, {}).items():
                metrics.setdefault((kind[:-1], name), []).append((t, float(value)))

    suffix = f" ({source})" if source else ""
    table = Table(
        f"Telemetry: metrics time series{suffix} — "
        f"{len(samples)} samples over {span_s:.2f} s{truncated}",
        ["metric", "kind", "samples", "first", "last", "min", "max", "rate/s"],
        digits=3,
    )
    for (kind, name) in sorted(metrics, key=lambda k: (k[1], k[0])):
        points = metrics[(kind, name)]
        values = [v for _, v in points]
        rate = ""
        if kind == "counter" and len(points) > 1:
            dt = points[-1][0] - points[0][0]
            if dt > 0:
                rate = (points[-1][1] - points[0][1]) / dt
        table.add_row(
            [
                name,
                kind,
                len(points),
                values[0],
                values[-1],
                min(values),
                max(values),
                rate,
            ]
        )
    return table.render()
