"""Counters, gauges, and histograms — the aggregate side of telemetry.

Spans answer "where did the time go"; the :class:`MetricsRegistry`
answers "how much work was done": nodes and edges built, trace events
replayed, selection candidates kept vs. rejected, cache hits and misses,
pool queue depth.  Everything here is dependency-free and cheap enough
to update from instrumented code without measurable overhead — a
counter bump is one dict operation.

The registry snapshots to plain JSON-able dicts so pool workers can ship
their metrics back through a pickled job result and the parent process
can :meth:`~MetricsRegistry.merge` them into one accounting.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Tuple


class Histogram:
    """Power-of-two bucketed histogram of non-negative values.

    Bucket ``k`` covers ``[2**(k-1), 2**k)`` for ``k >= 1``; bucket 0
    covers ``[0, 1)``.  Exponential buckets suit the quantities measured
    here (instruction counts, dwell times) whose interesting structure
    spans orders of magnitude.
    """

    __slots__ = ("counts",)

    def __init__(self) -> None:
        self.counts: Dict[int, int] = {}

    @staticmethod
    def bucket_index(value: float) -> int:
        v = int(value)
        if v < 1:
            return 0
        return v.bit_length()

    @staticmethod
    def bucket_label(index: int) -> str:
        if index == 0:
            return "[0, 1)"
        return f"[{2 ** (index - 1):,}, {2 ** index:,})"

    def observe(self, value: float) -> None:
        b = self.bucket_index(value)
        self.counts[b] = self.counts.get(b, 0) + 1

    @property
    def total(self) -> int:
        return sum(self.counts.values())

    def rows(self) -> List[Tuple[str, int]]:
        """(bucket label, count) pairs in ascending bucket order."""
        return [(self.bucket_label(k), self.counts[k]) for k in sorted(self.counts)]

    # -- snapshot / merge -----------------------------------------------------

    def snapshot(self) -> Dict[str, int]:
        return {str(k): v for k, v in self.counts.items()}

    def merge(self, snap: Mapping[str, int]) -> None:
        for k, v in snap.items():
            idx = int(k)
            self.counts[idx] = self.counts.get(idx, 0) + int(v)


class MetricsRegistry:
    """Named counters (monotonic sums), gauges (last value wins), and
    histograms, aggregated over one telemetry session."""

    def __init__(self) -> None:
        self.counters: Dict[str, float] = {}
        self.gauges: Dict[str, float] = {}
        self.histograms: Dict[str, Histogram] = {}

    def count(self, name: str, value: float = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + value

    def gauge(self, name: str, value: float) -> None:
        self.gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        hist = self.histograms.get(name)
        if hist is None:
            hist = self.histograms[name] = Histogram()
        hist.observe(value)

    def __bool__(self) -> bool:
        return bool(self.counters or self.gauges or self.histograms)

    # -- snapshot / merge -----------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """A plain-dict copy, safe to pickle/JSON across processes."""
        return {
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "histograms": {n: h.snapshot() for n, h in self.histograms.items()},
        }

    def merge(self, snap: Optional[Mapping[str, Any]]) -> None:
        """Fold a :meth:`snapshot` (e.g. from a pool worker) into this
        registry: counters add, gauges overwrite, histograms add."""
        if not snap:
            return
        for name, value in snap.get("counters", {}).items():
            self.count(name, value)
        for name, value in snap.get("gauges", {}).items():
            self.gauge(name, value)
        for name, counts in snap.get("histograms", {}).items():
            hist = self.histograms.get(name)
            if hist is None:
                hist = self.histograms[name] = Histogram()
            hist.merge(counts)
