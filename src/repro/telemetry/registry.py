"""Counters, gauges, and histograms — the aggregate side of telemetry.

Spans answer "where did the time go"; the :class:`MetricsRegistry`
answers "how much work was done": nodes and edges built, trace events
replayed, selection candidates kept vs. rejected, cache hits and misses,
pool queue depth.  Everything here is dependency-free and cheap enough
to update from instrumented code without measurable overhead — a
counter bump is one dict operation.

The registry snapshots to plain JSON-able dicts so pool workers can ship
their metrics back through a pickled job result and the parent process
can :meth:`~MetricsRegistry.merge` them into one accounting.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Mapping, Optional, Tuple

#: bucket index for observations of exactly zero — and the explicit
#: clamp target for negative and NaN observations.  Sorts below every
#: real exponent bucket (the smallest subnormal float has frexp
#: exponent -1073).
ZERO_BUCKET = -1100
#: bucket index for ``+inf`` observations; sorts above every finite
#: exponent bucket (the largest finite float has frexp exponent 1024)
INF_BUCKET = 1100


class Histogram:
    """Power-of-two bucketed histogram of non-negative values.

    Bucket ``k`` covers ``[2**(k-1), 2**k)`` for any integer ``k`` —
    negative exponents included, so sub-second span durations and
    fractional dwell values land in real buckets (``0.3`` seconds goes
    to ``[0.25, 0.5)``) instead of all collapsing into one bottom
    bucket.  Exponential buckets suit the quantities measured here
    (instruction counts, dwell times, durations) whose interesting
    structure spans orders of magnitude.

    Exactly-zero observations get the dedicated ``"0"`` bucket
    (:data:`ZERO_BUCKET`).  Negative and NaN observations are invalid
    for a non-negative histogram; they are **clamped to the zero
    bucket explicitly** rather than silently mislabeled, and counted
    per-histogram in :attr:`invalid`.  ``+inf`` lands in the
    :data:`INF_BUCKET` overflow bucket.
    """

    __slots__ = ("counts", "invalid")

    def __init__(self) -> None:
        self.counts: Dict[int, int] = {}
        #: negative/NaN observations clamped to the zero bucket
        self.invalid = 0

    @staticmethod
    def bucket_index(value: float) -> int:
        v = float(value)
        if v != v or v <= 0.0:  # NaN, zero, and negatives
            return ZERO_BUCKET
        if v == math.inf:
            return INF_BUCKET
        # frexp: v = m * 2**e with 0.5 <= m < 1, so 2**(e-1) <= v < 2**e
        return math.frexp(v)[1]

    @staticmethod
    def bucket_label(index: int) -> str:
        if index == ZERO_BUCKET:
            return "0"
        if index == INF_BUCKET:
            return "inf"
        if index >= 1:
            return f"[{2 ** (index - 1):,}, {2 ** index:,})"
        return f"[{2.0 ** (index - 1):g}, {2.0 ** index:g})"

    def observe(self, value: float) -> None:
        v = float(value)
        if v < 0.0 or v != v:
            self.invalid += 1
        b = self.bucket_index(v)
        self.counts[b] = self.counts.get(b, 0) + 1

    @property
    def total(self) -> int:
        return sum(self.counts.values())

    def rows(self) -> List[Tuple[str, int]]:
        """(bucket label, count) pairs in ascending bucket order."""
        return [(self.bucket_label(k), self.counts[k]) for k in sorted(self.counts)]

    # -- snapshot / merge -----------------------------------------------------

    def snapshot(self) -> Dict[str, int]:
        snap = {str(k): v for k, v in self.counts.items()}
        if self.invalid:
            snap["invalid"] = self.invalid
        return snap

    def merge(self, snap: Mapping[str, int]) -> None:
        for k, v in snap.items():
            if k == "invalid":
                self.invalid += int(v)
                continue
            idx = int(k)
            self.counts[idx] = self.counts.get(idx, 0) + int(v)


class MetricsRegistry:
    """Named counters (monotonic sums), gauges (last value wins), and
    histograms, aggregated over one telemetry session."""

    def __init__(self) -> None:
        self.counters: Dict[str, float] = {}
        self.gauges: Dict[str, float] = {}
        self.histograms: Dict[str, Histogram] = {}

    def count(self, name: str, value: float = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + value

    def gauge(self, name: str, value: float) -> None:
        self.gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        hist = self.histograms.get(name)
        if hist is None:
            hist = self.histograms[name] = Histogram()
        hist.observe(value)

    def __bool__(self) -> bool:
        return bool(self.counters or self.gauges or self.histograms)

    # -- snapshot / merge -----------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """A plain-dict copy, safe to pickle/JSON across processes."""
        return {
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "histograms": {n: h.snapshot() for n, h in self.histograms.items()},
        }

    def merge(self, snap: Optional[Mapping[str, Any]]) -> None:
        """Fold a :meth:`snapshot` (e.g. from a pool worker) into this
        registry: counters add, histograms add, and gauges merge by
        **max**.

        The gauge policy is deliberate: pool results arrive in
        completion order, so "last worker wins" would make the merged
        value depend on scheduling.  ``max`` is commutative and
        associative — any merge order yields the identical snapshot —
        and reads naturally for the gauges shipped across workers
        (largest graph, deepest queue).  Locally recorded gauges keep
        last-write-wins semantics (:meth:`gauge`).
        """
        if not snap:
            return
        for name, value in snap.get("counters", {}).items():
            self.count(name, value)
        for name, value in snap.get("gauges", {}).items():
            current = self.gauges.get(name)
            self.gauges[name] = value if current is None else max(current, value)
        for name, counts in snap.get("histograms", {}).items():
            hist = self.histograms.get(name)
            if hist is None:
                hist = self.histograms[name] = Histogram()
            hist.merge(counts)
