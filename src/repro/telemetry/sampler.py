"""Background metrics sampler: a bounded time series of counters/gauges.

The end-of-run snapshot answers "how much work happened"; the sampler
answers "how did it *unfold*": a daemon thread wakes at a configurable
interval, copies the active session's counters and gauges, and appends
the sample to a bounded ring buffer — bounded memory no matter how long
the run, the property the future ``repro serve`` loadgen scenario needs
(ROADMAP item 1).  Sampling is read-only and lock-free: counter bumps
are single dict operations under the GIL, and the copy retries on the
rare resize race instead of taking a lock on the hot write path.

Samples export as JSONL (:func:`write_series_jsonl` /
:func:`read_series_jsonl` — one sample per line, meta header first) and
render via :func:`repro.telemetry.analysis.series_report`
(``repro stats --series``).  The *latest* sample is also what a
Prometheus scrape would expose
(:func:`repro.telemetry.exporters.prometheus_text`).
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Tuple, Union

#: bump when the series JSONL layout changes incompatibly
SERIES_SCHEMA_VERSION = 1

#: default sampling interval (seconds)
DEFAULT_INTERVAL_S = 0.05

#: default ring capacity: 2 minutes of history at the default interval
DEFAULT_CAPACITY = 2400


def _copy_metrics(mapping: Mapping[str, float]) -> Dict[str, float]:
    """Copy a live metrics dict that another thread may be growing.

    ``dict(d)`` can raise ``RuntimeError`` if the dict resizes
    mid-iteration; retry a few times, then fall back to a keys-first
    copy (new keys appended after the key list was taken are simply
    missed — the next sample catches them).
    """
    for _ in range(4):
        try:
            return dict(mapping)
        except RuntimeError:
            continue
    return {k: mapping[k] for k in list(mapping.keys()) if k in mapping}


class MetricsSampler:
    """Samples a telemetry session's counters/gauges into a ring buffer.

    Parameters
    ----------
    tm:
        The (enabled) :class:`~repro.telemetry.core.Telemetry` session
        to sample.
    interval_s:
        Seconds between samples (default 50 ms).
    capacity:
        Ring-buffer bound; the oldest samples are evicted beyond it
        (evictions are counted in :attr:`dropped`, never silent).

    Use as a context manager, or :meth:`start`/:meth:`stop` explicitly;
    the first ``stop()`` takes one final sample so even sub-interval
    runs produce a series, and repeated stops (e.g. an explicit
    ``stop()`` followed by the context manager's ``__exit__``) are
    no-ops — one run, one final sample.  :meth:`start` re-arms the
    sampler for another run.
    """

    def __init__(
        self,
        tm,
        interval_s: float = DEFAULT_INTERVAL_S,
        capacity: int = DEFAULT_CAPACITY,
    ) -> None:
        if interval_s <= 0:
            raise ValueError(f"interval_s must be positive, got {interval_s}")
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self._tm = tm
        self.interval_s = interval_s
        self.capacity = capacity
        self._samples: deque = deque(maxlen=capacity)
        # Guards the ring + dropped counter: sample_now may be called
        # from the sampler thread, the event loop (``repro serve``
        # /stats), and stop() at once; deque.append alone is atomic but
        # the full-check + dropped increment + append is not.
        self._ring_lock = threading.Lock()
        self._stop_event = threading.Event()
        self._thread: Optional[threading.Thread] = None
        # True once stop() has taken this run's final sample; cleared by
        # start() so a restarted sampler gets a fresh final sample.
        self._stopped = False
        #: samples evicted from the full ring
        self.dropped = 0

    # -- sampling -------------------------------------------------------------

    def sample_now(self) -> Dict[str, Any]:
        """Take one sample immediately (also usable without a thread)."""
        metrics = self._tm.metrics
        counters = _copy_metrics(metrics.counters)
        gauges = _copy_metrics(metrics.gauges)
        with self._ring_lock:
            # timestamp under the lock: ring order is time order even
            # when threads race into sample_now
            sample = {
                "t_s": (time.monotonic_ns() - self._tm.epoch_ns) / 1e9,
                "counters": counters,
                "gauges": gauges,
            }
            if len(self._samples) == self.capacity:
                self.dropped += 1
            self._samples.append(sample)
        return sample

    def samples(self) -> List[Dict[str, Any]]:
        """The buffered samples, oldest first."""
        with self._ring_lock:
            return list(self._samples)

    # -- lifecycle ------------------------------------------------------------

    def start(self) -> "MetricsSampler":
        if self._thread is not None:
            raise RuntimeError("sampler already started")
        self._stopped = False
        self._stop_event.clear()
        self._thread = threading.Thread(
            target=self._loop, name="repro-metrics-sampler", daemon=True
        )
        self._thread.start()
        return self

    def _loop(self) -> None:
        while not self._stop_event.wait(self.interval_s):
            self.sample_now()

    def stop(self) -> List[Dict[str, Any]]:
        """Stop the thread, take a final sample, return the series.

        Idempotent: only the first stop of a run appends the final
        sample; extra stops just return the buffered series (regression:
        every extra stop used to append another "final" sample, skewing
        tail-of-series rates).
        """
        if self._thread is not None:
            self._stop_event.set()
            self._thread.join()
            self._thread = None
        if not self._stopped:
            self._stopped = True
            self.sample_now()
        return self.samples()

    def __enter__(self) -> "MetricsSampler":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()


# -- series JSONL -------------------------------------------------------------


def write_series_jsonl(
    samples: List[Dict[str, Any]],
    path: Union[str, Path],
    run_id: str = "",
    interval_s: Optional[float] = None,
    dropped: int = 0,
) -> Path:
    """Write a metrics time series as JSONL: meta header, one sample per
    line; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w") as f:
        meta = {
            "meta": {
                "schema": SERIES_SCHEMA_VERSION,
                "tool": "repro",
                "run_id": run_id,
                "interval_s": interval_s,
                "samples": len(samples),
                "dropped": dropped,
            }
        }
        f.write(json.dumps(meta, sort_keys=True))
        f.write("\n")
        for sample in samples:
            f.write(json.dumps(sample, sort_keys=True))
            f.write("\n")
    return path


def read_series_jsonl(
    path: Union[str, Path],
) -> Tuple[Dict[str, Any], List[Dict[str, Any]]]:
    """Load ``(meta, samples)`` from a series file.

    Blank lines are ignored; malformed or unrecognized lines are skipped
    so a truncated series still renders — but never silently: the count
    of skipped lines is surfaced as ``meta["skipped_lines"]`` (always
    present, 0 for a clean file) and reported by
    ``repro stats --series``.
    """
    meta: Dict[str, Any] = {}
    samples: List[Dict[str, Any]] = []
    skipped = 0
    with open(path) as f:
        for line in f:
            line = line.strip()
            if not line:
                continue
            try:
                obj = json.loads(line)
            except json.JSONDecodeError:
                skipped += 1
                continue
            if isinstance(obj, dict) and "meta" in obj:
                meta = obj["meta"]
            elif isinstance(obj, dict) and "t_s" in obj:
                samples.append(obj)
            else:
                skipped += 1
    meta = dict(meta)
    meta["skipped_lines"] = skipped
    return meta, samples
