"""Hierarchical spans and the process-wide telemetry session.

The instrumentation substrate for the whole pipeline: *spans* time a
named slice of work (graph construction, a selection pass, a profile
job) with parent/child nesting and per-span attributes; *counters,
gauges and histograms* (see :mod:`repro.telemetry.registry`) aggregate
how much work was done.  Exporters (:mod:`repro.telemetry.exporters`)
render a session as a human-readable table on stderr, a
Chrome-trace-compatible JSONL file, or a metrics snapshot.

Telemetry is **disabled by default** and the disabled path is a no-op
fast path: :func:`get_telemetry` returns a singleton whose ``span`` is a
reusable null context manager and whose counter/gauge methods return
immediately, so instrumented code stays within noise of uninstrumented
code.  Call sites that would pay to *compute* an attribute guard on
``tm.enabled``.

Instrumentation is bulk-granularity by design: spans wrap pipeline
stages, never per-event inner loops — event totals are recorded as one
counter bump after the loop.

A session is installed process-wide (the pipeline is single-threaded
per process; pool workers each install their own and ship a
:meth:`Telemetry.snapshot` back through the job result, which the
parent folds in with :meth:`Telemetry.merge_snapshot`).

Concurrency
-----------
The *span stack* (:meth:`Telemetry.span`) belongs to one thread of
control: nested ``with tm.span(...)`` blocks must open and close on the
same thread, and an asyncio coroutine must not hold one open across an
``await`` (interleaved tasks would corrupt the parent chain).  The
*flat* recording surface is safe to share: :meth:`Telemetry.emit_span`,
:meth:`Telemetry.instant`, :meth:`Telemetry.record_span`,
:meth:`Telemetry.lane`, and :meth:`Telemetry.merge_snapshot` allocate
ids and lanes under a lock, so concurrent asyncio tasks, shard threads,
and the background :class:`~repro.telemetry.sampler.MetricsSampler` can
record into one session without losing or cross-wiring records — the
contract the serving layer (``repro serve``) leans on.

Cross-worker stitching
----------------------
A session carries a **run id** (propagated to pool workers through
:class:`~repro.runner.jobs.ProfileJob`) and a set of named **lanes** —
Chrome-trace ``tid`` values with human labels ("main", "worker 1234",
"shard 2", "phase 3").  :meth:`Telemetry.lane` allocates/looks up a
lane by label; :meth:`Telemetry.emit_span` records an
externally-timed span onto a lane (shard workers and forked shard
pools measure with ``time.monotonic_ns`` — system-wide on one machine
— and the parent emits the spans); :meth:`Telemetry.merge_snapshot`
remaps worker span/parent ids onto fresh local ids and worker lanes
onto fresh local lanes, so a ``--jobs N --profile-shards M`` run
exports **one** coherent multi-lane timeline instead of disconnected
per-worker fragments.
"""

from __future__ import annotations

import functools
import os
import threading
import time
import uuid
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional

from repro.telemetry.registry import MetricsRegistry


@dataclass
class SpanRecord:
    """One completed span.

    ``start_us``/``duration_us`` are microseconds relative to the
    session epoch — the units Chrome trace events use directly.
    ``path`` is the "/"-joined chain of ancestor names, the key the
    per-stage aggregation tables group by.
    """

    span_id: int
    parent_id: Optional[int]
    name: str
    path: str
    start_us: float
    duration_us: float
    attrs: Dict[str, Any] = field(default_factory=dict)
    pid: int = 0
    #: lane the span renders on (Chrome-trace ``tid``); 0 = the main
    #: lane, others are allocated by :meth:`Telemetry.lane`
    tid: int = 0

    @property
    def seconds(self) -> float:
        return self.duration_us / 1e6

    def as_dict(self) -> Dict[str, Any]:
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "path": self.path,
            "start_us": self.start_us,
            "duration_us": self.duration_us,
            "attrs": dict(self.attrs),
            "pid": self.pid,
            "tid": self.tid,
        }


@dataclass
class InstantRecord:
    """A zero-duration event (Chrome-trace ``ph: "i"``): something that
    *happened* at an instant — a phase change, a marker firing."""

    name: str
    ts_us: float
    attrs: Dict[str, Any] = field(default_factory=dict)
    pid: int = 0
    tid: int = 0

    def as_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "ts_us": self.ts_us,
            "attrs": dict(self.attrs),
            "pid": self.pid,
            "tid": self.tid,
        }


class _OpenSpan:
    """A span currently on the stack; ``attrs`` may be updated while open."""

    __slots__ = ("span_id", "parent_id", "name", "path", "start_ns", "attrs")

    def __init__(self, span_id, parent_id, name, path, start_ns, attrs):
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.path = path
        self.start_ns = start_ns
        self.attrs = attrs

    def set(self, key: str, value: Any) -> None:
        """Attach an attribute discovered while the span is running."""
        self.attrs[key] = value


#: lane id of the main span stack
MAIN_LANE = 0


class Telemetry:
    """One telemetry session: a span stack plus a metrics registry.

    ``run_id`` identifies the run the session belongs to; pool workers
    inherit the parent's so stitched traces carry one identity
    end-to-end (a fresh random id is generated when not given).
    """

    enabled = True

    def __init__(self, run_id: Optional[str] = None) -> None:
        self.metrics = MetricsRegistry()
        self.spans: List[SpanRecord] = []
        self.instants: List[InstantRecord] = []
        self.run_id = run_id or uuid.uuid4().hex[:12]
        #: lane id -> human label (Chrome-trace thread names)
        self.lane_labels: Dict[int, str] = {MAIN_LANE: "main"}
        self._lane_ids: Dict[str, int] = {"main": MAIN_LANE}
        self._next_lane = 1
        self._stack: List[_OpenSpan] = []
        self._epoch_ns = time.monotonic_ns()
        self._ids = 0
        self._pid = os.getpid()
        # Guards id/lane allocation and record appends for the flat
        # recording surface (emit_span/instant/record_span/lane/merge):
        # those are called from asyncio tasks and helper threads.  An
        # RLock because merge_snapshot allocates lanes while holding it.
        self._lock = threading.RLock()

    @property
    def pid(self) -> int:
        return self._pid

    @property
    def epoch_ns(self) -> int:
        """The session epoch (``time.monotonic_ns`` at construction)."""
        return self._epoch_ns

    def lane(self, label: str) -> int:
        """The lane id for *label*, allocating one on first use.

        Labels are stable within a session: asking for ``"shard 0"``
        twice returns the same lane, so repeated pipeline stages share
        timeline rows instead of sprawling.
        """
        with self._lock:
            tid = self._lane_ids.get(label)
            if tid is None:
                tid = self._next_lane
                self._next_lane += 1
                self._lane_ids[label] = tid
                self.lane_labels[tid] = label
            return tid

    # -- spans ----------------------------------------------------------------

    @contextmanager
    def span(self, name: str, **attrs: Any) -> Iterator[_OpenSpan]:
        """Time a block of work as a child of the innermost open span.

        Exception-safe: the span closes (and keeps its timing) however
        the block exits; on an exception the span is tagged with an
        ``error`` attribute naming the exception type, and the exception
        propagates.
        """
        open_span = self._open(name, attrs)
        try:
            yield open_span
        except BaseException as exc:
            open_span.attrs["error"] = type(exc).__name__
            raise
        finally:
            self._close(open_span)

    def _next_id(self) -> int:
        with self._lock:
            self._ids += 1
            return self._ids

    def _open(self, name: str, attrs: Dict[str, Any]) -> _OpenSpan:
        parent = self._stack[-1] if self._stack else None
        span = _OpenSpan(
            self._next_id(),
            parent.span_id if parent is not None else None,
            name,
            f"{parent.path}/{name}" if parent is not None else name,
            time.monotonic_ns(),
            attrs,
        )
        self._stack.append(span)
        return span

    def _close(self, open_span: _OpenSpan) -> None:
        end_ns = time.monotonic_ns()
        # Defensive unwinding: a child leaked open closes with its parent.
        while self._stack and self._stack[-1] is not open_span:
            self._stack.pop()
        if self._stack:
            self._stack.pop()
        with self._lock:
            self.spans.append(
                SpanRecord(
                    span_id=open_span.span_id,
                    parent_id=open_span.parent_id,
                    name=open_span.name,
                    path=open_span.path,
                    start_us=(open_span.start_ns - self._epoch_ns) / 1000.0,
                    duration_us=(end_ns - open_span.start_ns) / 1000.0,
                    attrs=open_span.attrs,
                    pid=self._pid,
                )
            )

    def record_span(
        self, name: str, seconds: float, **attrs: Any
    ) -> SpanRecord:
        """Log an already-measured span (e.g. a timing a pool worker or
        the run log took with its own clock) ending now."""
        parent = self._stack[-1] if self._stack else None
        end_ns = time.monotonic_ns()
        record = SpanRecord(
            span_id=self._next_id(),
            parent_id=parent.span_id if parent is not None else None,
            name=name,
            path=f"{parent.path}/{name}" if parent is not None else name,
            start_us=(end_ns - self._epoch_ns) / 1000.0 - seconds * 1e6,
            duration_us=seconds * 1e6,
            attrs=attrs,
            pid=self._pid,
        )
        with self._lock:
            self.spans.append(record)
        return record

    def emit_span(
        self,
        name: str,
        start_ns: int,
        end_ns: int,
        tid: int = MAIN_LANE,
        **attrs: Any,
    ) -> SpanRecord:
        """Record an externally-timed span onto a lane.

        *start_ns*/*end_ns* are ``time.monotonic_ns`` readings —
        CLOCK_MONOTONIC is system-wide, so timings taken on shard
        threads or forked shard workers land on the session timeline
        exactly where they ran.  The span parents under the innermost
        open span (the caller emits from the orchestrating stage), but
        renders on lane *tid*.

        Safe to call from concurrent asyncio tasks and helper threads:
        id allocation and the record append happen under the session
        lock (see *Concurrency* in the module docstring).
        """
        parent = self._stack[-1] if self._stack else None
        record = SpanRecord(
            span_id=self._next_id(),
            parent_id=parent.span_id if parent is not None else None,
            name=name,
            path=f"{parent.path}/{name}" if parent is not None else name,
            start_us=(start_ns - self._epoch_ns) / 1000.0,
            duration_us=(end_ns - start_ns) / 1000.0,
            attrs=attrs,
            pid=self._pid,
            tid=tid,
        )
        with self._lock:
            self.spans.append(record)
        return record

    def instant(self, name: str, tid: int = MAIN_LANE, **attrs: Any) -> InstantRecord:
        """Record a zero-duration event at the current instant (safe from
        concurrent tasks/threads, like :meth:`emit_span`)."""
        record = InstantRecord(
            name=name,
            ts_us=(time.monotonic_ns() - self._epoch_ns) / 1000.0,
            attrs=attrs,
            pid=self._pid,
            tid=tid,
        )
        with self._lock:
            self.instants.append(record)
        return record

    @property
    def current_span(self) -> Optional[_OpenSpan]:
        return self._stack[-1] if self._stack else None

    # -- metrics --------------------------------------------------------------

    def counter(self, name: str, value: float = 1) -> None:
        self.metrics.count(name, value)

    def gauge(self, name: str, value: float) -> None:
        self.metrics.gauge(name, value)

    def observe(self, name: str, value: float) -> None:
        self.metrics.observe(name, value)

    # -- cross-process aggregation --------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """The whole session as plain picklable/JSON-able data."""
        with self._lock:
            return {
                "epoch_ns": self._epoch_ns,
                "pid": self._pid,
                "run_id": self.run_id,
                "lanes": {
                    str(tid): label for tid, label in self.lane_labels.items()
                },
                "metrics": self.metrics.snapshot(),
                "spans": [s.as_dict() for s in self.spans],
                "instants": [i.as_dict() for i in self.instants],
            }

    def merge_snapshot(
        self, snap: Optional[Dict[str, Any]], lane: Optional[str] = None
    ) -> None:
        """Fold another session's :meth:`snapshot` into this one.

        Metrics aggregate; spans are adopted with fresh ids, re-parented
        under the currently open span, and rebased onto this session's
        epoch (CLOCK_MONOTONIC is shared across processes on one
        machine, so worker span timestamps stay on the same timeline).

        Lanes stitch: the snapshot's main lane maps to a local lane
        labelled *lane* (default ``"worker <pid>"``) and every other
        worker lane maps to ``"<base> · <worker label>"`` — so a
        worker's own shard lanes stay distinguishable in the merged
        timeline.  A snapshot recorded under a different run id still
        merges, but the mismatch is counted
        (``telemetry.merge.run_id_mismatch``).
        """
        if not snap:
            return
        # One lock for the whole merge: ids stay gapless within the
        # adopted block and concurrent emit_span calls (serving request
        # handlers merge worker snapshots from many tasks) cannot
        # interleave ids or lane allocations mid-merge.  The lock is
        # reentrant, so the self.lane() calls below are fine.
        with self._lock:
            self.metrics.merge(snap.get("metrics"))
            snap_run = snap.get("run_id")
            if snap_run and snap_run != self.run_id:
                self.metrics.count("telemetry.merge.run_id_mismatch")
            snap_pid = snap.get("pid", 0)
            base = lane or f"worker {snap_pid}"
            snap_lanes = {int(k): v for k, v in snap.get("lanes", {}).items()}
            lane_map: Dict[int, int] = {}

            def map_tid(tid: int) -> int:
                local = lane_map.get(tid)
                if local is None:
                    if tid == MAIN_LANE:
                        label = base
                    else:
                        label = f"{base} · {snap_lanes.get(tid, f'lane {tid}')}"
                    local = lane_map[tid] = self.lane(label)
                return local

            offset_us = (
                snap.get("epoch_ns", self._epoch_ns) - self._epoch_ns
            ) / 1000.0
            parent = self._stack[-1] if self._stack else None
            id_map: Dict[int, int] = {}
            for data in snap.get("spans", ()):
                self._ids += 1
                id_map[data["span_id"]] = self._ids
                if data["parent_id"] is None:
                    parent_id = parent.span_id if parent is not None else None
                    path = (
                        f"{parent.path}/{data['path']}"
                        if parent is not None
                        else data["path"]
                    )
                else:
                    parent_id = id_map.get(data["parent_id"])
                    path = data["path"]
                self.spans.append(
                    SpanRecord(
                        span_id=self._ids,
                        parent_id=parent_id,
                        name=data["name"],
                        path=path,
                        start_us=data["start_us"] + offset_us,
                        duration_us=data["duration_us"],
                        attrs=dict(data.get("attrs", ())),
                        pid=data.get("pid", 0),
                        tid=map_tid(data.get("tid", MAIN_LANE)),
                    )
                )
            for data in snap.get("instants", ()):
                self.instants.append(
                    InstantRecord(
                        name=data["name"],
                        ts_us=data["ts_us"] + offset_us,
                        attrs=dict(data.get("attrs", ())),
                        pid=data.get("pid", 0),
                        tid=map_tid(data.get("tid", MAIN_LANE)),
                    )
                )


class _NullSpan:
    """Reusable no-op stand-in for an open span (and its context manager)."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: Any) -> bool:
        return False

    def set(self, key: str, value: Any) -> None:
        pass

    @property
    def attrs(self) -> Dict[str, Any]:
        return {}


_NULL_SPAN = _NullSpan()


class NoopTelemetry:
    """The disabled fast path: every operation returns immediately."""

    enabled = False
    spans: List[SpanRecord] = []
    instants: List[InstantRecord] = []
    run_id = ""
    lane_labels: Dict[int, str] = {}
    pid = 0
    epoch_ns = 0

    def span(self, name: str, **attrs: Any) -> _NullSpan:
        return _NULL_SPAN

    def record_span(self, name: str, seconds: float, **attrs: Any) -> None:
        return None

    def emit_span(
        self, name: str, start_ns: int, end_ns: int, tid: int = 0, **attrs: Any
    ) -> None:
        return None

    def instant(self, name: str, tid: int = 0, **attrs: Any) -> None:
        return None

    def lane(self, label: str) -> int:
        return MAIN_LANE

    def counter(self, name: str, value: float = 1) -> None:
        pass

    def gauge(self, name: str, value: float) -> None:
        pass

    def observe(self, name: str, value: float) -> None:
        pass

    def snapshot(self) -> Dict[str, Any]:
        return {}

    def merge_snapshot(
        self, snap: Optional[Dict[str, Any]], lane: Optional[str] = None
    ) -> None:
        pass

    @property
    def current_span(self) -> None:
        return None


_NOOP = NoopTelemetry()
_active: Optional[Telemetry] = None


def get_telemetry():
    """The active session, or the no-op singleton when telemetry is off."""
    return _active if _active is not None else _NOOP


def enable_telemetry() -> Telemetry:
    """Install (and return) a fresh process-wide telemetry session."""
    global _active
    _active = Telemetry()
    return _active


def disable_telemetry() -> Optional[Telemetry]:
    """Deactivate telemetry; returns the session that was active."""
    global _active
    prev, _active = _active, None
    return prev


def install_telemetry(tm: Optional[Telemetry]) -> Optional[Telemetry]:
    """Install a specific session (or None); returns the previous one.

    Used by pool workers (install a local session for one job) and
    tests; :func:`enable_telemetry` is the normal entry point.
    """
    global _active
    prev, _active = _active, tm
    return prev


@contextmanager
def telemetry_session(tm: Optional[Telemetry] = None) -> Iterator[Telemetry]:
    """Scoped telemetry: install a session, restore the previous on exit."""
    session = tm if tm is not None else Telemetry()
    prev = install_telemetry(session)
    try:
        yield session
    finally:
        install_telemetry(prev)


def timed(name: Optional[str] = None, **attrs: Any) -> Callable:
    """Decorator form of :meth:`Telemetry.span`.

    Resolves the active session at call time, so decorated functions
    cost one global read plus one attribute check when telemetry is off.
    """

    def decorate(fn: Callable) -> Callable:
        label = name or fn.__qualname__

        @functools.wraps(fn)
        def wrapper(*args: Any, **kwargs: Any):
            tm = get_telemetry()
            if not tm.enabled:
                return fn(*args, **kwargs)
            with tm.span(label, **attrs):
                return fn(*args, **kwargs)

        return wrapper

    return decorate
