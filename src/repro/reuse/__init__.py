"""The comparison baseline: Shen et al.'s reuse-distance phase markers.

The paper compares its code-structure markers against "Locality Phase
Prediction" (Shen, Zhong, Ding; ASPLOS 2004), which detects phases from
the *data* side: compute data reuse distances, locate abrupt changes with
wavelet filtering, find the repeating pattern with Sequitur, and select
basic blocks whose executions correlate with the detected boundaries.

This package reimplements that pipeline on our traces:

* :mod:`repro.reuse.distance` — exact LRU reuse distances in
  O(n log n) via a Fenwick tree;
* :mod:`repro.reuse.wavelet` — Haar wavelet decomposition and abrupt-
  change detection;
* :mod:`repro.reuse.sequitur` — the Sequitur grammar-inference algorithm
  (digram uniqueness + rule utility), used to test whether the boundary
  sequence has repeating structure;
* :mod:`repro.reuse.phases` — the end-to-end marker selection, including
  the honest failure mode on irregular programs (gcc, vortex) that
  motivates the paper's approach.
"""

from repro.reuse.distance import prev_occurrences, reuse_distances, reuse_histogram
from repro.reuse.wavelet import haar_decompose, haar_reconstruct, haar_smooth
from repro.reuse.sequitur import Grammar
from repro.reuse.phases import (
    ReuseMarkerParams,
    ReusePhaseResult,
    select_reuse_markers,
    split_at_block_markers,
)

__all__ = [
    "prev_occurrences",
    "reuse_distances",
    "reuse_histogram",
    "haar_decompose",
    "haar_reconstruct",
    "haar_smooth",
    "Grammar",
    "ReuseMarkerParams",
    "ReusePhaseResult",
    "select_reuse_markers",
    "split_at_block_markers",
]
