"""Sequitur grammar inference (Nevill-Manning & Witten).

Builds a context-free grammar from a sequence online, maintaining two
invariants:

* **digram uniqueness** — no pair of adjacent symbols appears more than
  once in the grammar (duplicates become rules);
* **rule utility** — every rule is used at least twice (single-use rules
  are inlined).

Shen et al. run Sequitur over their reuse-distance phase boundaries to
discover the repeating phase pattern; we additionally use the achieved
compression as a *regularity score* — on irregular programs (gcc,
vortex) the grammar barely compresses, which is exactly the failure mode
the paper reports for the reuse-distance approach.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Optional, Tuple


class _Symbol:
    """A node in a rule body's doubly linked list.

    A symbol is a terminal (``value`` set), a nonterminal (``rule`` set),
    or a guard (``guard_of`` set) — the sentinel closing a rule's
    circular list.
    """

    __slots__ = ("value", "rule", "guard_of", "prev", "next")

    def __init__(self, value=None, rule: Optional["Rule"] = None, guard_of=None):
        self.value = value
        self.rule = rule
        self.guard_of = guard_of
        self.prev: Optional[_Symbol] = None
        self.next: Optional[_Symbol] = None

    @property
    def is_guard(self) -> bool:
        return self.guard_of is not None

    @property
    def is_nonterminal(self) -> bool:
        return self.rule is not None

    def key(self) -> Hashable:
        if self.is_nonterminal:
            return ("r", self.rule.rule_id)
        return ("t", self.value)


class Rule:
    """A grammar rule: a circular list of symbols behind a guard node."""

    def __init__(self, rule_id: int):
        self.rule_id = rule_id
        self.guard = _Symbol(guard_of=self)
        self.guard.prev = self.guard
        self.guard.next = self.guard
        self.users: set = set()  # nonterminal symbols referencing this rule

    @property
    def first(self) -> _Symbol:
        return self.guard.next

    @property
    def last(self) -> _Symbol:
        return self.guard.prev

    def symbols(self) -> Iterable[_Symbol]:
        node = self.guard.next
        while not node.is_guard:
            yield node
            node = node.next

    def __len__(self) -> int:
        return sum(1 for _ in self.symbols())


class Grammar:
    """The Sequitur grammar of a sequence."""

    def __init__(self):
        self._next_rule_id = 0
        self.start = self._new_rule()
        self._digrams: Dict[Tuple[Hashable, Hashable], _Symbol] = {}
        self._length = 0

    # -- construction -----------------------------------------------------------

    @classmethod
    def from_sequence(cls, sequence: Iterable[Hashable]) -> "Grammar":
        g = cls()
        for item in sequence:
            g.push(item)
        return g

    def push(self, value: Hashable) -> None:
        """Append one terminal to the sequence."""
        self._length += 1
        symbol = _Symbol(value=value)
        self._link_after(self.start.last, symbol)
        self._check(symbol.prev)

    def _new_rule(self) -> Rule:
        rule = Rule(self._next_rule_id)
        self._next_rule_id += 1
        return rule

    # -- linked list maintenance ---------------------------------------------------

    @staticmethod
    def _link_after(node: _Symbol, new: _Symbol) -> None:
        new.prev = node
        new.next = node.next
        node.next.prev = new
        node.next = new

    def _forget_digram(self, a: _Symbol) -> None:
        """Remove the digram starting at *a* from the index, if it's the
        registered occurrence."""
        b = a.next
        if a.is_guard or b.is_guard:
            return
        key = (a.key(), b.key())
        if self._digrams.get(key) is a:
            del self._digrams[key]

    def _unlink(self, a: _Symbol) -> None:
        """Remove symbol *a* from its list (digram bookkeeping included)."""
        self._forget_digram(a.prev)
        self._forget_digram(a)
        a.prev.next = a.next
        a.next.prev = a.prev
        if a.is_nonterminal:
            a.rule.users.discard(a)
            if len(a.rule.users) == 1:
                # rule utility: a single remaining use gets inlined
                (only,) = a.rule.users
                self._expand(only)

    # -- the two invariants ------------------------------------------------------

    def _check(self, a: _Symbol) -> None:
        """Enforce digram uniqueness for the digram starting at *a*."""
        b = a.next
        if a.is_guard or b.is_guard:
            return
        key = (a.key(), b.key())
        found = self._digrams.get(key)
        if found is None:
            self._digrams[key] = a
            return
        if found.next is a or a.next is found:
            return  # overlapping occurrence (aaa): leave as is
        if found is a:
            return
        self._match(a, found)

    def _match(self, new_a: _Symbol, old_a: _Symbol) -> None:
        old_b = old_a.next
        if old_a.prev.is_guard and old_b.next.is_guard:
            # the old digram is the entire body of an existing rule
            rule = old_a.prev.guard_of
            self._substitute(new_a, rule)
        else:
            rule = self._new_rule()
            # the rule's body is a copy of the digram
            first = self._clone_for_rule(old_a, rule)
            second = self._clone_for_rule(old_b, rule)
            self._link_after(rule.guard, first)
            self._link_after(first, second)
            self._substitute(old_a, rule)
            self._substitute(new_a, rule)
            self._digrams[(first.key(), second.key())] = first

    def _clone_for_rule(self, symbol: _Symbol, rule: Rule) -> _Symbol:
        if symbol.is_nonterminal:
            clone = _Symbol(rule=symbol.rule)
            symbol.rule.users.add(clone)
            return clone
        return _Symbol(value=symbol.value)

    def _substitute(self, a: _Symbol, rule: Rule) -> None:
        """Replace the digram starting at *a* with a reference to *rule*."""
        b = a.next
        prev = a.prev
        self._unlink(a)
        self._unlink(b)
        ref = _Symbol(rule=rule)
        rule.users.add(ref)
        self._link_after(prev, ref)
        self._check(ref)
        if not ref.next.is_guard:
            self._check(ref)  # re-check after possible rewrites
        if not prev.is_guard:
            self._check(prev)

    def _expand(self, ref: _Symbol) -> None:
        """Inline the (single-use) rule referenced by *ref*."""
        rule = ref.rule
        prev = ref.prev
        # detach body
        first = rule.first
        last = rule.last
        rule.users.discard(ref)
        self._forget_digram(ref.prev)
        self._forget_digram(ref)
        ref.prev.next = ref.next
        ref.next.prev = ref.prev
        if not first.is_guard:
            # splice body where the reference was
            nxt = prev.next
            prev.next = first
            first.prev = prev
            last.next = nxt
            nxt.prev = last
            self._check(last)
        self._check(prev)

    # -- queries ---------------------------------------------------------

    def rules(self) -> List[Rule]:
        """All reachable rules, start rule first."""
        seen = {self.start.rule_id: self.start}
        work = [self.start]
        while work:
            rule = work.pop()
            for symbol in rule.symbols():
                if symbol.is_nonterminal and symbol.rule.rule_id not in seen:
                    seen[symbol.rule.rule_id] = symbol.rule
                    work.append(symbol.rule)
        return [seen[k] for k in sorted(seen)]

    def expand(self) -> List[Hashable]:
        """Reproduce the original sequence from the grammar."""
        out: List[Hashable] = []

        def walk(rule: Rule) -> None:
            for symbol in rule.symbols():
                if symbol.is_nonterminal:
                    walk(symbol.rule)
                else:
                    out.append(symbol.value)

        walk(self.start)
        return out

    @property
    def sequence_length(self) -> int:
        return self._length

    @property
    def grammar_size(self) -> int:
        """Total symbols across all rule bodies."""
        return sum(len(rule) for rule in self.rules())

    @property
    def compression_ratio(self) -> float:
        """sequence length / grammar size (1.0 = no structure found)."""
        size = self.grammar_size
        if size == 0:
            return 1.0
        return self._length / size

    # -- invariant checks (used by tests) ------------------------------------------

    def check_digram_uniqueness(self) -> bool:
        seen = set()
        for rule in self.rules():
            for symbol in rule.symbols():
                if symbol.next.is_guard:
                    continue
                key = (symbol.key(), symbol.next.key())
                if key[0] == key[1]:
                    continue  # overlapping same-symbol runs are permitted
                if key in seen:
                    return False
                seen.add(key)
        return True

    def check_rule_utility(self) -> bool:
        counts: Dict[int, int] = {}
        for rule in self.rules():
            for symbol in rule.symbols():
                if symbol.is_nonterminal:
                    counts[symbol.rule.rule_id] = counts.get(symbol.rule.rule_id, 0) + 1
        return all(c >= 2 for c in counts.values())
