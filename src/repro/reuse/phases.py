"""Reuse-distance (locality) phase marker selection — the Shen baseline.

The pipeline, following Shen et al. [ASPLOS'04] as the paper describes it:

1. compute the data reuse-distance trace of a profiling run;
2. wavelet-filter the (log-scaled, windowed) distance signal and flag
   abrupt changes as candidate phase boundaries;
3. run Sequitur over the boundary signature sequence; the grammar's
   compression measures whether the boundaries form a *repeating* pattern
   ("regular" programs compress well, gcc/vortex do not);
4. select basic blocks whose executions correlate with the boundaries
   (high precision: the block rarely executes away from a boundary) as
   the phase markers.

The honest failure mode is part of the reproduction: on irregular
programs the method reports ``structure_found=False`` — the paper's
motivation for code-structure markers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.engine.events import K_BLOCK
from repro.engine.memory import MemorySystem
from repro.engine.tracing import Trace
from repro.intervals.base import IntervalSet
from repro.reuse.distance import bounded_log_distances, reuse_distances
from repro.reuse.sequitur import Grammar
from repro.reuse.wavelet import haar_smooth


@dataclass(frozen=True)
class ReuseMarkerParams:
    """Tuning of the locality phase detector."""

    window: Optional[int] = None  #: accesses per sample (None: auto-size
    #: toward ``target_samples`` samples over the whole run)
    target_samples: int = 512
    smooth_level: int = 2  #: Haar denoising level before detection
    wavelet_level: int = 2  #: Haar scale used for change detection
    z_threshold: float = 2.5  #: robust z-score for an abrupt change
    signature_bins: int = 6  #: quantization levels for the boundary pattern
    #: candidate phase granularities (in samples); like Shen et al.'s
    #: multi-scale wavelet hierarchy, the detector searches scales and
    #: keeps the one whose boundary pattern compresses best
    segment_scales: Tuple[int, ...] = (4, 6, 8, 12, 16)
    min_precision: float = 0.5  #: fraction of a marker block's executions
    #: that must align with detected boundaries
    min_boundaries: int = 4  #: fewer detected boundaries => no structure
    min_compression: float = 1.5  #: Sequitur ratio below this => irregular
    max_access_cap: int = 2_000_000  #: safety cap on analyzed accesses


@dataclass
class ReusePhaseResult:
    """Output of the locality phase detector."""

    structure_found: bool
    marker_blocks: List[int] = field(default_factory=list)
    boundary_count: int = 0
    compression_ratio: float = 1.0
    reason: str = ""

    def describe(self) -> str:
        if not self.structure_found:
            return f"no locality phase structure found ({self.reason})"
        return (
            f"{len(self.marker_blocks)} reuse-distance marker blocks, "
            f"{self.boundary_count} boundaries, "
            f"Sequitur compression {self.compression_ratio:.2f}x"
        )


def _access_stream(
    trace: Trace, memory: MemorySystem, cap: int
) -> Tuple[np.ndarray, np.ndarray]:
    """(addresses, owning block-event row) for every data access."""
    memory.reset()
    mask = trace.kinds == K_BLOCK
    rows = np.nonzero(mask)[0]
    ids = trace.a[mask]
    addr_chunks: List[np.ndarray] = []
    row_chunks: List[np.ndarray] = []
    total = 0
    for k in range(len(rows)):
        addresses = memory.addresses_for_block(int(ids[k]))
        n = len(addresses)
        if n == 0:
            continue
        addr_chunks.append(addresses)
        row_chunks.append(np.full(n, rows[k], dtype=np.int64))
        total += n
        if total >= cap:
            break
    if not addr_chunks:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
    return np.concatenate(addr_chunks), np.concatenate(row_chunks)


def select_reuse_markers(
    trace: Trace,
    memory: MemorySystem,
    params: ReuseMarkerParams = ReuseMarkerParams(),
) -> ReusePhaseResult:
    """Detect locality phases and select their marker blocks."""
    addresses, access_rows = _access_stream(trace, memory, params.max_access_cap)
    window = params.window
    if window is None:
        window = max(16, len(addresses) // params.target_samples)
    if len(addresses) < window * 8:
        return ReusePhaseResult(False, reason="too few data accesses")

    distances = reuse_distances(addresses)
    signal_raw = bounded_log_distances(distances)
    # window the per-access signal down to per-sample means
    n_samples = len(signal_raw) // window
    signal = signal_raw[: n_samples * window].reshape(n_samples, window).mean(
        axis=1
    )
    smooth = haar_smooth(signal, params.smooth_level)
    # Quantize the filtered locality signal into levels (robust range:
    # 5th..95th percentile) and call a *debounced* level change a phase
    # boundary — Shen et al.'s "reuse distance phases at the finest
    # granularity", with the wavelet filtering absorbing access noise.
    lo, hi = np.percentile(smooth, [5.0, 95.0])
    span = max(float(hi - lo), 1e-9)
    bins = np.clip(
        ((smooth - lo) / span * params.signature_bins).astype(np.int64),
        0,
        params.signature_bins - 1,
    )
    warmup = max(2, n_samples // 20)  # skip cold-start distances
    changes: List[int] = []
    i = warmup
    while i < n_samples - 1:
        if bins[i] != bins[i - 1] and bins[i + 1] == bins[i]:
            changes.append(i)
            i += 2  # debounce: a boundary settles for >= 2 samples
        else:
            i += 1
    # Segments between boundaries, cleaned at a candidate granularity:
    # segments shorter than the scale are transition noise (absorbed by
    # the following segment) and adjacent segments at the same quantized
    # level are one phase.  Each boundary's signature is the quantized
    # *median* locality of the segment it opens.  Following Shen et al.'s
    # multi-scale hierarchy, every scale is tried and the one whose
    # boundary pattern compresses best under Sequitur wins.
    def level_of(start: int, end: int) -> int:
        level = float(np.median(smooth[start:end]))
        return int(
            np.clip((level - lo) / span * params.signature_bins, 0,
                    params.signature_bins - 1)
        )

    raw_ends = changes[1:] + [n_samples]
    best_ratio = 0.0
    best_changes: List[int] = []
    for scale in params.segment_scales:
        kept: List[int] = []
        signatures: List[int] = []
        for start, end in zip(changes, raw_ends):
            if end - start < scale:
                continue  # transition blip: absorbed by the next segment
            signature = level_of(start, end)
            if signatures and signatures[-1] == signature:
                continue  # same locality level: not a phase change
            kept.append(start)
            signatures.append(signature)
        if len(kept) < params.min_boundaries:
            continue
        ratio = Grammar.from_sequence(signatures).compression_ratio
        if ratio > best_ratio:
            best_ratio = ratio
            best_changes = kept
    if len(best_changes) < params.min_boundaries:
        return ReusePhaseResult(
            False,
            boundary_count=len(best_changes),
            reason=f"only {len(best_changes)} stable reuse phases detected",
        )
    if best_ratio < params.min_compression:
        return ReusePhaseResult(
            False,
            boundary_count=len(best_changes),
            compression_ratio=best_ratio,
            reason=(
                f"boundary pattern does not repeat "
                f"(compression {best_ratio:.2f}x)"
            ),
        )
    changes = best_changes

    # Correlate code with the boundaries: a block is a marker when most of
    # its executions land near a boundary in the access stream.  The
    # access position of a block event is interpolated from the stream
    # (blocks without memory operations — e.g. call sites — inherit the
    # position of the surrounding accesses).
    boundary_access = np.minimum(
        np.array(changes, dtype=np.int64) * window, len(access_rows) - 1
    )
    block_mask = trace.kinds == K_BLOCK
    block_rows = np.nonzero(block_mask)[0]
    block_ids = trace.a[block_mask]
    # access position before each block event: count accesses whose trace
    # row precedes the event's row
    event_access_pos = np.searchsorted(access_rows, block_rows, side="left")

    tolerance = window * 4
    boundary_sorted = np.sort(boundary_access)
    boundary_rows = access_rows[boundary_access]

    # candidate blocks: any block executing within the tolerance of some
    # boundary (by access position)
    candidates: set = set()
    for b in boundary_sorted.tolist():
        lo_e = np.searchsorted(event_access_pos, b - tolerance, side="left")
        hi_e = np.searchsorted(event_access_pos, b + tolerance, side="right")
        candidates.update(block_ids[lo_e:hi_e].tolist())

    markers: List[int] = []
    for block in sorted(candidates):
        positions = event_access_pos[block_ids == block]
        if len(positions) < 2:
            continue
        nearest = np.searchsorted(boundary_sorted, positions)
        big = np.iinfo(np.int64).max
        dist_right = np.where(
            nearest < len(boundary_sorted),
            np.abs(
                boundary_sorted[np.minimum(nearest, len(boundary_sorted) - 1)]
                - positions
            ),
            big,
        )
        dist_left = np.where(
            nearest > 0,
            np.abs(positions - boundary_sorted[np.maximum(nearest - 1, 0)]),
            big,
        )
        aligned = np.minimum(dist_left, dist_right) <= tolerance
        if aligned.mean() >= params.min_precision:
            markers.append(int(block))
    if not markers:
        return ReusePhaseResult(
            False,
            boundary_count=len(changes),
            compression_ratio=best_ratio,
            reason="no block correlates with the reuse boundaries",
        )
    return ReusePhaseResult(
        True,
        marker_blocks=markers,
        boundary_count=len(changes),
        compression_ratio=best_ratio,
    )


def split_at_block_markers(
    trace: Trace,
    marker_blocks: List[int],
    program_name: str = "",
    min_interval: int = 0,
) -> IntervalSet:
    """Partition a run into VLIs at executions of the marker blocks.

    The phase id of each interval is the block id of the marker that
    opened it (0 for the prologue).  ``min_interval`` suppresses firings
    that would create an interval shorter than the given instruction
    count (markers in tight loops).
    """
    marker_set = set(marker_blocks)
    mask = trace.kinds == K_BLOCK
    rows = np.nonzero(mask)[0]
    ids = trace.a[mask]
    sizes = trace.c[mask]
    cum_before = np.concatenate(([0], np.cumsum(sizes)[:-1]))
    total = int(sizes.sum())

    bounds: List[Tuple[int, int, int]] = []  # (row, t, phase)
    last_t = 0
    for k in range(len(rows)):
        bid = int(ids[k])
        if bid in marker_set:
            t = int(cum_before[k])
            if t == 0:
                continue
            if t - last_t < min_interval:
                continue
            if bounds and bounds[-1][1] == t:
                bounds[-1] = (bounds[-1][0], t, bid)
            else:
                bounds.append((int(rows[k]), t, bid))
            last_t = t

    row_bounds = np.array(
        [0] + [b[0] for b in bounds] + [len(trace)], dtype=np.int64
    )
    start_ts = np.array([0] + [b[1] for b in bounds], dtype=np.int64)
    ends = np.concatenate((start_ts[1:], [total]))
    lengths = (ends - start_ts).astype(np.int64)
    phase_ids = np.array([0] + [b[2] for b in bounds], dtype=np.int64)
    return IntervalSet(program_name, "vli", row_bounds, start_ts, lengths, phase_ids)
