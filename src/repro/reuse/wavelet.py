"""Haar wavelet analysis for abrupt-change detection.

Shen et al. filter the reuse-distance trace with wavelets to separate
gradual drift from the abrupt shifts that mark locality phase boundaries.
The Haar basis is the natural choice for step detection: detail
coefficients are (scaled) differences of adjacent window means, so a
large detail coefficient *is* an abrupt change at that scale.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

_SQRT2 = np.sqrt(2.0)


def _pad_pow2(signal: np.ndarray) -> np.ndarray:
    n = len(signal)
    size = 1 if n == 0 else 1 << (n - 1).bit_length()
    if size == n:
        return signal.astype(np.float64)
    out = np.empty(size, dtype=np.float64)
    out[:n] = signal
    out[n:] = signal[-1] if n else 0.0  # edge padding
    return out


def haar_decompose(
    signal: np.ndarray, levels: int
) -> Tuple[np.ndarray, List[np.ndarray]]:
    """Multi-level Haar DWT.

    Returns ``(approximation, details)`` where ``details[i]`` holds the
    detail coefficients of level i+1 (finest first).  The input is edge-
    padded to a power of two.
    """
    if levels < 1:
        raise ValueError("levels must be >= 1")
    approx = _pad_pow2(np.asarray(signal, dtype=np.float64))
    details: List[np.ndarray] = []
    for _ in range(levels):
        if len(approx) < 2:
            break
        evens = approx[0::2]
        odds = approx[1::2]
        details.append((evens - odds) / _SQRT2)
        approx = (evens + odds) / _SQRT2
    return approx, details


def haar_reconstruct(approx: np.ndarray, details: List[np.ndarray]) -> np.ndarray:
    """Inverse of :func:`haar_decompose` (up to the padding)."""
    signal = np.asarray(approx, dtype=np.float64)
    for detail in reversed(details):
        out = np.empty(2 * len(signal))
        out[0::2] = (signal + detail) / _SQRT2
        out[1::2] = (signal - detail) / _SQRT2
        signal = out
    return signal


def haar_smooth(signal: np.ndarray, levels: int) -> np.ndarray:
    """The signal with the finest *levels* of detail removed (denoised)."""
    n = len(signal)
    approx, details = haar_decompose(signal, levels)
    zeroed = [np.zeros_like(d) for d in details]
    return haar_reconstruct(approx, zeroed)[:n]


def abrupt_changes(
    signal: np.ndarray, level: int = 3, z_threshold: float = 3.0
) -> np.ndarray:
    """Indices (into *signal*) of abrupt shifts at the given Haar scale.

    The signal is reduced to its level-*level* Haar approximation (window
    means), and a position qualifies when the jump between adjacent
    windows deviates from the median jump by more than ``z_threshold``
    robust standard deviations.  Working on window-mean *differences*
    makes detection insensitive to window alignment (a step exactly on a
    window boundary still jumps between adjacent means) and immune to
    linear drift (constant jumps have zero deviation from their median).
    """
    n = len(signal)
    if n == 0:
        return np.empty(0, dtype=np.int64)
    approx, _ = haar_decompose(signal, level)
    if len(approx) < 2:
        return np.empty(0, dtype=np.int64)
    jumps = np.diff(approx)
    deviation = np.abs(jumps - np.median(jumps))
    mad = np.median(deviation)
    sigma = 1.4826 * mad
    if sigma <= 0:
        sigma = deviation.std()
    if sigma <= 0:
        return np.empty(0, dtype=np.int64)
    scale = 1 << level  # samples per approximation coefficient
    flagged = np.nonzero(deviation > z_threshold * sigma)[0]
    positions = (flagged + 1) * scale  # start of the window after the jump
    return positions[positions < n].astype(np.int64)
