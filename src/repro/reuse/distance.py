"""Exact LRU reuse (stack) distance computation.

The reuse distance of an access is the number of *distinct* data lines
touched since the previous access to the same line (infinite on first
touch).  The classic O(n log n) algorithm keeps one marker per line at
the time of its most recent access and counts markers in a Fenwick tree.
"""

from __future__ import annotations

import numpy as np


class FenwickTree:
    """Binary indexed tree over [0, n) supporting point add / prefix sum."""

    def __init__(self, n: int):
        self.n = n
        self._tree = np.zeros(n + 1, dtype=np.int64)

    def add(self, i: int, delta: int) -> None:
        i += 1
        tree = self._tree
        while i <= self.n:
            tree[i] += delta
            i += i & (-i)

    def prefix_sum(self, i: int) -> int:
        """Sum of elements [0, i]."""
        i += 1
        total = 0
        tree = self._tree
        while i > 0:
            total += tree[i]
            i -= i & (-i)
        return int(total)

    def range_sum(self, lo: int, hi: int) -> int:
        """Sum of elements [lo, hi]."""
        if hi < lo:
            return 0
        return self.prefix_sum(hi) - (self.prefix_sum(lo - 1) if lo > 0 else 0)


def prev_occurrences(lines: np.ndarray) -> np.ndarray:
    """Index of the previous access to each line, -1 on a first touch.

    One stable argsort groups equal lines while keeping their accesses
    in time order, so each access's predecessor is simply its left
    neighbor within the group — no per-access dict lookups.
    """
    n = len(lines)
    prev = np.full(n, -1, dtype=np.int64)
    if n < 2:
        return prev
    order = np.argsort(lines, kind="stable")
    sorted_lines = lines[order]
    same = sorted_lines[1:] == sorted_lines[:-1]
    prev[order[1:][same]] = order[:-1][same]
    return prev


def reuse_distances(addresses: np.ndarray, line_bytes: int = 64) -> np.ndarray:
    """Per-access reuse distances at *line_bytes* granularity.

    Returns a float array; first touches are ``np.inf``.  Previous
    occurrences are found with one vectorized sort; only the inherently
    sequential marker counting runs through the Fenwick tree loop.
    """
    n = len(addresses)
    out = np.empty(n, dtype=np.float64)
    if n == 0:
        return out
    shift = line_bytes.bit_length() - 1
    lines = np.asarray(addresses, dtype=np.int64) >> shift
    prev = prev_occurrences(lines).tolist()
    tree = FenwickTree(n)
    for t in range(n):
        p = prev[t]
        if p < 0:
            out[t] = np.inf
        else:
            # distinct lines touched strictly between p and t
            out[t] = tree.range_sum(p + 1, t - 1)
            tree.add(p, -1)
        tree.add(t, 1)
    return out


def reuse_histogram(distances: np.ndarray, num_bins: int = 26) -> np.ndarray:
    """Log2-binned histogram of reuse distances, fully vectorized.

    Bin of a finite distance d is ``floor(log2(d + 1))``, saturated into
    bin ``num_bins - 2``; the last bin counts first touches (infinite).
    ``np.frexp`` extracts the binary exponent exactly (distances are
    distinct-line counts, integers far below 2**53), so the binning
    matches :func:`repro.verify.oracles.oracle_reuse_histogram`'s
    ``bit_length`` arithmetic bit-for-bit.
    """
    if num_bins < 2:
        raise ValueError("num_bins must be at least 2")
    d = np.asarray(distances, dtype=np.float64)
    finite = np.isfinite(d)
    counts = np.zeros(num_bins, dtype=np.int64)
    counts[num_bins - 1] = int((~finite).sum())
    vals = d[finite].astype(np.int64) + 1
    if len(vals):
        _, exp = np.frexp(vals.astype(np.float64))
        bins = np.minimum(exp - 1, num_bins - 2)
        counts[: num_bins - 1] += np.bincount(bins, minlength=num_bins - 1)
    return counts


def bounded_log_distances(distances: np.ndarray, cap: float = 24.0) -> np.ndarray:
    """log2(1 + distance) with infinities clamped to *cap* — the bounded
    signal the wavelet analysis filters."""
    out = np.log2(1.0 + np.where(np.isinf(distances), 2.0**cap, distances))
    return np.minimum(out, cap)
