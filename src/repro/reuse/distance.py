"""Exact LRU reuse (stack) distance computation.

The reuse distance of an access is the number of *distinct* data lines
touched since the previous access to the same line (infinite on first
touch).  The classic O(n log n) algorithm keeps one marker per line at
the time of its most recent access and counts markers in a Fenwick tree.
"""

from __future__ import annotations

from typing import Dict

import numpy as np


class FenwickTree:
    """Binary indexed tree over [0, n) supporting point add / prefix sum."""

    def __init__(self, n: int):
        self.n = n
        self._tree = np.zeros(n + 1, dtype=np.int64)

    def add(self, i: int, delta: int) -> None:
        i += 1
        tree = self._tree
        while i <= self.n:
            tree[i] += delta
            i += i & (-i)

    def prefix_sum(self, i: int) -> int:
        """Sum of elements [0, i]."""
        i += 1
        total = 0
        tree = self._tree
        while i > 0:
            total += tree[i]
            i -= i & (-i)
        return int(total)

    def range_sum(self, lo: int, hi: int) -> int:
        """Sum of elements [lo, hi]."""
        if hi < lo:
            return 0
        return self.prefix_sum(hi) - (self.prefix_sum(lo - 1) if lo > 0 else 0)


def reuse_distances(addresses: np.ndarray, line_bytes: int = 64) -> np.ndarray:
    """Per-access reuse distances at *line_bytes* granularity.

    Returns a float array; first touches are ``np.inf``.
    """
    n = len(addresses)
    out = np.empty(n, dtype=np.float64)
    if n == 0:
        return out
    shift = line_bytes.bit_length() - 1
    lines = (np.asarray(addresses, dtype=np.int64) >> shift).tolist()
    tree = FenwickTree(n)
    last: Dict[int, int] = {}
    for t, line in enumerate(lines):
        prev = last.get(line)
        if prev is None:
            out[t] = np.inf
        else:
            # distinct lines touched strictly between prev and t
            out[t] = tree.range_sum(prev + 1, t - 1)
            tree.add(prev, -1)
        tree.add(t, 1)
        last[line] = t
    return out


def bounded_log_distances(distances: np.ndarray, cap: float = 24.0) -> np.ndarray:
    """log2(1 + distance) with infinities clamped to *cap* — the bounded
    signal the wavelet analysis filters."""
    out = np.log2(1.0 + np.where(np.isinf(distances), 2.0**cap, distances))
    return np.minimum(out, cap)
