"""The CPI model combining base block cost, branch, and cache penalties."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.engine.events import K_BLOCK
from repro.engine.tracing import Trace
from repro.ir.program import Program


@dataclass(frozen=True)
class PerfModel:
    """Penalty parameters of the analytic timing model.

    cycles = sum(block_size * block_base_cpi)
           + branch_mispredict_penalty * mispredictions
           + dl1_miss_penalty * data-cache misses
    """

    branch_mispredict_penalty: float = 10.0
    dl1_miss_penalty: float = 40.0

    def base_cycles_per_interval(
        self, program: Program, trace: Trace, row_bounds: np.ndarray
    ) -> np.ndarray:
        """Base (hazard-free) cycles of each interval of a partition."""
        n = len(row_bounds) - 1
        out = np.zeros(n, dtype=np.float64)
        if n == 0:
            return out
        mask = trace.kinds == K_BLOCK
        rows = np.nonzero(mask)[0]
        ids = trace.a[mask]
        sizes = trace.c[mask]
        cpi_by_block = np.array([b.base_cpi for b in program.blocks])
        cycles = sizes * cpi_by_block[ids]
        idx = np.clip(np.searchsorted(row_bounds, rows, side="right") - 1, 0, n - 1)
        np.add.at(out, idx, cycles)
        return out

    def total_cycles(
        self,
        base_cycles: np.ndarray,
        mispredicts: np.ndarray,
        dl1_misses: np.ndarray,
    ) -> np.ndarray:
        return (
            base_cycles
            + self.branch_mispredict_penalty * mispredicts
            + self.dl1_miss_penalty * dl1_misses
        )
