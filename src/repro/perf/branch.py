"""Two-bit saturating-counter branch predictor.

A classic bimodal predictor: one 2-bit counter per branch address,
predict taken when the counter is in the upper half.  Loop back-edges
mispredict roughly once per loop exit; data-dependent branches mispredict
proportionally to their bias — enough microarchitectural texture for the
CPI model.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.engine.events import K_BRANCH
from repro.engine.tracing import Trace

#: counters start weakly taken (loops predict well immediately)
_INITIAL_STATE = 2


class TwoBitPredictor:
    """Bimodal predictor over branch instruction addresses."""

    def __init__(self):
        self._table: Dict[int, int] = {}
        self.predictions = 0
        self.mispredictions = 0

    def access(self, address: int, taken: bool) -> bool:
        """Predict and update for one branch; returns True on mispredict."""
        state = self._table.get(address, _INITIAL_STATE)
        predicted_taken = state >= 2
        mispredicted = predicted_taken != taken
        if taken:
            state = min(3, state + 1)
        else:
            state = max(0, state - 1)
        self._table[address] = state
        self.predictions += 1
        if mispredicted:
            self.mispredictions += 1
        return mispredicted

    @property
    def misprediction_rate(self) -> float:
        if self.predictions == 0:
            return 0.0
        return self.mispredictions / self.predictions


def mispredicts_per_event(trace: Trace) -> tuple:
    """(branch trace rows, 0/1 mispredict flags) — one predictor pass."""
    predictor = TwoBitPredictor()
    mask = trace.kinds == K_BRANCH
    rows = np.nonzero(mask)[0]
    addresses = trace.a[mask].tolist()
    takens = trace.c[mask].tolist()
    flags = np.zeros(len(rows), dtype=np.int64)
    access = predictor.access
    for i in range(len(rows)):
        if access(addresses[i], bool(takens[i])):
            flags[i] = 1
    return rows, flags


def mispredicts_per_interval(trace: Trace, row_bounds: np.ndarray) -> np.ndarray:
    """Mispredictions attributed to each interval of a partition.

    *row_bounds* is the ``IntervalSet.row_bounds`` array (n+1 entries).
    """
    n = len(row_bounds) - 1
    counts = np.zeros(n, dtype=np.int64)
    if n == 0:
        return counts
    rows, flags = mispredicts_per_event(trace)
    idx = np.clip(np.searchsorted(row_bounds, rows, side="right") - 1, 0, n - 1)
    np.add.at(counts, idx, flags)
    return counts
