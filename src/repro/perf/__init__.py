"""Analytic performance model: the substitute for the paper's detailed
out-of-order simulator.

Per-interval CPI is computed from the same event stream the analyses see:
base cycles per block (instruction mix dependent), branch misprediction
penalties from a 2-bit-counter predictor, and data-cache miss penalties
from the cache simulator.  Only *relative* behavior matters for the
paper's metrics (CoV of CPI, CPI error of simulation points), and this
model makes CPI co-vary with the executed code exactly as those metrics
require.
"""

from repro.perf.branch import TwoBitPredictor, mispredicts_per_interval
from repro.perf.model import PerfModel

__all__ = ["TwoBitPredictor", "mispredicts_per_interval", "PerfModel"]
