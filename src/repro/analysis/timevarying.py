"""Time-varying behavior series with marker overlays (Figures 3 and 4).

The paper plots CPI and DL1 miss rate over time (fine fixed intervals)
with a symbol wherever a phase marker executes, showing markers landing
exactly at the visible behavior transitions.  This module produces those
series as data: the benchmark prints a down-sampled version and checks
the marker/transition alignment quantitatively.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np

from repro.callloop.crossbinary import MarkerFiring, marker_trace
from repro.callloop.markers import MarkerSet
from repro.engine.tracing import Trace
from repro.intervals.fixed import split_fixed
from repro.intervals.metrics import MetricsConfig, attach_metrics
from repro.ir.program import Program, ProgramInput


@dataclass
class TimeVaryingSeries:
    """CPI / miss-rate over time plus the marker firings."""

    program: str
    variant: str
    interval_length: int
    start_ts: np.ndarray
    cpis: np.ndarray
    miss_rates: np.ndarray
    firings: List[MarkerFiring] = field(default_factory=list)

    def marker_positions(self) -> np.ndarray:
        return np.array([f.t for f in self.firings], dtype=np.int64)

    def transition_alignment(self, top_fraction: float = 0.1) -> float:
        """Fraction of the largest behavior transitions that have a marker
        within one plotting interval — the quantitative version of "the
        markers sit on the ridges" in Figure 3."""
        if len(self.cpis) < 3 or not self.firings:
            return 0.0
        jumps = np.abs(np.diff(self.miss_rates))
        k = max(1, int(len(jumps) * top_fraction))
        top = np.argsort(jumps)[::-1][:k]
        transition_ts = self.start_ts[top + 1]
        markers = np.sort(self.marker_positions())
        hits = 0
        for t in transition_ts:
            pos = np.searchsorted(markers, t)
            near = []
            if pos < len(markers):
                near.append(abs(int(markers[pos]) - int(t)))
            if pos > 0:
                near.append(abs(int(t) - int(markers[pos - 1])))
            if near and min(near) <= self.interval_length:
                hits += 1
        return hits / len(transition_ts)


def time_varying_series(
    program: Program,
    program_input: ProgramInput,
    trace: Trace,
    marker_set: MarkerSet,
    interval_length: int = 2000,
    config: MetricsConfig = MetricsConfig(),
) -> TimeVaryingSeries:
    """Build the Figure-3-style series for one run."""
    intervals = split_fixed(trace, interval_length, program.name)
    attach_metrics(intervals, trace, program, program_input, config)
    firings = marker_trace(program, program_input, marker_set, trace=trace)
    return TimeVaryingSeries(
        program=program.name,
        variant=program.variant,
        interval_length=interval_length,
        start_ts=intervals.start_ts,
        cpis=intervals.cpis,
        miss_rates=intervals.dl1_miss_rates,
        firings=firings,
    )
