"""Random 3D projections of BBVs (Figures 5 and 6).

The paper projects each interval's basic block vector down to 3
dimensions with the same random projection for the fixed-length and the
VLI partitions, then argues *visually* that the VLI clouds are tightly
clustered while the fixed-length points smear across the space.  We
reproduce the projection data and replace the visual argument with a
quantitative **cluster tightness** score: the fraction of total
(execution-weighted) variance NOT explained by the best k centers.
Tighter clouds leave less residual variance.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.intervals.base import IntervalSet
from repro.simpoint.kmeans import kmeans_best_of
from repro.simpoint.projection import project_bbvs


@dataclass
class ProjectionData:
    """3D points of one partition (one per interval) plus weights."""

    program: str
    kind: str
    points: np.ndarray  # (n, 3)
    weights: np.ndarray  # execution fraction per interval

    def __len__(self) -> int:
        return len(self.points)


def project_3d(
    interval_set: IntervalSet, seed: int = 2006
) -> ProjectionData:
    """Project a partition's BBVs to 3 dimensions (Figure 5/6 data)."""
    if interval_set.bbvs is None:
        raise ValueError("interval set has no BBVs")
    points = project_bbvs(interval_set.bbvs, dims=3, seed=seed)
    return ProjectionData(
        program=interval_set.program_name,
        kind=interval_set.kind,
        points=points,
        weights=interval_set.weights,
    )


def cluster_tightness(
    data: ProjectionData, k: int = 8, seed: int = 0, weighted: bool = False
) -> float:
    """Residual variance fraction after k centers (lower = tighter).

    0 means every point sits exactly on one of k centers (perfectly
    phase-aligned intervals); 1 means the centers explain nothing.  By
    default every point counts equally — matching the figures, where a
    smeared transition interval is as visible as a dominant-phase one;
    ``weighted=True`` weights by execution fraction instead.
    """
    points = data.points
    if len(points) <= k:
        return 0.0
    if weighted:
        weights = data.weights
        if weights.sum() <= 0:
            weights = np.ones(len(points))
    else:
        weights = np.ones(len(points))
    total_w = weights.sum()
    mean = (points * weights[:, None]).sum(axis=0) / total_w
    total_var = float((weights * ((points - mean) ** 2).sum(axis=1)).sum())
    if total_var == 0:
        return 0.0
    result = kmeans_best_of(points, k, weights, seeds=4, base_seed=seed)
    return float(result.sse / total_var)
