"""Per-approach classification summaries for Figures 7, 8, and 9."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.cov import phase_cov
from repro.intervals.base import IntervalSet


@dataclass
class ApproachSummary:
    """One (workload, approach) cell across the three behavior figures."""

    workload: str
    approach: str
    num_intervals: int
    num_phases: int
    avg_interval_length: float
    cov_cpi: float

    @property
    def avg_interval_millions(self) -> float:
        return self.avg_interval_length / 1e6


def summarize(
    workload: str, approach: str, interval_set: IntervalSet
) -> ApproachSummary:
    """Summarize one phase classification (CPI metrics must be attached)."""
    cov = phase_cov(interval_set)
    return ApproachSummary(
        workload=workload,
        approach=approach,
        num_intervals=len(interval_set),
        num_phases=interval_set.num_phases,
        avg_interval_length=interval_set.average_length,
        cov_cpi=cov.overall,
    )
