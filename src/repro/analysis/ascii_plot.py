"""ASCII rendering of time-varying series (Figure 3 in a terminal).

Matplotlib is deliberately not a dependency; a Unicode sparkline of CPI
and miss rate with a marker row underneath conveys the figure's content
in any terminal or log file.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.analysis.timevarying import TimeVaryingSeries

_BLOCKS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float], width: int = 100) -> str:
    """Down-sample *values* to *width* columns of block characters."""
    data = np.asarray(list(values), dtype=np.float64)
    if len(data) == 0:
        return ""
    if len(data) > width:
        edges = np.linspace(0, len(data), width + 1).astype(int)
        data = np.array(
            [data[a:b].mean() if b > a else data[min(a, len(data) - 1)]
             for a, b in zip(edges[:-1], edges[1:])]
        )
    lo, hi = float(data.min()), float(data.max())
    span = hi - lo
    if span <= 0:
        return _BLOCKS[0] * len(data)
    idx = ((data - lo) / span * (len(_BLOCKS) - 1)).round().astype(int)
    return "".join(_BLOCKS[i] for i in idx)


def marker_row(series: TimeVaryingSeries, width: int = 100) -> str:
    """A row with '^' wherever at least one marker fires."""
    total = int(series.start_ts[-1]) + series.interval_length
    if total <= 0:
        return ""
    row = [" "] * width
    for t in series.marker_positions():
        col = min(width - 1, int(t / total * width))
        row[col] = "^"
    return "".join(row)


def render_series(series: TimeVaryingSeries, width: int = 100) -> str:
    """The full Figure-3-style panel: CPI, miss rate, markers."""
    lines: List[str] = [
        f"{series.program} ({series.variant}) — "
        f"{len(series.cpis)} intervals of {series.interval_length:,} "
        f"instructions, {len(series.firings)} marker firings",
        f"CPI  [{series.cpis.min():5.2f}..{series.cpis.max():5.2f}] "
        + sparkline(series.cpis, width),
        f"DL1  [{series.miss_rates.min():5.3f}..{series.miss_rates.max():5.3f}] "
        + sparkline(series.miss_rates, width),
        "markers" + " " * 9 + marker_row(series, width),
    ]
    return "\n".join(lines)
