"""Weighted per-phase Coefficient of Variation (paper Section 3.1).

For each phase: the instruction-weighted average and standard deviation
of a per-interval metric over the phase's intervals; CoV = std / avg.
The overall score averages per-phase CoVs weighted by each phase's share
of execution.  Lower is better; N intervals in N phases trivially gives
0, which is why the phase/interval counts are reported alongside
(Figures 7 and 8).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.intervals.base import IntervalSet, phase_aggregate


@dataclass
class PhaseCov:
    """Per-phase and overall CoV of one metric under one classification."""

    overall: float
    per_phase: Dict[int, float]
    phase_weights: Dict[int, float]
    num_phases: int
    num_intervals: int


def _weighted_cov(values: np.ndarray, weights: np.ndarray) -> float:
    """One phase's weighted CoV — the scalar reference for the grouped
    aggregation in :func:`phase_cov` (the fuzz-backed equivalence tests
    compare the two)."""
    total = weights.sum()
    if total <= 0:
        return 0.0
    mean = float((values * weights).sum() / total)
    if mean == 0:
        return 0.0
    var = float((weights * (values - mean) ** 2).sum() / total)
    return np.sqrt(max(0.0, var)) / abs(mean)


def phase_cov(
    interval_set: IntervalSet, values: Optional[np.ndarray] = None
) -> PhaseCov:
    """CoV of *values* (default: CPI) within each phase of the partition.

    All phases are aggregated at once via
    :func:`repro.intervals.base.phase_aggregate` (histogram + grouped
    weighted moments) instead of one masked pass per phase.
    """
    if values is None:
        if interval_set.cpis is None:
            raise ValueError("no CPI column; attach metrics first")
        values = interval_set.cpis
    lengths = interval_set.lengths.astype(np.float64)
    total = lengths.sum()
    phases, weight_sums, means, variances = phase_aggregate(
        interval_set.phase_ids, lengths, values
    )
    stds = np.sqrt(np.where(variances > 0.0, variances, 0.0))
    with np.errstate(invalid="ignore", divide="ignore"):
        covs = stds / np.abs(means)
    covs = np.where((weight_sums > 0) & (means != 0), covs, 0.0)
    fractions = weight_sums / total if total else np.zeros(len(phases))

    per_phase: Dict[int, float] = {
        int(p): float(c) for p, c in zip(phases, covs)
    }
    phase_weights: Dict[int, float] = {
        int(p): float(f) for p, f in zip(phases, fractions)
    }
    overall = float(
        sum(per_phase[p] * phase_weights[p] for p in per_phase)
    )
    return PhaseCov(
        overall=overall,
        per_phase=per_phase,
        phase_weights=phase_weights,
        num_phases=len(per_phase),
        num_intervals=len(interval_set),
    )


def whole_program_cov(
    interval_set: IntervalSet, values: Optional[np.ndarray] = None
) -> float:
    """CoV treating the entire run as a single phase (the paper's
    "whole program" baseline bars in Figure 9)."""
    if values is None:
        if interval_set.cpis is None:
            raise ValueError("no CPI column; attach metrics first")
        values = interval_set.cpis
    return _weighted_cov(values, interval_set.lengths.astype(np.float64))
