"""Evaluation metrics and figure-data generators.

* :mod:`repro.analysis.cov` — the paper's phase-quality metric: the
  instruction-weighted Coefficient of Variation of a metric within each
  phase, averaged across phases (Section 3.1).
* :mod:`repro.analysis.classify` — per-approach summaries (interval
  counts, phase counts, average lengths) shared by Figures 7-9.
* :mod:`repro.analysis.timevarying` — the Figure 3/4 time-varying CPI /
  miss-rate series with marker-firing overlays.
* :mod:`repro.analysis.projection3d` — the Figure 5/6 random 3D
  projections plus a quantitative cluster-tightness score.
"""

from repro.analysis.cov import PhaseCov, phase_cov, whole_program_cov
from repro.analysis.classify import ApproachSummary, summarize
from repro.analysis.timevarying import TimeVaryingSeries, time_varying_series
from repro.analysis.projection3d import ProjectionData, project_3d, cluster_tightness

__all__ = [
    "PhaseCov",
    "phase_cov",
    "whole_program_cov",
    "ApproachSummary",
    "summarize",
    "TimeVaryingSeries",
    "time_varying_series",
    "ProjectionData",
    "project_3d",
    "cluster_tightness",
]
