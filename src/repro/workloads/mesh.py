"""mesh — unstructured mesh computation (Shen et al. cache-study benchmark).

Phase structure modeled (the "mesh" program of Shen et al.'s evaluation,
an unstructured-grid PDE code): per iteration, a pointer-chasing sweep
over mesh elements (indirection through the connectivity structure,
large footprint), followed by a node update over a compact array and a
short renumbering phase.
"""

from __future__ import annotations

from repro.ir import NormalTrips, ProgramBuilder
from repro.ir.program import ParamExpr, Program, ProgramInput
from repro.workloads.base import Workload, register


def build() -> Program:
    b = ProgramBuilder("mesh", source_file="mesh.c")
    with b.proc("main"):
        b.code(20, loads=5, mem=b.seq("elements", 1 << 18), label="read_mesh")
        with b.loop("iterations", trips="iterations"):
            b.call("element_sweep")
            b.call("node_update")
            b.call("renumber")
        b.code(10, stores=2, label="write_solution")
    with b.proc("element_sweep"):
        with b.loop("elems", trips=NormalTrips("elem_iters", 0.005)):
            b.code(
                12,
                loads=6,
                stores=1,
                fp=0.5,
                mem=b.chase("connectivity", ParamExpr("conn_bytes")),
                label="gather_element",
            )
    with b.proc("node_update"):
        with b.loop("nodes", trips=NormalTrips("node_iters", 0.005)):
            b.code(10, loads=4, stores=3, fp=0.6, mem=b.wset("node_vals", 28 * 1024), label="update_node")
    with b.proc("renumber"):
        with b.loop("renum", trips=NormalTrips("renum_iters", 0.005)):
            b.code(8, loads=3, stores=2, mem=b.seq("permutation", 1 << 15), label="apply_perm")
    return b.build()


register(
    Workload(
        name="mesh",
        category="fp",
        description="unstructured mesh: pointer-chase sweep + compact node update",
        builder=build,
        inputs={
            "train": ProgramInput(
                "train",
                {"iterations": 9, "elem_iters": 1600, "node_iters": 900, "renum_iters": 400, "conn_bytes": 208 * 1024},
                seed=101,
            ),
            "ref": ProgramInput(
                "ref",
                {"iterations": 36, "elem_iters": 2600, "node_iters": 1500, "renum_iters": 700, "conn_bytes": 208 * 1024},
                seed=202,
            ),
        },
    )
)
