"""vpr — FPGA routing.

Phase structure modeled (SPEC 175.vpr, ``route`` input): outer routing
iterations over all nets; each net runs a wavefront (maze) expansion
whose length varies wildly with net difficulty, followed by a short,
stable cost-update sweep.  The paper singles vpr out for the
procedures-only configuration: per-call variability is so high that
procedure-level analysis degenerates to "the whole program is one
interval" — the loop structure is required to find its phases.
"""

from __future__ import annotations

from repro.ir import NormalTrips, ProgramBuilder, UniformTrips
from repro.ir.program import ParamExpr, Program, ProgramInput
from repro.workloads.base import Workload, register


def build() -> Program:
    b = ProgramBuilder("vpr", source_file="vpr.c")
    with b.proc("main"):
        b.code(25, loads=6, mem=b.seq("netlist", 1 << 18), label="load_netlist")
        with b.loop("routing_iters", trips="routing_iters"):
            with b.loop("nets", trips="nets"):
                b.call("route_net")
            b.call("update_costs")
        b.code(12, stores=2, label="write_routing")
    with b.proc("route_net"):
        with b.loop("wavefront", trips=UniformTrips(30, 600)):
            b.code(
                9,
                loads=4,
                stores=1,
                mem=b.chase("routing_graph", ParamExpr("rr_bytes")),
                label="expand_node",
            )
        with b.loop("traceback", trips=UniformTrips(5, 40)):
            b.code(7, loads=3, stores=1, mem=b.wset("trace", 1 << 13), label="record_path")
    with b.proc("update_costs"):
        with b.loop("all_nodes", trips=NormalTrips("cost_iters", 0.01)):
            b.code(10, loads=4, stores=2, mem=b.seq("routing_graph", ParamExpr("rr_bytes"), stride=64), label="recompute_cost")
    return b.build()


register(
    Workload(
        name="vpr",
        category="int",
        description="FPGA router: wildly variable per-net work, stable per-iteration sweeps",
        builder=build,
        ref_name="route",
        inputs={
            "train": ProgramInput(
                "train",
                {"routing_iters": 3, "nets": 60, "cost_iters": 900, "rr_bytes": 128 * 1024},
                seed=101,
            ),
            "route": ProgramInput(
                "route",
                {"routing_iters": 5, "nets": 110, "cost_iters": 1500, "rr_bytes": 256 * 1024},
                seed=202,
            ),
        },
    )
)
