"""perlbmk — a bytecode interpreter processing mail messages.

Phase structure modeled (SPEC 253.perlbmk, ``diffmail`` input): an outer
loop over messages; per message a long interpreter dispatch loop (opcode
switch with skewed frequencies, hot opcode table), then a regex-matching
phase and a formatting/output phase.  Regular at the message level,
irregular inside the interpreter loop.
"""

from __future__ import annotations

from repro.ir import NormalTrips, ProgramBuilder, UniformTrips
from repro.ir.program import Program, ProgramInput
from repro.workloads.base import Workload, register


def build() -> Program:
    b = ProgramBuilder("perlbmk", source_file="perl.c")
    with b.proc("main"):
        b.code(25, loads=6, mem=b.seq("script", 1 << 16), label="compile_script")
        with b.loop("messages", trips="messages"):
            b.call("interpret")
            b.call("regex_match")
            b.call("format_output")
        b.code(12, stores=2, label="cleanup")
    with b.proc("interpret"):
        with b.loop("dispatch", trips=NormalTrips("ops_per_msg", 0.02)):
            b.code(6, loads=2, mem=b.wset("op_table", 1 << 13), label="fetch_op")
            with b.switch([0.4, 0.25, 0.2, 0.15]) as sw:
                with sw.case():
                    b.code(6, loads=2, mem=b.wset("scalars", 1 << 14), label="op_scalar")
                with sw.case():
                    b.code(8, loads=3, stores=1, mem=b.wset("hashes", 1 << 16), label="op_hash")
                with sw.case():
                    b.code(7, loads=2, stores=2, mem=b.wset("arrays", 1 << 15), label="op_array")
                with sw.case():
                    b.call("op_string")
    with b.proc("op_string"):
        with b.loop("strcopy", trips=UniformTrips(2, 18)):
            b.code(6, loads=2, stores=2, mem=b.seq("string_heap", 1 << 17), label="copy_chars")
    with b.proc("regex_match"):
        with b.loop("backtrack", trips=NormalTrips("regex_iters", 0.25)):
            b.code(9, loads=4, mem=b.chase("regex_nfa", 1 << 15), label="try_state")
    with b.proc("format_output"):
        with b.loop("emitline", trips=NormalTrips("format_iters", 0.05)):
            b.code(8, loads=2, stores=3, mem=b.seq("out_mail", 1 << 18), label="write_line")
    return b.build()


register(
    Workload(
        name="perlbmk",
        category="int",
        description="interpreter: message-level phases over an irregular dispatch loop",
        builder=build,
        ref_name="diffmail",
        inputs={
            "train": ProgramInput(
                "train",
                {"messages": 12, "ops_per_msg": 900, "regex_iters": 200, "format_iters": 150},
                seed=101,
            ),
            "diffmail": ProgramInput(
                "diffmail",
                {"messages": 30, "ops_per_msg": 1600, "regex_iters": 350, "format_iters": 250},
                seed=202,
            ),
        },
    )
)
