"""gcc — the paper's flagship *irregular* program.

Phase structure modeled (SPEC 176.gcc, ``166`` input): a compiler driving
one function at a time through parse -> optimize -> emit.  Behavior is
call-dominated and highly variable: recursive-descent parsing with
data-dependent depth, optimization passes whose work scales with a
randomly varying function size, and working sets proportional to the
function being compiled.  Shen et al.'s reuse-distance approach "could
not be used to find phase behavior due to the irregular data behavior";
the function-level call structure is still there for code-structure
markers to find.
"""

from __future__ import annotations

from repro.ir import NormalTrips, ProgramBuilder, UniformTrips
from repro.ir.program import Program, ProgramInput
from repro.workloads.base import Workload, register


def build() -> Program:
    b = ProgramBuilder("gcc", source_file="gcc.c")
    with b.proc("main"):
        b.code(30, loads=8, mem=b.seq("source", 1 << 20), label="read_source")
        with b.loop("functions", trips="functions"):
            b.call("parse_function")
            b.call("optimize")
            b.call("emit_asm")
        b.code(20, stores=4, label="link_output")
    with b.proc("parse_function"):
        with b.loop("stmts", trips=UniformTrips(30, 260)):
            b.code(8, loads=3, mem=b.wset("tokens", 1 << 14), label="next_token")
            with b.if_(0.6):
                b.call("parse_expr")
    with b.proc("parse_expr"):
        b.code(7, loads=2, stores=1, mem=b.wset("ast", 1 << 16), label="make_node")
        with b.if_(0.45):  # recursive descent with data-dependent depth
            b.call("parse_expr")
    with b.proc("optimize"):
        b.call("cse_pass")
        with b.if_(0.5):
            b.call("gcse_pass")
        b.call("regalloc")
    with b.proc("cse_pass"):
        with b.loop("cse", trips=UniformTrips(60, 800)):
            b.code(9, loads=4, mem=b.wset("rtl", 1 << 17), label="hash_expr")
    with b.proc("gcse_pass"):
        with b.loop("gcse", trips=UniformTrips(30, 1100)):
            b.code(11, loads=5, mem=b.chase("cfg", 1 << 18), label="dataflow")
    with b.proc("regalloc"):
        with b.loop("alloc", trips=UniformTrips(40, 600)):
            b.code(10, loads=4, stores=2, mem=b.wset("live_ranges", 1 << 15), label="color")
    with b.proc("emit_asm"):
        with b.loop("emit", trips=NormalTrips("emit_iters", 0.15)):
            b.code(8, stores=3, mem=b.seq("asm_out", 1 << 18), label="print_insn")
    return b.build()


register(
    Workload(
        name="gcc",
        category="int",
        description="compiler: irregular call-dominated per-function behavior",
        builder=build,
        ref_name="166",
        inputs={
            "train": ProgramInput(
                "train", {"functions": 25, "emit_iters": 600}, seed=101
            ),
            "166": ProgramInput(
                "166", {"functions": 70, "emit_iters": 900}, seed=202
            ),
        },
    )
)
