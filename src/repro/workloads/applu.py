"""applu — SSOR solver for Navier-Stokes (Shen et al. cache-study benchmark).

Phase structure modeled (SPEC 173.applu): per SSOR iteration, a lower
triangular sweep (jacld+blts), an upper sweep (jacu+buts), and a
right-hand-side recomputation over a moderate working set.  The paper
notes applu's natural intervals are long (its markers average ~4x the
fixed-interval length) — so the per-phase loops here are long relative
to the other workloads.
"""

from __future__ import annotations

from repro.ir import NormalTrips, ProgramBuilder
from repro.ir.program import ParamExpr, Program, ProgramInput
from repro.workloads.base import Workload, register


def build() -> Program:
    b = ProgramBuilder("applu", source_file="applu.f")
    with b.proc("main"):
        b.code(20, loads=5, mem=b.seq("field", 192 * 1024), label="setbv")
        with b.loop("ssor_iters", trips="ssor_iters"):
            b.call("lower_sweep")
            b.call("upper_sweep")
            b.call("compute_rhs")
        b.code(10, stores=2, label="l2norm")
    with b.proc("lower_sweep"):
        with b.loop("blts", trips=NormalTrips("sweep_iters", 0.004)):
            b.code(15, loads=7, stores=3, fp=0.75, mem=b.seq("field", ParamExpr("field_bytes"), stride=64), label="blts_kernel")
    with b.proc("upper_sweep"):
        with b.loop("buts", trips=NormalTrips("sweep_iters", 0.004)):
            b.code(15, loads=7, stores=3, fp=0.75, mem=b.seq("field", ParamExpr("field_bytes"), stride=64), label="buts_kernel")
    with b.proc("compute_rhs"):
        with b.loop("rhs", trips=NormalTrips("rhs_iters", 0.004)):
            b.code(12, loads=5, stores=2, fp=0.7, mem=b.wset("rhs_block", 40 * 1024), label="rhs_kernel")
    return b.build()


register(
    Workload(
        name="applu",
        category="fp",
        description="SSOR solver: long lower/upper sweeps + compact RHS phase",
        builder=build,
        inputs={
            "train": ProgramInput(
                "train",
                {"ssor_iters": 6, "sweep_iters": 2000, "rhs_iters": 1200, "field_bytes": 192 * 1024},
                seed=101,
            ),
            "ref": ProgramInput(
                "ref",
                {"ssor_iters": 24, "sweep_iters": 2600, "rhs_iters": 1500, "field_bytes": 192 * 1024},
                seed=202,
            ),
        },
    )
)
