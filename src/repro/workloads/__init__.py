"""Synthetic SPEC CPU2000-like workloads.

These programs substitute for the paper's benchmark binaries.  Each module
models the *phase structure* the phase-analysis literature reports for its
namesake — gzip's alternating compress/write phases, bzip2's few dominant
regions, gcc's and vortex's irregular call-dominated behavior, the
floating-point codes' regular timestep loop nests — because that structure
(call/loop shape, per-edge variability, working-set sizes) is exactly what
the paper's algorithms consume.

Every workload provides a ``train`` input and a named reference input
(e.g. ``graphic`` for gzip), mirroring SPEC's input sets; the cross-input
experiments select markers on ``train`` and apply them on the reference.
"""

from repro.workloads.base import (
    Workload,
    all_workloads,
    get_workload,
    register,
    workload_names,
)

# importing the modules registers the workloads
from repro.workloads import (  # noqa: F401  (import for side effects)
    applu,
    art,
    bzip2,
    compress95,
    galgel,
    gcc,
    gzip,
    lucas,
    mcf,
    mesh,
    mgrid,
    perlbmk,
    swim,
    tomcatv,
    vortex,
    vpr,
)

#: the eleven SPEC programs of Figures 7-9 and 11-12, as "prog/input"
SPEC_EVALUATION_SET = [
    "art/110",
    "bzip2/graphic",
    "galgel/ref",
    "gcc/166",
    "gzip/graphic",
    "lucas/ref",
    "mcf/ref",
    "mgrid/ref",
    "perlbmk/diffmail",
    "vortex/one",
    "vpr/route",
]

#: the Shen et al. benchmark set of Figure 10
CACHE_EVALUATION_SET = [
    "applu/ref",
    "compress95/ref",
    "mesh/ref",
    "swim/ref",
    "tomcatv/ref",
]

__all__ = [
    "Workload",
    "all_workloads",
    "get_workload",
    "register",
    "workload_names",
    "SPEC_EVALUATION_SET",
    "CACHE_EVALUATION_SET",
]
