"""lucas — Lucas-Lehmer primality testing via FFT squaring.

Phase structure modeled (SPEC 189.lucas): the outer Lucas-Lehmer
iteration repeatedly squares a huge number: a long strided FFT pass over
the signal array, a pointwise squaring loop, the inverse pass, and a
short carry-propagation sweep.  Phases are long, periodic, and virtually
identical across iterations — the friendliest possible case for phase
marking.
"""

from __future__ import annotations

from repro.ir import NormalTrips, ProgramBuilder
from repro.ir.program import ParamExpr, Program, ProgramInput
from repro.workloads.base import Workload, register


def build() -> Program:
    b = ProgramBuilder("lucas", source_file="lucas.f")
    with b.proc("main"):
        b.code(20, loads=4, mem=b.seq("signal", 1 << 19), label="init_signal")
        with b.loop("ll_iters", trips="ll_iters"):
            b.call("fft_forward")
            b.call("pointwise_square")
            b.call("fft_inverse")
            b.call("carry_propagate")
        b.code(10, stores=2, label="verdict")
    with b.proc("fft_forward"):
        with b.loop("stages_f", trips=NormalTrips("fft_stages", 0.0)):
            with b.loop("butterflies_f", trips=NormalTrips("butterflies", 0.01)):
                b.code(
                    12,
                    loads=4,
                    stores=2,
                    fp=0.7,
                    mem=b.seq("signal", ParamExpr("signal_bytes"), stride=64),
                    label="butterfly_f",
                )
    with b.proc("pointwise_square"):
        with b.loop("square", trips=NormalTrips("square_iters", 0.01)):
            b.code(10, loads=3, stores=3, fp=0.8, mem=b.seq("signal", ParamExpr("signal_bytes"), stride=64), label="square_elem")
    with b.proc("fft_inverse"):
        with b.loop("stages_i", trips=NormalTrips("fft_stages", 0.0)):
            with b.loop("butterflies_i", trips=NormalTrips("butterflies", 0.01)):
                b.code(
                    12,
                    loads=4,
                    stores=2,
                    fp=0.7,
                    mem=b.seq("signal", ParamExpr("signal_bytes"), stride=64),
                    label="butterfly_i",
                )
    with b.proc("carry_propagate"):
        with b.loop("carry", trips=NormalTrips("carry_iters", 0.01)):
            b.code(8, loads=2, stores=2, mem=b.seq("digits", 1 << 16), label="carry_step")
    return b.build()


register(
    Workload(
        name="lucas",
        category="fp",
        description="FFT squaring: long identical phases per Lucas-Lehmer step",
        builder=build,
        inputs={
            "train": ProgramInput(
                "train",
                {
                    "ll_iters": 5,
                    "fft_stages": 6,
                    "butterflies": 120,
                    "square_iters": 700,
                    "carry_iters": 400,
                    "signal_bytes": 256 * 1024,
                },
                seed=101,
            ),
            "ref": ProgramInput(
                "ref",
                {
                    "ll_iters": 11,
                    "fft_stages": 8,
                    "butterflies": 170,
                    "square_iters": 1300,
                    "carry_iters": 700,
                    "signal_bytes": 512 * 1024,
                },
                seed=202,
            ),
        },
    )
)
