"""gzip — the paper's running example (Figures 3 and 4).

Phase structure modeled (SPEC 164.gzip, ``graphic`` input): an outer loop
over input chunks; each chunk alternates a *long, high data-cache-miss*
deflate phase (LZ77 window + hash chains, working set far above L1) with
a *short, low-miss* output phase (streaming writes) — the two large
phases visible in the paper's Figure 3 time-varying plot, with the phase
markers landing at the chunk-level call edges.
"""

from __future__ import annotations

from repro.ir import NormalTrips, ProgramBuilder
from repro.ir.program import ParamExpr, Program, ProgramInput
from repro.workloads.base import Workload, register


def build() -> Program:
    b = ProgramBuilder("gzip", source_file="gzip.c")
    with b.proc("main"):
        b.code(40, loads=10, mem=b.seq("input", 1 << 20), label="init")
        with b.loop("chunks", trips="chunks"):
            b.call("fill_window")
            b.call("deflate")
            b.call("flush_block")
        b.code(20, stores=4, label="finish")
    with b.proc("fill_window"):
        with b.loop("read", trips=NormalTrips("read_iters", 0.03)):
            b.code(10, loads=4, mem=b.seq("input", 1 << 20), label="copy_in")
    with b.proc("deflate"):
        with b.loop("scan", trips=NormalTrips("scan_iters", 0.03)):
            b.code(
                10,
                loads=5,
                mem=b.wset("window", ParamExpr("window_bytes")),
                label="longest_match",
            )
            with b.if_(0.25):
                b.code(
                    6,
                    loads=2,
                    mem=b.chase("hash_chains", ParamExpr("hash_bytes")),
                    label="follow_chain",
                )
    with b.proc("flush_block"):
        with b.loop("emit", trips=NormalTrips("emit_iters", 0.04)):
            b.code(8, stores=3, mem=b.seq("outbuf", 1 << 16), label="put_bytes")
    return b.build()


register(
    Workload(
        name="gzip",
        category="int",
        description="LZ77 compressor: alternating long-deflate / short-flush phases",
        builder=build,
        ref_name="graphic",
        inputs={
            "train": ProgramInput(
                "train",
                {
                    "chunks": 8,
                    "read_iters": 120,
                    "scan_iters": 1500,
                    "emit_iters": 700,
                    "window_bytes": 96 * 1024,
                    "hash_bytes": 48 * 1024,
                },
                seed=101,
            ),
            "graphic": ProgramInput(
                "graphic",
                {
                    "chunks": 25,
                    "read_iters": 150,
                    "scan_iters": 2500,
                    "emit_iters": 1000,
                    "window_bytes": 192 * 1024,
                    "hash_bytes": 96 * 1024,
                },
                seed=202,
            ),
        },
    )
)
