"""tomcatv — vectorized mesh generation (Shen et al. cache-study benchmark).

Phase structure modeled (SPEC 101.tomcatv): per iteration, a residual
computation streaming over the coordinate arrays, a tridiagonal solve
working on one row slice at a time (compact working set), and a mesh
update sweep.  Like swim: textbook-regular loop behavior.
"""

from __future__ import annotations

from repro.ir import NormalTrips, ProgramBuilder
from repro.ir.program import ParamExpr, Program, ProgramInput
from repro.workloads.base import Workload, register


def build() -> Program:
    b = ProgramBuilder("tomcatv", source_file="tomcatv.f")
    with b.proc("main"):
        b.code(20, loads=5, mem=b.seq("mesh_x", 224 * 1024), label="read_mesh")
        with b.loop("iterations", trips="iterations"):
            b.call("residual")
            b.call("tridiag_solve")
            b.call("update_mesh")
        b.code(10, stores=2, label="write_mesh")
    with b.proc("residual"):
        with b.loop("res_rows", trips=NormalTrips("res_iters", 0.005)):
            b.code(13, loads=7, stores=1, fp=0.75, mem=b.seq("mesh_x", ParamExpr("mesh_bytes"), stride=64), label="residual_stencil")
    with b.proc("tridiag_solve"):
        with b.loop("rows", trips=NormalTrips("solve_rows", 0.005)):
            with b.loop("elim", trips=NormalTrips(24, 0.01)):
                b.code(10, loads=4, stores=2, fp=0.7, mem=b.wset("row_slice", 12 * 1024), label="eliminate")
    with b.proc("update_mesh"):
        with b.loop("upd_rows", trips=NormalTrips("upd_iters", 0.005)):
            b.code(11, loads=5, stores=3, fp=0.7, mem=b.seq("mesh_y", ParamExpr("mesh_bytes"), stride=64), label="relax")
    return b.build()


register(
    Workload(
        name="tomcatv",
        category="fp",
        description="mesh generation: streaming residual/update + compact tridiagonal solve",
        builder=build,
        inputs={
            "train": ProgramInput(
                "train",
                {"iterations": 11, "res_iters": 700, "solve_rows": 40, "upd_iters": 750, "mesh_bytes": 176 * 1024},
                seed=101,
            ),
            "ref": ProgramInput(
                "ref",
                {"iterations": 44, "res_iters": 1200, "solve_rows": 42, "upd_iters": 1000, "mesh_bytes": 176 * 1024},
                seed=202,
            ),
        },
    )
)
