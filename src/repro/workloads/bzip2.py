"""bzip2 — the Figure 5/6 projection example.

Phase structure modeled (SPEC 256.bzip2, ``graphic`` input): a small
number of input blocks, each passing through three *dominant code
regions* executed for a long stretch — Burrows-Wheeler block sort
(pointer-heavy, large working set), move-to-front + RLE (small hot
table), and Huffman coding (streaming output).  "Bzip2 spends the
majority of execution in several code regions, and transitions between
these regions just a few times" — the property that makes its VLI
projection clouds so much tighter than fixed-length ones.
"""

from __future__ import annotations

from repro.ir import NormalTrips, ProgramBuilder
from repro.ir.program import ParamExpr, Program, ProgramInput
from repro.workloads.base import Workload, register


def build() -> Program:
    b = ProgramBuilder("bzip2", source_file="bzip2.c")
    with b.proc("main"):
        b.code(30, loads=8, mem=b.seq("input", 1 << 20), label="read_input")
        with b.loop("blocks", trips="blocks"):
            b.call("block_sort")
            b.call("mtf_rle")
            b.call("huffman")
        b.code(15, stores=3, label="finish")
    with b.proc("block_sort"):
        with b.loop("sort_outer", trips=NormalTrips("sort_outer", 0.04)):
            with b.loop("sort_inner", trips=NormalTrips(40, 0.04)):
                b.code(
                    9,
                    loads=4,
                    mem=b.chase("suffix_array", ParamExpr("block_bytes")),
                    label="compare_suffixes",
                )
    with b.proc("mtf_rle"):
        with b.loop("mtf", trips=NormalTrips("mtf_iters", 0.04)):
            b.code(8, loads=3, stores=1, mem=b.wset("mtf_table", 1 << 13), label="mtf_step")
    with b.proc("huffman"):
        with b.loop("encode", trips=NormalTrips("encode_iters", 0.04)):
            b.code(10, loads=2, stores=3, mem=b.seq("outstream", 1 << 18), label="emit_codes")
    return b.build()


register(
    Workload(
        name="bzip2",
        category="int",
        description="BWT compressor: three long dominant regions per block",
        builder=build,
        ref_name="graphic",
        inputs={
            "train": ProgramInput(
                "train",
                {
                    "blocks": 2,
                    "sort_outer": 120,
                    "mtf_iters": 4000,
                    "encode_iters": 3000,
                    "block_bytes": 128 * 1024,
                },
                seed=101,
            ),
            "graphic": ProgramInput(
                "graphic",
                {
                    "blocks": 3,
                    "sort_outer": 220,
                    "mtf_iters": 9000,
                    "encode_iters": 6000,
                    "block_bytes": 230 * 1024,
                },
                seed=202,
            ),
        },
    )
)
