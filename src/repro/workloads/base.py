"""Workload registry and shared construction helpers."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

from repro.ir.program import Program, ProgramInput
from repro.ir.validate import validate_program


@dataclass(frozen=True)
class Workload:
    """A benchmark: a program builder plus its input sets.

    ``inputs`` always contains ``"train"`` and the reference input named
    ``ref_name`` ("ref", or SPEC's input name like "graphic" or "166").
    """

    name: str
    category: str  # "int" or "fp"
    description: str
    builder: Callable[[], Program]
    inputs: Dict[str, ProgramInput]
    ref_name: str = "ref"

    def build(self) -> Program:
        """Build (and validate) the base binary."""
        program = self.builder()
        validate_program(program)
        return program

    @property
    def train_input(self) -> ProgramInput:
        return self.inputs["train"]

    @property
    def ref_input(self) -> ProgramInput:
        return self.inputs[self.ref_name]

    @property
    def spec_name(self) -> str:
        """The paper's "program/input" label, e.g. ``gzip/graphic``."""
        return f"{self.name}/{self.ref_name}"


_REGISTRY: Dict[str, Workload] = {}


def register(workload: Workload) -> Workload:
    """Add a workload to the global registry (module import side effect)."""
    if workload.name in _REGISTRY:
        raise ValueError(f"duplicate workload {workload.name!r}")
    if "train" not in workload.inputs:
        raise ValueError(f"{workload.name}: missing 'train' input")
    if workload.ref_name not in workload.inputs:
        raise ValueError(f"{workload.name}: missing reference input")
    if workload.category not in ("int", "fp"):
        raise ValueError(f"{workload.name}: category must be 'int' or 'fp'")
    _REGISTRY[workload.name] = workload
    return workload


def get_workload(name: str) -> Workload:
    """Look up a workload by name or by "name/input" spec label."""
    base = name.split("/")[0]
    if base not in _REGISTRY:
        raise KeyError(
            f"unknown workload {base!r}; available: {sorted(_REGISTRY)}"
        )
    return _REGISTRY[base]


def workload_names() -> List[str]:
    return sorted(_REGISTRY)


def all_workloads() -> List[Workload]:
    return [_REGISTRY[n] for n in workload_names()]
