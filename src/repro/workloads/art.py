"""art — adaptive resonance theory image recognition.

Phase structure modeled (SPEC 179.art, ``110`` input): a scan over
images; for each image a long F1-layer *activation* sweep (streaming over
the weight matrix), a *match/compare* phase over a compact F2 layer
(small hot working set), and a weight *adjustment* pass.  Extremely
regular floating-point behavior: every image does nearly identical work.
"""

from __future__ import annotations

from repro.ir import NormalTrips, ProgramBuilder
from repro.ir.program import ParamExpr, Program, ProgramInput
from repro.workloads.base import Workload, register


def build() -> Program:
    b = ProgramBuilder("art", source_file="art.c")
    with b.proc("main"):
        b.code(25, loads=6, mem=b.seq("weights", 1 << 20), label="init_net")
        with b.loop("images", trips="images"):
            b.call("scan_recognize")
            b.call("match")
            b.call("adjust_weights")
        b.code(12, stores=2, label="report")
    with b.proc("scan_recognize"):
        with b.loop("f1_neurons", trips=NormalTrips("f1_iters", 0.01)):
            b.code(
                12,
                loads=6,
                fp=0.6,
                mem=b.seq("weights", ParamExpr("weight_bytes"), stride=64),
                label="compute_activation",
            )
    with b.proc("match"):
        with b.loop("f2_neurons", trips=NormalTrips("f2_iters", 0.01)):
            b.code(9, loads=4, fp=0.5, mem=b.wset("f2_layer", 24 * 1024), label="compare")
    with b.proc("adjust_weights"):
        with b.loop("update", trips=NormalTrips("update_iters", 0.01)):
            b.code(10, loads=3, stores=3, fp=0.6, mem=b.seq("weights", ParamExpr("weight_bytes"), stride=64), label="learn")
    return b.build()


register(
    Workload(
        name="art",
        category="fp",
        description="neural-net recognizer: identical work per image, long sweeps",
        builder=build,
        ref_name="110",
        inputs={
            "train": ProgramInput(
                "train",
                {
                    "images": 8,
                    "f1_iters": 1800,
                    "f2_iters": 500,
                    "update_iters": 900,
                    "weight_bytes": 192 * 1024,
                },
                seed=101,
            ),
            "110": ProgramInput(
                "110",
                {
                    "images": 18,
                    "f1_iters": 3000,
                    "f2_iters": 800,
                    "update_iters": 1500,
                    "weight_bytes": 384 * 1024,
                },
                seed=202,
            ),
        },
    )
)
