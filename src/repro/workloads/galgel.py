"""galgel — Galerkin spectral solver with many small loop nests.

Phase structure modeled (SPEC 178.galgel): an iterative eigenvalue solver
whose every iteration runs a *sequence of distinct small loop nests*
(matrix assembly, several solver kernels, normalization).  Behavior is
regular, but the natural code granularity is small — under the max-limit
selection this is one of the programs that ends up with *many* markers
("we end up marking many small children in the graph"), driving the
Figure 8/11 galgel spikes.
"""

from __future__ import annotations

from repro.ir import NormalTrips, ProgramBuilder
from repro.ir.program import Program, ProgramInput
from repro.workloads.base import Workload, register

_KERNELS = [
    ("assemble", 11, "galerkin_matrix", 1 << 17, 5),
    ("factor", 12, "lu_factors", 1 << 16, 6),
    ("solve_x", 9, "rhs_x", 1 << 14, 4),
    ("solve_y", 9, "rhs_y", 1 << 14, 4),
    ("ortho", 10, "basis", 1 << 15, 5),
    ("normalize", 8, "basis", 1 << 15, 3),
]


def build() -> Program:
    b = ProgramBuilder("galgel", source_file="galgel.f")
    with b.proc("main"):
        b.code(25, loads=6, mem=b.seq("galerkin_matrix", 1 << 17), label="setup")
        with b.loop("solver_iters", trips="solver_iters"):
            for name, size, region, footprint, loads in _KERNELS:
                b.call(name)
        b.code(12, stores=2, label="output_spectrum")
    for name, size, region, footprint, loads in _KERNELS:
        with b.proc(name):
            with b.loop(f"{name}_rows", trips=NormalTrips(f"{name}_iters", 0.02)):
                b.code(
                    size,
                    loads=loads,
                    fp=0.7,
                    mem=b.seq(region, footprint, stride=32),
                    label=f"{name}_kernel",
                )
    return b.build()


def _params(scale: float) -> dict:
    iters = {
        "assemble_iters": 3000,
        "factor_iters": 3900,
        "solve_x_iters": 1900,
        "solve_y_iters": 1900,
        "ortho_iters": 2400,
        "normalize_iters": 1300,
    }
    out = {k: max(20, round(v * scale)) for k, v in iters.items()}
    return out


register(
    Workload(
        name="galgel",
        category="fp",
        description="spectral solver: many distinct small stable loop nests",
        builder=build,
        inputs={
            "train": ProgramInput(
                "train", {"solver_iters": 4, **_params(0.6)}, seed=101
            ),
            "ref": ProgramInput(
                "ref", {"solver_iters": 8, **_params(1.0)}, seed=202
            ),
        },
    )
)
