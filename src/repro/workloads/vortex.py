"""vortex — the second irregular program (with gcc).

Phase structure modeled (SPEC 255.vortex, ``one`` input): an
object-oriented in-memory database running a long stream of mixed
transactions — inserts, lookups, and deletes dispatched through many
small procedures over pointer-linked structures.  Data behavior is
irregular (transaction mix is random), but the transaction-loop call
structure gives code-level phases.
"""

from __future__ import annotations

from repro.ir import NormalTrips, ProgramBuilder, UniformTrips
from repro.ir.program import ParamExpr, Program, ProgramInput
from repro.workloads.base import Workload, register


def build() -> Program:
    b = ProgramBuilder("vortex", source_file="vortex.c")
    with b.proc("main"):
        b.call("build_db")
        with b.loop("batches", trips="batches"):
            with b.loop("transactions", trips=NormalTrips("batch_size", 0.02)):
                with b.switch([0.45, 0.35, 0.2]) as sw:
                    with sw.case():
                        b.call("db_insert")
                    with sw.case():
                        b.call("db_lookup")
                    with sw.case():
                        b.call("db_delete")
            b.call("commit")
            with b.if_(0.55):
                # compaction runs only when fragmentation warrants it —
                # irregularly, as in the real program (its locality dip
                # therefore forms no repeating pattern for reuse-distance
                # detection, while the call edge is still a code marker)
                b.call("compact")
        b.code(18, stores=4, label="report")
    with b.proc("build_db"):
        with b.loop("load", trips=NormalTrips("load_iters", 0.03)):
            b.code(9, loads=3, stores=3, mem=b.seq("db_heap", 1 << 20), label="alloc_obj")
    with b.proc("db_insert"):
        b.call("tree_walk")
        with b.loop("grow", trips=UniformTrips(3, 30)):
            b.code(8, loads=2, stores=3, mem=b.wset("db_heap", ParamExpr("db_bytes")), label="store_fields")
    with b.proc("db_lookup"):
        b.call("tree_walk")
        with b.loop("fetch", trips=UniformTrips(2, 20)):
            b.code(7, loads=4, mem=b.wset("db_heap", ParamExpr("db_bytes")), label="read_fields")
    with b.proc("db_delete"):
        b.call("tree_walk")
        with b.loop("unlink", trips=UniformTrips(2, 12)):
            b.code(8, loads=2, stores=2, mem=b.wset("tombstones", 1 << 14), label="free_obj")
    with b.proc("tree_walk"):
        with b.loop("descend", trips=UniformTrips(4, 24)):
            b.code(6, loads=3, mem=b.chase("index_tree", ParamExpr("index_bytes")), label="follow_ptr")
    with b.proc("commit"):
        # The commit walks the same index and heap the transactions touch,
        # so its *data* behavior blends into the transaction mix (as in
        # the real vortex, whose locality shows no clean periodicity) —
        # only the code structure exposes the batch boundary.
        with b.loop("write_log", trips=NormalTrips("commit_iters", 0.03)):
            b.code(5, loads=3, mem=b.chase("index_tree", ParamExpr("index_bytes")), label="journal_scan")
            b.code(4, stores=2, mem=b.wset("db_heap", ParamExpr("db_bytes")), label="journal_write")
    with b.proc("compact"):
        # free-list compaction: a modest working set (the phase that lets
        # the adaptive cache shrink), interleaved with heap reads so its
        # *reuse-distance* profile blends into the transaction mix — only
        # the code structure exposes it as a phase
        with b.loop("sweep_free", trips=NormalTrips("compact_iters", 0.03)):
            b.code(10, loads=4, stores=2, mem=b.wset("free_lists", ParamExpr("compact_bytes")), label="merge_free")
    return b.build()


register(
    Workload(
        name="vortex",
        category="int",
        description="OO database: irregular mixed-transaction pointer chasing",
        builder=build,
        ref_name="one",
        inputs={
            "train": ProgramInput(
                "train",
                {
                    "batches": 6,
                    "batch_size": 90,
                    "commit_iters": 600,
                    "compact_iters": 850,
                    "compact_bytes": 64 * 1024,
                    "load_iters": 1500,
                    "db_bytes": 96 * 1024,
                    "index_bytes": 64 * 1024,
                },
                seed=101,
            ),
            "one": ProgramInput(
                "one",
                {
                    "batches": 16,
                    "batch_size": 110,
                    "commit_iters": 900,
                    "compact_iters": 1100,
                    "compact_bytes": 128 * 1024,
                    "load_iters": 3000,
                    "db_bytes": 192 * 1024,
                    "index_bytes": 128 * 1024,
                },
                seed=202,
            ),
        },
    )
)
