"""mcf — memory-bound network simplex.

Phase structure modeled (SPEC 181.mcf): outer simplex iterations, each
alternating a long arc-*pricing* sweep (streaming over a large arc array,
very high miss rate) with a *pivot/update* phase walking the spanning
tree (pointer chasing) and a short basis refinement.  mcf's phases are
long and its CPI is dominated by the data cache — good contrast for the
CoV metrics.
"""

from __future__ import annotations

from repro.ir import NormalTrips, ProgramBuilder, UniformTrips
from repro.ir.program import ParamExpr, Program, ProgramInput
from repro.workloads.base import Workload, register


def build() -> Program:
    b = ProgramBuilder("mcf", source_file="mcf.c")
    with b.proc("main"):
        b.code(25, loads=6, mem=b.seq("network", 1 << 20), label="read_network")
        with b.loop("simplex_iters", trips="simplex_iters"):
            b.call("price_arcs")
            b.call("pivot")
            b.call("refine_basis")
        b.code(15, stores=3, label="write_flow")
    with b.proc("price_arcs"):
        with b.loop("arcs", trips=NormalTrips("arc_iters", 0.03)):
            b.code(
                11,
                loads=5,
                mem=b.seq("arc_array", ParamExpr("arc_bytes"), stride=64),
                label="compute_reduced_cost",
            )
    with b.proc("pivot"):
        with b.loop("tree_update", trips=NormalTrips("pivot_iters", 0.05)):
            b.code(
                9,
                loads=4,
                stores=1,
                mem=b.chase("spanning_tree", ParamExpr("tree_bytes")),
                label="update_tree",
            )
    with b.proc("refine_basis"):
        with b.loop("refine", trips=UniformTrips(40, 120)):
            b.code(8, loads=3, stores=2, mem=b.wset("basis", 1 << 14), label="fix_basis")
    return b.build()


register(
    Workload(
        name="mcf",
        category="int",
        description="network simplex: long streaming price / pointer-chase pivot phases",
        builder=build,
        inputs={
            "train": ProgramInput(
                "train",
                {
                    "simplex_iters": 6,
                    "arc_iters": 2200,
                    "pivot_iters": 700,
                    "arc_bytes": 256 * 1024,
                    "tree_bytes": 128 * 1024,
                },
                seed=101,
            ),
            "ref": ProgramInput(
                "ref",
                {
                    "simplex_iters": 14,
                    "arc_iters": 4500,
                    "pivot_iters": 1500,
                    "arc_bytes": 512 * 1024,
                    "tree_bytes": 256 * 1024,
                },
                seed=202,
            ),
        },
    )
)
