"""mgrid — multigrid V-cycles over a grid hierarchy.

Phase structure modeled (SPEC 172.mgrid): each V-cycle smooths, restricts
and interpolates across three grid levels whose footprints differ by a
factor of four — so phase behavior is hierarchical: large-scale phases
(whole V-cycles) contain smaller per-level phases with very different
cache footprints.
"""

from __future__ import annotations

from repro.ir import NormalTrips, ProgramBuilder
from repro.ir.program import Program, ProgramInput
from repro.workloads.base import Workload, register

#: (level name, grid footprint bytes, relative sweep length)
_LEVELS = [
    ("fine", 256 * 1024, 1.0),
    ("mid", 64 * 1024, 0.27),
    ("coarse", 16 * 1024, 0.08),
]


def build() -> Program:
    b = ProgramBuilder("mgrid", source_file="mgrid.f")
    with b.proc("main"):
        b.code(20, loads=5, mem=b.seq("grid_fine", 256 * 1024), label="init_grid")
        with b.loop("vcycles", trips="vcycles"):
            for name, _, _ in _LEVELS:
                b.call(f"smooth_{name}")
            for name, _, _ in reversed(_LEVELS):
                b.call(f"interp_{name}")
        b.code(10, stores=2, label="norm")
    for name, footprint, _ in _LEVELS:
        with b.proc(f"smooth_{name}"):
            with b.loop(f"resid_{name}", trips=NormalTrips(f"{name}_iters", 0.01)):
                b.code(
                    13,
                    loads=6,
                    stores=2,
                    fp=0.7,
                    mem=b.seq(f"grid_{name}", footprint, stride=64),
                    label=f"stencil_{name}",
                )
        with b.proc(f"interp_{name}"):
            with b.loop(f"interp_loop_{name}", trips=NormalTrips(f"{name}_iters", 0.01, minimum=1)):
                b.code(
                    10,
                    loads=4,
                    stores=3,
                    fp=0.6,
                    mem=b.seq(f"grid_{name}", footprint, stride=64),
                    label=f"prolong_{name}",
                )
    return b.build()


def _iters(scale: float) -> dict:
    base = 1600
    return {
        f"{name}_iters": max(10, round(base * rel * scale))
        for name, _, rel in _LEVELS
    }


register(
    Workload(
        name="mgrid",
        category="fp",
        description="multigrid: hierarchical per-level phases of varying footprint",
        builder=build,
        inputs={
            "train": ProgramInput("train", {"vcycles": 6, **_iters(0.5)}, seed=101),
            "ref": ProgramInput("ref", {"vcycles": 14, **_iters(1.0)}, seed=202),
        },
    )
)
