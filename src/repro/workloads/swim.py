"""swim — shallow water equations (Shen et al. cache-study benchmark).

Phase structure modeled (SPEC 171.swim): per timestep, three stencil
sweeps (CALC1, CALC2, CALC3) over large grids plus a compact boundary
update.  The sweeps stream through memory (no cache size helps them)
while the boundary/periodic phase works in a small hot set — the
contrast the adaptive-cache experiment of Figure 10 exploits.  Behavior
is extremely regular: hierarchical instruction-count CoV per loop is
well under 1%.
"""

from __future__ import annotations

from repro.ir import NormalTrips, ProgramBuilder
from repro.ir.program import ParamExpr, Program, ProgramInput
from repro.workloads.base import Workload, register


def build() -> Program:
    b = ProgramBuilder("swim", source_file="swim.f")
    with b.proc("main"):
        b.code(20, loads=5, mem=b.seq("grid_u", 256 * 1024), label="initial")
        with b.loop("timesteps", trips="timesteps"):
            b.call("calc1")
            b.call("calc2")
            b.call("calc3")
            b.call("boundary")
        b.code(10, stores=2, label="checksum")
    with b.proc("calc1"):
        with b.loop("c1_rows", trips=NormalTrips("sweep_iters", 0.005)):
            b.code(14, loads=7, stores=2, fp=0.7, mem=b.seq("grid_u", ParamExpr("grid_bytes"), stride=64), label="c1_stencil")
    with b.proc("calc2"):
        with b.loop("c2_rows", trips=NormalTrips("sweep_iters", 0.005)):
            b.code(14, loads=7, stores=2, fp=0.7, mem=b.seq("grid_v", ParamExpr("grid_bytes"), stride=64), label="c2_stencil")
    with b.proc("calc3"):
        with b.loop("c3_rows", trips=NormalTrips("sweep_iters", 0.005)):
            b.code(12, loads=6, stores=2, fp=0.7, mem=b.seq("grid_p", ParamExpr("grid_bytes"), stride=64), label="c3_stencil")
    with b.proc("boundary"):
        with b.loop("edges", trips=NormalTrips("edge_iters", 0.005)):
            b.code(9, loads=4, stores=2, fp=0.5, mem=b.wset("halo", 24 * 1024), label="periodic")
    return b.build()


register(
    Workload(
        name="swim",
        category="fp",
        description="shallow water: three streaming stencil sweeps + hot boundary",
        builder=build,
        inputs={
            "train": ProgramInput(
                "train",
                {"timesteps": 9, "sweep_iters": 900, "edge_iters": 850, "grid_bytes": 176 * 1024},
                seed=101,
            ),
            "ref": ProgramInput(
                "ref",
                {"timesteps": 36, "sweep_iters": 1100, "edge_iters": 800, "grid_bytes": 176 * 1024},
                seed=202,
            ),
        },
    )
)
