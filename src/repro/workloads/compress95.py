"""compress95 — LZW compress/decompress (Shen et al. cache-study benchmark).

Phase structure modeled (SPEC95 129.compress): the benchmark repeatedly
compresses and decompresses an in-memory buffer.  Compression hashes into
a large code table (working set that rewards a big cache); decompression
walks a much smaller string table — a clean two-level cache-demand
alternation.
"""

from __future__ import annotations

from repro.ir import NormalTrips, ProgramBuilder
from repro.ir.program import ParamExpr, Program, ProgramInput
from repro.workloads.base import Workload, register


def build() -> Program:
    b = ProgramBuilder("compress95", source_file="compress95.c")
    with b.proc("main"):
        b.code(20, loads=5, mem=b.seq("buffer", 1 << 19), label="fill_buffer")
        with b.loop("passes", trips="passes"):
            b.call("compress_pass")
            b.call("decompress_pass")
        b.code(10, stores=2, label="verify")
    with b.proc("compress_pass"):
        with b.loop("comp", trips=NormalTrips("comp_iters", 0.005)):
            b.code(
                10,
                loads=4,
                stores=1,
                mem=b.wset("code_table", ParamExpr("table_bytes")),
                label="hash_insert",
            )
    with b.proc("decompress_pass"):
        with b.loop("decomp", trips=NormalTrips("decomp_iters", 0.005)):
            b.code(9, loads=3, stores=2, mem=b.wset("string_table", 20 * 1024), label="expand_code")
    return b.build()


register(
    Workload(
        name="compress95",
        category="int",
        description="LZW: big-table compression vs small-table decompression",
        builder=build,
        inputs={
            "train": ProgramInput(
                "train",
                {"passes": 7, "comp_iters": 2200, "decomp_iters": 1500, "table_bytes": 176 * 1024},
                seed=101,
            ),
            "ref": ProgramInput(
                "ref",
                {"passes": 28, "comp_iters": 3600, "decomp_iters": 2400, "table_bytes": 176 * 1024},
                seed=202,
            ),
        },
    )
)
