"""repro — a reproduction of "Selecting Software Phase Markers with Code
Structure Analysis" (Lau, Perelman, Calder; CGO 2006).

The package implements the paper's full pipeline and every substrate it
depends on:

* :mod:`repro.ir` / :mod:`repro.engine` — a synthetic "binary" format and
  its execution engine (the Alpha/ATOM substitute);
* :mod:`repro.workloads` — SPEC-2000-like programs with the phase
  structure the literature reports for each benchmark;
* :mod:`repro.callloop` — **the paper's contribution**: the hierarchical
  call-loop graph, its profiler, and the two-pass marker selection
  algorithm (plus the max-limit SimPoint variant and cross-binary
  mapping);
* :mod:`repro.intervals`, :mod:`repro.perf`, :mod:`repro.cache` —
  fixed/VLI interval infrastructure, the CPI model, and the
  Cheetah-style multi-configuration cache simulator;
* :mod:`repro.simpoint` — SimPoint 2.0/3.0 (k-means + BIC over projected
  basic block vectors);
* :mod:`repro.reuse` — the Shen et al. reuse-distance baseline (reuse
  distances, Haar wavelets, Sequitur, locality phase markers);
* :mod:`repro.analysis` / :mod:`repro.experiments` — the evaluation
  metrics and one module per figure of the paper.

Quickstart::

    from repro import quickstart_pipeline
    markers, intervals = quickstart_pipeline("gzip")

See ``examples/`` for complete walkthroughs.
"""

from repro.callloop import (
    CallLoopGraph,
    LimitParams,
    MarkerSet,
    PhaseMarker,
    SelectionParams,
    build_call_loop_graph,
    map_markers,
    marker_trace,
    select_markers,
    select_markers_with_limit,
)
from repro.engine import Machine, Trace, record_trace
from repro.intervals import (
    attach_metrics,
    split_at_markers,
    split_at_markers_scalar,
    split_fixed,
)
from repro.ir import ProgramBuilder, validate_program
from repro.ir.program import Program, ProgramInput

__version__ = "1.1.0"

__all__ = [
    "CallLoopGraph",
    "LimitParams",
    "MarkerSet",
    "PhaseMarker",
    "SelectionParams",
    "build_call_loop_graph",
    "map_markers",
    "marker_trace",
    "select_markers",
    "select_markers_with_limit",
    "Machine",
    "Trace",
    "record_trace",
    "attach_metrics",
    "split_at_markers",
    "split_at_markers_scalar",
    "split_fixed",
    "ProgramBuilder",
    "validate_program",
    "Program",
    "ProgramInput",
    "quickstart_pipeline",
]


def quickstart_pipeline(workload_name: str, ilower: int = 10_000):
    """Run the whole pipeline on one bundled workload.

    Profiles the workload's reference input, selects phase markers, and
    splits the run into variable-length intervals with CPI / cache
    metrics attached.  Returns ``(marker_set, interval_set)``.
    """
    from repro.workloads import get_workload  # deferred: heavy registry

    workload = get_workload(workload_name)
    program = workload.build()
    trace = record_trace(Machine(program, workload.ref_input))
    graph = build_call_loop_graph(program, [workload.ref_input])
    markers = select_markers(graph, SelectionParams(ilower=ilower)).markers
    intervals = split_at_markers(program, trace, markers)
    attach_metrics(intervals, trace, program, workload.ref_input)
    return markers, intervals
