"""Shared utilities: ascii table rendering, JSON helpers, stderr output."""

import sys

from repro.util.tables import Table, format_float, format_int
from repro.util.serialization import to_jsonable, dump_json, load_json

__all__ = [
    "Table",
    "format_float",
    "format_int",
    "to_jsonable",
    "dump_json",
    "load_json",
    "diag",
]


def diag(*lines: str) -> None:
    """Print diagnostic/summary text to **stderr**.

    Every diagnostic line in the CLI and experiment pipeline goes
    through this one helper: stdout is reserved for results (experiment
    tables, marker listings) and must stay byte-identical regardless of
    caching, parallelism, or telemetry settings.
    """
    for line in lines:
        print(line, file=sys.stderr)
