"""Shared utilities: ascii table rendering and JSON serialization helpers."""

from repro.util.tables import Table, format_float, format_int
from repro.util.serialization import to_jsonable, dump_json, load_json

__all__ = [
    "Table",
    "format_float",
    "format_int",
    "to_jsonable",
    "dump_json",
    "load_json",
]
