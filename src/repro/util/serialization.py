"""JSON round-trips for dataclass-heavy result objects.

The experiment runner caches intermediate results; these helpers turn the
library's dataclasses, numpy scalars, and arrays into plain JSON types.
"""

from __future__ import annotations

import dataclasses
import json
from enum import Enum
from pathlib import Path
from typing import Any, Union

import numpy as np


def to_jsonable(obj: Any) -> Any:
    """Recursively convert *obj* into JSON-serializable structures."""
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    if isinstance(obj, float):
        return obj
    if isinstance(obj, Enum):
        return obj.name
    if isinstance(obj, (np.integer,)):
        return int(obj)
    if isinstance(obj, (np.floating,)):
        return float(obj)
    if isinstance(obj, np.ndarray):
        return obj.tolist()
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {
            f.name: to_jsonable(getattr(obj, f.name))
            for f in dataclasses.fields(obj)
        }
    if isinstance(obj, dict):
        return {str(k): to_jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple, set, frozenset)):
        return [to_jsonable(v) for v in obj]
    raise TypeError(f"cannot serialize {type(obj).__name__} to JSON")


def dump_json(obj: Any, path: Union[str, Path]) -> None:
    """Serialize *obj* (via :func:`to_jsonable`) to *path*."""
    Path(path).write_text(json.dumps(to_jsonable(obj), indent=2, sort_keys=True))


def load_json(path: Union[str, Path]) -> Any:
    """Load JSON from *path*."""
    return json.loads(Path(path).read_text())
