"""Plain-text table rendering for experiment reports.

Every benchmark in ``benchmarks/`` regenerates one of the paper's tables or
figures as rows of numbers.  This module renders those rows the same way
everywhere so EXPERIMENTS.md and the benchmark output stay comparable.
"""

from __future__ import annotations

import math
from typing import Any, Iterable, List, Sequence


def format_float(value: float, digits: int = 3) -> str:
    """Format a float compactly; NaN and infinities render symbolically."""
    if value is None:
        return "-"
    if isinstance(value, float):
        if math.isnan(value):
            return "nan"
        if math.isinf(value):
            return "inf" if value > 0 else "-inf"
    return f"{value:.{digits}f}"


def format_int(value: int) -> str:
    """Format an integer with thousands separators."""
    if value is None:
        return "-"
    return f"{int(value):,}"


def _cell(value: Any, digits: int) -> str:
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, int):
        return format_int(value)
    if isinstance(value, float):
        return format_float(value, digits)
    return str(value)


class Table:
    """An ascii table with a title, column headers, and typed rows.

    >>> t = Table("demo", ["name", "value"])
    >>> t.add_row(["x", 1.5])
    >>> print(t.render())  # doctest: +SKIP
    """

    def __init__(self, title: str, columns: Sequence[str], digits: int = 3):
        self.title = title
        self.columns = list(columns)
        self.digits = digits
        self.rows: List[List[str]] = []

    def add_row(self, values: Iterable[Any]) -> None:
        row = [_cell(v, self.digits) for v in values]
        if len(row) != len(self.columns):
            raise ValueError(
                f"row has {len(row)} cells, table has {len(self.columns)} columns"
            )
        self.rows.append(row)

    def add_section(self, label: str) -> None:
        """Insert a full-width section separator row."""
        self.rows.append([f"-- {label} --"] + [""] * (len(self.columns) - 1))

    def render(self) -> str:
        widths = [len(c) for c in self.columns]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))

        def fmt_row(cells: Sequence[str]) -> str:
            return "  ".join(c.ljust(w) for c, w in zip(cells, widths)).rstrip()

        sep = "-" * (sum(widths) + 2 * (len(widths) - 1))
        lines = [self.title, sep, fmt_row(self.columns), sep]
        lines.extend(fmt_row(r) for r in self.rows)
        lines.append(sep)
        return "\n".join(lines)

    def column(self, name: str) -> List[str]:
        """Return the rendered cells of one column (sections excluded)."""
        idx = self.columns.index(name)
        return [r[idx] for r in self.rows if not r[0].startswith("--")]

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean of positive values; 0.0 for an empty sequence."""
    vals = [v for v in values if v > 0]
    if not vals:
        return 0.0
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


def arithmetic_mean(values: Sequence[float]) -> float:
    """Arithmetic mean; 0.0 for an empty sequence."""
    vals = list(values)
    if not vals:
        return 0.0
    return sum(vals) / len(vals)


def weighted_mean(values: Sequence[float], weights: Sequence[float]) -> float:
    """Weighted arithmetic mean; 0.0 when total weight is 0."""
    total = float(sum(weights))
    if total == 0:
        return 0.0
    return sum(v * w for v, w in zip(values, weights)) / total
