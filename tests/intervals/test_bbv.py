"""Unit tests for basic block vector collection."""

import numpy as np
import pytest

from repro.engine import Machine, record_trace
from repro.intervals import collect_bbvs, split_fixed
from repro.intervals.bbv import normalize_bbvs


def test_weighted_sum_equals_interval_length(toy_program, toy_input):
    trace = record_trace(Machine(toy_program, toy_input).run())
    s = split_fixed(trace, 1000, "toy")
    bbvs = collect_bbvs(s, trace, toy_program.num_blocks)
    assert np.allclose(bbvs.sum(axis=1), s.lengths)
    assert s.bbvs is bbvs


def test_block_weighting_by_size(toy_program, toy_input):
    """bbv[b] = executions(b) * size(b): check one block exactly."""
    trace = record_trace(Machine(toy_program, toy_input).run())
    s = split_fixed(trace, 10**9, "toy")  # one interval = whole run
    bbvs = collect_bbvs(s, trace, toy_program.num_blocks)
    ids = trace.block_ids()
    sizes = toy_program.block_sizes()
    for bid in np.unique(ids)[:5]:
        execs = int((ids == bid).sum())
        assert bbvs[0, bid] == execs * sizes[bid]


def test_different_phases_have_different_bbvs(toy_program, toy_input):
    trace = record_trace(Machine(toy_program, toy_input).run())
    s = split_fixed(trace, 500, "toy")
    bbvs = collect_bbvs(s, trace, toy_program.num_blocks)
    norm = normalize_bbvs(bbvs)
    # the run alternates work/emit phases: not all rows identical
    assert not np.allclose(norm[0], norm[len(norm) // 2]) or not np.allclose(
        norm[0], norm[-1]
    )


def test_empty_interval_set(toy_program, toy_input):
    trace = record_trace(Machine(toy_program, toy_input).run())
    s = split_fixed(record_trace([]), 100, "toy")
    bbvs = collect_bbvs(s, trace, toy_program.num_blocks)
    assert bbvs.shape == (0, toy_program.num_blocks)


def test_events_before_first_boundary_are_dropped(toy_program, toy_input):
    """Regression: block events before row_bounds[0] belong to no
    interval and must not be clipped into interval 0's BBV."""
    from repro.intervals.base import IntervalSet

    trace = record_trace(Machine(toy_program, toy_input).run())
    full = split_fixed(trace, 1000, "toy")
    # Rebuild the same interval set minus its first interval: the rows
    # before the new row_bounds[0] are now outside every interval.
    shifted = IntervalSet(
        "toy",
        full.kind,
        full.row_bounds[1:],
        full.start_ts[1:],
        full.lengths[1:],
    )
    bbvs = collect_bbvs(shifted, trace, toy_program.num_blocks)
    reference = collect_bbvs(full, trace, toy_program.num_blocks)
    assert np.array_equal(bbvs, reference[1:])
    # the dropped events' weight is exactly the removed interval's length
    assert bbvs.sum() == reference.sum() - reference[0].sum()


def test_events_past_last_boundary_are_dropped(toy_program, toy_input):
    """Rows at or past row_bounds[-1] must be masked out, not folded
    into (or crash) the flattened accumulator."""
    from repro.intervals.base import IntervalSet

    trace = record_trace(Machine(toy_program, toy_input).run())
    full = split_fixed(trace, 1000, "toy")
    truncated = IntervalSet(
        "toy",
        full.kind,
        full.row_bounds[:-1],
        full.start_ts[:-1],
        full.lengths[:-1],
    )
    bbvs = collect_bbvs(truncated, trace, toy_program.num_blocks)
    reference = collect_bbvs(full, trace, toy_program.num_blocks)
    assert np.array_equal(bbvs, reference[:-1])


def test_normalize_rows_sum_to_one():
    bbvs = np.array([[2.0, 2.0], [0.0, 0.0], [1.0, 3.0]])
    norm = normalize_bbvs(bbvs)
    assert norm[0].sum() == pytest.approx(1.0)
    assert norm[1].sum() == 0.0  # zero rows stay zero
    assert norm[2].tolist() == [0.25, 0.75]
