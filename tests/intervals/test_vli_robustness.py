"""Robustness of VLI splitting with imperfect marker sets."""

import pytest

from repro.callloop import SelectionParams, build_call_loop_graph, select_markers
from repro.callloop.graph import Node, NodeKind
from repro.callloop.markers import MarkerSet, PhaseMarker
from repro.engine import Machine, record_trace
from repro.intervals import split_at_markers


def ghost_marker(mid=99):
    return PhaseMarker(
        marker_id=mid,
        src=Node(NodeKind.PROC_BODY, "main"),
        dst=Node(NodeKind.PROC_HEAD, "not_in_this_binary"),
        avg_interval=1000.0,
        cov=0.0,
        max_interval=1000.0,
    )


def test_partially_unmapped_markers_still_split(toy_program, toy_input):
    """Markers whose nodes don't exist in this binary are skipped; the
    rest fire normally (the cross-binary deployment reality)."""
    trace = record_trace(Machine(toy_program, toy_input).run())
    graph = build_call_loop_graph(toy_program, [toy_input])
    good = select_markers(graph, SelectionParams(ilower=500)).markers
    mixed = MarkerSet(
        "toy", "base", 500.0, None, list(good) + [ghost_marker()]
    )
    a = split_at_markers(toy_program, trace, good)
    b = split_at_markers(toy_program, trace, mixed)
    assert a.lengths.tolist() == b.lengths.tolist()
    assert a.phase_ids.tolist() == b.phase_ids.tolist()


def test_all_unmapped_markers_single_interval(toy_program, toy_input):
    trace = record_trace(Machine(toy_program, toy_input).run())
    only_ghosts = MarkerSet("toy", "base", 500.0, None, [ghost_marker()])
    intervals = split_at_markers(toy_program, trace, only_ghosts)
    assert len(intervals) == 1
    intervals.check_partition(trace.total_instructions)


def test_markers_from_other_program_rejected_gracefully(
    toy_program, toy_input, loop_only_program
):
    """A marker file for program A applied to program B: every node is
    unknown, so nothing fires — no crash, one whole-run interval."""
    from repro.ir.program import ProgramInput

    other_input = ProgramInput("i", seed=3)
    graph = build_call_loop_graph(loop_only_program, [other_input])
    foreign = select_markers(graph, SelectionParams(ilower=400)).markers
    trace = record_trace(Machine(toy_program, toy_input).run())
    intervals = split_at_markers(toy_program, trace, foreign)
    intervals.check_partition(trace.total_instructions)
    # only node names shared across programs (e.g. 'main') could fire
    assert intervals.num_phases <= 3
