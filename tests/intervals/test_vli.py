"""Unit tests for marker-driven VLI splitting."""

import numpy as np
import pytest

from repro.callloop import (
    LimitParams,
    SelectionParams,
    build_call_loop_graph,
    select_markers,
    select_markers_with_limit,
)
from repro.engine import Machine, record_trace
from repro.intervals import split_at_markers


@pytest.fixture
def toy_setup(toy_program, toy_input):
    trace = record_trace(Machine(toy_program, toy_input).run())
    graph = build_call_loop_graph(toy_program, [toy_input])
    return trace, graph


def test_partition_exact(toy_program, toy_input, toy_setup):
    trace, graph = toy_setup
    markers = select_markers(graph, SelectionParams(ilower=500)).markers
    s = split_at_markers(toy_program, trace, markers)
    s.check_partition(trace.total_instructions)


def test_phase_ids_are_marker_ids(toy_program, toy_input, toy_setup):
    trace, graph = toy_setup
    markers = select_markers(graph, SelectionParams(ilower=500)).markers
    s = split_at_markers(toy_program, trace, markers)
    valid = {m.marker_id for m in markers} | {0}
    assert set(np.unique(s.phase_ids)) <= valid


def test_no_zero_length_intervals(toy_program, toy_input, toy_setup):
    trace, graph = toy_setup
    markers = select_markers_with_limit(
        graph, LimitParams(ilower=500, max_limit=5000)
    ).markers
    s = split_at_markers(toy_program, trace, markers)
    assert (s.lengths > 0).all()
    s.check_partition(trace.total_instructions)


def test_limit_markers_bound_interval_sizes(toy_program, toy_input, toy_setup):
    trace, graph = toy_setup
    markers = select_markers_with_limit(
        graph, LimitParams(ilower=500, max_limit=5000)
    ).markers
    s = split_at_markers(toy_program, trace, markers)
    # the bulk of execution must sit in intervals below ~max_limit
    below = s.lengths[s.lengths <= 5000 * 1.5].sum()
    assert below / s.lengths.sum() > 0.8


def test_more_markers_more_intervals(toy_program, toy_input, toy_setup):
    trace, graph = toy_setup
    few = select_markers(graph, SelectionParams(ilower=500)).markers
    many = select_markers_with_limit(
        graph, LimitParams(ilower=500, max_limit=5000)
    ).markers
    s_few = split_at_markers(toy_program, trace, few)
    s_many = split_at_markers(toy_program, trace, many)
    assert len(s_many) >= len(s_few)


def test_empty_marker_set(toy_program, toy_input, toy_setup):
    trace, graph = toy_setup
    from repro.callloop.markers import MarkerSet

    empty = MarkerSet("toy", "base", 500.0, None, [])
    s = split_at_markers(toy_program, trace, empty)
    assert len(s) == 1
    assert s.phase_ids.tolist() == [0]
    s.check_partition(trace.total_instructions)


def test_same_phase_recurs_across_run(loop_only_program):
    """A marker inside the time loop fires every iteration: its phase id
    appears many times (repeating behavior)."""
    from repro.ir.program import ProgramInput

    inp = ProgramInput("i", seed=3)
    trace = record_trace(Machine(loop_only_program, inp).run())
    graph = build_call_loop_graph(loop_only_program, [inp])
    markers = select_markers(graph, SelectionParams(ilower=400)).markers
    s = split_at_markers(loop_only_program, trace, markers)
    counts = np.bincount(s.phase_ids)
    assert counts.max() >= 10
