"""Unit and property tests for fixed-length splitting."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import Machine, record_trace
from repro.engine.events import BlockEvent
from repro.intervals import split_fixed


def trace_of_sizes(sizes):
    return record_trace(BlockEvent(i, i * 4, s) for i, s in enumerate(sizes))


def test_exact_multiples():
    trace = trace_of_sizes([10] * 10)
    s = split_fixed(trace, 20)
    assert len(s) == 5
    assert s.lengths.tolist() == [20] * 5
    s.check_partition(100)


def test_block_granularity_cut():
    trace = trace_of_sizes([7, 7, 7])  # 21 instructions, interval 10
    s = split_fixed(trace, 10)
    s.check_partition(21)
    # first interval ends at the block crossing 10: blocks 0,1 => 14
    assert s.lengths.tolist() == [14, 7]


def test_single_giant_block():
    trace = trace_of_sizes([1000])
    s = split_fixed(trace, 10)
    assert len(s) == 1
    s.check_partition(1000)


def test_empty_trace():
    trace = trace_of_sizes([])
    s = split_fixed(trace, 10)
    assert len(s) == 0
    s.check_partition(0)


def test_interval_length_must_be_positive():
    with pytest.raises(ValueError):
        split_fixed(trace_of_sizes([5]), 0)


def test_real_program(toy_program, toy_input):
    trace = record_trace(Machine(toy_program, toy_input).run())
    s = split_fixed(trace, 1000, "toy")
    s.check_partition(trace.total_instructions)
    # every interval except possibly the last is the nominal length up to
    # block-boundary rounding on each side
    max_block = max(b.size for b in toy_program.blocks)
    assert (s.lengths[:-1] >= 1000 - max_block).all()
    assert (s.lengths[:-1] <= 1000 + max_block).all()


@settings(max_examples=50)
@given(
    sizes=st.lists(st.integers(1, 50), min_size=1, max_size=100),
    length=st.integers(1, 200),
)
def test_partition_property(sizes, length):
    trace = trace_of_sizes(sizes)
    s = split_fixed(trace, length)
    s.check_partition(sum(sizes))
    assert (s.lengths > 0).all()
