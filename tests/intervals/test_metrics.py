"""Unit tests for per-interval metric attachment."""

import numpy as np
import pytest

from repro.engine import Machine, record_trace
from repro.intervals import MetricsConfig, attach_metrics, split_fixed
from repro.perf.model import PerfModel


@pytest.fixture
def measured(toy_program, toy_input):
    trace = record_trace(Machine(toy_program, toy_input).run())
    s = split_fixed(trace, 1000, "toy")
    profile = attach_metrics(s, trace, toy_program, toy_input)
    return trace, s, profile


def test_all_columns_attached(measured):
    _, s, _ = measured
    for col in (s.cycles, s.cpis, s.dl1_misses, s.dl1_accesses,
                s.branch_mispredicts, s.bbvs):
        assert col is not None


def test_cpi_at_least_base(measured, toy_program):
    _, s, _ = measured
    min_base = min(b.base_cpi for b in toy_program.blocks)
    assert (s.cpis >= min_base - 1e-9).all()


def test_misses_bounded_by_accesses(measured):
    _, s, profile = measured
    assert (s.dl1_misses <= s.dl1_accesses).all()
    assert (s.dl1_misses >= 0).all()
    for w in range(1, profile.hits.shape[1] + 1):
        assert (profile.misses_at(w) >= 0).all()


def test_hits_monotone_in_associativity(measured):
    _, _, profile = measured
    diffs = np.diff(profile.hits, axis=1)
    assert (diffs >= 0).all()


def test_cycles_formula(measured):
    _, s, _ = measured
    model = PerfModel()
    expected = (
        s.cycles
        - model.branch_mispredict_penalty * s.branch_mispredicts
        - model.dl1_miss_penalty * s.dl1_misses
    )
    # base cycles >= instructions (base CPI >= 1 in the toy program)
    assert (expected >= s.lengths - 1e-6).all()


def test_dl1_ways_validation():
    with pytest.raises(ValueError):
        MetricsConfig(dl1_ways=9, max_ways=8)


def test_accesses_match_program_mem_ops(measured, toy_program):
    trace, s, _ = measured
    ids = trace.block_ids()
    mem_ops = np.array([b.mix.mem_ops for b in toy_program.blocks])
    assert s.dl1_accesses.sum() == mem_ops[ids].sum()


def test_bbvs_can_be_disabled(toy_program, toy_input):
    trace = record_trace(Machine(toy_program, toy_input).run())
    s = split_fixed(trace, 1000, "toy")
    attach_metrics(
        s, trace, toy_program, toy_input, MetricsConfig(with_bbvs=False)
    )
    assert s.bbvs is None
    assert s.cpis is not None
