"""Unit tests for IntervalSet."""

import numpy as np
import pytest

from repro.intervals.base import IntervalSet


def make_set(lengths, phase_ids=None):
    lengths = np.asarray(lengths, dtype=np.int64)
    start_ts = np.concatenate(([0], np.cumsum(lengths)[:-1])).astype(np.int64)
    row_bounds = np.arange(len(lengths) + 1, dtype=np.int64)
    pid = None if phase_ids is None else np.asarray(phase_ids, dtype=np.int64)
    return IntervalSet("p", "fixed", row_bounds, start_ts, lengths, pid)


def test_basic_properties():
    s = make_set([10, 20, 30], [1, 2, 1])
    assert len(s) == 3
    assert s.total_instructions == 60
    assert s.num_phases == 2
    assert s.average_length == 20.0


def test_weights_sum_to_one():
    s = make_set([10, 30])
    assert s.weights.sum() == pytest.approx(1.0)
    assert s.weights.tolist() == [0.25, 0.75]


def test_iteration_yields_interval_views():
    s = make_set([10, 20], [5, 6])
    views = list(s)
    assert views[1].start_t == 10
    assert views[1].length == 20
    assert views[1].phase_id == 6


def test_check_partition_passes():
    s = make_set([10, 20, 30])
    s.check_partition(60)


def test_check_partition_detects_gap():
    s = make_set([10, 20])
    s.start_ts = np.array([0, 15], dtype=np.int64)  # corrupt
    with pytest.raises(AssertionError):
        s.check_partition(30)


def test_check_partition_detects_wrong_total():
    s = make_set([10, 20])
    with pytest.raises(AssertionError):
        s.check_partition(31)


def test_with_phase_ids_copies_metrics():
    s = make_set([10, 20])
    s.cpis = np.array([1.0, 2.0])
    out = s.with_phase_ids([7, 8])
    assert out.phase_ids.tolist() == [7, 8]
    assert out.cpis is s.cpis
    assert s.phase_ids.tolist() == [-1, -1]


def test_with_phase_ids_length_checked():
    s = make_set([10, 20])
    with pytest.raises(ValueError):
        s.with_phase_ids([1])


def test_miss_rates_require_metrics():
    s = make_set([10, 20])
    with pytest.raises(ValueError):
        s.dl1_miss_rates


def test_miss_rates_zero_access_safe():
    s = make_set([10, 20])
    s.dl1_misses = np.array([1, 0])
    s.dl1_accesses = np.array([4, 0])
    assert s.dl1_miss_rates.tolist() == [0.25, 0.0]


def test_inconsistent_arrays_rejected():
    with pytest.raises(ValueError):
        IntervalSet(
            "p",
            "fixed",
            np.array([0, 1], dtype=np.int64),
            np.array([0, 5], dtype=np.int64),
            np.array([5], dtype=np.int64),
        )
