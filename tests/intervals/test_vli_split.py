"""Segmented / sparsity-aware VLI split: seams, fallbacks, pre-scan.

The split's contract is that every fast path — the vectorized candidate
pre-scan, the batched collector, and the segmented walk with seam merge
— is bit-identical to the scalar per-event splitter.  These tests pin
the seam mechanics and the fallback triggers the corpus-level
``segmented-split`` verify check cannot target deterministically.
"""

import time

import numpy as np
import pytest

from repro.callloop import SelectionParams, build_call_loop_graph, select_markers
from repro.callloop.graph import NodeTable
from repro.callloop.markers import MarkerSet, MarkerTracker
from repro.callloop.walker import ContextWalker
from repro.engine import Machine, Trace, record_trace
from repro.intervals import (
    split_at_markers,
    split_at_markers_prescan,
    split_at_markers_scalar,
)
from repro.intervals.vli import (
    _FastBoundaryCollector,
    _finalize,
    _merge_boundaries,
)
from repro.ir import ProgramBuilder
from repro.ir.program import ProgramInput


def columns(intervals):
    return (
        intervals.row_bounds.tolist(),
        intervals.start_ts.tolist(),
        intervals.lengths.tolist(),
        intervals.phase_ids.tolist(),
    )


@pytest.fixture
def toy_split(toy_program, toy_input):
    trace = record_trace(Machine(toy_program, toy_input).run())
    graph = build_call_loop_graph(toy_program, [toy_input])
    markers = select_markers(graph, SelectionParams(ilower=500)).markers
    return trace, markers


# -- every path vs the scalar oracle ----------------------------------------


def test_all_paths_match_scalar(toy_program, toy_split):
    trace, markers = toy_split
    want = columns(split_at_markers_scalar(toy_program, trace, markers))
    assert columns(split_at_markers(toy_program, trace, markers)) == want
    prescan = split_at_markers_prescan(toy_program, trace, markers)
    assert prescan is not None
    assert columns(prescan) == want
    for shards in (2, 3, 4, 8):
        for executor in ("serial", "threads"):
            got = split_at_markers(
                toy_program, trace, markers, shards=shards, executor=executor
            )
            assert columns(got) == want, f"shards={shards} {executor}"


def test_marker_firing_at_a_segment_cut_row(toy_program, toy_split):
    """Some shard plan must cut exactly at a boundary row, and the merge
    must still reproduce the scalar split there."""
    trace, markers = toy_split
    want = split_at_markers_scalar(toy_program, trace, markers)
    boundary_rows = set(want.row_bounds[1:-1].tolist())
    walker = ContextWalker(toy_program, NodeTable(toy_program))
    hit = False
    for shards in range(2, 17):
        segments = walker.plan_segments(trace, shards)
        cut_rows = {seg.start for seg in segments[1:]}
        hit = hit or bool(cut_rows & boundary_rows)
        got = split_at_markers(
            toy_program, trace, markers, shards=shards, executor="serial"
        )
        assert columns(got) == columns(want), f"shards={shards}"
    assert hit, "no shard plan cut at a marker-firing row; widen the scan"


def test_candidate_free_segment():
    """A segment whose whole span contains no marker candidate yields an
    empty boundary list and drops out of the merge."""
    from repro.callloop.graph import Node, NodeKind
    from repro.callloop.markers import PhaseMarker

    # one marker that fires exactly once, at the very end of the run:
    # every earlier segment's span is candidate-free
    b = ProgramBuilder("onefire")
    with b.proc("main"):
        with b.loop("big", trips=400):
            b.code(10)
        b.call("finish")
    with b.proc("finish"):
        b.code(5)
    program = b.build()
    trace = record_trace(Machine(program, ProgramInput("i", seed=2)).run())
    single = MarkerSet(
        "onefire",
        "base",
        100.0,
        None,
        [
            PhaseMarker(
                marker_id=1,
                src=Node(NodeKind.PROC_BODY, "main", label="main"),
                dst=Node(NodeKind.PROC_HEAD, "finish", label="finish"),
                avg_interval=1000.0,
                cov=0.0,
                max_interval=1000.0,
            )
        ],
    )
    table = NodeTable(program)
    walker = ContextWalker(program, table)
    segments = walker.plan_segments(trace, 8)
    assert len(segments) > 1
    tracker = MarkerTracker(single, table)
    per_segment = []
    for i, seg in enumerate(segments):
        w = ContextWalker(program, table)
        collector = _FastBoundaryCollector(tracker, w)
        w.walk_segment(
            trace, collector, seg,
            is_first=i == 0, is_last=i == len(segments) - 1,
        )
        per_segment.append(collector.boundaries)
    assert any(not bounds for bounds in per_segment)
    want = columns(split_at_markers_scalar(program, trace, single))
    got = split_at_markers(program, trace, single, shards=8, executor="serial")
    assert columns(got) == want


def test_unsegmentable_plan_degrades_to_sequential(toy_program, toy_split):
    """A trace too small to cut (plan_segments returns no cut points)
    must fall back to the sequential fast walk, identically."""
    trace, markers = toy_split
    tiny = Trace(trace.kinds[:1], trace.a[:1], trace.b[:1], trace.c[:1])
    walker = ContextWalker(toy_program, NodeTable(toy_program))
    assert walker.plan_segments(tiny, 4) == []
    want = columns(split_at_markers_scalar(toy_program, tiny, markers))
    got = split_at_markers(
        toy_program, tiny, markers, shards=4, executor="serial"
    )
    assert columns(got) == want


def test_merged_markers_fall_back_to_sequential(loop_only_program):
    """Merged (every-Nth-iteration) markers carry cross-segment counter
    state: the sharded entry point must apply them sequentially."""
    import dataclasses

    from repro.callloop.graph import NodeKind

    inp = ProgramInput("i", seed=3)
    trace = record_trace(Machine(loop_only_program, inp).run())
    graph = build_call_loop_graph(loop_only_program, [inp])
    selected = select_markers(graph, SelectionParams(ilower=400)).markers
    loop_marker = next(
        m
        for m in selected
        if m.src.kind == NodeKind.LOOP_HEAD and m.dst.kind == NodeKind.LOOP_BODY
    )
    markers = MarkerSet(
        selected.program_name,
        selected.variant,
        selected.ilower,
        None,
        [dataclasses.replace(loop_marker, merge_iterations=5)],
    )
    assert any(m.merge_iterations > 1 for m in markers)
    want = columns(split_at_markers_scalar(loop_only_program, trace, markers))
    for shards in (None, 2, 4):
        got = split_at_markers(loop_only_program, trace, markers, shards=shards)
        assert columns(got) == want, f"shards={shards}"


def test_unknown_executor_rejected(toy_program, toy_split):
    trace, markers = toy_split
    with pytest.raises(ValueError, match="unknown shard executor"):
        split_at_markers(
            toy_program, trace, markers, shards=4, executor="carrier-pigeon"
        )


# -- seam merge unit behavior ------------------------------------------------


def test_merge_collapses_coincident_firings_across_a_seam():
    """The first firing after a seam landing on the same t as the last
    firing before it collapses exactly like the sequential collector:
    keep the earlier row, take the innermost (later) marker."""
    merged = _merge_boundaries([[(5, 100, 1)], [(7, 100, 2), (9, 150, 3)]])
    assert merged == [(5, 100, 2), (9, 150, 3)]


def test_merge_coincidence_reaches_across_empty_segments():
    merged = _merge_boundaries([[(5, 100, 1)], [], [(7, 100, 2)]])
    assert merged == [(5, 100, 2)]


def test_merge_keeps_distinct_firings():
    merged = _merge_boundaries([[(5, 100, 1)], [(7, 120, 2)], []])
    assert merged == [(5, 100, 1), (7, 120, 2)]


# -- prologue drop regression ------------------------------------------------


def test_prologue_drop_handles_piles_of_coincident_t0_firings(toy_program):
    """Many t==0 firings (deeply nested entry opens) once re-sliced the
    boundary list per firing — quadratic.  The index advance keeps it
    linear and the innermost (last) marker still names the first phase."""
    n = 200_000
    bounds = [(0, 0, mid) for mid in range(1, n + 1)]
    bounds.append((50, 700, 7))
    start = time.perf_counter()
    intervals = _finalize(toy_program, 100, 1000, bounds)
    elapsed = time.perf_counter() - start
    assert intervals.phase_ids.tolist() == [n, 7]
    assert intervals.start_ts.tolist() == [0, 700]
    assert intervals.lengths.tolist() == [700, 300]
    assert intervals.row_bounds.tolist() == [0, 50, 100]
    # the quadratic re-slice copied ~2e10 elements here; the index
    # advance is comfortably under a second even on a loaded machine
    assert elapsed < 2.0


# -- pre-scan fallback triggers ----------------------------------------------


def test_prescan_declines_loops_in_recursive_procedures():
    """A marked loop inside a recursive procedure breaks the pre-scan's
    static activation mapping; it must decline, and the shipping path
    must fall back with identical output."""
    b = ProgramBuilder("recloop")
    with b.proc("main"):
        with b.loop("calls", trips=6):
            b.call("r")
    with b.proc("r"):
        with b.loop("spin", trips=40):
            b.code(8)
        with b.if_(0.5):
            b.call("r")
    program = b.build()
    inp = ProgramInput("i", seed=11)
    trace = record_trace(Machine(program, inp).run())
    graph = build_call_loop_graph(program, [inp])
    markers = select_markers(graph, SelectionParams(ilower=100)).markers
    # only meaningful if selection marked the loop inside the recursion
    assert any(m.dst.kind.is_loop and m.dst.label == "spin" for m in markers)
    assert split_at_markers_prescan(program, trace, markers) is None
    want = columns(split_at_markers_scalar(program, trace, markers))
    assert columns(split_at_markers(program, trace, markers)) == want


def test_prescan_handles_recursive_call_markers(recursive_program):
    """Call markers on/into recursive procedures stay vectorizable (the
    outermost-activation mask handles re-entry); only loops inside the
    recursion force the fallback."""
    inp = ProgramInput("i", seed=5)
    trace = record_trace(Machine(recursive_program, inp).run())
    graph = build_call_loop_graph(recursive_program, [inp])
    markers = select_markers(graph, SelectionParams(ilower=50)).markers
    want = columns(split_at_markers_scalar(recursive_program, trace, markers))
    prescan = split_at_markers_prescan(recursive_program, trace, markers)
    if prescan is not None:
        assert columns(prescan) == want
    assert columns(split_at_markers(recursive_program, trace, markers)) == want


def test_prescan_empty_trace(toy_program, toy_split):
    _, markers = toy_split
    trace = record_trace(Machine(toy_program, ProgramInput("e", seed=1)).run())
    empty = Trace(trace.kinds[:0], trace.a[:0], trace.b[:0], trace.c[:0])
    want = columns(split_at_markers_scalar(toy_program, empty, markers))
    assert columns(split_at_markers(toy_program, empty, markers)) == want
