"""Unit tests for the online (hardware-style) BBV classifier."""

import numpy as np
import pytest

from repro.engine import Machine, record_trace
from repro.intervals import attach_metrics, split_fixed
from repro.simpoint.online import (
    OnlineClassifierOptions,
    classify_intervals_online,
    classify_online,
)


def signatures(phases=3, blocks=30, seed=0):
    rng = np.random.default_rng(seed)
    return rng.uniform(0.1, 1.0, size=(phases, blocks))


def sequence_bbvs(pattern, base, noise=0.002, seed=1):
    rng = np.random.default_rng(seed)
    rows = [
        np.clip(base[p] + rng.normal(0, noise, base.shape[1]), 0, None) * 500
        for p in pattern
    ]
    return np.vstack(rows)


class TestClassifyOnline:
    def test_recurring_phases_get_same_id(self):
        base = signatures()
        pattern = [0, 1, 2] * 10
        result = classify_online(sequence_bbvs(pattern, base))
        assert result.num_phases == 3
        # recurring behavior maps to a stable id
        ids = result.phase_ids
        assert np.array_equal(ids[:3], ids[3:6])
        assert len(set(ids[::3].tolist())) == 1

    def test_causal_first_occurrence_founds_phase(self):
        base = signatures(phases=2)
        result = classify_online(sequence_bbvs([0, 0, 1, 1, 0], base))
        assert result.new_phase_events == 2
        assert result.phase_ids[0] == 0
        assert result.phase_ids[2] == 1
        assert result.phase_ids[4] == 0

    def test_threshold_controls_granularity(self):
        base = signatures(phases=4)
        bbvs = sequence_bbvs([0, 1, 2, 3] * 5, base)
        tight = classify_online(bbvs, OnlineClassifierOptions(threshold=0.05))
        loose = classify_online(bbvs, OnlineClassifierOptions(threshold=1.9))
        assert tight.num_phases >= loose.num_phases
        assert loose.num_phases == 1

    def test_table_overflow_falls_back(self):
        base = signatures(phases=6, seed=3)
        bbvs = sequence_bbvs(list(range(6)) * 2, base)
        result = classify_online(
            bbvs, OnlineClassifierOptions(max_phases=3, threshold=0.05)
        )
        assert result.num_phases == 3
        assert result.table_overflows > 0
        assert result.phase_ids.max() <= 2

    def test_options_validation(self):
        with pytest.raises(ValueError):
            OnlineClassifierOptions(threshold=0.0)
        with pytest.raises(ValueError):
            OnlineClassifierOptions(max_phases=0)
        with pytest.raises(ValueError):
            OnlineClassifierOptions(update_rate=0.0)


class TestOnIntervals:
    def test_real_program(self, toy_program, toy_input):
        trace = record_trace(Machine(toy_program, toy_input).run())
        intervals = split_fixed(trace, 500, "toy")
        attach_metrics(intervals, trace, toy_program, toy_input)
        classified = classify_intervals_online(intervals)
        assert classified.num_phases >= 2
        # online phases are behavior-homogeneous too
        from repro.analysis import phase_cov, whole_program_cov

        assert phase_cov(classified).overall < whole_program_cov(intervals)

    def test_requires_bbvs(self, toy_program, toy_input):
        trace = record_trace(Machine(toy_program, toy_input).run())
        intervals = split_fixed(trace, 500, "toy")
        with pytest.raises(ValueError):
            classify_intervals_online(intervals)
