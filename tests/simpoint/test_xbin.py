"""Unit/integration tests for cross-binary simulation points."""

import numpy as np
import pytest

from repro.callloop import (
    LimitParams,
    build_call_loop_graph,
    map_markers,
    marker_trace,
    select_markers_with_limit,
)
from repro.engine import Machine, record_trace
from repro.intervals import attach_metrics, split_at_markers
from repro.ir.linker import ALPHA_O0, link
from repro.simpoint import SimPointOptions, filter_by_coverage, run_simpoint_on_intervals
from repro.simpoint.error import estimate_metric, relative_error, true_weighted_metric
from repro.simpoint.xbin import (
    LocatedPoint,
    SimPointSpec,
    estimate_from_located,
    locate_points,
    specs_from_selection,
    validate_transfer,
)


@pytest.fixture(scope="module")
def setup(request):
    """Full pipeline on the toy program: base + O0 variants."""
    from tests.conftest import build_toy_program
    from repro.ir.program import ProgramInput

    program = build_toy_program()
    inp = ProgramInput("test", {}, seed=7)
    trace = record_trace(Machine(program, inp).run())
    graph = build_call_loop_graph(program, [inp])
    markers = select_markers_with_limit(
        graph, LimitParams(ilower=500, max_limit=5000)
    ).markers
    intervals = split_at_markers(program, trace, markers)
    attach_metrics(intervals, trace, program, inp)
    result = run_simpoint_on_intervals(
        intervals, SimPointOptions(k_max=8, seeds=3), weighted=True
    )
    coverage = filter_by_coverage(result, intervals, 1.0)
    firings = marker_trace(program, inp, markers, trace=trace)

    o0 = link(program, ALPHA_O0)
    o0_markers = map_markers(markers, o0).markers
    o0_trace = record_trace(Machine(o0, inp).run())
    o0_firings = marker_trace(o0, inp, o0_markers, trace=o0_trace)
    return dict(
        program=program,
        inp=inp,
        trace=trace,
        markers=markers,
        intervals=intervals,
        coverage=coverage,
        firings=firings,
        o0=o0,
        o0_markers=o0_markers,
        o0_trace=o0_trace,
        o0_firings=o0_firings,
    )


def test_specs_reference_valid_firings(setup):
    specs = specs_from_selection(setup["intervals"], setup["firings"], setup["coverage"])
    assert len(specs) == len(setup["coverage"].sim_point_indices)
    for spec in specs:
        if spec.start_firing is not None:
            assert 0 <= spec.start_firing < len(setup["firings"])


def test_locate_on_source_binary_recovers_intervals(setup):
    specs = specs_from_selection(setup["intervals"], setup["firings"], setup["coverage"])
    located = locate_points(
        specs, setup["firings"], setup["trace"].total_instructions
    )
    for spec, point in zip(specs, located):
        idx = setup["coverage"].sim_point_indices[list(specs).index(spec)]
        assert point.start_instruction == setup["intervals"].start_ts[idx]
        assert point.length == setup["intervals"].lengths[idx]


def test_transfer_validates(setup):
    assert validate_transfer(setup["firings"], setup["o0_firings"])


def test_located_points_scale_with_binary(setup):
    specs = specs_from_selection(setup["intervals"], setup["firings"], setup["coverage"])
    base = locate_points(specs, setup["firings"], setup["trace"].total_instructions)
    o0 = locate_points(
        specs, setup["o0_firings"], setup["o0_trace"].total_instructions
    )
    base_total = setup["trace"].total_instructions
    o0_total = setup["o0_trace"].total_instructions
    assert o0_total > base_total
    for b, o in zip(base, o0):
        if b.length == 0:
            continue
        # the same source region sits at a similar *fraction* of the run
        assert abs(
            b.start_instruction / base_total - o.start_instruction / o0_total
        ) < 0.1


def test_cross_binary_cpi_estimate(setup):
    """The payoff: points chosen on the base binary estimate the *O0*
    binary's CPI when located and measured there."""
    specs = specs_from_selection(setup["intervals"], setup["firings"], setup["coverage"])
    o0_located = locate_points(
        specs, setup["o0_firings"], setup["o0_trace"].total_instructions
    )
    o0_intervals = split_at_markers(setup["o0"], setup["o0_trace"], setup["o0_markers"])
    attach_metrics(o0_intervals, setup["o0_trace"], setup["o0"], setup["inp"])
    estimate = estimate_from_located(o0_located, o0_intervals, o0_intervals.cpis)
    true = true_weighted_metric(o0_intervals, o0_intervals.cpis)
    assert relative_error(estimate, true) < 0.15


def test_locate_rejects_short_trace(setup):
    specs = [SimPointSpec(0, 1, 1.0, start_firing=999_999, end_firing=None)]
    with pytest.raises(ValueError):
        locate_points(specs, setup["firings"], 100)
