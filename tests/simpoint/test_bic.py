"""Unit tests for BIC scoring and k selection."""

import numpy as np
import pytest

from repro.simpoint.bic import bic_score, choose_k
from repro.simpoint.kmeans import kmeans_best_of


def blobs(k_true, seed=0, n=60, spread=0.3):
    rng = np.random.default_rng(seed)
    centers = rng.uniform(-20, 20, size=(k_true, 4))
    return np.vstack([rng.normal(c, spread, size=(n, 4)) for c in centers])


def test_bic_prefers_true_k():
    points = blobs(3, seed=1)
    scores = [
        bic_score(points, kmeans_best_of(points, k, seeds=4)) for k in range(1, 7)
    ]
    assert int(np.argmax(scores)) + 1 == 3


def test_identical_points_prefer_k1():
    points = np.zeros((30, 2)) + 5.0
    scores = [
        bic_score(points, kmeans_best_of(points, k, seeds=2)) for k in (1, 2, 3)
    ]
    assert choose_k(scores) == 0


class TestChooseK:
    def test_threshold_rule(self):
        # scores rising to a plateau: pick the first over the cutoff
        scores = [0.0, 80.0, 95.0, 100.0]
        assert choose_k(scores, threshold=0.9) == 2
        assert choose_k(scores, threshold=0.5) == 1

    def test_flat_scores(self):
        assert choose_k([5.0, 5.0, 5.0]) == 0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            choose_k([])

    def test_single(self):
        assert choose_k([1.0]) == 0


def test_weighted_bic_runs():
    points = blobs(2, seed=2)
    weights = np.random.default_rng(0).uniform(0.5, 2.0, len(points))
    result = kmeans_best_of(points, 2, weights=weights, seeds=3)
    score = bic_score(points, result, weights)
    assert np.isfinite(score)
