"""Unit tests for the simulation-point tie-breaking option."""

import numpy as np
import pytest

from repro.simpoint import SimPointOptions, run_simpoint


def tied_bbvs(n=30, blocks=10):
    """All intervals share one signature: every member is a tie."""
    return np.tile(np.arange(1, blocks + 1, dtype=float), (n, 1))


def test_early_picks_first_interval():
    result = run_simpoint(
        tied_bbvs(), options=SimPointOptions(k_max=1, pick="early")
    )
    assert result.sim_point_indices[0] == 0


def test_median_picks_middle_interval():
    result = run_simpoint(
        tied_bbvs(n=31), options=SimPointOptions(k_max=1, pick="median")
    )
    assert 10 <= result.sim_point_indices[0] <= 20


def test_early_no_later_than_median():
    bbvs = tied_bbvs(n=40)
    early = run_simpoint(bbvs, options=SimPointOptions(k_max=1, pick="early"))
    median = run_simpoint(bbvs, options=SimPointOptions(k_max=1, pick="median"))
    assert early.sim_point_indices[0] <= median.sim_point_indices[0]


def test_invalid_pick_rejected():
    with pytest.raises(ValueError):
        SimPointOptions(pick="latest")
