"""Unit tests for working-set phase detection."""

import numpy as np
import pytest

from repro.simpoint.working_set import (
    WorkingSetOptions,
    boundary_agreement,
    detect_changes,
    detect_on_intervals,
    relative_distance,
)


class TestRelativeDistance:
    def test_identical_sets(self):
        a = np.array([True, True, False])
        assert relative_distance(a, a) == 0.0

    def test_disjoint_sets(self):
        a = np.array([True, False, True, False])
        b = np.array([False, True, False, True])
        assert relative_distance(a, b) == 1.0

    def test_half_overlap(self):
        a = np.array([True, True, False, False])
        b = np.array([True, False, True, False])
        # union 3, sym diff 2
        assert relative_distance(a, b) == pytest.approx(2 / 3)

    def test_empty_sets(self):
        z = np.zeros(4, dtype=bool)
        assert relative_distance(z, z) == 0.0


class TestDetectChanges:
    def phased_bbvs(self):
        """Two working sets alternating in runs of 5."""
        a = np.zeros(20)
        a[:10] = 7.0
        b = np.zeros(20)
        b[10:] = 3.0
        rows = [a] * 5 + [b] * 5 + [a] * 5
        return np.vstack(rows)

    def test_changes_at_phase_boundaries(self):
        det = detect_changes(self.phased_bbvs())
        assert det.change_points.tolist() == [5, 10]

    def test_distances_shape(self):
        det = detect_changes(self.phased_bbvs())
        assert len(det.distances) == 14

    def test_threshold_controls_sensitivity(self):
        bbvs = self.phased_bbvs()
        # add mild overlap noise so distances at boundaries are < 1
        bbvs[:, 9:11] = 1.0
        loose = detect_changes(bbvs, WorkingSetOptions(threshold=0.9))
        tight = detect_changes(bbvs, WorkingSetOptions(threshold=0.1))
        assert len(tight.change_points) >= len(loose.change_points)

    def test_single_interval(self):
        det = detect_changes(np.ones((1, 4)))
        assert len(det.change_points) == 0

    def test_options_validation(self):
        with pytest.raises(ValueError):
            WorkingSetOptions(threshold=0.0)

    def test_requires_bbvs(self, toy_program, toy_input):
        from repro.engine import Machine, record_trace
        from repro.intervals import split_fixed

        trace = record_trace(Machine(toy_program, toy_input).run())
        intervals = split_fixed(trace, 500, "toy")
        with pytest.raises(ValueError):
            detect_on_intervals(intervals)


class TestBoundaryAgreement:
    def test_perfect_match(self):
        p, r, f = boundary_agreement([100, 200], [100, 200], tolerance=5)
        assert (p, r, f) == (1.0, 1.0, 1.0)

    def test_within_tolerance(self):
        p, r, f = boundary_agreement([103, 197], [100, 200], tolerance=5)
        assert f == 1.0

    def test_spurious_detection_lowers_precision(self):
        p, r, f = boundary_agreement([100, 150, 200], [100, 200], tolerance=5)
        assert r == 1.0
        assert p == pytest.approx(2 / 3)

    def test_missed_boundary_lowers_recall(self):
        p, r, f = boundary_agreement([100], [100, 200], tolerance=5)
        assert p == 1.0
        assert r == 0.5

    def test_empty_inputs(self):
        assert boundary_agreement([], [100], tolerance=5) == (0.0, 0.0, 0.0)
        assert boundary_agreement([100], [], tolerance=5) == (0.0, 0.0, 0.0)
