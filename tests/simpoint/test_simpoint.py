"""Unit tests for the end-to-end SimPoint pipeline."""

import numpy as np
import pytest

from repro.engine import Machine, record_trace
from repro.intervals import attach_metrics, split_fixed
from repro.simpoint import (
    SimPointOptions,
    filter_by_coverage,
    run_simpoint,
    run_simpoint_on_intervals,
)
from repro.simpoint.error import estimate_metric, relative_error, true_weighted_metric
from repro.simpoint.projection import project_bbvs, random_projection_matrix


def synthetic_bbvs(n_per_phase=30, phases=3, blocks=40, seed=0):
    """BBVs with `phases` clearly distinct code signatures."""
    rng = np.random.default_rng(seed)
    base = rng.uniform(0, 1, size=(phases, blocks))
    rows = []
    for p in range(phases):
        noise = rng.normal(0, 0.01, size=(n_per_phase, blocks))
        rows.append(np.clip(base[p] + noise, 0, None) * 1000)
    return np.vstack(rows), np.repeat(np.arange(phases), n_per_phase)


class TestProjection:
    def test_shapes(self):
        m = random_projection_matrix(100, 15, seed=1)
        assert m.shape == (100, 15)
        bbvs = np.random.default_rng(0).uniform(0, 1, (20, 100))
        assert project_bbvs(bbvs, dims=15).shape == (20, 15)

    def test_deterministic(self):
        a = random_projection_matrix(50, 3, seed=9)
        b = random_projection_matrix(50, 3, seed=9)
        assert np.array_equal(a, b)

    def test_validation(self):
        with pytest.raises(ValueError):
            random_projection_matrix(0, 3)

    def test_preserves_relative_distances(self):
        bbvs, truth = synthetic_bbvs()
        proj = project_bbvs(bbvs, dims=15)
        same = np.linalg.norm(proj[0] - proj[1])
        different = np.linalg.norm(proj[0] - proj[-1])
        assert different > 5 * same


class TestRunSimPoint:
    def test_recovers_phase_count(self):
        bbvs, truth = synthetic_bbvs(phases=3)
        result = run_simpoint(bbvs, options=SimPointOptions(k_max=8))
        assert result.k == 3
        # every cluster is phase-pure
        for j in range(result.k):
            members = truth[result.phase_ids == j]
            assert len(set(members.tolist())) == 1

    def test_cluster_weights_sum_to_one(self):
        bbvs, _ = synthetic_bbvs()
        result = run_simpoint(bbvs)
        assert result.cluster_weights.sum() == pytest.approx(1.0)

    def test_sim_points_belong_to_their_cluster(self):
        bbvs, _ = synthetic_bbvs()
        result = run_simpoint(bbvs)
        for j, idx in enumerate(result.sim_point_indices):
            assert result.phase_ids[idx] == j

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            run_simpoint(np.zeros((0, 5)))

    def test_options_validation(self):
        with pytest.raises(ValueError):
            SimPointOptions(k_max=0)
        with pytest.raises(ValueError):
            SimPointOptions(bic_threshold=0.0)

    def test_weighted_mode_changes_weights(self):
        bbvs, _ = synthetic_bbvs(phases=2)
        w = np.ones(len(bbvs))
        w[: len(bbvs) // 2] = 10.0
        result = run_simpoint(bbvs, weights=w)
        assert result.cluster_weights.max() > 0.6


class TestOnIntervals:
    def test_pipeline_on_real_program(self, toy_program, toy_input):
        trace = record_trace(Machine(toy_program, toy_input).run())
        s = split_fixed(trace, 1000, "toy")
        attach_metrics(s, trace, toy_program, toy_input)
        result = run_simpoint_on_intervals(
            s, SimPointOptions(k_max=6, seeds=3), weighted=False
        )
        assert 1 <= result.k <= 6
        assert len(result.phase_ids) == len(s)

    def test_requires_bbvs(self, toy_program, toy_input):
        trace = record_trace(Machine(toy_program, toy_input).run())
        s = split_fixed(trace, 1000, "toy")
        with pytest.raises(ValueError):
            run_simpoint_on_intervals(s)


class TestErrorEstimation:
    def _setup(self, toy_program, toy_input):
        trace = record_trace(Machine(toy_program, toy_input).run())
        s = split_fixed(trace, 500, "toy")
        attach_metrics(s, trace, toy_program, toy_input)
        result = run_simpoint_on_intervals(
            s, SimPointOptions(k_max=8, seeds=3), weighted=False
        )
        return s, result

    def test_full_coverage_estimate_close(self, toy_program, toy_input):
        s, result = self._setup(toy_program, toy_input)
        cov = filter_by_coverage(result, s, 1.0)
        est = estimate_metric(cov, s.cpis)
        true = true_weighted_metric(s, s.cpis)
        assert relative_error(est, true) < 0.25

    def test_coverage_monotone_in_simulated_instructions(
        self, toy_program, toy_input
    ):
        s, result = self._setup(toy_program, toy_input)
        sims = [
            filter_by_coverage(result, s, c).simulated_instructions
            for c in (0.5, 0.95, 1.0)
        ]
        assert sims == sorted(sims)

    def test_coverage_reached(self, toy_program, toy_input):
        s, result = self._setup(toy_program, toy_input)
        cov = filter_by_coverage(result, s, 0.95)
        assert cov.coverage >= 0.95 - 1e-9
        assert cov.weights.sum() == pytest.approx(1.0)

    def test_coverage_validation(self, toy_program, toy_input):
        s, result = self._setup(toy_program, toy_input)
        with pytest.raises(ValueError):
            filter_by_coverage(result, s, 0.0)

    def test_relative_error_zero_true(self):
        assert relative_error(5.0, 0.0) == 0.0
