"""Unit tests for weighted k-means."""

import numpy as np
import pytest

from repro.simpoint.kmeans import kmeans, kmeans_best_of


def blobs(seed=0, n=50, centers=((0, 0), (10, 10), (-10, 5)), spread=0.5):
    rng = np.random.default_rng(seed)
    points = []
    labels = []
    for i, c in enumerate(centers):
        points.append(rng.normal(c, spread, size=(n, len(c))))
        labels.extend([i] * n)
    return np.vstack(points), np.array(labels)


def test_recovers_separated_blobs():
    points, truth = blobs()
    result = kmeans_best_of(points, 3, seeds=5)
    # clusters match truth up to relabeling
    for t in range(3):
        members = result.assignments[truth == t]
        assert len(set(members.tolist())) == 1


def test_assignment_is_nearest_centroid():
    points, _ = blobs()
    result = kmeans(points, 3, seed=1)
    d2 = ((points[:, None, :] - result.centroids[None]) ** 2).sum(axis=2)
    assert np.array_equal(result.assignments, d2.argmin(axis=1))


def test_k1_centroid_is_weighted_mean():
    points = np.array([[0.0], [10.0]])
    weights = np.array([3.0, 1.0])
    result = kmeans(points, 1, weights=weights, seed=0)
    assert result.centroids[0, 0] == pytest.approx(2.5)


def test_weights_pull_centroids():
    points = np.array([[0.0], [1.0], [10.0], [11.0]])
    heavy_low = kmeans(points, 1, weights=np.array([100.0, 100.0, 1.0, 1.0]))
    heavy_high = kmeans(points, 1, weights=np.array([1.0, 1.0, 100.0, 100.0]))
    assert heavy_low.centroids[0, 0] < heavy_high.centroids[0, 0]


def test_k_capped_at_n():
    points = np.array([[0.0], [1.0]])
    result = kmeans(points, 10)
    assert result.k <= 2


def test_identical_points():
    points = np.zeros((10, 3))
    result = kmeans(points, 3, seed=2)
    assert result.sse == pytest.approx(0.0)


def test_deterministic_per_seed():
    points, _ = blobs(seed=3)
    a = kmeans(points, 3, seed=42)
    b = kmeans(points, 3, seed=42)
    assert np.array_equal(a.assignments, b.assignments)


def test_best_of_no_worse_than_single():
    points, _ = blobs(seed=4, spread=3.0)
    single = kmeans(points, 3, seed=0)
    best = kmeans_best_of(points, 3, seeds=8, base_seed=0)
    assert best.sse <= single.sse + 1e-9


def test_validation():
    with pytest.raises(ValueError):
        kmeans(np.empty((0, 2)), 2)
    with pytest.raises(ValueError):
        kmeans(np.zeros((3, 2)), 0)
    with pytest.raises(ValueError):
        kmeans(np.zeros((3, 2)), 2, weights=np.ones(2))
    with pytest.raises(ValueError):
        kmeans(np.zeros((3, 2)), 2, weights=np.zeros(3))


def test_sse_decreases_with_k():
    points, _ = blobs(seed=5, spread=2.0)
    sses = [kmeans_best_of(points, k, seeds=4).sse for k in (1, 2, 3, 5)]
    assert sses == sorted(sses, reverse=True)
