"""Unit tests for replacement policies (LRU vs FIFO)."""

import numpy as np
import pytest

from repro.cache import CacheConfig, MultiAssocCacheSim, SetAssocCache


def test_policy_validation():
    with pytest.raises(ValueError):
        CacheConfig(policy="plru")
    assert CacheConfig(policy="fifo").policy == "fifo"


def test_fifo_ignores_recency():
    """The classic distinguishing sequence: under LRU, re-touching a line
    protects it; under FIFO it does not."""
    # one set, 2 ways; lines A, B, C in the same set
    A, B, C = 0, 64 * 2, 64 * 4  # num_sets=2: same set via even multiples
    lru = SetAssocCache(CacheConfig(2, 2, 64, policy="lru"))
    fifo = SetAssocCache(CacheConfig(2, 2, 64, policy="fifo"))
    for cache in (lru, fifo):
        cache.access(A)  # miss, insert
        cache.access(B)  # miss, insert
        cache.access(A)  # hit (LRU: A becomes MRU; FIFO: order unchanged)
        cache.access(C)  # miss: LRU evicts B, FIFO evicts A
    assert lru.access(A) is True  # survived under LRU
    assert fifo.access(A) is False  # evicted under FIFO


def test_fifo_hits_counted():
    cache = SetAssocCache(CacheConfig(2, 2, 64, policy="fifo"))
    cache.access(0)
    cache.access(0)
    assert cache.hits == 1 and cache.misses == 1


def test_lru_never_worse_than_fifo_on_looping_patterns():
    """On cyclic re-reference patterns with reuse, LRU >= FIFO hits."""
    rng = np.random.default_rng(3)
    # skewed reuse: a hot set of lines plus random noise
    hot = rng.integers(0, 32, size=3000) * 64
    cold = rng.integers(0, 4096, size=1000) * 64
    stream = np.concatenate([hot, cold])
    rng.shuffle(stream)
    lru = SetAssocCache(CacheConfig(8, 4, 64, policy="lru"))
    fifo = SetAssocCache(CacheConfig(8, 4, 64, policy="fifo"))
    lru.access_many(stream.tolist())
    fifo.access_many(stream.tolist())
    assert lru.hits >= fifo.hits


def test_stackdist_matches_lru_not_fifo():
    """The Mattson simulator's inclusion property holds for LRU only —
    the reason the reconfiguration substrate standardizes on LRU."""
    rng = np.random.default_rng(9)
    stream = (rng.integers(0, 256, size=4000) * 64).astype(np.int64)
    sim = MultiAssocCacheSim(num_sets=4, line_bytes=64, max_ways=4)
    sim.access_many(stream)
    lru = SetAssocCache(CacheConfig(4, 2, 64, policy="lru"))
    fifo = SetAssocCache(CacheConfig(4, 2, 64, policy="fifo"))
    lru.access_many(stream.tolist())
    fifo.access_many(stream.tolist())
    assert sim.hits_at_assoc()[1] == lru.hits
    assert sim.hits_at_assoc()[1] != fifo.hits
