"""Unit tests for phase-driven adaptive cache reconfiguration."""

import numpy as np
import pytest

from repro.cache.reconfig import (
    EXPLORE_INTERVALS,
    ReconfigResult,
    _best_ways,
    adaptive_average_size,
    best_fixed_ways,
)


def synth_profile(phase_ids, small_phase=1):
    """Phases: `small_phase` only needs 1 way; others need all 8.

    hits[i, w-1] grows with w for big phases; flat for the small phase.
    """
    n = len(phase_ids)
    accesses = np.full(n, 1000, dtype=np.int64)
    hits = np.zeros((n, 8), dtype=np.int64)
    for i, p in enumerate(phase_ids):
        if p == small_phase:
            hits[i] = 900  # same hits at every size
        else:
            hits[i] = 100 * np.arange(1, 9)  # needs the full cache
    return accesses, hits


def test_best_ways_picks_smallest_equal():
    misses = np.array([100, 100, 100, 50, 50, 50, 50, 50])
    assert _best_ways(misses, 0.0) == 4
    assert _best_ways(misses, 1.0) == 1  # 100 <= 50*2


def test_exploration_uses_full_size():
    phase_ids = np.array([1] * 10)
    accesses, hits = synth_profile(phase_ids)
    lengths = np.full(10, 100, dtype=np.int64)
    result = adaptive_average_size(phase_ids, lengths, accesses, hits)
    assert (result.ways_per_interval[:EXPLORE_INTERVALS] == 8).all()
    assert (result.ways_per_interval[EXPLORE_INTERVALS:] == 1).all()


def test_small_phase_gets_small_cache():
    phase_ids = np.array([1, 1, 2, 2] + [1, 2] * 10)
    accesses, hits = synth_profile(phase_ids)
    lengths = np.full(len(phase_ids), 100, dtype=np.int64)
    result = adaptive_average_size(phase_ids, lengths, accesses, hits)
    # after exploration: phase 1 at 1 way (32KB), phase 2 at 8 ways (256KB)
    later = result.ways_per_interval[4:]
    assert set(later[phase_ids[4:] == 1]) == {1}
    assert set(later[phase_ids[4:] == 2]) == {8}
    assert 32.0 < result.avg_size_kb < 256.0


def test_no_miss_increase_with_zero_tolerance():
    phase_ids = np.array([1, 1] + [1] * 20)
    accesses, hits = synth_profile(phase_ids)
    lengths = np.full(len(phase_ids), 100, dtype=np.int64)
    result = adaptive_average_size(phase_ids, lengths, accesses, hits)
    assert result.miss_increase <= 1e-9


def test_average_weighted_by_length():
    phase_ids = np.array([1, 1, 1, 2, 2, 2])
    accesses, hits = synth_profile(phase_ids)
    # all the execution weight in the small phase's decided interval
    lengths = np.array([1, 1, 10**6, 1, 1, 1], dtype=np.int64)
    result = adaptive_average_size(phase_ids, lengths, accesses, hits)
    assert result.avg_size_kb == pytest.approx(32.0, rel=0.01)


def test_empty():
    result = adaptive_average_size(
        np.zeros(0, dtype=np.int64),
        np.zeros(0, dtype=np.int64),
        np.zeros(0, dtype=np.int64),
        np.zeros((0, 8), dtype=np.int64),
    )
    assert result.avg_size_kb == 0.0


def test_best_fixed_ways():
    phase_ids = np.array([1] * 8)
    accesses, hits = synth_profile(phase_ids)
    assert best_fixed_ways(accesses, hits) == 1  # small phase only
    phase_ids = np.array([2] * 8)
    accesses, hits = synth_profile(phase_ids)
    assert best_fixed_ways(accesses, hits) == 8


def test_unseen_phase_defaults_to_full_size():
    """An interval whose phase never finished exploring runs at max."""
    phase_ids = np.array([1, 2, 3, 4, 5, 6])  # each phase seen once
    accesses, hits = synth_profile(phase_ids)
    lengths = np.full(6, 100, dtype=np.int64)
    result = adaptive_average_size(phase_ids, lengths, accesses, hits)
    assert (result.ways_per_interval == 8).all()
