"""Unit tests for the direct set-associative cache."""

import numpy as np
import pytest

from repro.cache import CacheConfig, SetAssocCache


class TestCacheConfig:
    def test_size(self):
        cfg = CacheConfig(num_sets=512, ways=2, line_bytes=64)
        assert cfg.size_bytes == 512 * 2 * 64
        assert cfg.size_kb == 64.0

    def test_paper_space(self):
        """The Section 6.1 space: 32KB..256KB via 1..8 ways."""
        sizes = [CacheConfig(512, w, 64).size_kb for w in range(1, 9)]
        assert sizes[0] == 32.0
        assert sizes[-1] == 256.0

    def test_validation(self):
        with pytest.raises(ValueError):
            CacheConfig(num_sets=0)
        with pytest.raises(ValueError):
            CacheConfig(num_sets=500)  # not a power of two
        with pytest.raises(ValueError):
            CacheConfig(line_bytes=48)

    def test_str(self):
        assert "64KB" in str(CacheConfig(512, 2, 64))


class TestSetAssocCache:
    def test_cold_miss_then_hit(self):
        c = SetAssocCache(CacheConfig(16, 2, 64))
        assert c.access(0x1000) is False
        assert c.access(0x1000) is True
        assert c.access(0x1001) is True  # same line
        assert c.misses == 1 and c.hits == 2

    def test_lru_eviction(self):
        c = SetAssocCache(CacheConfig(1, 2, 64))  # one set, 2 ways
        c.access(0 * 64)
        c.access(1 * 64)
        c.access(2 * 64)  # evicts line 0 (LRU)
        assert c.access(1 * 64) is True
        assert c.access(0 * 64) is False

    def test_lru_recency_update(self):
        c = SetAssocCache(CacheConfig(1, 2, 64))
        c.access(0 * 64)
        c.access(1 * 64)
        c.access(0 * 64)  # 0 becomes MRU
        c.access(2 * 64)  # evicts 1
        assert c.access(0 * 64) is True
        assert c.access(1 * 64) is False

    def test_set_indexing_disjoint(self):
        c = SetAssocCache(CacheConfig(2, 1, 64))
        c.access(0 * 64)  # set 0
        c.access(1 * 64)  # set 1
        assert c.access(0 * 64) is True
        assert c.access(1 * 64) is True

    def test_working_set_fits(self):
        cfg = CacheConfig(16, 4, 64)  # 4KB
        c = SetAssocCache(cfg)
        lines = np.arange(0, cfg.size_bytes, 64)
        for _ in range(3):
            for a in lines:
                c.access(int(a))
        assert c.misses == len(lines)  # only cold misses

    def test_streaming_never_hits(self):
        c = SetAssocCache(CacheConfig(16, 2, 64))
        for a in range(0, 1 << 20, 64):
            assert c.access(a) is False

    def test_access_many_returns_misses(self):
        c = SetAssocCache(CacheConfig(16, 2, 64))
        misses = c.access_many([0, 0, 64, 64, 128])
        assert misses == 3

    def test_flush(self):
        c = SetAssocCache(CacheConfig(16, 2, 64))
        c.access(0)
        c.flush()
        assert c.access(0) is False
        assert c.misses == 2  # counters preserved

    def test_miss_rate(self):
        c = SetAssocCache(CacheConfig(16, 2, 64))
        assert c.miss_rate == 0.0
        c.access(0)
        c.access(0)
        assert c.miss_rate == 0.5
