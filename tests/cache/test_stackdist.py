"""Unit and property tests for the Mattson stack-distance simulator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache import CacheConfig, MultiAssocCacheSim, SetAssocCache
from repro.cache.stackdist import profile_intervals
from repro.engine import Machine, MemorySystem, record_trace
from repro.intervals import split_fixed


def test_matches_direct_simulation_exhaustively():
    rng = np.random.default_rng(0)
    addresses = rng.integers(0, 1 << 14, size=3000) * 8
    sim = MultiAssocCacheSim(num_sets=16, line_bytes=64, max_ways=4)
    sim.access_many(addresses)
    hits = sim.hits_at_assoc()
    for ways in range(1, 5):
        direct = SetAssocCache(CacheConfig(16, ways, 64))
        direct.access_many(addresses.tolist())
        assert direct.hits == hits[ways - 1], f"mismatch at {ways} ways"


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(0, 1000),
    spread=st.sampled_from([1 << 10, 1 << 13, 1 << 16]),
)
def test_matches_direct_simulation_property(seed, spread):
    rng = np.random.default_rng(seed)
    addresses = rng.integers(0, spread, size=500) * 16
    sim = MultiAssocCacheSim(num_sets=4, line_bytes=64, max_ways=3)
    sim.access_many(addresses)
    hits = sim.hits_at_assoc()
    for ways in (1, 2, 3):
        direct = SetAssocCache(CacheConfig(4, ways, 64))
        direct.access_many(addresses.tolist())
        assert direct.hits == hits[ways - 1]


def test_hits_monotone_nondecreasing_in_ways():
    rng = np.random.default_rng(7)
    addresses = rng.integers(0, 1 << 15, size=5000) * 8
    sim = MultiAssocCacheSim(num_sets=8, max_ways=8)
    sim.access_many(addresses)
    hits = sim.hits_at_assoc()
    assert (np.diff(hits) >= 0).all()


def test_single_access_api():
    sim = MultiAssocCacheSim(num_sets=2, max_ways=2)
    assert sim.access(0) == 0  # miss
    assert sim.access(0) == 1  # hit at depth 1
    sim.access(2 * 64 * 2)  # same set, new line
    assert sim.access(0) == 2  # now at depth 2


def test_accesses_counted():
    sim = MultiAssocCacheSim(num_sets=2, max_ways=2)
    sim.access_many(np.array([0, 64, 128], dtype=np.int64))
    assert sim.accesses == 3


def test_config_for_ways():
    sim = MultiAssocCacheSim(num_sets=512, line_bytes=64, max_ways=8)
    assert sim.config_for_ways(4).size_kb == 128.0


class TestProfileIntervals:
    def test_per_interval_totals(self, toy_program, toy_input):
        trace = record_trace(Machine(toy_program, toy_input).run())
        s = split_fixed(trace, 2000, "toy")
        memory = MemorySystem(toy_program, toy_input)
        accesses, hits = profile_intervals(trace, s, memory, num_sets=64)
        # totals match one flat pass
        memory.reset()
        addrs = memory.addresses_for_blocks(trace.block_ids())
        flat = MultiAssocCacheSim(num_sets=64)
        flat.access_many(addrs)
        assert accesses.sum() == flat.accesses
        assert (hits.sum(axis=0) == flat.hits_at_assoc()).all()

    def test_shapes(self, toy_program, toy_input):
        trace = record_trace(Machine(toy_program, toy_input).run())
        s = split_fixed(trace, 2000, "toy")
        memory = MemorySystem(toy_program, toy_input)
        accesses, hits = profile_intervals(trace, s, memory, max_ways=4)
        assert accesses.shape == (len(s),)
        assert hits.shape == (len(s), 4)

    def test_empty_intervals(self, toy_program, toy_input):
        trace = record_trace([])
        s = split_fixed(trace, 100, "toy")
        memory = MemorySystem(toy_program, toy_input)
        accesses, hits = profile_intervals(trace, s, memory)
        assert len(accesses) == 0
