"""Integration tests for the command-line interface."""

import json

import pytest

from repro.cli import main


def test_list(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "gzip/graphic" in out
    assert "gcc/166" in out


def test_markers_and_save(tmp_path, capsys):
    out_file = tmp_path / "markers.json"
    assert main(["markers", "vortex", "-o", str(out_file)]) == 0
    out = capsys.readouterr().out
    assert "markers for vortex" in out
    data = json.loads(out_file.read_text())
    assert data["program_name"] == "vortex"
    assert data["markers"]


def test_phases(capsys):
    assert main(["phases", "vortex"]) == 0
    out = capsys.readouterr().out
    assert "phases" in out
    assert "CoV of CPI" in out


def test_monitor(capsys):
    assert main(["monitor", "vortex", "--head", "3"]) == 0
    out = capsys.readouterr().out
    assert "phase changes observed" in out
    assert "Markov" in out


def test_stream_cold_start(capsys):
    assert main(
        ["stream", "gzip", "--train", "--slot", "20000", "--window", "4",
         "--head", "3"]
    ) == 0
    out = capsys.readouterr().out
    assert "streamed gzip/graphic/train" in out
    assert "window: 4 slot(s) x 20,000 instructions" in out
    assert "[cold start]" in out
    assert "phase changes observed" in out


def test_stream_unbounded_matches_monitor_phase_count(capsys):
    """--window 0 --drift-threshold 0 is the batch-equivalent mode."""
    assert main(
        ["stream", "gzip", "--train", "--window", "0",
         "--drift-threshold", "0"]
    ) == 0
    out = capsys.readouterr().out
    assert "window: unbounded" in out
    assert "0 re-selection(s)" in out
    # drift off pre-selects the batch marker set and applies it unchanged
    assert "0 marker(s) live at end" not in out
    assert "0 phase changes observed" not in out


def test_stream_deterministic_stdout(capsys):
    args = ["stream", "gzip", "--train", "--slot", "20000"]
    assert main(args) == 0
    first = capsys.readouterr().out
    assert main(args) == 0
    assert capsys.readouterr().out == first


def test_markers_with_limit(capsys):
    assert main(["markers", "vortex", "--max-limit", "200000"]) == 0
    out = capsys.readouterr().out
    assert "max_limit" in out


def test_procedures_only(capsys):
    assert main(["markers", "vortex", "--procedures-only"]) == 0


def test_graph_export(tmp_path, capsys):
    out_file = tmp_path / "g.dot"
    assert main(["graph", "vortex", "-o", str(out_file), "--highlight-markers"]) == 0
    text = out_file.read_text()
    assert text.startswith('digraph "vortex"')
    assert "color=red" in text


def test_timeplot(capsys):
    assert main(["timeplot", "vortex", "--width", "40"]) == 0
    out = capsys.readouterr().out
    assert "CPI" in out and "DL1" in out
    assert "alignment" in out


def test_experiment_cache_flags(tmp_path, capsys):
    """Cold run stores profiles; warm run hits and is byte-identical."""
    args = ["experiment", "fig3", "--cache-dir", str(tmp_path)]
    assert main(args) == 0
    cold = capsys.readouterr()
    assert "Figure 3" in cold.out
    assert "Run summary" in cold.err  # observability goes to stderr
    assert "profiled" in cold.err

    assert main(args) == 0
    warm = capsys.readouterr()
    assert warm.out == cold.out
    assert "cache" in warm.err
    assert "0 misses" in warm.err


def test_experiment_no_cache_flag(tmp_path, capsys):
    assert main(["experiment", "fig3", "--no-cache"]) == 0
    out = capsys.readouterr()
    assert "Figure 3" in out.out
    assert "cache hits" in out.err


def test_experiment_stdout_byte_identical_with_telemetry(tmp_path, capsys):
    """--telemetry must not perturb results: stdout stays byte-identical."""
    assert main(["experiment", "fig3", "--no-cache"]) == 0
    plain = capsys.readouterr()

    trace = tmp_path / "trace.jsonl"
    args = ["experiment", "fig3", "--no-cache", "--telemetry", str(trace)]
    assert main(args) == 0
    telemetered = capsys.readouterr()

    assert telemetered.out == plain.out
    assert trace.exists()
    assert "Telemetry: per-stage spans" in telemetered.err
    assert f"telemetry trace written to {trace}" in telemetered.err


def test_quiet_telemetry_still_writes_trace(tmp_path, capsys):
    trace = tmp_path / "trace.jsonl"
    args = [
        "markers",
        "vortex",
        "--telemetry",
        str(trace),
        "--quiet-telemetry",
    ]
    assert main(args) == 0
    err = capsys.readouterr().err
    assert "Telemetry: per-stage spans" not in err
    assert trace.exists()


def test_stats_renders_stage_table_from_real_run(tmp_path, capsys):
    """repro stats aggregates a JSONL trace produced by a real run."""
    trace = tmp_path / "trace.jsonl"
    assert main(["experiment", "fig3", "--no-cache", "--telemetry", str(trace)]) == 0
    capsys.readouterr()

    assert main(["stats", str(trace)]) == 0
    out = capsys.readouterr().out
    assert "Telemetry: per-stage spans" in out
    assert "runner.trace" in out
    assert "callloop.walk" in out
    assert "engine.trace.events" in out


def test_stats_missing_trace_fails(tmp_path, capsys):
    assert main(["stats", str(tmp_path / "absent.jsonl")]) == 1
    err = capsys.readouterr().err
    assert "no telemetry trace" in err


def test_stats_critical_path_from_real_run(tmp_path, capsys):
    trace = tmp_path / "trace.jsonl"
    assert (
        main(["markers", "vortex", "--telemetry", str(trace), "--quiet-telemetry"])
        == 0
    )
    capsys.readouterr()
    assert main(["stats", str(trace), "--critical-path"]) == 0
    out = capsys.readouterr().out
    assert "Critical path" in out
    assert "Self-time attribution" in out
    assert "parallel efficiency" in out


def test_stats_prometheus_from_real_run(tmp_path, capsys):
    trace = tmp_path / "trace.jsonl"
    assert (
        main(["markers", "vortex", "--telemetry", str(trace), "--quiet-telemetry"])
        == 0
    )
    capsys.readouterr()
    assert main(["stats", str(trace), "--prometheus"]) == 0
    out = capsys.readouterr().out
    assert "# TYPE repro_callloop_walk_events_total counter" in out


def test_metrics_series_written_and_summarized(tmp_path, capsys):
    """--metrics-series samples the run and `stats --series` renders it;
    it implies a telemetry session even without --telemetry."""
    series = tmp_path / "series.jsonl"
    args = [
        "markers",
        "vortex",
        "--metrics-series",
        str(series),
        "--metrics-interval",
        "0.005",
    ]
    assert main(args) == 0
    captured = capsys.readouterr()
    assert f"metrics series written to {series}" in captured.err
    assert "Telemetry: per-stage spans" not in captured.err  # no --telemetry
    assert series.exists()

    assert main(["stats", "--series", str(series)]) == 0
    out = capsys.readouterr().out
    assert "metrics time series" in out
    assert "callloop.walk.events" in out


def test_stats_missing_series_fails(tmp_path, capsys):
    assert main(["stats", "--series", str(tmp_path / "absent.jsonl")]) == 1
    err = capsys.readouterr().err
    assert "no metrics series" in err


def test_verify_fuzz_only(capsys):
    assert main(
        ["verify", "--skip-golden", "--skip-streaming",
         "--seed", "3", "--iters", "3"]
    ) == 0
    out = capsys.readouterr().out
    assert "3/3 programs checked, 0 failure(s)" in out


def test_verify_streaming_pass(capsys):
    assert main(
        ["verify", "--skip-golden", "--iters", "0", "--workload", "gzip"]
    ) == 0
    out = capsys.readouterr().out
    assert "streaming equivalence: 1 workload(s) match batch" in out


def test_verify_golden_check_against_committed_corpus(capsys):
    assert main(["verify", "--iters", "0", "--workload", "gzip"]) == 0
    out = capsys.readouterr().out
    assert "golden corpus: 1 workload(s) match" in out


def test_verify_refresh_golden(tmp_path, capsys):
    args = [
        "verify", "--refresh-golden", "--iters", "0",
        "--golden-dir", str(tmp_path), "--workload", "mcf",
    ]
    assert main(args) == 0
    assert "wrote 1 file(s)" in capsys.readouterr().out
    assert (tmp_path / "mcf.json").exists()
    # and the freshly written corpus passes its own check
    assert main(
        ["verify", "--iters", "0", "--golden-dir", str(tmp_path),
         "--workload", "mcf"]
    ) == 0


def test_verify_fails_on_stale_corpus(tmp_path, capsys):
    main(["verify", "--refresh-golden", "--iters", "0",
          "--golden-dir", str(tmp_path), "--workload", "mcf"])
    capsys.readouterr()
    doc = (tmp_path / "mcf.json").read_text()
    (tmp_path / "mcf.json").write_text(doc.replace('"variant": "base"', '"variant": "x"'))
    code = main(
        ["verify", "--iters", "0", "--golden-dir", str(tmp_path),
         "--workload", "mcf"]
    )
    assert code == 1
    assert "STALE" in capsys.readouterr().out


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["frobnicate"])


def test_unknown_experiment_rejected():
    with pytest.raises(SystemExit):
        main(["experiment", "fig99"])
