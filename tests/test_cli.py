"""Integration tests for the command-line interface."""

import json

import pytest

from repro.cli import main


def test_list(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "gzip/graphic" in out
    assert "gcc/166" in out


def test_markers_and_save(tmp_path, capsys):
    out_file = tmp_path / "markers.json"
    assert main(["markers", "vortex", "-o", str(out_file)]) == 0
    out = capsys.readouterr().out
    assert "markers for vortex" in out
    data = json.loads(out_file.read_text())
    assert data["program_name"] == "vortex"
    assert data["markers"]


def test_phases(capsys):
    assert main(["phases", "vortex"]) == 0
    out = capsys.readouterr().out
    assert "phases" in out
    assert "CoV of CPI" in out


def test_monitor(capsys):
    assert main(["monitor", "vortex", "--head", "3"]) == 0
    out = capsys.readouterr().out
    assert "phase changes observed" in out
    assert "Markov" in out


def test_markers_with_limit(capsys):
    assert main(["markers", "vortex", "--max-limit", "200000"]) == 0
    out = capsys.readouterr().out
    assert "max_limit" in out


def test_procedures_only(capsys):
    assert main(["markers", "vortex", "--procedures-only"]) == 0


def test_graph_export(tmp_path, capsys):
    out_file = tmp_path / "g.dot"
    assert main(["graph", "vortex", "-o", str(out_file), "--highlight-markers"]) == 0
    text = out_file.read_text()
    assert text.startswith('digraph "vortex"')
    assert "color=red" in text


def test_timeplot(capsys):
    assert main(["timeplot", "vortex", "--width", "40"]) == 0
    out = capsys.readouterr().out
    assert "CPI" in out and "DL1" in out
    assert "alignment" in out


def test_experiment_cache_flags(tmp_path, capsys):
    """Cold run stores profiles; warm run hits and is byte-identical."""
    args = ["experiment", "fig3", "--cache-dir", str(tmp_path)]
    assert main(args) == 0
    cold = capsys.readouterr()
    assert "Figure 3" in cold.out
    assert "Run summary" in cold.err  # observability goes to stderr
    assert "profiled" in cold.err

    assert main(args) == 0
    warm = capsys.readouterr()
    assert warm.out == cold.out
    assert "cache" in warm.err
    assert "0 misses" in warm.err


def test_experiment_no_cache_flag(tmp_path, capsys):
    assert main(["experiment", "fig3", "--no-cache"]) == 0
    out = capsys.readouterr()
    assert "Figure 3" in out.out
    assert "cache hits" in out.err


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["frobnicate"])


def test_unknown_experiment_rejected():
    with pytest.raises(SystemExit):
        main(["experiment", "fig99"])
