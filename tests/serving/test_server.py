"""End-to-end acceptance tests for the ``repro serve`` service.

Each test runs the real server in-process on an ephemeral port with the
real process-pool backend, mounted on the session-warmed cache/trace
dirs, and speaks actual HTTP to it.
"""

import asyncio
import json

import pytest

from repro.serving import (
    AsyncServeClient,
    PhaseMarkerServer,
    Query,
    ServeClientError,
    compute_payload,
)

from .conftest import WORKLOAD


def run_with_server(coro_fn, serving_dirs, **server_kwargs):
    """asyncio.run a test body with a started server; always drains."""
    cache_dir, trace_root = serving_dirs

    async def main():
        server = PhaseMarkerServer(
            port=0,
            jobs=2,
            cache_dir=cache_dir,
            trace_root=trace_root,
            **server_kwargs,
        )
        await server.start()
        try:
            return await coro_fn(server)
        finally:
            await server.shutdown()

    return asyncio.run(main())


def test_e2e_roundtrip_matches_batch_computation(serving_dirs):
    query = Query(kind="markers", workload=WORKLOAD)

    async def body(server):
        client = AsyncServeClient(server.host, server.port)
        try:
            served = await client.query(query)
            health = json.loads(
                await client.request("GET", "/healthz")
            )
            stats = json.loads(await client.request("GET", "/stats"))
        finally:
            await client.close()
        return served, health, stats

    served, health, stats = run_with_server(body, serving_dirs)
    # the acceptance contract: served bytes == batch-path bytes
    assert served == compute_payload(query)
    assert health["status"] == "ok"
    assert health["jobs"] == 2
    assert stats["requests"] >= 1
    assert stats["by_kind"] == {"markers": 1}
    assert stats["errors"] == 0


def test_all_kinds_round_trip(serving_dirs):
    from repro.runner.cache import ProfileCache
    from repro.runner.traces import TraceStore

    cache_dir, trace_root = serving_dirs
    queries = [
        Query(kind=k, workload=WORKLOAD)
        for k in ("profile", "markers", "bbv", "stream")
    ] + [Query(kind="stream", workload=WORKLOAD, window=4)]

    async def body(server):
        client = AsyncServeClient(server.host, server.port)
        try:
            return [await client.query(q) for q in queries]
        finally:
            await client.close()

    served = run_with_server(body, serving_dirs)
    cache, store = ProfileCache(cache_dir), TraceStore(trace_root)
    for query, payload in zip(queries, served):
        assert payload == compute_payload(query, cache=cache, trace_store=store)


def test_concurrent_clients_share_one_computation(serving_dirs):
    """N clients x the same query -> one pool job, identical payloads."""
    query = Query(kind="markers", workload=WORKLOAD)
    n = 8

    async def body(server):
        clients = [AsyncServeClient(server.host, server.port) for _ in range(n)]
        try:
            payloads = await asyncio.gather(*(c.query(query) for c in clients))
            stats = json.loads(await clients[0].request("GET", "/stats"))
        finally:
            for c in clients:
                await c.close()
        return payloads, stats

    # a wide batch window guarantees all n requests land in one window
    payloads, stats = run_with_server(
        body, serving_dirs, batch_window_s=0.25, max_batch=64
    )
    assert len(set(payloads)) == 1
    assert payloads[0] == compute_payload(query)
    batcher = stats["batcher"]
    assert batcher["submitted"] == n
    assert batcher["computed"] == 1
    assert batcher["deduplicated"] == n - 1


def test_malformed_requests_get_4xx_not_crashes(serving_dirs):
    async def body(server):
        client = AsyncServeClient(server.host, server.port)
        errors = {}
        try:
            for name, (method, path, payload) in {
                "bad_json": ("POST", "/v1/query", b"{nope"),
                "unknown_field": (
                    "POST",
                    "/v1/query",
                    json.dumps({"kind": "markers", "workload": WORKLOAD, "x": 1}).encode(),
                ),
                "unknown_workload": (
                    "POST",
                    "/v1/query",
                    json.dumps({"kind": "markers", "workload": "nope"}).encode(),
                ),
                "no_route": ("GET", "/nope", b""),
                "wrong_method": ("GET", "/v1/query", b""),
            }.items():
                try:
                    await client.request(method, path, payload)
                except ServeClientError as exc:
                    errors[name] = exc.status
            # the connection and server survive all of the above
            health = json.loads(await client.request("GET", "/healthz"))
        finally:
            await client.close()
        return errors, health

    errors, health = run_with_server(body, serving_dirs)
    assert errors == {
        "bad_json": 400,
        "unknown_field": 400,
        "unknown_workload": 400,
        "no_route": 404,
        "wrong_method": 405,
    }
    assert health["status"] == "ok"


def test_graceful_shutdown_drains_inflight_requests(serving_dirs, tmp_path):
    """A request in flight when shutdown starts is still answered."""
    # fresh stores: the query must actually be slow (cold profile)
    query = Query(kind="markers", workload="swim")

    async def main():
        server = PhaseMarkerServer(
            port=0,
            jobs=2,
            cache_dir=str(tmp_path / "cache"),
            trace_root=str(tmp_path / "traces"),
        )
        await server.start()
        client = AsyncServeClient(server.host, server.port)
        try:
            pending = asyncio.create_task(client.query(query))
            await asyncio.sleep(0.05)  # the query is now in the pool
            assert not pending.done()
            await server.shutdown(drain=True)
            return await pending, server.stats.errors
        finally:
            await client.close()

    served, errors = asyncio.run(main())
    assert served == compute_payload(query)
    assert errors == 0


def test_shutdown_endpoint_starts_drain(serving_dirs):
    async def main():
        cache_dir, trace_root = serving_dirs
        server = PhaseMarkerServer(
            port=0, jobs=1, cache_dir=cache_dir, trace_root=trace_root
        )
        await server.start()
        serve_task = asyncio.create_task(server.serve_until_shutdown())
        client = AsyncServeClient(server.host, server.port)
        try:
            reply = json.loads(await client.request("POST", "/v1/shutdown"))
        finally:
            await client.close()
        await asyncio.wait_for(serve_task, timeout=30)
        return reply

    reply = asyncio.run(main())
    assert reply == {"status": "draining"}


def test_server_telemetry_records_request_spans(serving_dirs):
    from repro import telemetry

    query = Query(kind="markers", workload=WORKLOAD)
    tm = telemetry.enable_telemetry()
    try:

        async def body(server):
            client = AsyncServeClient(server.host, server.port)
            try:
                await client.query(query)
                await client.request("GET", "/healthz")
            finally:
                await client.close()

        run_with_server(body, serving_dirs)
    finally:
        telemetry.disable_telemetry()
    names = [s.name for s in tm.spans]
    assert names.count("serve.request") == 2
    # the worker's serve.compute span was merged into the session
    assert "serve.compute" in names
    assert tm.metrics.counters["serve.requests"] == 2
    assert "serve" in tm.lane_labels.values()
