"""Shard-count invariance: ``--split-shards`` must never leak into
query identity or payload bytes.

The ``vli`` and ``phases`` kinds are served from the segmented splitter,
but the shard count is purely a throughput knob: the payload is a pure
function of the :class:`Query`, byte-identical whether the split ran
sequentially, via the pre-scan, or over N segments.
"""

import json

from repro.serving import (
    PAYLOAD_VERSION,
    Query,
    QueryJob,
    compute_payload,
    query_from_dict,
    run_query_job,
)
from repro.serving.queries import QUERY_KINDS

from .conftest import WORKLOAD


def test_vli_and_phases_are_query_kinds():
    assert "vli" in QUERY_KINDS
    assert "phases" in QUERY_KINDS
    # and the wire validator accepts them
    assert query_from_dict({"kind": "vli", "workload": WORKLOAD}).kind == "vli"


def test_query_has_no_shard_field():
    """Shard count must not be part of query identity: Query has no such
    field, so two clients asking with different server shard settings
    share one cache entry."""
    assert "split_shards" not in Query.__dataclass_fields__
    a = Query(kind="vli", workload=WORKLOAD)
    assert a.key() == Query(kind="vli", workload=WORKLOAD).key()


def test_vli_payload_bytes_are_shard_count_invariant(serving_dirs):
    from repro.runner.cache import ProfileCache
    from repro.runner.traces import TraceStore

    cache_dir, trace_root = serving_dirs
    cache, store = ProfileCache(cache_dir), TraceStore(trace_root)
    for kind in ("vli", "phases"):
        query = Query(kind=kind, workload=WORKLOAD)
        base = compute_payload(
            query, cache=cache, trace_store=store, split_shards=1
        )
        for shards in (None, 2, 4):
            got = compute_payload(
                query, cache=cache, trace_store=store, split_shards=shards
            )
            assert got == base, f"{kind} shards={shards}"


def test_vli_payload_document_shape(serving_dirs):
    from repro.runner.cache import ProfileCache
    from repro.runner.traces import TraceStore

    cache_dir, trace_root = serving_dirs
    cache, store = ProfileCache(cache_dir), TraceStore(trace_root)
    doc = json.loads(
        compute_payload(
            Query(kind="vli", workload=WORKLOAD), cache=cache, trace_store=store
        )
    )
    assert doc["payload_version"] == PAYLOAD_VERSION
    vli = doc["vli"]
    assert vli["num_intervals"] > 0
    assert vli["num_phases"] > 0
    assert vli["total_instructions"] > 0
    for digest in (
        "row_bounds_digest",
        "start_ts_digest",
        "lengths_digest",
        "phase_ids_digest",
    ):
        assert len(vli[digest]) == 64

    doc = json.loads(
        compute_payload(
            Query(kind="phases", workload=WORKLOAD),
            cache=cache,
            trace_store=store,
        )
    )
    phases = doc["phases"]
    assert phases["num_intervals"] > 0
    per_phase = phases["per_phase"]
    assert sum(p["intervals"] for p in per_phase) == phases["num_intervals"]
    assert (
        sum(p["instructions"] for p in per_phase)
        == phases["total_instructions"]
    )


def test_query_job_equality_ignores_split_shards(serving_dirs):
    cache_dir, trace_root = serving_dirs
    query = Query(kind="vli", workload=WORKLOAD)
    a = QueryJob(query=query, cache_dir=cache_dir, trace_root=trace_root)
    b = QueryJob(
        query=query,
        cache_dir=cache_dir,
        trace_root=trace_root,
        split_shards=4,
    )
    assert a == b


def test_run_query_job_sharded_matches_inline_compute(serving_dirs):
    cache_dir, trace_root = serving_dirs
    query = Query(kind="vli", workload=WORKLOAD)
    job = QueryJob(
        query=query,
        cache_dir=cache_dir,
        trace_root=trace_root,
        split_shards=4,
        run_id="shardrun",
    )
    result = run_query_job(job)
    assert result.key == query.key()
    assert result.payload == compute_payload(query)
